"""Root conftest: make the src layout importable without installation.

This keeps ``pytest`` and the benchmark harness runnable even in
offline environments where ``pip install -e .`` cannot complete (e.g.
no ``wheel`` package available for PEP 517 editable builds).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

"""Tests for firewall/port-knocking and replica-selection functions."""

import pytest

from repro.core import Controller, Enclave
from repro.core.stage import Classification
from repro.functions.firewall import (FIREWALL_GLOBAL_SCHEMA,
                                      FirewallDeployment,
                                      PORT_KNOCK_GLOBAL_SCHEMA,
                                      PortKnockDeployment,
                                      port_knock_action,
                                      stateful_firewall_action)
from repro.functions.replica import (MCROUTER_GLOBAL_SCHEMA,
                                     MCROUTER_MESSAGE_SCHEMA,
                                     NAT_GLOBAL_SCHEMA,
                                     SINBAD_GLOBAL_SCHEMA,
                                     ananta_nat_action,
                                     mcrouter_select_action,
                                     sinbad_select_action)


class Pkt:
    def __init__(self, src_ip=1, dst_ip=2, src_port=1000,
                 dst_port=80):
        self.src_ip, self.dst_ip = src_ip, dst_ip
        self.src_port, self.dst_port = src_port, dst_port
        self.proto = 6
        self.size = 100
        self.priority = self.path_id = self.drop = 0
        self.to_controller = self.queue_id = self.charge = 0
        self.ecn = self.tenant = 0


def knock_enclave():
    enclave = Enclave("e")
    enclave.install_function(port_knock_action, name="knock",
                             global_schema=PORT_KNOCK_GLOBAL_SCHEMA)
    enclave.set_global_array("knock", "knock_state", [0] * 64)
    for i, port in enumerate((7001, 7002, 7003), start=1):
        enclave.set_global("knock", f"knock{i}", port)
    enclave.set_global("knock", "open_port", 22)
    enclave.install_rule("*", "knock")
    return enclave


def knock(enclave, src_ip, dst_port):
    p = Pkt(src_ip=src_ip, dst_port=dst_port)
    enclave.process_packet(p)
    return p


class TestPortKnocking:
    def test_correct_sequence_opens(self):
        enclave = knock_enclave()
        for port in (7001, 7002, 7003):
            assert knock(enclave, 5, port).drop == 0
        assert knock(enclave, 5, 22).drop == 0

    def test_closed_without_knocking(self):
        enclave = knock_enclave()
        assert knock(enclave, 5, 22).drop == 1

    def test_wrong_order_resets(self):
        enclave = knock_enclave()
        knock(enclave, 5, 7001)
        knock(enclave, 5, 7003)  # skipped 7002 -> reset
        knock(enclave, 5, 7003)
        assert knock(enclave, 5, 22).drop == 1

    def test_stray_port_resets(self):
        enclave = knock_enclave()
        knock(enclave, 5, 7001)
        knock(enclave, 5, 7002)
        knock(enclave, 5, 9999)
        assert knock(enclave, 5, 22).drop == 1

    def test_state_is_per_source(self):
        enclave = knock_enclave()
        for port in (7001, 7002, 7003):
            knock(enclave, 5, port)
        assert knock(enclave, 5, 22).drop == 0
        assert knock(enclave, 6, 22).drop == 1

    def test_open_stays_open(self):
        enclave = knock_enclave()
        for port in (7001, 7002, 7003):
            knock(enclave, 5, port)
        knock(enclave, 5, 12345)  # unrelated traffic after opening
        assert knock(enclave, 5, 22).drop == 0

    def test_deployment(self):
        controller = Controller()
        enclave = Enclave("h1.enclave")
        controller.register_enclave("h1", enclave)
        PortKnockDeployment(controller).install(
            "h1", [7001, 7002, 7003], open_port=22)
        assert knock(enclave, 9, 22).drop == 1

    def test_deployment_needs_three_knocks(self):
        controller = Controller()
        controller.register_enclave("h1", Enclave("e"))
        with pytest.raises(ValueError):
            PortKnockDeployment(controller).install("h1", [1, 2], 22)


class TestStatefulFirewall:
    def fw_enclave(self, my_ip=1, allow_port=-1):
        enclave = Enclave("e")
        enclave.install_function(
            stateful_firewall_action, name="fw",
            global_schema=FIREWALL_GLOBAL_SCHEMA)
        enclave.set_global_array("fw", "flow_seen", [0] * 256)
        enclave.set_global("fw", "my_ip", my_ip)
        enclave.set_global("fw", "allow_port", allow_port)
        enclave.install_rule("*", "fw")
        return enclave

    def test_unsolicited_inbound_dropped(self):
        enclave = self.fw_enclave()
        inbound = Pkt(src_ip=9, dst_ip=1, src_port=80,
                      dst_port=5000)
        enclave.process_packet(inbound)
        assert inbound.drop == 1

    def test_reply_to_outbound_allowed(self):
        enclave = self.fw_enclave()
        outbound = Pkt(src_ip=1, dst_ip=9, src_port=5000,
                       dst_port=80)
        enclave.process_packet(outbound)
        reply = Pkt(src_ip=9, dst_ip=1, src_port=80, dst_port=5000)
        enclave.process_packet(reply)
        assert reply.drop == 0

    def test_whitelisted_port_always_open(self):
        enclave = self.fw_enclave(allow_port=443)
        inbound = Pkt(src_ip=9, dst_ip=1, dst_port=443)
        enclave.process_packet(inbound)
        assert inbound.drop == 0

    def test_deployment_end_to_end(self):
        controller = Controller()
        enclave = Enclave("h1.enclave")
        controller.register_enclave("h1", enclave)
        FirewallDeployment(controller).install("h1", host_ip=1)
        inbound = Pkt(src_ip=7, dst_ip=1)
        enclave.process_packet(inbound)
        assert inbound.drop == 1

    def test_firewall_serializes(self):
        from repro.core import ConcurrencyLevel
        enclave = self.fw_enclave()
        assert enclave.function("fw").concurrency is \
            ConcurrencyLevel.SERIAL


class TestAnantaNat:
    def nat_enclave(self, seed=0):
        import random
        enclave = Enclave("e", rng=random.Random(seed))
        enclave.install_function(ananta_nat_action, name="nat",
                                 global_schema=NAT_GLOBAL_SCHEMA)
        enclave.set_global("nat", "vip", 99)
        enclave.set_global_array("nat", "replicas", [201, 202, 203])
        enclave.set_global_array("nat", "nat_state", [0] * 256)
        enclave.install_rule("*", "nat")
        return enclave

    def test_vip_rewritten_to_replica(self):
        enclave = self.nat_enclave()
        p = Pkt(dst_ip=99)
        enclave.process_packet(p)
        assert p.dst_ip in (201, 202, 203)

    def test_flow_sticks_to_one_replica(self):
        enclave = self.nat_enclave()
        chosen = set()
        for _ in range(10):
            p = Pkt(dst_ip=99, src_port=4242)
            enclave.process_packet(p)
            chosen.add(p.dst_ip)
        assert len(chosen) == 1

    def test_reverse_path_rewritten_to_vip(self):
        enclave = self.nat_enclave()
        fwd = Pkt(dst_ip=99, src_ip=1, src_port=4242, dst_port=80)
        enclave.process_packet(fwd)
        replica = fwd.dst_ip
        back = Pkt(src_ip=replica, dst_ip=1, src_port=80,
                   dst_port=4242)
        enclave.process_packet(back)
        assert back.src_ip == 99

    def test_non_vip_traffic_untouched(self):
        enclave = self.nat_enclave()
        p = Pkt(dst_ip=42)
        enclave.process_packet(p)
        assert p.dst_ip == 42

    def test_flows_spread_over_replicas(self):
        enclave = self.nat_enclave(seed=11)
        chosen = set()
        for sport in range(60):
            p = Pkt(dst_ip=99, src_port=sport)
            enclave.process_packet(p)
            chosen.add(p.dst_ip)
        assert len(chosen) >= 2


class TestReplicaSelection:
    def test_mcrouter_same_key_same_replica(self):
        enclave = Enclave("e")
        enclave.install_function(
            mcrouter_select_action, name="mc",
            message_schema=MCROUTER_MESSAGE_SCHEMA,
            global_schema=MCROUTER_GLOBAL_SCHEMA)
        enclave.set_global_array("mc", "replicas", [301, 302, 303])
        enclave.install_rule("*", "mc")

        def route(key_hash, msg):
            p = Pkt()
            cls = [Classification("app.r1.m",
                                  {"msg_id": ("a", msg),
                                   "key_hash": key_hash})]
            enclave.process_packet(p, cls)
            return p.dst_ip

        assert route(14, 1) == route(14, 2) == 303  # 14 % 3 == 2
        assert route(15, 3) == 301

    def test_sinbad_picks_least_loaded(self):
        enclave = Enclave("e")
        enclave.install_function(
            sinbad_select_action, name="sb",
            message_schema=MCROUTER_MESSAGE_SCHEMA,
            global_schema=SINBAD_GLOBAL_SCHEMA)
        enclave.set_global_array("sb", "replicas", [401, 402, 403])
        enclave.set_global_array("sb", "replica_load", [30, 80, 10])
        enclave.install_rule("*", "sb")
        p = Pkt()
        enclave.process_packet(
            p, [Classification("a.r1.m", {"msg_id": ("a", 1),
                                          "key_hash": 0})])
        assert p.dst_ip == 403
        # Controller refreshes loads; selection follows.
        enclave.set_global_array("sb", "replica_load", [5, 80, 10])
        q = Pkt()
        enclave.process_packet(
            q, [Classification("a.r1.m", {"msg_id": ("a", 2),
                                          "key_hash": 0})])
        assert q.dst_ip == 401

"""Statistical properties of the WCMP weighted choice."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Enclave
from repro.functions.wcmp import WCMP_GLOBAL_SCHEMA, wcmp_action


class Pkt:
    def __init__(self, src_port):
        self.src_ip, self.dst_ip = 1, 2
        self.src_port, self.dst_port, self.proto = src_port, 80, 6
        self.size = 1500
        self.priority = self.path_id = self.drop = 0
        self.to_controller = self.queue_id = self.charge = 0
        self.ecn = self.tenant = 0


def sample_distribution(weights, n=600, seed=0,
                        backend="interpreter"):
    enclave = Enclave("e", rng=random.Random(seed))
    enclave.install_function(wcmp_action, name="wcmp",
                             global_schema=WCMP_GLOBAL_SCHEMA,
                             backend=backend)
    flat = []
    for path_id, weight in weights:
        flat.extend((path_id, weight))
    enclave.set_global_keyed("wcmp", "paths", (1, 2), flat)
    enclave.install_rule("*", "wcmp")
    counts = {path_id: 0 for path_id, _ in weights}
    for i in range(n):
        p = Pkt(src_port=i)
        enclave.process_packet(p)
        counts[p.path_id] += 1
    return counts


class TestWeightedChoice:
    @settings(max_examples=12, deadline=None)
    @given(w1=st.integers(1, 20), w2=st.integers(1, 20),
           seed=st.integers(0, 100))
    def test_two_path_proportions(self, w1, w2, seed):
        n = 800
        counts = sample_distribution([(1, w1 * 50), (2, w2 * 50)],
                                     n=n, seed=seed)
        expected1 = n * w1 / (w1 + w2)
        # Loose 5-sigma-ish bound for a binomial sample.
        sigma = (n * (w1 / (w1 + w2)) *
                 (w2 / (w1 + w2))) ** 0.5
        assert abs(counts[1] - expected1) < 5 * sigma + 5

    def test_zero_weight_path_never_chosen(self):
        counts = sample_distribution([(1, 1000), (2, 0)], n=300)
        assert counts[2] == 0 and counts[1] == 300

    def test_three_way_split(self):
        counts = sample_distribution(
            [(1, 500), (2, 300), (3, 200)], n=1000, seed=4)
        assert counts[1] > counts[2] > counts[3]
        assert counts[1] + counts[2] + counts[3] == 1000

    def test_backends_statistically_identical(self):
        # Same seed => the two backends consume the RNG identically,
        # so the sampled sequence matches exactly.
        a = sample_distribution([(1, 700), (2, 300)], n=300, seed=9,
                                backend="interpreter")
        b = sample_distribution([(1, 700), (2, 300)], n=300, seed=9,
                                backend="native")
        assert a == b

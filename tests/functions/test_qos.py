"""Tests for the QJump / network-QoS / centralized-CC functions."""

import pytest

from repro.core import Controller, Enclave
from repro.core.stage import Classification
from repro.functions.qos import (CENTRALIZED_CC_MESSAGE_SCHEMA,
                                 NETWORK_QOS_GLOBAL_SCHEMA,
                                 QJUMP_GLOBAL_SCHEMA,
                                 QJUMP_MESSAGE_SCHEMA,
                                 QjumpDeployment,
                                 centralized_cc_action,
                                 network_qos_action, qjump_action)
from repro.netsim import Simulator, star
from repro.stack import HostStack


class Pkt:
    def __init__(self, tenant=0, size=1514):
        self.src_ip, self.dst_ip = 1, 2
        self.src_port, self.dst_port, self.proto = 1000, 80, 6
        self.size = size
        self.tenant = tenant
        self.priority = self.path_id = self.drop = 0
        self.to_controller = self.queue_id = self.charge = 0
        self.ecn = 0


def cls_for(msg, **metadata):
    metadata.setdefault("msg_id", ("app", msg))
    return [Classification("app.r1.msg", metadata)]


class TestQjump:
    def make(self):
        enclave = Enclave("e")
        enclave.install_function(qjump_action, name="qjump",
                                 message_schema=QJUMP_MESSAGE_SCHEMA,
                                 global_schema=QJUMP_GLOBAL_SCHEMA)
        enclave.set_global_array("qjump", "level_priority",
                                 [0, 4, 7])
        enclave.set_global_array("qjump", "level_queue", [0, 3, 0])
        enclave.install_rule("*", "qjump")
        return enclave

    def test_levels_map_to_priority_and_queue(self):
        enclave = self.make()
        for level, (prio, queue) in enumerate(((0, 0), (4, 3),
                                               (7, 0))):
            p = Pkt()
            enclave.process_packet(p, cls_for(level, level=level))
            assert (p.priority, p.queue_id) == (prio, queue), level

    def test_out_of_range_level_clamped(self):
        enclave = self.make()
        high, low = Pkt(), Pkt()
        enclave.process_packet(high, cls_for(10, level=99))
        enclave.process_packet(low, cls_for(11, level=-5))
        assert high.priority == 7   # clamped to the top level
        assert low.priority == 0    # clamped to level 0

    def test_deployment_configures_rate_limited_levels(self):
        sim = Simulator()
        net = star(sim, 2)
        controller = Controller()
        enclave = Enclave("h1.enclave", rng=sim.rng,
                          clock=sim.clock)
        controller.register_enclave("h1", enclave)
        stack = HostStack(sim, net.hosts["h1"], enclave=enclave)
        QjumpDeployment(controller).install(
            "h1", stack,
            [{"priority": 0},
             {"priority": 4, "rate_bps": 100_000_000},
             {"priority": 7, "rate_bps": 5_000_000}])
        snap = enclave.query_global("qjump")
        assert snap["level_priority"] == [0, 4, 7]
        queues = snap["level_queue"]
        assert queues[0] == 0 and queues[1] != 0 and queues[2] != 0
        assert stack.rate_limiters.queue(queues[1]).rate_bps == \
            100_000_000
        assert stack.rate_limiters.queue(queues[2]).rate_bps == \
            5_000_000


class TestNetworkQos:
    def test_tenant_steering_and_byte_charging(self):
        enclave = Enclave("e")
        enclave.install_function(
            network_qos_action, name="nq",
            global_schema=NETWORK_QOS_GLOBAL_SCHEMA)
        enclave.set_global_array("nq", "queue_map", [0, 4])
        enclave.install_rule("*", "nq")
        p = Pkt(tenant=1, size=999)
        enclave.process_packet(p)
        assert p.queue_id == 4
        assert p.charge == 999  # network bytes, not op size


class TestCentralizedCc:
    def test_flow_paced_at_allocated_queue(self):
        enclave = Enclave("e")
        enclave.install_function(
            centralized_cc_action, name="cc",
            message_schema=CENTRALIZED_CC_MESSAGE_SCHEMA)
        enclave.install_rule("*", "cc")
        p = Pkt()
        enclave.process_packet(p, cls_for(1, paced_queue=12))
        assert p.queue_id == 12

    def test_unallocated_flow_unpaced(self):
        enclave = Enclave("e")
        enclave.install_function(
            centralized_cc_action, name="cc",
            message_schema=CENTRALIZED_CC_MESSAGE_SCHEMA)
        enclave.install_rule("*", "cc")
        p = Pkt()
        enclave.process_packet(p, cls_for(2))
        assert p.queue_id == 0

"""Tests for the Table 1 registry and its executable demos."""

import pytest

from repro.functions.library import (DemoPacket, format_table,
                                     run_demos, table1)


class TestTable1Registry:
    def test_row_count_and_categories(self):
        entries = table1()
        assert len(entries) >= 16
        categories = {e.category for e in entries}
        assert "Load Balancing" in categories
        assert "Datacenter QoS" in categories
        assert "Stateful firewall" in categories

    def test_every_row_needs_state_and_computation(self):
        # The paper's core observation: these functions all need
        # data-plane state and computation.
        for entry in table1():
            assert entry.data_plane_state, entry.name
            assert entry.data_plane_computation, entry.name

    def test_supported_entries_have_demos(self):
        for entry in table1():
            if entry.eden_out_of_box:
                assert entry.demo is not None, entry.name

    def test_unsupported_entries_explain_why(self):
        for entry in table1():
            if not entry.eden_out_of_box:
                assert entry.notes, entry.name

    def test_network_support_rows_not_out_of_box(self):
        # Functions needing in-network support (Conga, Duet, explicit
        # rate control) are exactly the load-balancing/cc ones the
        # paper marks unsupported.
        for entry in table1():
            if entry.network_support:
                assert not entry.eden_out_of_box, entry.name

    def test_specific_rows_match_paper(self):
        by_name = {e.name: e for e in table1()}
        assert by_name["WCMP"].eden_out_of_box
        assert not by_name["CONGA"].eden_out_of_box
        assert by_name["Pulsar"].app_semantics
        assert by_name["PIAS"].eden_out_of_box
        assert not by_name["IDS (e.g. Snort)"].eden_out_of_box
        assert by_name["Port knocking"].eden_out_of_box


class TestDemos:
    def test_all_demos_pass_interpreted(self):
        results = run_demos(backend="interpreter")
        assert results and all(results.values()), results

    def test_all_demos_pass_native(self):
        results = run_demos(backend="native")
        assert results and all(results.values()), results

    def test_demo_count_matches_supported_rows(self):
        supported = [e for e in table1() if e.eden_out_of_box]
        assert len(run_demos()) == len(supported)


class TestFormatting:
    def test_format_table_lists_every_row(self):
        text = format_table()
        for entry in table1():
            assert entry.name[:42] in text

    def test_format_marks_approximate_semantics(self):
        assert "~yes" in format_table()


class TestDemoPacket:
    def test_has_all_packet_schema_fields(self):
        from repro.lang import DEFAULT_PACKET_SCHEMA
        packet = DemoPacket()
        for field in DEFAULT_PACKET_SCHEMA.fields:
            assert hasattr(packet, field.name), field.name

"""Tests for ECMP/WCMP/messageWCMP (paper Figure 2)."""

import pytest

from repro.core import Controller, Enclave
from repro.core.stage import Classification
from repro.functions.wcmp import (WCMP_GLOBAL_SCHEMA,
                                  WCMP_MESSAGE_SCHEMA, WcmpDeployment,
                                  message_wcmp_action, wcmp_action)
from repro.netsim import Simulator, asymmetric_two_path
from repro.stack import HostStack


class Pkt:
    def __init__(self, src_ip=1, dst_ip=2, src_port=1000,
                 dst_port=80):
        self.src_ip, self.dst_ip = src_ip, dst_ip
        self.src_port, self.dst_port = src_port, dst_port
        self.proto = 6
        self.size = 1500
        self.priority = self.path_id = self.drop = 0
        self.to_controller = self.queue_id = self.charge = 0
        self.ecn = self.tenant = 0


def make_enclave(action, name, message_schema=None, seed=0):
    import random
    enclave = Enclave("e", rng=random.Random(seed))
    enclave.install_function(action, name=name,
                             message_schema=message_schema,
                             global_schema=WCMP_GLOBAL_SCHEMA)
    enclave.install_rule("*", name)
    return enclave


class TestWcmpAction:
    def test_weighted_split(self):
        enclave = make_enclave(wcmp_action, "wcmp")
        enclave.set_global_keyed("wcmp", "paths", (1, 2),
                                 [1, 900, 2, 100])
        counts = {1: 0, 2: 0}
        for i in range(1000):
            p = Pkt(src_port=1000 + i)
            enclave.process_packet(p)
            counts[p.path_id] += 1
        assert 850 < counts[1] < 950
        assert counts[1] + counts[2] == 1000

    def test_equal_weights_are_ecmp(self):
        enclave = make_enclave(wcmp_action, "wcmp")
        enclave.set_global_keyed("wcmp", "paths", (1, 2),
                                 [1, 500, 2, 500])
        counts = {1: 0, 2: 0}
        for i in range(1000):
            p = Pkt(src_port=i)
            enclave.process_packet(p)
            counts[p.path_id] += 1
        assert 400 < counts[1] < 600

    def test_unknown_pair_leaves_path_unset(self):
        enclave = make_enclave(wcmp_action, "wcmp")
        p = Pkt(src_ip=9, dst_ip=9)
        enclave.process_packet(p)
        assert p.path_id == 0

    def test_zero_total_weight_leaves_path_unset(self):
        enclave = make_enclave(wcmp_action, "wcmp")
        enclave.set_global_keyed("wcmp", "paths", (1, 2),
                                 [1, 0, 2, 0])
        p = Pkt()
        enclave.process_packet(p)
        assert p.path_id == 0

    def test_pathmatrix_keyed_per_pair(self):
        enclave = make_enclave(wcmp_action, "wcmp")
        enclave.set_global_keyed("wcmp", "paths", (1, 2), [1, 1000])
        enclave.set_global_keyed("wcmp", "paths", (1, 3), [2, 1000])
        a, b = Pkt(dst_ip=2), Pkt(dst_ip=3)
        enclave.process_packet(a)
        enclave.process_packet(b)
        assert (a.path_id, b.path_id) == (1, 2)


class TestMessageWcmpAction:
    def test_message_sticks_to_one_path(self):
        enclave = make_enclave(message_wcmp_action, "message_wcmp",
                               message_schema=WCMP_MESSAGE_SCHEMA)
        enclave.set_global_keyed("message_wcmp", "paths", (1, 2),
                                 [1, 500, 2, 500])
        cls = [Classification("app.r1.m", {"msg_id": ("app", 1)})]
        paths = set()
        for _ in range(20):
            p = Pkt()
            enclave.process_packet(p, cls)
            paths.add(p.path_id)
        assert len(paths) == 1 and paths.pop() in (1, 2)

    def test_different_messages_can_differ(self):
        enclave = make_enclave(message_wcmp_action, "message_wcmp",
                               message_schema=WCMP_MESSAGE_SCHEMA,
                               seed=3)
        enclave.set_global_keyed("message_wcmp", "paths", (1, 2),
                                 [1, 500, 2, 500])
        paths = set()
        for m in range(50):
            cls = [Classification("app.r1.m",
                                  {"msg_id": ("app", m)})]
            p = Pkt()
            enclave.process_packet(p, cls)
            paths.add(p.path_id)
        assert paths == {1, 2}

    def test_weighted_across_messages(self):
        enclave = make_enclave(message_wcmp_action, "message_wcmp",
                               message_schema=WCMP_MESSAGE_SCHEMA)
        enclave.set_global_keyed("message_wcmp", "paths", (1, 2),
                                 [1, 900, 2, 100])
        counts = {1: 0, 2: 0}
        for m in range(500):
            cls = [Classification("app.r1.m",
                                  {"msg_id": ("app", m)})]
            p = Pkt()
            enclave.process_packet(p, cls)
            counts[p.path_id] += 1
        assert counts[1] > 5 * counts[2]


class TestWcmpDeployment:
    def test_provision_pair_installs_everything(self):
        sim = Simulator(seed=1)
        net = asymmetric_two_path(sim)
        controller = Controller()
        enclave = Enclave("h1.enclave", rng=sim.rng, clock=sim.clock)
        controller.register_enclave("h1", enclave)
        HostStack(sim, net.hosts["h1"], enclave=enclave)
        deployment = WcmpDeployment(controller, net)
        rows = deployment.provision_pair("h1", "h2")
        assert len(rows) == 2
        # Weights pushed: ~909/91 for 10G/1G.
        snapshot = enclave.function("wcmp").global_store
        flat = snapshot.keyed_array(
            "paths", (net.host_ip("h1"), net.host_ip("h2")))
        weights = {flat[i]: flat[i + 1]
                   for i in range(0, len(flat), 2)}
        assert weights[1] == 909 and weights[2] == 91
        # Labels installed at switches.
        assert net.switches["sfast"].label_table[1] == "h2"
        assert net.switches["sslow"].label_table[2] == "h2"

    def test_equal_weights_flag(self):
        sim = Simulator(seed=1)
        net = asymmetric_two_path(sim)
        controller = Controller()
        enclave = Enclave("h1.enclave", rng=sim.rng, clock=sim.clock)
        controller.register_enclave("h1", enclave)
        HostStack(sim, net.hosts["h1"], enclave=enclave)
        deployment = WcmpDeployment(controller, net)
        deployment.provision_pair("h1", "h2", equal_weights=True)
        flat = enclave.function("wcmp").global_store.keyed_array(
            "paths", (net.host_ip("h1"), net.host_ip("h2")))
        assert flat[1] == flat[3] == 500

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            WcmpDeployment(Controller(), None, granularity="flowlet")

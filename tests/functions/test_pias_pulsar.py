"""Tests for the PIAS/SFF and Pulsar action functions."""

import pytest

from repro.core import Controller, Enclave
from repro.core.stage import Classification
from repro.functions.pias import (FlowSchedulingDeployment,
                                  PIAS_GLOBAL_SCHEMA,
                                  PIAS_MESSAGE_SCHEMA,
                                  SFF_GLOBAL_SCHEMA,
                                  SFF_MESSAGE_SCHEMA, pias_action,
                                  sff_action)
from repro.functions.pulsar import (PULSAR_GLOBAL_SCHEMA,
                                    PULSAR_MESSAGE_SCHEMA,
                                    PulsarDeployment, pulsar_action)
from repro.netsim import GBPS, Simulator, star
from repro.stack import HostStack

THRESHOLDS = [(10_000, 7), (1_000_000, 6), (1 << 50, 5)]


class Pkt:
    def __init__(self, size=1514, tenant=0):
        self.src_ip, self.dst_ip = 1, 2
        self.src_port, self.dst_port = 1000, 80
        self.proto = 6
        self.size = size
        self.tenant = tenant
        self.priority = self.path_id = self.drop = 0
        self.to_controller = self.queue_id = self.charge = 0
        self.ecn = 0


def pias_enclave():
    enclave = Enclave("e")
    enclave.install_function(pias_action, name="pias",
                             message_schema=PIAS_MESSAGE_SCHEMA,
                             global_schema=PIAS_GLOBAL_SCHEMA)
    enclave.set_global_records("pias", "priorities", THRESHOLDS)
    enclave.install_rule("*", "pias")
    return enclave


def cls_for(msg, **metadata):
    metadata.setdefault("msg_id", ("app", msg))
    return [Classification("app.r1.msg", metadata)]


class TestPias:
    def test_starts_at_highest_priority(self):
        enclave = pias_enclave()
        p = Pkt(size=1000)
        enclave.process_packet(p, cls_for(1))
        assert p.priority == 7

    def test_demotes_across_thresholds(self):
        enclave = pias_enclave()
        seen = []
        for i in range(800):
            p = Pkt(size=1514)
            enclave.process_packet(p, cls_for(2))
            seen.append(p.priority)
        assert seen[0] == 7
        assert 6 in seen and seen[-1] == 5
        # Demotion is monotone.
        assert all(a >= b for a, b in zip(seen, seen[1:]))

    def test_respects_requested_low_priority(self):
        # "Background flows can specify a low priority class."
        enclave = pias_enclave()
        p = Pkt()
        enclave.process_packet(p, cls_for(3, priority=0))
        assert p.priority == 0

    def test_message_sizes_tracked_separately(self):
        enclave = pias_enclave()
        for _ in range(10):
            enclave.process_packet(Pkt(), cls_for(10))
        fresh = Pkt()
        enclave.process_packet(fresh, cls_for(11))
        assert fresh.priority == 7

    def test_message_size_committed(self):
        enclave = pias_enclave()
        for _ in range(3):
            enclave.process_packet(Pkt(size=100), cls_for(20))
        store = enclave.function("pias").message_store
        entry, _ = store.lookup(("app", 20), 0)
        assert entry.values["size"] == 300


class TestSff:
    def sff_enclave(self):
        enclave = Enclave("e")
        enclave.install_function(sff_action, name="sff",
                                 message_schema=SFF_MESSAGE_SCHEMA,
                                 global_schema=SFF_GLOBAL_SCHEMA)
        enclave.set_global_records("sff", "priorities", THRESHOLDS)
        enclave.install_rule("*", "sff")
        return enclave

    def test_priority_from_declared_size(self):
        enclave = self.sff_enclave()
        cases = [(5_000, 7), (500_000, 6), (50_000_000, 5)]
        for i, (declared, expected) in enumerate(cases):
            p = Pkt()
            enclave.process_packet(p, cls_for(i, msg_size=declared))
            assert p.priority == expected, declared

    def test_priority_stable_over_message_life(self):
        enclave = self.sff_enclave()
        prios = []
        for _ in range(500):
            p = Pkt()
            enclave.process_packet(p, cls_for(9, msg_size=5_000))
            prios.append(p.priority)
        assert set(prios) == {7}  # never demoted

    def test_undeclared_size_gets_top_priority(self):
        enclave = self.sff_enclave()
        p = Pkt()
        enclave.process_packet(p, cls_for(5))
        assert p.priority == 7  # size defaults to 0 -> smallest band


class TestFlowSchedulingDeployment:
    def test_install_pias(self):
        sim = Simulator()
        net = star(sim, 2)
        controller = Controller()
        enclave = Enclave("h1.enclave", rng=sim.rng, clock=sim.clock)
        controller.register_enclave("h1", enclave)
        HostStack(sim, net.hosts["h1"], enclave=enclave)
        FlowSchedulingDeployment(controller, "pias").install(
            ["h1"], THRESHOLDS)
        assert "pias" in enclave.functions()
        snap = enclave.query_global("pias")
        assert snap["priorities"][:2] == [10_000, 7]

    def test_threshold_update(self):
        controller = Controller()
        enclave = Enclave("h1.enclave")
        controller.register_enclave("h1", enclave)
        dep = FlowSchedulingDeployment(controller, "pias")
        dep.install(["h1"], THRESHOLDS)
        dep.update_thresholds(["h1"], [(500, 7), (1 << 50, 6)])
        snap = enclave.query_global("pias")
        assert snap["priorities"] == [500, 7, 1 << 50, 6]

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            FlowSchedulingDeployment(Controller(), "lifo")


class TestPulsar:
    def pulsar_enclave(self):
        enclave = Enclave("e")
        enclave.install_function(pulsar_action, name="pulsar",
                                 message_schema=PULSAR_MESSAGE_SCHEMA,
                                 global_schema=PULSAR_GLOBAL_SCHEMA)
        enclave.set_global_array("pulsar", "queue_map", [0, 5, 6])
        enclave.install_rule("*", "pulsar")
        return enclave

    def test_read_charged_by_operation_size(self):
        enclave = self.pulsar_enclave()
        p = Pkt(size=310, tenant=1)
        enclave.process_packet(
            p, cls_for(1, op_read=1, msg_size=65536))
        assert p.charge == 65536
        assert p.queue_id == 5

    def test_write_charged_by_packet_size(self):
        enclave = self.pulsar_enclave()
        p = Pkt(size=1514, tenant=2)
        enclave.process_packet(
            p, cls_for(2, op_read=0, msg_size=65536))
        assert p.charge == 1514
        assert p.queue_id == 6

    def test_unknown_tenant_not_queued(self):
        enclave = self.pulsar_enclave()
        p = Pkt(tenant=50)
        enclave.process_packet(p, cls_for(3))
        assert p.queue_id == 0

    def test_tenant_aggregation(self):
        # Two messages of the same tenant share the queue (aggregate
        # tenant-level guarantees, Section 2.1.2).
        enclave = self.pulsar_enclave()
        a, b = Pkt(tenant=1), Pkt(tenant=1)
        enclave.process_packet(a, cls_for(10))
        enclave.process_packet(b, cls_for(11))
        assert a.queue_id == b.queue_id == 5

    def test_deployment_configures_stack_queues(self):
        sim = Simulator()
        net = star(sim, 2)
        controller = Controller()
        enclave = Enclave("h1.enclave", rng=sim.rng, clock=sim.clock)
        controller.register_enclave("h1", enclave)
        stack = HostStack(sim, net.hosts["h1"], enclave=enclave)
        dep = PulsarDeployment(controller)
        qmap = dep.install("h1", stack, {1: 500_000_000,
                                         2: 300_000_000})
        assert qmap == {1: 1, 2: 2}
        assert stack.rate_limiters.queue(1).rate_bps == 500_000_000
        assert stack.rate_limiters.queue(2).rate_bps == 300_000_000
        snap = enclave.query_global("pulsar")
        assert snap["queue_map"] == [0, 1, 2]

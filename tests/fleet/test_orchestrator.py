"""FleetOrchestrator: happy path, wave ordering, pause/resume."""

import pytest

from repro.control import ChannelConfig, FaultInjector, InstallFunction
from repro.core import Controller, Enclave
from repro.fleet import (DONE, EpochHealthGate, FleetOrchestrator,
                         PAUSED, ProgramBuilder, RolloutConfig,
                         RolloutPlan, CONFIRMED)
from repro.lang import AccessLevel, Field, Lifetime, schema
from repro.netsim.simulator import MS, Simulator

pytestmark = pytest.mark.fleet


# Module-level so the enclave's quotation step can recover the source.
def mark_packet(packet, _global):
    packet.priority = _global.level


MARK_SCHEMA = schema("Mark", Lifetime.GLOBAL, [
    Field("level", AccessLevel.READ_ONLY, default=1),
])

FAST = ChannelConfig(rto_ns=1 * MS, backoff_cap_ns=8 * MS,
                     jitter_ns=100_000)


def make_fleet(num_hosts, seed=1, loss=0.0):
    sim = Simulator(seed=seed)
    faults = FaultInjector(rng=sim.rng, drop_prob=loss,
                           scheduler=sim)
    controller = Controller(transport="sim", sim=sim, faults=faults,
                            channel_config=FAST)
    for i in range(num_hosts):
        controller.register_enclave(f"h{i + 1}",
                                    Enclave(f"h{i + 1}.enclave",
                                            clock=sim.clock,
                                            rng=sim.rng))
        # in_sync() needs the agent's applied epoch echoed back in
        # StatsReports, so every fleet test runs periodic reporting.
        controller.agent(f"h{i + 1}").start_reporting(5 * MS)
    return sim, faults, controller


def mark_program(level=5):
    return (ProgramBuilder("mark")
            .install_function("mark_packet", mark_packet,
                              global_schema=MARK_SCHEMA)
            .install_rule("*", "mark_packet")
            .set_global("mark_packet", "level", level)
            .done())


def run_until_terminal(sim, orch, horizon_ms=2_000):
    while orch.state not in ("done", "rolled-back", "aborted") and \
            sim.now < horizon_ms * MS:
        sim.run(until_ns=sim.now + 10 * MS)


class TestHappyPath:
    def test_rollout_converges_and_installs_everywhere(self):
        sim, _, controller = make_fleet(6)
        hosts = [f"h{i + 1}" for i in range(6)]
        orch = FleetOrchestrator(
            controller.plane, RolloutPlan.by_percent(hosts),
            mark_program(), scheduler=sim)
        orch.start()
        run_until_terminal(sim, orch)
        assert orch.state == DONE
        for host in hosts:
            enclave = controller.enclave(host)
            assert enclave.functions() == ["mark_packet"]
            assert enclave.query_global("mark_packet")["level"] == 5
            assert controller.plane.in_sync(host)
        assert all(s.state == CONFIRMED
                   for s in orch.host_status.values())
        assert orch.time_to_last_ack_ns is not None
        assert orch.time_to_converged_ns is not None
        assert orch.time_to_last_ack_ns <= orch.time_to_converged_ns

    def test_waves_start_in_order_canary_first(self):
        sim, _, controller = make_fleet(6)
        hosts = [f"h{i + 1}" for i in range(6)]
        started, confirmed = [], []
        orch = FleetOrchestrator(
            controller.plane, RolloutPlan.by_percent(hosts),
            mark_program(), scheduler=sim)
        orch.on_wave_start = lambda o, r: started.append(r.index)
        orch.on_wave_confirmed = \
            lambda o, r: confirmed.append(r.index)
        orch.start()
        run_until_terminal(sim, orch)
        n_waves = len(orch.plan.waves)
        assert started == list(range(n_waves))
        assert confirmed == list(range(n_waves))
        assert len(orch.plan.waves[0].hosts) == 1  # canary

    def test_converges_under_loss(self):
        sim, _, controller = make_fleet(8, seed=3, loss=0.2)
        hosts = [f"h{i + 1}" for i in range(8)]
        orch = FleetOrchestrator(
            controller.plane, RolloutPlan.by_percent(hosts),
            mark_program(), scheduler=sim)
        orch.start()
        run_until_terminal(sim, orch, horizon_ms=5_000)
        assert orch.state == DONE
        assert all(controller.plane.in_sync(h) for h in hosts)

    def test_settle_window_separates_waves(self):
        sim, _, controller = make_fleet(4)
        hosts = [f"h{i + 1}" for i in range(4)]
        orch = FleetOrchestrator(
            controller.plane,
            RolloutPlan.explicit([["h1"], ["h2", "h3", "h4"]]),
            mark_program(), scheduler=sim,
            config=RolloutConfig(settle_ns=50 * MS))
        orch.start()
        run_until_terminal(sim, orch)
        assert orch.state == DONE
        w0, w1 = orch.waves
        assert w1.started_ns - w0.confirmed_ns >= 50 * MS

    def test_epoch_health_gate_requires_reports(self):
        sim, _, controller = make_fleet(4)
        hosts = [f"h{i + 1}" for i in range(4)]
        for host in hosts:
            controller.agent(host).start_reporting(5 * MS)
        orch = FleetOrchestrator(
            controller.plane, RolloutPlan.by_percent(hosts),
            mark_program(), scheduler=sim,
            gate=EpochHealthGate(max_report_age_ns=20 * MS,
                                 require_functions=("mark_packet",)))
        orch.start()
        run_until_terminal(sim, orch)
        assert orch.state == DONE
        # Confirmation waited for a report at the target epoch.
        for status in orch.host_status.values():
            report = controller.plane.latest_report[status.host]
            assert report.applied_epoch >= 1
            assert "mark_packet" in report.stats


class TestPauseResume:
    def test_pause_blocks_progress_resume_completes(self):
        sim, _, controller = make_fleet(4)
        hosts = [f"h{i + 1}" for i in range(4)]
        orch = FleetOrchestrator(
            controller.plane,
            RolloutPlan.explicit([["h1"], ["h2", "h3", "h4"]]),
            mark_program(), scheduler=sim)
        orch.start()
        orch.pause()
        sim.run(until_ns=200 * MS)
        assert orch.state == PAUSED
        # Wave 1 never started while paused (wave 0's sends were
        # already in flight, but the orchestrator did not advance).
        assert orch.waves[1].started_ns < 0
        assert controller.enclave("h2").functions() == []
        orch.resume()
        run_until_terminal(sim, orch)
        assert orch.state == DONE
        assert controller.enclave("h2").functions() == \
            ["mark_packet"]

    def test_start_twice_rejected(self):
        sim, _, controller = make_fleet(2)
        orch = FleetOrchestrator(
            controller.plane, RolloutPlan.explicit([["h1", "h2"]]),
            mark_program(), scheduler=sim)
        orch.start()
        with pytest.raises(Exception):
            orch.start()


class TestEpochFencing:
    def test_stale_install_nacked_after_rollout(self):
        sim, _, controller = make_fleet(3, seed=2, loss=0.1)
        hosts = ["h1", "h2", "h3"]
        orch = FleetOrchestrator(
            controller.plane, RolloutPlan.by_percent(hosts),
            mark_program(), scheduler=sim)
        orch.start()
        run_until_terminal(sim, orch)
        assert orch.state == DONE
        plane = controller.plane
        before = plane.stale_nacks_seen
        # A zombie wave from the past: epoch 1 is far behind the
        # rollout's epochs, so the agent must Nack, not apply.
        plane.endpoint.send(
            plane.agent_addr("h1"),
            InstallFunction(host="h1", epoch=1, name="zombie",
                            source_fn=None))
        sim.run(until_ns=sim.now + 500 * MS)
        assert plane.stale_nacks_seen > before
        assert "zombie" not in controller.enclave("h1").functions()

"""DDoS-mitigation: function semantics + end-to-end recovery.

The integration test is the acceptance criterion for the fleet
subsystem: victim goodput must recover monotonically, wave by wave,
as the staged rollout pushes the composed spoof-guard + per-source
rate-limit across the attacker fleet.
"""

import pytest

from repro.core import Controller, Enclave
from repro.fleet.ddos import DdosConfig, format_ddos, run_ddos
from repro.functions.ddos import (GUARD_TABLE, LIMIT_TABLE,
                                  SOURCE_LIMIT_NAME, SPOOF_GUARD_NAME,
                                  mitigation_program)
from repro.netsim.packet import Packet

pytestmark = pytest.mark.fleet


class TestMitigationProgram:
    def _programmed_enclave(self):
        controller = Controller()
        enclave = Enclave("h1.enclave")
        controller.register_enclave("h1", enclave)
        program = mitigation_program(victim_ip=99, host_ip=7,
                                     queue_ids=(1, 2))
        program.apply(controller.plane, "h1")
        return enclave

    def test_installs_composed_chain(self):
        enclave = self._programmed_enclave()
        assert sorted(enclave.functions()) == \
            [SOURCE_LIMIT_NAME, SPOOF_GUARD_NAME]
        assert set(enclave.query_tables()) >= \
            {GUARD_TABLE, LIMIT_TABLE}
        guard_rules = enclave.query_rules(GUARD_TABLE)
        assert any(r.next_table == LIMIT_TABLE for r in guard_rules)

    def test_spoofed_packet_dropped_at_source(self):
        enclave = self._programmed_enclave()
        spoofed = Packet(src_ip=12345, dst_ip=99, src_port=1, dst_port=2,
                         payload_len=100)
        result = enclave.process_packet(spoofed, [])
        assert result.drop

    def test_genuine_attack_traffic_charged_to_queue(self):
        enclave = self._programmed_enclave()
        genuine = Packet(src_ip=7, dst_ip=99, src_port=1, dst_port=2,
                         payload_len=100)
        result = enclave.process_packet(genuine, [])
        assert not result.drop
        assert genuine.charge == genuine.size
        assert genuine.queue_id in (1, 2)

    def test_unrelated_traffic_untouched(self):
        enclave = self._programmed_enclave()
        other = Packet(src_ip=7, dst_ip=42, src_port=1, dst_port=2,
                       payload_len=100)
        result = enclave.process_packet(other, [])
        assert not result.drop
        assert other.charge == 0


@pytest.mark.slow
class TestRecoveryIntegration:
    def test_goodput_recovers_monotonically_across_waves(self):
        result = run_ddos(DdosConfig(attackers=6, seed=1))
        assert result.converged, "rollout did not converge"
        assert len(result.windows) >= 4  # baseline + >=2 waves + done
        assert result.recovery_monotonic, \
            [w.goodput_mbps for w in result.windows]
        assert result.recovered
        # The under-attack baseline really was an outage, and the
        # mitigated end state really is recovered.
        baseline, final = result.windows[0], result.windows[-1]
        assert baseline.label == "under attack"
        assert baseline.attack_mbps > 5 * final.attack_mbps
        assert final.goodput_mbps > 100.0
        assert result.spoofed_dropped > 0

    def test_figure_renders(self):
        result = run_ddos(DdosConfig(attackers=4, seed=2))
        text = format_ddos(result)
        assert "under attack" in text
        assert "wave" in text
        assert "recovery monotonic: yes" in text

"""RolloutPlan: wave partitioning, canary ordering, validation."""

import pytest

from repro.fleet import DEFAULT_PERCENTS, PlanError, RolloutPlan

pytestmark = pytest.mark.fleet

HOSTS_100 = [f"h{i:03d}" for i in range(100)]


class TestByPercent:
    def test_default_percents_partition_100_hosts(self):
        plan = RolloutPlan.by_percent(HOSTS_100)
        assert DEFAULT_PERCENTS == (1, 10, 40, 100)
        assert [len(w.hosts) for w in plan.waves] == [1, 9, 30, 60]
        assert plan.hosts() == HOSTS_100

    def test_canary_wave_is_first_and_small(self):
        plan = RolloutPlan.by_percent(HOSTS_100)
        assert plan.canary.index == 0
        assert len(plan.canary.hosts) == 1

    def test_canary_hosts_pulled_to_front(self):
        plan = RolloutPlan.by_percent(
            HOSTS_100, canary_hosts=["h050"])
        assert plan.waves[0].hosts == ("h050",)
        assert plan.hosts()[0] == "h050"
        assert sorted(plan.hosts()) == HOSTS_100

    def test_small_fleet_still_gets_distinct_waves(self):
        plan = RolloutPlan.by_percent(["a", "b", "c"])
        # Every wave adds at least one new host; no empty waves.
        assert all(len(w.hosts) >= 1 for w in plan.waves)
        assert plan.hosts() == ["a", "b", "c"]
        assert len(plan.waves) <= 3

    def test_single_host_fleet(self):
        plan = RolloutPlan.by_percent(["only"])
        assert [w.hosts for w in plan.waves] == [("only",)]


class TestExplicit:
    def test_explicit_groups_preserved_in_order(self):
        plan = RolloutPlan.explicit([["a"], ["b", "c"], ["d"]])
        assert [w.hosts for w in plan.waves] == \
            [("a",), ("b", "c"), ("d",)]
        assert [w.index for w in plan.waves] == [0, 1, 2]

    def test_duplicate_host_rejected(self):
        with pytest.raises(PlanError):
            RolloutPlan.explicit([["a"], ["b", "a"]])

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError):
            RolloutPlan.explicit([])

    def test_empty_wave_rejected(self):
        with pytest.raises(PlanError):
            RolloutPlan.explicit([["a"], []])

    def test_describe_mentions_every_wave(self):
        plan = RolloutPlan.explicit([["a"], ["b", "c"]])
        text = plan.describe()
        assert "w0:1" in text and "w1:2" in text
        assert "3 hosts in 2 waves" in text

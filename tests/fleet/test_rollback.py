"""Rollback: health-gate failures restore the prior desired state.

The scenario the orchestrator exists for: a bad program reaches wave
N, the gate trips, and every already-updated host must return to its
pre-rollout state — through the same lossy, restart-prone control
plane that applied the bad version, with epochs only ever moving
forward.
"""

import pytest

from repro.control import (ChannelConfig, FaultInjector,
                           schedule_restart)
from repro.core import Controller, Enclave
from repro.fleet import (CallbackGate, FAIL, FleetOrchestrator, HEALTHY,
                         PAUSE, PAUSED, ProgramBuilder, ROLLED_BACK,
                         ROLLED_BACK_FLEET, RolloutConfig, RolloutPlan,
                         WAIT, WAVE_ABANDONED, WAVE_FAILED)
from repro.lang import AccessLevel, Field, Lifetime, schema
from repro.netsim.simulator import MS, Simulator

pytestmark = pytest.mark.fleet


def stable_fn(packet, _global):
    packet.priority = _global.level


def risky_fn(packet, _global):
    packet.priority = _global.boost


STABLE_SCHEMA = schema("Stable", Lifetime.GLOBAL, [
    Field("level", AccessLevel.READ_ONLY, default=1),
])

RISKY_SCHEMA = schema("Risky", Lifetime.GLOBAL, [
    Field("boost", AccessLevel.READ_ONLY, default=9),
])

FAST = ChannelConfig(rto_ns=1 * MS, backoff_cap_ns=8 * MS,
                     jitter_ns=100_000)

HOSTS = ["h1", "h2", "h3", "h4"]


def make_fleet_with_baseline(seed=1, loss=0.0):
    """Four hosts already running ``stable_fn`` at level 3."""
    sim = Simulator(seed=seed)
    faults = FaultInjector(rng=sim.rng, drop_prob=loss,
                           scheduler=sim)
    controller = Controller(transport="sim", sim=sim, faults=faults,
                            channel_config=FAST)
    for host in HOSTS:
        controller.register_enclave(host,
                                    Enclave(f"{host}.enclave",
                                            clock=sim.clock,
                                            rng=sim.rng))
        controller.agent(host).start_reporting(5 * MS)
    controller.install_function(HOSTS, stable_fn,
                                global_schema=STABLE_SCHEMA)
    controller.install_rule(HOSTS, "*", "stable_fn")
    controller.set_global(HOSTS, "stable_fn", "level", 3)
    sim.run(until_ns=100 * MS)
    for host in HOSTS:
        assert controller.plane.in_sync(host)
    return sim, faults, controller


def risky_program():
    return (ProgramBuilder("risky")
            .install_function("risky_fn", risky_fn,
                              global_schema=RISKY_SCHEMA)
            .install_rule("*", "risky_fn", priority=10)
            .done())


def gate_failing_on(bad_host):
    """HEALTHY once in sync — except ``bad_host``, which fails."""
    def fn(health):
        if health.host == bad_host:
            return FAIL
        return HEALTHY if health.in_sync else WAIT
    return CallbackGate(fn)


def run_until_terminal(sim, orch, horizon_ms=3_000):
    """Run until the rollout terminates or pauses (relative window)."""
    deadline = sim.now + horizon_ms * MS
    stop = ("done", "rolled-back", "aborted", "paused")
    while orch.state not in stop and sim.now < deadline:
        sim.run(until_ns=sim.now + 10 * MS)


def assert_baseline_restored(controller, host):
    enclave = controller.enclave(host)
    assert enclave.functions() == ["stable_fn"]
    assert enclave.query_global("stable_fn")["level"] == 3
    rules = [r for t in enclave.query_tables()
             for r in enclave.query_rules(t)]
    assert [r.function for r in rules] == ["stable_fn"]


class TestHealthGateRollback:
    def test_mid_rollout_failure_restores_updated_hosts(self):
        sim, _, controller = make_fleet_with_baseline()
        plan = RolloutPlan.explicit([["h1"], ["h2", "h3"], ["h4"]])
        orch = FleetOrchestrator(
            controller.plane, plan, risky_program(), scheduler=sim,
            gate=gate_failing_on("h2"))
        orch.start()
        run_until_terminal(sim, orch)
        assert orch.state == ROLLED_BACK_FLEET
        # Wave 0 confirmed then was rolled back; wave 1 failed;
        # wave 2 never started.
        assert orch.waves[1].outcome == WAVE_FAILED
        assert "health gate" in orch.waves[1].failure_reason
        assert orch.waves[2].started_ns < 0
        # Every touched host is back on the baseline; h4 was never
        # touched and keeps it trivially.
        for host in ("h1", "h2", "h3"):
            assert orch.host_status[host].state == ROLLED_BACK
            assert_baseline_restored(controller, host)
        assert_baseline_restored(controller, "h4")
        assert controller.enclave("h4").functions() == ["stable_fn"]
        # Epochs moved forward through the rollback, never backward.
        for host in ("h1", "h2", "h3"):
            assert controller.agent(host).applied_epoch == \
                controller.plane.desired(host).epoch

    def test_host_restarting_during_rollback_still_restores(self):
        sim, _, controller = make_fleet_with_baseline(seed=4,
                                                      loss=0.15)
        plan = RolloutPlan.explicit([["h1"], ["h2", "h3"], ["h4"]])
        orch = FleetOrchestrator(
            controller.plane, plan, risky_program(), scheduler=sim,
            gate=gate_failing_on("h3"),
            config=RolloutConfig(rollback_timeout_ns=3_000 * MS))
        # The moment rollback starts, knock over an already-updated
        # host: it loses the restore in flight, reconnects with
        # Hello, and the controller replays the *restored* desired
        # state — not the abandoned wave's.
        orch.on_rollback_start = lambda o: schedule_restart(
            sim, sim.now + 5 * MS, controller.agent("h1"))
        orch.start()
        run_until_terminal(sim, orch, horizon_ms=6_000)
        assert orch.state == ROLLED_BACK_FLEET
        assert controller.agent("h1").restarts == 1
        for host in ("h1", "h2", "h3"):
            assert_baseline_restored(controller, host)
            assert controller.plane.in_sync(host)

    def test_abandoned_wave_recorded(self):
        sim, _, controller = make_fleet_with_baseline()
        plan = RolloutPlan.explicit([["h1"], ["h2", "h3", "h4"]])
        orch = FleetOrchestrator(
            controller.plane, plan, risky_program(), scheduler=sim,
            gate=gate_failing_on("h2"))
        orch.start()
        run_until_terminal(sim, orch)
        assert orch.state == ROLLED_BACK_FLEET
        # The failed wave keeps WAVE_FAILED; nothing is left running.
        outcomes = [w.outcome for w in orch.waves]
        assert WAVE_FAILED in outcomes
        assert all(o != "running" for o in outcomes)


class TestManualAndPause:
    def test_manual_rollback_restores(self):
        sim, _, controller = make_fleet_with_baseline()
        plan = RolloutPlan.explicit([["h1"], ["h2", "h3", "h4"]])
        orch = FleetOrchestrator(
            controller.plane, plan, risky_program(), scheduler=sim,
            config=RolloutConfig(settle_ns=500 * MS))
        orch.start()
        sim.run(until_ns=sim.now + 120 * MS)  # wave 0 confirmed,
        assert orch.state == "settling"       # soaking before wave 1
        orch.rollback()
        run_until_terminal(sim, orch)
        assert orch.state == ROLLED_BACK_FLEET
        assert_baseline_restored(controller, "h1")

    def test_pause_policy_holds_fleet_for_operator(self):
        sim, _, controller = make_fleet_with_baseline()
        plan = RolloutPlan.explicit([["h1"], ["h2", "h3"], ["h4"]])
        failing = [True]

        def fn(health):
            if health.host == "h2" and failing[0]:
                return FAIL
            return HEALTHY if health.in_sync else WAIT

        orch = FleetOrchestrator(
            controller.plane, plan, risky_program(), scheduler=sim,
            gate=CallbackGate(fn),
            config=RolloutConfig(on_failure=PAUSE))
        orch.start()
        run_until_terminal(sim, orch)
        assert orch.state == PAUSED
        assert orch.waves[1].outcome == WAVE_FAILED
        # Nothing was rolled back: wave 0's host keeps the new
        # version while the operator investigates.
        assert "risky_fn" in controller.enclave("h1").functions()
        # Operator fixes the issue and resumes the same rollout.
        failing[0] = False
        orch.resume()
        run_until_terminal(sim, orch)
        assert orch.state == "done"
        for host in HOSTS:
            assert "risky_fn" in controller.enclave(host).functions()

"""Convergence benchmark: smoke run, baseline gating, LiteEnclave."""

import pytest

from repro.fleet.bench import (ConvergenceResult, LiteEnclave,
                               check_against_baseline,
                               format_convergence,
                               run_fleet_convergence)

pytestmark = pytest.mark.fleet


class TestLiteEnclave:
    def test_behaves_like_the_enclave_api(self):
        e = LiteEnclave()
        assert e.query_tables() == [0]
        e.install_function(None, name="f")
        with pytest.raises(Exception):
            e.install_function(None, name="f")  # duplicate
        e.create_table(1)
        rule_id = e.install_rule("*", "f", table_id=0, next_table=1)
        with pytest.raises(Exception):
            e.remove_function("f")  # still referenced by a rule
        e.remove_rule(rule_id, 0)
        e.remove_function("f")
        assert e.functions() == []
        e.clear()
        assert e.query_tables() == [0]


class TestConvergenceSmoke:
    def test_small_fleet_converges_under_faults(self):
        point = run_fleet_convergence(48, n_shards=4, loss=0.2,
                                      dup_prob=0.05, restarts=1)
        assert point.converged
        assert point.time_to_last_ack_ns is not None
        assert point.time_to_converged_ns is not None
        assert point.time_to_last_ack_ns <= point.time_to_converged_ns
        # The fault schedule actually ran: one concurrent restart,
        # replays to recover it, and a stale-epoch Nack probe.
        assert point.restarts >= 1
        assert point.replays >= 1
        assert point.stale_nacks >= 1
        assert point.retransmits > 0
        assert point.windows > 0
        assert point.events > 0

    def test_deterministic_sim_times(self):
        a = run_fleet_convergence(32, n_shards=4, loss=0.2)
        b = run_fleet_convergence(32, n_shards=4, loss=0.2)
        assert a.time_to_converged_ns == b.time_to_converged_ns
        assert a.events == b.events


class TestBaselineGate:
    def _result(self, **overrides):
        point = run_fleet_convergence(24, n_shards=2, loss=0.1)
        for key, value in overrides.items():
            setattr(point, key, value)
        result = ConvergenceResult()
        result.points.append(point)
        return result

    def test_passes_against_own_baseline(self):
        result = self._result()
        assert check_against_baseline(result,
                                      result.as_dict()) == []

    def test_fails_on_regression(self):
        result = self._result()
        baseline = result.as_dict()
        key = str(result.points[0].n_hosts)
        baseline[key]["time_to_converged_ms"] /= 10.0
        failures = check_against_baseline(result, baseline,
                                          threshold=2.0)
        assert failures and "baseline" in failures[0]

    def test_fails_on_missing_size(self):
        result = self._result()
        assert check_against_baseline(result, {}) != []

    def test_fails_without_stale_nack_probe(self):
        result = self._result(stale_nacks=0)
        failures = check_against_baseline(result, result.as_dict())
        assert any("stale" in f for f in failures)

    def test_fails_on_non_convergence(self):
        result = self._result(converged=False)
        failures = check_against_baseline(result, result.as_dict())
        assert any("converge" in f for f in failures)

    def test_format_lists_every_size(self):
        result = self._result()
        text = format_convergence(result)
        assert "24" in text and "ev/s" in text

"""Sharded control fabric: placement, handoffs, determinism."""

import pytest

from repro.fleet import (FabricError, FleetOrchestrator,
                         ProgramBuilder, RolloutPlan)
from repro.fleet.bench import LiteEnclave
from repro.fleet.shardfleet import ShardedControlFabric, ShardedFleet
from repro.netsim.simulator import MS

pytestmark = pytest.mark.fleet


def simple_fn(packet, _global):
    packet.priority = 1


class TestFabric:
    def test_validation(self):
        with pytest.raises(FabricError):
            ShardedControlFabric(0)
        with pytest.raises(FabricError):
            ShardedControlFabric(2, delay_ns=0)
        with pytest.raises(FabricError):
            ShardedFleet(0, 2, lambda h: LiteEnclave())

    def test_hosts_round_robin_over_shards(self):
        fleet = ShardedFleet(8, 4, lambda h: LiteEnclave())
        shards = {fleet.fabric.shard_of(f"agent:{h}")
                  for h in fleet.hosts}
        assert shards == {1, 2, 3, 4}
        # The controller lives alone on shard 0.
        assert fleet.fabric.shard_of("controller") == 0

    def test_cross_shard_messages_arrive_via_handoffs(self):
        fleet = ShardedFleet(8, 4, lambda h: LiteEnclave(),
                             report_interval_ns=5 * MS)
        pendings = []
        for host in fleet.hosts:
            pendings.append(fleet.plane.install_function(
                host, "simple_fn", simple_fn))
        fleet.run(until_ns=400 * MS)
        assert all(p.done and p.acked for p in pendings)
        assert fleet.fabric.handoffs > 0
        assert fleet.fabric.windows > 0
        for host in fleet.hosts:
            assert fleet.enclaves[host].functions() == ["simple_fn"]
            assert fleet.plane.in_sync(host)


class TestDeterminism:
    def _converge(self, seed):
        fleet = ShardedFleet(24, 4, lambda h: LiteEnclave(),
                             seed=seed, loss=0.15,
                             report_interval_ns=10 * MS)
        orch = FleetOrchestrator(
            fleet.plane, RolloutPlan.by_percent(fleet.hosts),
            ProgramBuilder("p")
            .install_function("simple_fn", simple_fn).done(),
            scheduler=fleet.controller_sim)
        orch.start()
        while orch.state not in ("done", "rolled-back", "aborted") \
                and fleet.fabric.now < 4_000 * MS:
            fleet.run(until_ns=fleet.fabric.now + 50 * MS)
        return (orch.state, orch.time_to_converged_ns,
                fleet.fabric.events_processed, fleet.fabric.handoffs)

    def test_same_seed_same_trajectory(self):
        assert self._converge(7) == self._converge(7)

    def test_lossy_rollout_converges(self):
        state, t_conv, events, handoffs = self._converge(3)
        assert state == "done"
        assert t_conv is not None and t_conv > 0
        assert events > 0 and handoffs > 0

"""Tests for the application stages: memcached, HTTP, storage,
workloads."""

import pytest

from repro.apps import (FlowSizeDistribution, HttpClient, HttpServer,
                        IO_SIZE, MemcachedClient, MemcachedServer,
                        OP_READ, OP_WRITE, READ_PORT, SEARCH_CDF,
                        StorageClient, StorageServer, WRITE_PORT,
                        key_hash)
from repro.netsim import GBPS, MS, Simulator, star
from repro.stack import HostStack


@pytest.fixture
def rig():
    sim = Simulator(seed=6)
    net = star(sim, 3, host_rate_bps=10 * GBPS)
    stacks = {name: HostStack(sim, host)
              for name, host in net.hosts.items()}
    return sim, net, stacks


class TestFlowSizeDistribution:
    def test_samples_within_support(self):
        dist = FlowSizeDistribution()
        sim = Simulator(seed=1)
        for _ in range(200):
            size = dist.sample(sim.rng)
            assert 1 <= size <= SEARCH_CDF[-1][0]

    def test_mostly_small_flows(self):
        # "traffic mostly comprising small flows of a few packets".
        dist = FlowSizeDistribution()
        sim = Simulator(seed=1)
        samples = [dist.sample(sim.rng) for _ in range(2000)]
        small = sum(1 for s in samples if s < 10_000)
        assert small / len(samples) > 0.5

    def test_mean_reasonable(self):
        mean = FlowSizeDistribution().mean()
        assert 10_000 < mean < 1_000_000

    def test_bad_cdf_rejected(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution([(100, 0.5)])  # does not reach 1.0
        with pytest.raises(ValueError):
            FlowSizeDistribution([(100, 0.7), (200, 0.3)])


class TestMemcached:
    def test_put_then_get_roundtrip(self, rig):
        sim, net, stacks = rig
        server = MemcachedServer(sim, stacks["h2"])
        client = MemcachedClient(sim, stacks["h1"], server,
                                 net.host_ip("h2"))
        done = []
        client.put("alpha", 40_000,
                   on_ack=lambda key, ns: done.append(("put", ns)))
        sim.run(until_ns=50 * MS)
        client.get("alpha",
                   on_value=lambda key, size, ns: done.append(
                       ("get", size)))
        sim.run(until_ns=100 * MS)
        assert ("put", done[0][1]) == done[0]
        assert done[1] == ("get", 40_000)
        assert server.store["alpha"] == 40_000
        assert client.completed == {"GET": 1, "PUT": 1}

    def test_get_missing_key_serves_default(self, rig):
        sim, net, stacks = rig
        server = MemcachedServer(sim, stacks["h2"])
        client = MemcachedClient(sim, stacks["h1"], server,
                                 net.host_ip("h2"))
        sizes = []
        client.get("ghost",
                   on_value=lambda k, size, ns: sizes.append(size))
        sim.run(until_ns=50 * MS)
        assert sizes == [128]

    def test_key_hash_deterministic(self):
        assert key_hash("abc") == key_hash("abc")
        assert key_hash("abc") != key_hash("abd")
        assert key_hash("x") >= 0


class TestHttp:
    def test_fetch(self, rig):
        sim, net, stacks = rig
        server = HttpServer(sim, stacks["h2"])
        server.add_resource("/big", 200_000)
        client = HttpClient(sim, stacks["h1"], server,
                            net.host_ip("h2"))
        done = []
        client.fetch("/big", on_done=lambda url, size, ns: done.append(
            (url, size)))
        sim.run(until_ns=100 * MS)
        assert done == [("/big", 200_000)]
        assert server.requests == 1

    def test_unknown_url_default_size(self, rig):
        sim, net, stacks = rig
        server = HttpServer(sim, stacks["h2"])
        client = HttpClient(sim, stacks["h1"], server,
                            net.host_ip("h2"))
        done = []
        client.fetch("/nope",
                     on_done=lambda u, size, ns: done.append(size))
        sim.run(until_ns=50 * MS)
        assert done == [1000]


class TestStorage:
    def test_read_ops_complete(self, rig):
        sim, net, stacks = rig
        server = StorageServer(sim, stacks["h3"])
        client = StorageClient(sim, stacks["h1"],
                               net.host_ip("h3"), READ_PORT,
                               OP_READ, tenant=1,
                               gen_ops_per_sec=500)
        sim.run(until_ns=60 * MS)
        assert client.ops_done > 5
        assert server.ops_completed[OP_READ] >= client.ops_done

    def test_write_ops_complete(self, rig):
        sim, net, stacks = rig
        server = StorageServer(sim, stacks["h3"])
        client = StorageClient(sim, stacks["h2"],
                               net.host_ip("h3"), WRITE_PORT,
                               OP_WRITE, tenant=2,
                               gen_ops_per_sec=500)
        sim.run(until_ns=60 * MS)
        assert client.ops_done > 5
        assert server.ops_completed[OP_WRITE] >= client.ops_done

    def test_backend_serializes_ops(self, rig):
        sim, net, stacks = rig
        server = StorageServer(sim, stacks["h3"],
                               backend_bps=1 * GBPS,
                               per_op_ns=20_000)
        client = StorageClient(sim, stacks["h1"],
                               net.host_ip("h3"), READ_PORT,
                               OP_READ, tenant=1,
                               gen_ops_per_sec=100_000)
        sim.run(until_ns=60 * MS)
        # Service rate bound: 64 KB per ~544 us -> <= ~110 in 60 ms.
        assert server.ops_completed[OP_READ] <= 115
        assert server.queue_max > 1

    def test_bad_op_rejected(self, rig):
        sim, net, stacks = rig
        with pytest.raises(ValueError):
            StorageClient(sim, stacks["h1"], 1, READ_PORT, 99,
                          tenant=1)

    def test_closed_loop_mode(self, rig):
        sim, net, stacks = rig
        StorageServer(sim, stacks["h3"])
        client = StorageClient(sim, stacks["h1"],
                               net.host_ip("h3"), READ_PORT,
                               OP_READ, tenant=1,
                               gen_ops_per_sec=1_000_000,
                               max_outstanding=2)
        sim.run(until_ns=20 * MS)
        assert client._in_flight <= 2
        assert client.ops_done > 0


class TestDataMiningDistribution:
    def test_heavier_tail_than_search(self):
        from repro.apps import DATA_MINING_CDF
        from repro.netsim import Simulator
        mining = FlowSizeDistribution(DATA_MINING_CDF)
        search = FlowSizeDistribution()
        assert mining.mean() > search.mean()
        sim = Simulator(seed=5)
        samples = [mining.sample(sim.rng) for _ in range(2000)]
        tiny = sum(1 for s in samples if s < 2_000)
        assert tiny / len(samples) > 0.4  # most flows are tiny
        assert max(samples) > 5_000_000   # but elephants exist

"""Tests for the host network stack: TX/RX paths and the enclave hook."""

import pytest

from repro.core import Enclave
from repro.netsim import (GBPS, MS, PATH_FAST, PATH_SLOW, Simulator,
                          asymmetric_two_path, star)
from repro.stack import HostStack, StackError


def drop_everything(packet):
    packet.drop = 1


def tag_path_slow(packet):
    packet.path_id = 2


def drop_inbound_port_9(packet):
    if packet.dst_port == 9 and packet.dst_ip == packet.dst_ip:
        packet.drop = 1


@pytest.fixture
def pair():
    sim = Simulator(seed=4)
    net = star(sim, 2, host_rate_bps=10 * GBPS)
    return sim, net


class TestBasicPaths:
    def test_listen_twice_rejected(self, pair):
        sim, net = pair
        stack = HostStack(sim, net.hosts["h1"])
        stack.listen(80, lambda c: None)
        with pytest.raises(StackError):
            stack.listen(80, lambda c: None)

    def test_duplicate_connect_rejected(self, pair):
        sim, net = pair
        s1 = HostStack(sim, net.hosts["h1"])
        HostStack(sim, net.hosts["h2"])
        s1.connect(net.host_ip("h2"), 80, local_port=1234)
        with pytest.raises(StackError):
            s1.connect(net.host_ip("h2"), 80, local_port=1234)

    def test_ephemeral_ports_unique(self, pair):
        sim, net = pair
        s1 = HostStack(sim, net.hosts["h1"])
        HostStack(sim, net.hosts["h2"])
        ports = {s1.connect(net.host_ip("h2"), 80).local_port
                 for _ in range(5)}
        assert len(ports) == 5

    def test_foreign_packets_ignored(self, pair):
        sim, net = pair
        s2 = HostStack(sim, net.hosts["h2"])
        from repro.netsim import Packet
        alien = Packet(src_ip=99, dst_ip=12345, src_port=1,
                       dst_port=2, payload_len=10)
        s2.handle_rx(alien, None)  # not ours: silently ignored

    def test_packet_to_closed_port_ignored(self, pair):
        sim, net = pair
        s1 = HostStack(sim, net.hosts["h1"])
        HostStack(sim, net.hosts["h2"])
        conn = s1.connect(net.host_ip("h2"), 7777)  # nobody listens
        sim.run(until_ns=3 * MS)
        assert not conn.established_at


class TestEnclaveOnTx:
    def test_enclave_drop_blocks_transmission(self, pair):
        sim, net = pair
        enclave = Enclave("e", clock=sim.clock)
        enclave.install_function(drop_everything)
        enclave.install_rule("*", "drop_everything")
        s1 = HostStack(sim, net.hosts["h1"], enclave=enclave)
        HostStack(sim, net.hosts["h2"])
        s1.connect(net.host_ip("h2"), 80)
        sim.run(until_ns=5 * MS)
        assert s1.packets_sent == 0
        assert s1.packets_dropped_by_enclave > 0

    def test_pure_acks_can_skip_enclave(self, pair):
        sim, net = pair
        enclave = Enclave("e", clock=sim.clock)
        enclave.install_function(drop_everything)
        enclave.install_rule("*", "drop_everything")
        # Only pure ACKs escape the dropper.
        s1 = HostStack(sim, net.hosts["h1"], enclave=enclave,
                       process_pure_acks=False)
        s2 = HostStack(sim, net.hosts["h2"])
        s2.listen(80, lambda c: None)
        s1.connect(net.host_ip("h2"), 80)
        sim.run(until_ns=5 * MS)
        assert s1.packets_dropped_by_enclave > 0  # SYN dropped

    def test_processing_delay_preserves_fifo(self, pair):
        sim, net = pair
        s1 = HostStack(sim, net.hosts["h1"], stack_latency_ns=1000)
        HostStack(sim, net.hosts["h2"])
        emitted = []
        original = s1.rate_limiters.submit
        s1.rate_limiters.submit = \
            lambda p: (emitted.append((sim.now, p.packet_id)),
                       original(p))
        conn = s1.connect(net.host_ip("h2"), 80)
        sim.run(until_ns=5 * MS)
        times = [t for t, _ in emitted]
        assert times == sorted(times)


class TestPathSelection:
    def test_path_port_map_routes_by_label(self):
        sim = Simulator(seed=5)
        net = asymmetric_two_path(sim)
        enclave = Enclave("e", clock=sim.clock)
        enclave.install_function(tag_path_slow)
        enclave.install_rule("*", "tag_path_slow")
        s1 = HostStack(sim, net.hosts["h1"], enclave=enclave)
        s2 = HostStack(sim, net.hosts["h2"])
        s1.path_port_map = {1: "sfast", 2: "sslow"}
        # Labels must be routable at the switches.
        net.switches["sslow"].install_label(2, "h2")
        got = []

        def on_conn(conn):
            conn.on_data = lambda c, n: got.append(n)

        s2.listen(80, on_conn)
        conn = s1.connect(net.host_ip("h2"), 80)
        conn.message_send(3000)
        sim.run(until_ns=20 * MS)
        assert got and got[-1] == 3000
        slow_tx = net.switches["sslow"].port_to("h2").stats.tx_packets
        assert slow_tx >= 3  # data went via the slow path

    def test_unmapped_label_uses_default_port(self):
        sim = Simulator(seed=5)
        net = asymmetric_two_path(sim)
        s1 = HostStack(sim, net.hosts["h1"])
        s2 = HostStack(sim, net.hosts["h2"])
        got = []

        def on_conn(conn):
            conn.on_data = lambda c, n: got.append(n)

        s2.listen(80, on_conn)
        conn = s1.connect(net.host_ip("h2"), 80)
        conn.message_send(1000)
        sim.run(until_ns=20 * MS)
        assert got  # default (first) port reached h2 via sfast


class TestEnclaveOnRx:
    def test_rx_processing_can_drop(self, pair):
        sim, net = pair
        enclave = Enclave("e", clock=sim.clock)
        enclave.install_function(drop_everything)
        enclave.install_rule("*", "drop_everything")
        s1 = HostStack(sim, net.hosts["h1"])
        s2 = HostStack(sim, net.hosts["h2"], enclave=enclave,
                       process_rx=True)
        s2.listen(80, lambda c: None)
        conn = s1.connect(net.host_ip("h2"), 80)
        sim.run(until_ns=10 * MS)
        # Inbound SYNs eaten by the receive-side enclave: no
        # connection ever forms.
        assert conn.state != "established"
        assert not s2.connections()

"""Batch-vs-scalar parity for rate limiters and the batched stack.

A batch admitted through ``submit_batch`` in one simulated tick must
consume exactly the same tokens, forward the same packets in the same
order, and schedule the same release times as submitting the packets
one by one — the single bucket refill and single drain-timer
reschedule are pure amortization.  The same property lifts to the
whole host stack with ``batch_data_path=True``.
"""

import pytest

from repro.core import Enclave
from repro.netsim import GBPS, MS, Packet, Simulator, star
from repro.stack import HostStack, RateLimitedQueue, RateLimiterBank

pytestmark = pytest.mark.batch


def make_packet(payload=1460, queue_id=0, charge=0):
    p = Packet(src_ip=1, dst_ip=2, src_port=1, dst_port=2,
               payload_len=payload)
    p.queue_id = queue_id
    p.charge = charge
    return p


def _queue(sim, out, **kw):
    kw.setdefault("rate_bps", 8_000_000)
    kw.setdefault("burst_bytes", 3000)
    return RateLimitedQueue(sim, "q", forward=lambda p:
                            out.append((sim.now, p.packet_id)), **kw)


def _run_queue(payloads, batched, **kw):
    """Drive one queue; forwarded packets logged as (time, index)."""
    sim = Simulator()
    out = []
    q = _queue(sim, out, **kw)
    packets = [make_packet(n) for n in payloads]
    index = {p.packet_id: i for i, p in enumerate(packets)}
    if batched:
        admitted = q.submit_batch(packets)
    else:
        admitted = [q.submit(p) for p in packets]
    state = (q._tokens, q._queued_bytes, q.enqueued, q.forwarded,
             q.dropped, q.charged_bytes)
    sim.run()
    return admitted, state, [(t, index[i]) for t, i in out]


class TestQueueBatchParity:
    @pytest.mark.parametrize("payloads", [
        [],
        [1000],
        [946] * 11,                        # burst then paced
        [100, 2900, 100, 2900, 100],       # straddles the bucket
        [2960] * 4,
    ])
    def test_same_tokens_and_release_times(self, payloads):
        adm_s, state_s, out_s = _run_queue(payloads, batched=False)
        adm_b, state_b, out_b = _run_queue(payloads, batched=True)
        assert adm_b == adm_s
        assert state_b == state_s
        # Identical forwarded sequence *and* identical release times.
        assert out_b == out_s

    def test_overflow_decisions_match(self):
        payloads = [1800] * 6
        kw = dict(max_queue_bytes=4000, burst_bytes=2000,
                  rate_bps=8_000_000)
        adm_s, state_s, out_s = _run_queue(payloads, batched=False,
                                           **kw)
        adm_b, state_b, out_b = _run_queue(payloads, batched=True,
                                           **kw)
        assert not all(adm_s)              # the scenario overflows
        assert adm_b == adm_s
        assert state_b == state_s
        assert out_b == out_s

    def test_oversized_charge_dropped_identically(self):
        # charge > burst can never clear: both paths drop it.
        sim = Simulator()
        out = []
        q = _queue(sim, out, burst_bytes=2000)
        pkts = [make_packet(100, charge=65536), make_packet(1000)]
        assert q.submit_batch(pkts) == [True, True]
        sim.run()
        assert q.dropped == 1
        assert [i for _, i in out] == [pkts[1].packet_id]


class TestBankBatch:
    def test_passthrough_interleaves_in_order(self):
        sim = Simulator()
        out = []
        bank = RateLimiterBank(sim, forward=lambda p:
                               out.append(p.packet_id))
        bank.configure(1, rate_bps=80_000_000, burst_bytes=100_000)
        pkts = [make_packet(1000, queue_id=q)
                for q in (1, 1, 0, 1, 0, 7)]   # 7 unknown: pass-through
        assert bank.submit_batch(pkts) == [True] * 6
        # Everything fits the burst, so forwarding preserves arrival
        # order, with pass-through packets in between.
        assert out == [p.packet_id for p in pkts]

    def test_bank_batch_matches_scalar_submits(self):
        def run(batched):
            sim = Simulator()
            out = []
            index = {}
            bank = RateLimiterBank(sim, forward=lambda p:
                                   out.append((sim.now,
                                               index[p.packet_id])))
            bank.configure(1, rate_bps=8_000_000, burst_bytes=2000)
            bank.configure(2, rate_bps=16_000_000, burst_bytes=2000)
            pkts = []
            for i, q in enumerate((1, 2, 1, 0, 2, 2, 1, 0)):
                p = make_packet(946, queue_id=q)
                index[p.packet_id] = i
                pkts.append(p)
            if batched:
                bank.submit_batch(pkts)
            else:
                for p in pkts:
                    bank.submit(p)
            sim.run()
            return out

        assert run(batched=True) == run(batched=False)


class TestStackBatchParity:
    """``batch_data_path=True`` changes timing bookkeeping only."""

    def _run(self, batched):
        sim = Simulator(seed=4)
        net = star(sim, 2, host_rate_bps=10 * GBPS)
        enclave = Enclave("e", clock=sim.clock)
        enclave.install_function(tag_priority)
        enclave.install_rule("*", "tag_priority")
        s1 = HostStack(sim, net.hosts["h1"], enclave=enclave,
                       batch_data_path=batched)
        s2 = HostStack(sim, net.hosts["h2"],
                       batch_data_path=batched)
        emitted = []

        def key(p):
            # packet_id is a process-global counter, useless across
            # runs; (seq, flags, payload) identifies a TCP segment.
            return (sim.now, p.seq, p.flags, p.payload_len,
                    p.priority)

        if batched:
            orig = s1.rate_limiters.submit_batch
            s1.rate_limiters.submit_batch = lambda ps: (
                emitted.extend(key(p) for p in ps), orig(ps))[-1]
        else:
            orig = s1.rate_limiters.submit
            s1.rate_limiters.submit = lambda p: (
                emitted.append(key(p)), orig(p))[-1]
        got = []

        def on_conn(conn):
            conn.on_data = lambda c, n: got.append((sim.now, n))

        s2.listen(80, on_conn)
        conn = s1.connect(net.host_ip("h2"), 80)
        done = []
        conn.message_send(30_000, on_complete=lambda rec, t:
                          done.append(t))
        sim.run(until_ns=50 * MS)
        return emitted, got, done, s1.packets_sent

    def test_tx_batching_preserves_timing_and_delivery(self):
        em_s, got_s, done_s, sent_s = self._run(batched=False)
        em_b, got_b, done_b, sent_b = self._run(batched=True)
        assert done_s and done_b          # the transfer completed
        assert sent_b == sent_s
        assert got_b == got_s             # byte-for-byte delivery
        assert done_b == done_s
        # Release into the rate limiters: same packets, same ticks.
        assert em_b == em_s

    def test_rx_batch_flush_delivers(self):
        sim = Simulator(seed=4)
        net = star(sim, 2, host_rate_bps=10 * GBPS)
        enclave = Enclave("e", clock=sim.clock)
        enclave.install_function(tag_priority)
        enclave.install_rule("*", "tag_priority")
        s1 = HostStack(sim, net.hosts["h1"])
        s2 = HostStack(sim, net.hosts["h2"], enclave=enclave,
                       process_rx=True, batch_data_path=True)
        got = []

        def on_conn(conn):
            conn.on_data = lambda c, n: got.append(n)

        s2.listen(80, on_conn)
        conn = s1.connect(net.host_ip("h2"), 80)
        conn.message_send(10_000)
        sim.run(until_ns=50 * MS)
        assert got and got[-1] == 10_000
        assert enclave.packets_processed > 0

    def test_rx_batch_enclave_can_drop(self):
        sim = Simulator(seed=4)
        net = star(sim, 2, host_rate_bps=10 * GBPS)
        enclave = Enclave("e", clock=sim.clock)
        enclave.install_function(drop_everything)
        enclave.install_rule("*", "drop_everything")
        s1 = HostStack(sim, net.hosts["h1"])
        s2 = HostStack(sim, net.hosts["h2"], enclave=enclave,
                       process_rx=True, batch_data_path=True)
        s2.listen(80, lambda c: None)
        conn = s1.connect(net.host_ip("h2"), 80)
        sim.run(until_ns=10 * MS)
        assert conn.state != "established"
        assert not s2.connections()


# Module-level so quotation can recover the source.

def tag_priority(packet):
    if packet.size > 1000:
        packet.priority = 1
    else:
        packet.priority = 5


def drop_everything(packet):
    packet.drop = 1

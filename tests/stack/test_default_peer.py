"""Tests for multi-port hosts: default peers and per-label ports."""

import pytest

from repro.netsim import (MS, PATH_FAST, PATH_SLOW, Simulator,
                          asymmetric_two_path)
from repro.stack import HostStack


@pytest.fixture
def rig():
    sim = Simulator(seed=20)
    net = asymmetric_two_path(sim)
    s1 = HostStack(sim, net.hosts["h1"])
    s2 = HostStack(sim, net.hosts["h2"])
    got = []

    def on_conn(conn):
        conn.on_data = lambda c, n: got.append(n)

    s2.listen(5000, on_conn)
    return sim, net, s1, s2, got


class TestDefaultPeer:
    def test_first_port_is_implicit_default(self, rig):
        sim, net, s1, s2, got = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(2000)
        sim.run(until_ns=20 * MS)
        assert got and got[-1] == 2000
        fast_tx = net.hosts["h1"].port_to("sfast").stats.tx_packets
        slow_tx = net.hosts["h1"].port_to("sslow").stats.tx_packets
        assert fast_tx > 0 and slow_tx == 0

    def test_explicit_default_peer_redirects(self, rig):
        sim, net, s1, s2, got = rig
        s1.default_peer = "sslow"
        s2.default_peer = "sslow"
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(2000)
        sim.run(until_ns=20 * MS)
        assert got and got[-1] == 2000
        assert net.hosts["h1"].port_to("sfast").stats.tx_packets == 0
        assert net.hosts["h1"].port_to("sslow").stats.tx_packets > 0

    def test_label_map_overrides_default(self, rig):
        sim, net, s1, s2, got = rig
        s1.default_peer = "sfast"
        s1.path_port_map = {PATH_SLOW: "sslow"}
        net.switches["sslow"].install_label(PATH_SLOW, "h2")

        # Force all data packets onto the slow label via an enclave-
        # free shortcut: set path_id on emission.
        original = s1.send_packet

        def label_all(packet, pure_ack=False):
            if packet.payload_len > 0:
                packet.path_id = PATH_SLOW
            original(packet, pure_ack=pure_ack)

        s1.send_packet = label_all
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(4000)
        sim.run(until_ns=30 * MS)
        assert got and got[-1] == 4000
        assert net.hosts["h1"].port_to("sslow").stats.tx_packets >= 3

"""Tests for token-bucket rate limiting (Pulsar's queues)."""

import pytest

from repro.netsim import MS, Packet, SEC, Simulator
from repro.stack import RateLimitedQueue, RateLimiterBank


def make_packet(payload=1460, queue_id=0, charge=0):
    p = Packet(src_ip=1, dst_ip=2, src_port=1, dst_port=2,
               payload_len=payload)
    p.queue_id = queue_id
    p.charge = charge
    return p


class TestRateLimitedQueue:
    def test_burst_passes_immediately(self):
        sim = Simulator()
        out = []
        q = RateLimitedQueue(sim, "q", rate_bps=1_000_000,
                             burst_bytes=10_000, forward=out.append)
        q.submit(make_packet(1000))
        assert len(out) == 1  # forwarded synchronously from burst

    def test_rate_enforced_over_time(self):
        sim = Simulator()
        out = []
        q = RateLimitedQueue(sim, "q", rate_bps=8_000_000,  # 1 MB/s
                             burst_bytes=1600,
                             forward=lambda p: out.append(sim.now))
        for _ in range(11):
            q.submit(make_packet(946))  # 1000 B on the wire
        sim.run()
        # After the burst (1 packet), ~1 packet per ms.
        assert len(out) == 11
        elapsed = out[-1] - out[0]
        assert 9 * MS <= elapsed <= 12 * MS

    def test_charge_override(self):
        # A tiny packet charged as a huge op drains the bucket.
        sim = Simulator()
        out = []
        q = RateLimitedQueue(sim, "q", rate_bps=8_000_000,
                             burst_bytes=70_000, forward=out.append)
        q.submit(make_packet(100, charge=65536))
        q.submit(make_packet(100, charge=65536))
        assert len(out) == 1  # second must wait for refill
        sim.run()
        assert len(out) == 2
        assert q.charged_bytes == 2 * 65536

    def test_overflow_drops(self):
        sim = Simulator()
        q = RateLimitedQueue(sim, "q", rate_bps=1000,
                             burst_bytes=2000,
                             forward=lambda p: None,
                             max_queue_bytes=2000)
        results = [q.submit(make_packet(946)) for _ in range(5)]
        assert not all(results)
        assert q.dropped >= 1

    def test_charge_above_burst_dropped_not_wedged(self):
        # A charge larger than the bucket can never pass: it must be
        # dropped, not left blocking the queue forever.
        sim = Simulator()
        out = []
        q = RateLimitedQueue(sim, "q", rate_bps=8_000_000,
                             burst_bytes=1000, forward=out.append)
        q.submit(make_packet(100, charge=50_000))
        q.submit(make_packet(100, charge=500))
        sim.run()
        assert len(out) == 1
        assert q.dropped == 1

    def test_set_rate_takes_effect(self):
        sim = Simulator()
        out = []
        q = RateLimitedQueue(sim, "q", rate_bps=8_000,
                             burst_bytes=1200,
                             forward=lambda p: out.append(sim.now))
        q.submit(make_packet(1460))  # 1514 B > burst tokens... 
        q.submit(make_packet(946))
        q.set_rate(8_000_000_000)
        sim.run()
        assert out and out[0] < 10 * MS

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            RateLimitedQueue(Simulator(), "q", rate_bps=0,
                             burst_bytes=1, forward=lambda p: None)

    def test_backlog_reported(self):
        sim = Simulator()
        q = RateLimitedQueue(sim, "q", rate_bps=8, burst_bytes=1500,
                             forward=lambda p: None)
        q.submit(make_packet(946))
        q.submit(make_packet(946))
        assert q.backlog_bytes == 1000  # second packet still queued


class TestRateLimiterBank:
    def test_queue_zero_passes_through(self):
        sim = Simulator()
        out = []
        bank = RateLimiterBank(sim, out.append)
        bank.submit(make_packet(queue_id=0))
        assert len(out) == 1

    def test_unknown_queue_passes_through(self):
        sim = Simulator()
        out = []
        bank = RateLimiterBank(sim, out.append)
        bank.submit(make_packet(queue_id=42))
        assert len(out) == 1

    def test_configured_queue_limits(self):
        sim = Simulator()
        out = []
        bank = RateLimiterBank(sim, lambda p: out.append(sim.now))
        bank.configure(1, rate_bps=8_000_000, burst_bytes=1600)
        for _ in range(4):
            bank.submit(make_packet(946, queue_id=1))
        sim.run()
        assert out[-1] - out[0] >= 2 * MS

    def test_configure_zero_rejected(self):
        bank = RateLimiterBank(Simulator(), lambda p: None)
        with pytest.raises(ValueError):
            bank.configure(0, rate_bps=100)

    def test_reconfigure_updates_rate(self):
        sim = Simulator()
        bank = RateLimiterBank(sim, lambda p: None)
        q1 = bank.configure(1, rate_bps=1000)
        q2 = bank.configure(1, rate_bps=5000)
        assert q1 is q2
        assert q1.rate_bps == 5000

"""Tests for the bytecode module itself: values, instructions,
program containers."""

import pytest

from repro.lang import FunctionCode, Instr, Op, Program, wrap64
from repro.lang.bytecode import (ArrayRef, FieldRef, INT_MAX, INT_MIN,
                                 OPS_WITH_ARG, STACK_EFFECT)


class TestWrap64:
    def test_boundaries(self):
        assert wrap64(INT_MAX) == INT_MAX
        assert wrap64(INT_MIN) == INT_MIN
        assert wrap64(INT_MAX + 1) == INT_MIN
        assert wrap64(INT_MIN - 1) == INT_MAX

    def test_zero_and_small(self):
        assert wrap64(0) == 0
        assert wrap64(-1) == -1
        assert wrap64(1) == 1

    def test_full_cycle(self):
        assert wrap64(1 << 64) == 0
        assert wrap64((1 << 64) + 5) == 5


class TestInstr:
    def test_repr_with_and_without_arg(self):
        assert repr(Instr(Op.CONST, 5)) == "CONST 5"
        assert repr(Instr(Op.ADD)) == "ADD"

    def test_stack_effects_cover_all_simple_ops(self):
        special = {Op.CALL}
        for op in Op:
            if op in special:
                continue
            assert op in STACK_EFFECT, op.name

    def test_arg_ops_consistent(self):
        for op in OPS_WITH_ARG:
            with pytest.raises(ValueError):
                Instr(op)


class TestProgram:
    def make(self):
        entry = FunctionCode("main", 0, 1,
                             (Instr(Op.CONST, 1), Instr(Op.RET)))
        helper = FunctionCode("aux", 2, 2,
                              (Instr(Op.CONST, 0), Instr(Op.RET)))
        return Program(
            "prog", (entry, helper),
            field_table=(FieldRef("packet", "priority", True),),
            array_table=(ArrayRef("global", "xs", 1, False),))

    def test_entry_is_first_function(self):
        prog = self.make()
        assert prog.entry.name == "main"

    def test_function_index(self):
        prog = self.make()
        assert prog.function_index("aux") == 1
        with pytest.raises(KeyError):
            prog.function_index("nope")

    def test_disassemble_includes_everything(self):
        text = self.make().disassemble()
        assert "main" in text and "aux" in text
        assert "CONST 1" in text

    def test_disassemble_annotates_calls(self):
        entry = FunctionCode(
            "main", 0, 1,
            (Instr(Op.CONST, 7), Instr(Op.CONST, 8),
             Instr(Op.CALL, 1), Instr(Op.RET)))
        helper = FunctionCode("aux", 2, 2,
                              (Instr(Op.CONST, 0), Instr(Op.RET)))
        prog = Program("p", (entry, helper), (), ())
        assert "; aux" in prog.disassemble()

    def test_field_and_array_annotations(self):
        entry = FunctionCode(
            "main", 0, 1,
            (Instr(Op.GETF, 0), Instr(Op.PUTF, 0),
             Instr(Op.ALEN, 0), Instr(Op.POP), Instr(Op.CONST, 0),
             Instr(Op.RET)))
        prog = Program(
            "p", (entry,),
            field_table=(FieldRef("packet", "priority", True),),
            array_table=(ArrayRef("global", "xs", 1, False),))
        listing = prog.disassemble()
        assert "packet.priority" in listing
        assert "global.xs" in listing


class TestRawOpcodeExecution:
    """Opcodes the compiler rarely/never emits still honor the ISA
    contract (hand-written or future-compiler bytecode)."""

    def run_raw(self, code, n_locals=2, args=()):
        from repro.lang import Interpreter
        prog = Program("raw",
                       (FunctionCode("f", len(args), n_locals,
                                     tuple(code)),), (), ())
        return Interpreter().execute(prog, [], [], args=args)

    def test_dup_swap_pop(self):
        result = self.run_raw([
            Instr(Op.CONST, 3), Instr(Op.CONST, 9),
            Instr(Op.SWAP),             # 9 3
            Instr(Op.DUP),              # 9 3 3
            Instr(Op.POP),              # 9 3
            Instr(Op.SUB),              # 9-3
            Instr(Op.RET)])
        assert result.value == 6

    def test_halt_returns_top_of_stack(self):
        result = self.run_raw([Instr(Op.CONST, 42), Instr(Op.HALT)])
        assert result.value == 42

    def test_halt_with_empty_stack_returns_zero(self):
        result = self.run_raw([Instr(Op.HALT)])
        assert result.value == 0

    def test_entry_args_fill_locals(self):
        result = self.run_raw(
            [Instr(Op.LOAD, 0), Instr(Op.LOAD, 1), Instr(Op.ADD),
             Instr(Op.RET)], args=(30, 12))
        assert result.value == 42

    def test_fell_off_end_faults(self):
        from repro.lang import InterpreterFault
        with pytest.raises(InterpreterFault, match="fell off"):
            self.run_raw([Instr(Op.CONST, 1), Instr(Op.POP)])

    def test_stack_underflow_faults(self):
        from repro.lang import InterpreterFault
        with pytest.raises(InterpreterFault, match="underflow"):
            self.run_raw([Instr(Op.ADD), Instr(Op.RET)])

    def test_operand_stack_limit_enforced(self):
        from repro.lang import Interpreter, InterpreterFault
        code = [Instr(Op.CONST, 1) for _ in range(50)]
        code.append(Instr(Op.RET))
        prog = Program("deep",
                       (FunctionCode("f", 0, 1, tuple(code)),),
                       (), ())
        with pytest.raises(InterpreterFault, match="exceeds"):
            Interpreter(max_operand_stack=10).execute(prog, [], [])

"""Shared helpers for the language-layer tests."""

import random

import pytest

from repro.lang import (AccessLevel, DEFAULT_PACKET_SCHEMA, Field,
                        FieldKind, Interpreter, Lifetime,
                        NativeFunction, compile_action, schema,
                        verify)

MSG_SCHEMA = schema("M", Lifetime.MESSAGE, [
    Field("counter", AccessLevel.READ_WRITE),
    Field("limit", AccessLevel.READ_ONLY, default=5),
])

GLB_SCHEMA = schema("G", Lifetime.GLOBAL, [
    Field("weights", AccessLevel.READ_ONLY, FieldKind.ARRAY),
    Field("records", AccessLevel.READ_ONLY, FieldKind.RECORD_ARRAY,
          record_fields=("lo", "hi")),
    Field("scratch", AccessLevel.READ_WRITE, FieldKind.ARRAY),
    Field("knob", AccessLevel.READ_WRITE),
])


class Harness:
    """Compile once, run against named fields/arrays conveniently."""

    def __init__(self, source, optimize_tail_calls=True,
                 message=True, glb=True):
        self.ast, self.program = compile_action(
            source,
            packet_schema=DEFAULT_PACKET_SCHEMA,
            message_schema=MSG_SCHEMA if message else None,
            global_schema=GLB_SCHEMA if glb else None,
            optimize_tail_calls=optimize_tail_calls)
        verify(self.program)

    def field_index(self, scope, name):
        for i, ref in enumerate(self.program.field_table):
            if (ref.scope, ref.name) == (scope, name):
                return i
        raise KeyError((scope, name))

    def run(self, backend="interpreter", fields=None, arrays=None,
            seed=0, clock=0, **interp_kwargs):
        fields = dict(fields or {})
        arrays = dict(arrays or {})
        fvec = []
        for ref in self.program.field_table:
            fvec.append(fields.get((ref.scope, ref.name), 0))
        avec = []
        for ref in self.program.array_table:
            avec.append(list(arrays.get((ref.scope, ref.name), [])))
        rng = random.Random(seed)
        if backend == "interpreter":
            interp = Interpreter(rng=rng, clock=lambda: clock,
                                 **interp_kwargs)
            result = interp.execute(self.program, fvec, avec)
        else:
            native = NativeFunction(self.ast, self.program, rng=rng,
                                    clock=lambda: clock)
            result = native.execute(fvec, avec)
        out_fields = {
            (ref.scope, ref.name): v
            for ref, v in zip(self.program.field_table, result.fields)}
        out_arrays = {
            (ref.scope, ref.name): v
            for ref, v in zip(self.program.array_table, result.arrays)}
        return result, out_fields, out_arrays


@pytest.fixture
def harness():
    return Harness

"""Tests for the peephole optimizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import (Instr, Op, compile_action, verify)
from repro.lang.bytecode import FunctionCode, Program
from repro.lang.optimizer import (optimize_function,
                                  optimize_program)

from conftest import GLB_SCHEMA, Harness, MSG_SCHEMA
from repro.lang import DEFAULT_PACKET_SCHEMA, Interpreter


def compile_both(source):
    """(unoptimized, optimized) programs for one source."""
    _, raw = compile_action(source,
                            packet_schema=DEFAULT_PACKET_SCHEMA,
                            message_schema=MSG_SCHEMA,
                            global_schema=GLB_SCHEMA,
                            peephole=False)
    opt = optimize_program(raw)
    verify(raw)
    verify(opt)
    return raw, opt


def run(program, fields=None, arrays=None):
    fvec = []
    fields = fields or {}
    for ref in program.field_table:
        fvec.append(fields.get((ref.scope, ref.name), 0))
    avec = []
    arrays = arrays or {}
    for ref in program.array_table:
        avec.append(list(arrays.get((ref.scope, ref.name), [])))
    return Interpreter().execute(program, fvec, avec)


def total_ops(program):
    return sum(len(f.code) for f in program.functions)


class TestFolding:
    def test_constant_arithmetic_folds(self):
        raw, opt = compile_both(
            "def f(packet):\n"
            "    packet.priority = (2 + 3) * 4 - 19\n")
        assert total_ops(opt) < total_ops(raw)
        consts = [i.arg for i in opt.entry.code
                  if i.op is Op.CONST]
        assert 1 in consts  # fully folded result

    def test_division_by_zero_not_folded(self):
        # The fault must still occur at run time.
        raw, opt = compile_both(
            "def f(packet):\n"
            "    packet.priority = 1 // 0\n")
        assert any(i.op is Op.DIV for i in opt.entry.code)
        from repro.lang import InterpreterFault
        with pytest.raises(InterpreterFault):
            run(opt)

    def test_bad_shift_not_folded(self):
        raw, opt = compile_both(
            "def f(packet):\n"
            "    packet.priority = 1 << 99\n")
        assert any(i.op is Op.SHL for i in opt.entry.code)

    def test_unary_folds(self):
        raw, opt = compile_both(
            "def f(packet):\n"
            "    packet.priority = -(5)\n")
        consts = [i.arg for i in opt.entry.code
                  if i.op is Op.CONST]
        assert -5 in consts


class TestBranches:
    def test_constant_true_branch_resolved(self):
        raw, opt = compile_both(
            "def f(packet):\n"
            "    if True:\n"
            "        packet.priority = 1\n"
            "    else:\n"
            "        packet.priority = 2\n")
        # The dead else arm disappears entirely.
        assert not any(i.op is Op.CONST and i.arg == 2
                       for i in opt.entry.code)
        result = run(opt)
        assert result.fields[0] == 1

    def test_while_true_loops_still_work(self):
        raw, opt = compile_both(
            "def f(packet):\n"
            "    i = 0\n"
            "    while True:\n"
            "        i += 1\n"
            "        if i >= 5:\n"
            "            break\n"
            "    packet.priority = i\n")
        assert run(opt).fields == run(raw).fields

    def test_dead_code_eliminated_after_return(self):
        raw, opt = compile_both(
            "def f(packet):\n"
            "    return 7\n"
            "    packet.priority = 99\n")
        assert total_ops(opt) < total_ops(raw)
        assert run(opt).value == 7


class TestDeadCodeElimination:
    def test_unreachable_dropped_with_targets_remapped(self):
        code = (
            Instr(Op.JMP, 3),
            Instr(Op.CONST, 111),   # dead
            Instr(Op.POP),          # dead
            Instr(Op.CONST, 5),
            Instr(Op.RET),
        )
        fn = FunctionCode("f", 0, 0, code)
        opt = optimize_function(fn)
        assert len(opt.code) < len(code)
        prog = Program("p", (opt,), (), ())
        verify(prog)
        assert Interpreter().execute(prog, [], []).value == 5


FIXTURE_PROGRAMS = [
    ("def f(packet, msg, _global):\n"
     "    x = packet.size * 2 + 10 - 10\n"
     "    msg.counter = x % 7\n"),
    ("def f(packet, _global):\n"
     "    total = 0\n"
     "    for i in range(0, 8, 2):\n"
     "        total += i * 3\n"
     "    packet.queue_id = total\n"),
    ("def f(packet):\n"
     "    def helper(a, b):\n"
     "        if a > b:\n"
     "            return a - b\n"
     "        return helper(a + 1, b)\n"
     "    packet.queue_id = helper(0, 3)\n"),
    ("def f(packet, _global):\n"
     "    n = len(_global.weights)\n"
     "    if n > 0 and _global.weights[0] > 5:\n"
     "        packet.priority = 1 + 2 + 3\n"
     "    else:\n"
     "        packet.priority = 0 * 99\n"),
]


class TestEquivalence:
    @pytest.mark.parametrize("source", FIXTURE_PROGRAMS)
    @settings(max_examples=25, deadline=None)
    @given(size=st.integers(0, 10_000),
           counter=st.integers(-100, 100),
           weights=st.lists(st.integers(-50, 50), max_size=8))
    def test_optimized_equals_unoptimized(self, source, size,
                                          counter, weights):
        raw, opt = compile_both(source)
        fields = {("packet", "size"): size,
                  ("message", "counter"): counter}
        arrays = {("global", "weights"): weights}
        res_raw = run(raw, fields, arrays)
        res_opt = run(opt, fields, arrays)
        assert res_raw.fields == res_opt.fields
        assert res_raw.arrays == res_opt.arrays
        assert res_raw.value == res_opt.value

    @pytest.mark.parametrize("source", FIXTURE_PROGRAMS)
    def test_never_grows_code(self, source):
        raw, opt = compile_both(source)
        assert total_ops(opt) <= total_ops(raw)

    @pytest.mark.parametrize("source", FIXTURE_PROGRAMS)
    def test_idempotent(self, source):
        _, opt = compile_both(source)
        again = optimize_program(opt)
        assert [f.code for f in again.functions] == \
            [f.code for f in opt.functions]

"""Tests for static bytecode verification."""

import pytest

from repro.lang import Op, VerificationError, verify
from repro.lang.bytecode import (ArrayRef, FieldRef, FunctionCode,
                                 Instr, Program)

from conftest import Harness

FIELDS = (FieldRef("packet", "priority", True),
          FieldRef("packet", "size", False))
ARRAYS = (ArrayRef("global", "weights", 1, False),)


def make_program(code, n_locals=2, functions_extra=()):
    fns = (FunctionCode("f", 0, n_locals, tuple(code)),) + \
        tuple(functions_extra)
    return Program(name="p", functions=fns, field_table=FIELDS,
                   array_table=ARRAYS)


class TestStructuralChecks:
    def test_valid_program_passes(self):
        prog = make_program([Instr(Op.CONST, 1), Instr(Op.RET)])
        assert verify(prog) >= 1

    def test_empty_function_rejected(self):
        with pytest.raises(VerificationError, match="empty"):
            verify(make_program([]))

    def test_jump_out_of_range_rejected(self):
        with pytest.raises(VerificationError, match="jump target"):
            verify(make_program([Instr(Op.JMP, 99),
                                 Instr(Op.CONST, 0),
                                 Instr(Op.RET)]))

    def test_field_index_out_of_range_rejected(self):
        with pytest.raises(VerificationError, match="field index"):
            verify(make_program([Instr(Op.GETF, 7), Instr(Op.RET)]))

    def test_write_to_readonly_field_rejected(self):
        with pytest.raises(VerificationError, match="read-only"):
            verify(make_program([Instr(Op.CONST, 1),
                                 Instr(Op.PUTF, 1),
                                 Instr(Op.CONST, 0),
                                 Instr(Op.RET)]))

    def test_array_index_out_of_range_rejected(self):
        with pytest.raises(VerificationError, match="array index"):
            verify(make_program([Instr(Op.ABASE, 3), Instr(Op.RET)]))

    def test_call_target_out_of_range_rejected(self):
        with pytest.raises(VerificationError, match="call target"):
            verify(make_program([Instr(Op.CALL, 5),
                                 Instr(Op.RET)]))

    def test_local_slot_out_of_range_rejected(self):
        with pytest.raises(VerificationError, match="local slot"):
            verify(make_program([Instr(Op.LOAD, 9), Instr(Op.RET)]))


class TestStackDiscipline:
    def test_underflow_rejected(self):
        with pytest.raises(VerificationError, match="underflow"):
            verify(make_program([Instr(Op.ADD), Instr(Op.RET)]))

    def test_ret_needs_value(self):
        with pytest.raises(VerificationError, match="RET"):
            verify(make_program([Instr(Op.RET)]))

    def test_fallthrough_off_end_rejected(self):
        with pytest.raises(VerificationError, match="fall off"):
            verify(make_program([Instr(Op.CONST, 1)]))

    def test_inconsistent_merge_depth_rejected(self):
        # One path pushes a value before the merge point, the other
        # does not.
        code = [
            Instr(Op.CONST, 1),     # 0
            Instr(Op.JZ, 3),        # 1: depth 0 at 3 via this edge
            Instr(Op.CONST, 5),     # 2: depth 1 at 3 via fallthrough
            Instr(Op.CONST, 9),     # 3: merge point
            Instr(Op.RET),
        ]
        with pytest.raises(VerificationError, match="merge"):
            verify(make_program(code))

    def test_reports_max_depth(self):
        prog = make_program([
            Instr(Op.CONST, 1), Instr(Op.CONST, 2),
            Instr(Op.CONST, 3), Instr(Op.ADD), Instr(Op.ADD),
            Instr(Op.RET)])
        assert verify(prog) == 3

    def test_max_depth_limit_enforced(self):
        prog = make_program([
            Instr(Op.CONST, 1), Instr(Op.CONST, 2),
            Instr(Op.CONST, 3), Instr(Op.ADD), Instr(Op.ADD),
            Instr(Op.RET)])
        with pytest.raises(VerificationError, match="exceeds limit"):
            verify(prog, max_operand_stack=2)

    def test_call_effect_uses_callee_arity(self):
        helper = FunctionCode("g", 2, 2,
                              (Instr(Op.CONST, 0), Instr(Op.RET)))
        code = [Instr(Op.CONST, 1), Instr(Op.CONST, 2),
                Instr(Op.CALL, 1), Instr(Op.RET)]
        prog = make_program(code, functions_extra=(helper,))
        assert verify(prog) >= 2

    def test_call_underflow_rejected(self):
        helper = FunctionCode("g", 2, 2,
                              (Instr(Op.CONST, 0), Instr(Op.RET)))
        code = [Instr(Op.CONST, 1), Instr(Op.CALL, 1),
                Instr(Op.RET)]
        with pytest.raises(VerificationError, match="underflow"):
            verify(make_program(code, functions_extra=(helper,)))


class TestCompilerOutputAlwaysVerifies:
    SOURCES = [
        "def f(packet):\n    packet.priority = 1\n",
        ("def f(packet):\n"
         "    for i in range(10):\n"
         "        if i == 3:\n"
         "            break\n"
         "        packet.priority = i\n"),
        ("def f(packet, msg, _global):\n"
         "    def search(i):\n"
         "        if i >= len(_global.records):\n"
         "            return 0\n"
         "        return search(i + 1)\n"
         "    msg.counter = search(0)\n"),
        ("def f(packet):\n"
         "    x = 1 if packet.size > 0 and packet.size < 99 else 0\n"
         "    packet.priority = x\n"),
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_verifies(self, source):
        h = Harness(source)  # Harness calls verify()
        assert h.program is not None

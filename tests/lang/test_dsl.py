"""Tests for the DSL frontend: quotation, lowering, restrictions."""

import pytest

from repro.lang import (AccessLevel, DEFAULT_PACKET_SCHEMA, DslError,
                        Field, FieldKind, Lifetime, lower, quote,
                        schema)
from repro.lang import ast_nodes as T

MSG = schema("M", Lifetime.MESSAGE, [
    Field("counter", AccessLevel.READ_WRITE),
    Field("limit", AccessLevel.READ_ONLY, default=5),
])
GLB = schema("G", Lifetime.GLOBAL, [
    Field("weights", AccessLevel.READ_ONLY, FieldKind.ARRAY),
    Field("records", AccessLevel.READ_ONLY, FieldKind.RECORD_ARRAY,
          record_fields=("lo", "hi")),
    Field("scratch", AccessLevel.READ_WRITE, FieldKind.ARRAY),
    Field("knob", AccessLevel.READ_WRITE),
])


def lower_ok(fn):
    return lower(fn, packet_schema=DEFAULT_PACKET_SCHEMA,
                 message_schema=MSG, global_schema=GLB)


class TestQuote:
    def test_quote_from_source_string(self):
        node = quote("def f(packet):\n    packet.priority = 1\n")
        assert node.name == "f"

    def test_quote_rejects_non_function(self):
        with pytest.raises(DslError):
            quote("x = 1\n")

    def test_quote_rejects_bad_syntax(self):
        with pytest.raises(DslError):
            quote("def f(:\n")


class TestParameterBinding:
    def test_packet_only(self):
        prog = lower("def f(packet):\n    packet.priority = 1\n",
                     packet_schema=DEFAULT_PACKET_SCHEMA)
        assert prog.field_table[0].scope == "packet"

    def test_packet_and_global_by_name(self):
        src = ("def f(packet, _global):\n"
               "    packet.priority = _global.knob\n")
        prog = lower(src, packet_schema=DEFAULT_PACKET_SCHEMA,
                     global_schema=GLB)
        scopes = {r.scope for r in prog.field_table}
        assert scopes == {"packet", "global"}

    def test_unknown_parameter_name_rejected(self):
        with pytest.raises(DslError, match="unknown state parameter"):
            lower("def f(bogus):\n    pass\n",
                  packet_schema=DEFAULT_PACKET_SCHEMA)

    def test_missing_schema_rejected(self):
        with pytest.raises(DslError, match="no message schema"):
            lower("def f(packet, msg):\n    pass\n",
                  packet_schema=DEFAULT_PACKET_SCHEMA)

    def test_duplicate_scope_rejected(self):
        with pytest.raises(DslError, match="bound twice"):
            lower("def f(packet, pkt):\n    pass\n",
                  packet_schema=DEFAULT_PACKET_SCHEMA)

    def test_keyword_parameters_rejected(self):
        with pytest.raises(DslError):
            lower("def f(packet=None):\n    pass\n",
                  packet_schema=DEFAULT_PACKET_SCHEMA)


class TestStateAccess:
    def test_read_and_write_scalar(self):
        src = ("def f(packet, msg):\n"
               "    msg.counter = msg.counter + packet.size\n")
        prog = lower(src, packet_schema=DEFAULT_PACKET_SCHEMA,
                     message_schema=MSG)
        stmts = prog.functions[0].body
        assert isinstance(stmts[0], T.AssignState)
        assert stmts[0].scope == "message"

    def test_write_readonly_field_rejected(self):
        with pytest.raises(DslError, match="read-only"):
            lower_ok("def f(packet):\n    packet.size = 0\n")

    def test_write_readonly_message_field_rejected(self):
        with pytest.raises(DslError, match="read-only"):
            lower_ok("def f(msg):\n    msg.limit = 1\n")

    def test_unknown_field_lists_alternatives(self):
        with pytest.raises(DslError, match="declared fields"):
            lower_ok("def f(packet):\n    packet.bogus = 1\n")

    def test_state_param_as_value_rejected(self):
        with pytest.raises(DslError,
                           match="cannot be used as a value"):
            lower_ok("def f(packet):\n    x = packet\n")

    def test_rebind_state_param_rejected(self):
        with pytest.raises(DslError, match="cannot rebind"):
            lower_ok("def f(packet):\n    packet = 1\n")


class TestArrays:
    def test_flat_array_read(self):
        prog = lower_ok(
            "def f(packet, _global):\n"
            "    packet.priority = _global.weights[2]\n")
        exprs = list(T.expressions_of(prog.functions[0].body[0]))
        assert isinstance(exprs[0], T.ArrayIndex)
        assert exprs[0].stride == 1 and exprs[0].offset == 0

    def test_record_array_member_read(self):
        prog = lower_ok(
            "def f(packet, _global):\n"
            "    packet.priority = _global.records[0].hi\n")
        expr = prog.functions[0].body[0].value
        assert isinstance(expr, T.ArrayIndex)
        assert expr.stride == 2 and expr.offset == 1

    def test_record_array_without_member_rejected(self):
        with pytest.raises(DslError, match="record array"):
            lower_ok("def f(packet, _global):\n"
                     "    packet.priority = _global.records[0]\n")

    def test_flat_array_with_member_rejected(self):
        with pytest.raises(DslError, match="no member"):
            lower_ok("def f(packet, _global):\n"
                     "    packet.priority = _global.weights[0].x\n")

    def test_len_of_array(self):
        prog = lower_ok("def f(packet, _global):\n"
                        "    packet.priority = len(_global.weights)\n")
        assert isinstance(prog.functions[0].body[0].value, T.ArrayLen)

    def test_len_of_scalar_rejected(self):
        with pytest.raises(DslError, match="not an array"):
            lower_ok("def f(packet, _global):\n"
                     "    packet.priority = len(_global.knob)\n")

    def test_writable_array_store(self):
        prog = lower_ok("def f(packet, _global):\n"
                        "    _global.scratch[0] = packet.size\n")
        assert isinstance(prog.functions[0].body[0], T.AssignArray)

    def test_readonly_array_store_rejected(self):
        with pytest.raises(DslError, match="read-only"):
            lower_ok("def f(packet, _global):\n"
                     "    _global.weights[0] = 1\n")

    def test_whole_array_read_rejected(self):
        with pytest.raises(DslError, match="must be indexed"):
            lower_ok("def f(packet, _global):\n"
                     "    x = _global.weights\n")

    def test_array_slice_rejected(self):
        with pytest.raises(DslError, match="slice"):
            lower_ok("def f(packet, _global):\n"
                     "    x = _global.weights[0:2]\n")


class TestRestrictions:
    def test_float_constant_rejected(self):
        with pytest.raises(DslError, match="not an integer"):
            lower_ok("def f(packet):\n    x = 1.5\n")

    def test_string_constant_rejected(self):
        with pytest.raises(DslError, match="not an integer"):
            lower_ok("def f(packet):\n    x = 'hello'\n")

    def test_true_division_rejected(self):
        with pytest.raises(DslError, match="use //"):
            lower_ok("def f(packet):\n    x = packet.size / 2\n")

    def test_power_operator_rejected(self):
        with pytest.raises(DslError):
            lower_ok("def f(packet):\n    x = packet.size ** 2\n")

    def test_docstring_allowed(self):
        prog = lower_ok('def f(packet):\n    """doc"""\n    pass\n')
        assert prog.functions[0].body == (T.Pass(),)

    def test_tuple_unpacking_rejected(self):
        with pytest.raises(DslError,
                           match="unpacking|outside the DSL"):
            lower_ok("def f(packet):\n    a, b = 1, 2\n")

    def test_import_rejected(self):
        with pytest.raises(DslError):
            lower_ok("def f(packet):\n    import os\n")

    def test_lambda_in_nested_function_rejected(self):
        with pytest.raises(DslError):
            lower_ok("def f(packet):\n"
                     "    def g():\n"
                     "        h = lambda: 1\n"
                     "        return 0\n"
                     "    x = g()\n")

    def test_while_else_rejected(self):
        with pytest.raises(DslError, match="while/else"):
            lower_ok("def f(packet):\n"
                     "    while packet.size > 0:\n"
                     "        pass\n"
                     "    else:\n"
                     "        pass\n")

    def test_in_comparison_rejected(self):
        with pytest.raises(DslError, match="not supported"):
            lower_ok("def f(packet, _global):\n"
                     "    x = 1 if packet.size in (1, 2) else 0\n")

    def test_unknown_name_rejected(self):
        with pytest.raises(DslError, match="unknown name"):
            lower_ok("def f(packet):\n    x = mystery\n")

    def test_use_before_assignment_rejected(self):
        with pytest.raises(DslError, match="before assignment"):
            lower_ok("def f(packet):\n"
                     "    if packet.size > 0:\n"
                     "        y = 1\n"
                     "    x = y\n")

    def test_assignment_in_both_branches_usable(self):
        prog = lower_ok("def f(packet):\n"
                        "    if packet.size > 0:\n"
                        "        y = 1\n"
                        "    else:\n"
                        "        y = 2\n"
                        "    packet.priority = y\n")
        assert prog is not None

    def test_break_outside_loop_rejected(self):
        with pytest.raises(DslError, match="break outside loop"):
            lower_ok("def f(packet):\n    break\n")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(DslError, match="continue outside loop"):
            lower_ok("def f(packet):\n    continue\n")


class TestLoops:
    def test_for_range_single_arg(self):
        prog = lower_ok("def f(packet):\n"
                        "    t = 0\n"
                        "    for i in range(3):\n"
                        "        t = t + i\n"
                        "    packet.priority = t\n")
        whiles = [s for s in T.walk_stmts(prog.functions[0].body)
                  if isinstance(s, T.While)]
        assert len(whiles) == 1

    def test_for_range_step_must_be_constant(self):
        with pytest.raises(DslError, match="integer constant"):
            lower_ok("def f(packet):\n"
                     "    for i in range(0, 10, packet.size):\n"
                     "        pass\n")

    def test_for_range_zero_step_rejected(self):
        with pytest.raises(DslError, match="non-zero"):
            lower_ok("def f(packet):\n"
                     "    for i in range(0, 10, 0):\n"
                     "        pass\n")

    def test_for_over_non_range_rejected(self):
        with pytest.raises(DslError, match="range"):
            lower_ok("def f(packet, _global):\n"
                     "    for i in _global.weights:\n"
                     "        pass\n")


class TestNestedFunctions:
    def test_simple_helper(self):
        prog = lower_ok("def f(packet):\n"
                        "    def double(x):\n"
                        "        return x * 2\n"
                        "    packet.priority = double(3)\n")
        assert len(prog.functions) == 2
        assert prog.functions[1].name == "double"

    def test_capture_becomes_hidden_parameter(self):
        prog = lower_ok("def f(packet):\n"
                        "    base = packet.size\n"
                        "    def add(x):\n"
                        "        return x + base\n"
                        "    packet.priority = add(1)\n")
        helper = prog.functions[1]
        assert helper.params == ("x", "base")
        call = prog.functions[0].body[-1].value
        assert isinstance(call, T.Call)
        assert len(call.args) == 2

    def test_recursion_allowed(self):
        prog = lower_ok(
            "def f(packet):\n"
            "    def fact(n):\n"
            "        if n <= 1:\n"
            "            return 1\n"
            "        return n * fact(n - 1)\n"
            "    packet.priority = fact(3)\n")
        assert len(prog.functions) == 2

    def test_assignment_in_nested_function_shadows(self):
        # Python semantics: assigning a name makes it local to the
        # nested function; the outer local is not captured.
        prog = lower_ok("def f(packet):\n"
                        "    base = 1\n"
                        "    def g():\n"
                        "        base = 2\n"
                        "        return base\n"
                        "    x = g()\n")
        assert prog.functions[1].params == ()

    def test_read_then_assign_in_nested_function_rejected(self):
        # Reading a name that the nested function also assigns is a
        # use-before-assignment error (again as in Python).
        with pytest.raises(DslError, match="before assignment"):
            lower_ok("def f(packet):\n"
                     "    base = 1\n"
                     "    def g():\n"
                     "        y = base\n"
                     "        base = 2\n"
                     "        return y\n"
                     "    x = g()\n")

    def test_wrong_arity_rejected(self):
        with pytest.raises(DslError, match="argument"):
            lower_ok("def f(packet):\n"
                     "    def g(x):\n"
                     "        return x\n"
                     "    y = g(1, 2)\n")

    def test_doubly_nested_function_rejected(self):
        with pytest.raises(DslError, match="further functions"):
            lower_ok("def f(packet):\n"
                     "    def g():\n"
                     "        def h():\n"
                     "            return 1\n"
                     "        return h()\n"
                     "    x = g()\n")


class TestBuiltins:
    def test_rand(self):
        prog = lower_ok("def f(packet):\n"
                        "    packet.priority = rand(8)\n")
        assert isinstance(prog.functions[0].body[0].value, T.Builtin)

    def test_clock(self):
        prog = lower_ok("def f(packet):\n"
                        "    x = clock()\n")
        assert prog is not None

    def test_rand_arity_checked(self):
        with pytest.raises(DslError):
            lower_ok("def f(packet):\n    x = rand()\n")

    def test_min_max_abs_are_sugar(self):
        prog = lower_ok(
            "def f(packet):\n"
            "    packet.priority = min(max(abs(0 - 3), 1), 7)\n")
        # Lowered entirely to IfExp / Compare — no Builtin nodes.
        def exprs(stmts):
            for stmt in T.walk_stmts(stmts):
                for e in T.expressions_of(stmt):
                    yield from T.walk_expr(e)
        assert not any(isinstance(e, T.Builtin)
                       for e in exprs(prog.functions[0].body))

    def test_unknown_function_rejected(self):
        with pytest.raises(DslError, match="unknown function"):
            lower_ok("def f(packet):\n    x = frobnicate(1)\n")


class TestExpressions:
    def test_chained_comparison_lowered_to_and(self):
        prog = lower_ok("def f(packet):\n"
                        "    x = 1 if 0 < packet.size < 100 else 0\n")
        assert prog is not None

    def test_bool_constants_become_ints(self):
        prog = lower_ok("def f(packet):\n"
                        "    x = True\n"
                        "    y = False\n")
        assert prog.functions[0].body[0].value == T.Const(1)
        assert prog.functions[0].body[1].value == T.Const(0)

    def test_augmented_assignment(self):
        prog = lower_ok("def f(msg):\n"
                        "    msg.counter += 2\n")
        stmt = prog.functions[0].body[0]
        assert isinstance(stmt, T.AssignState)
        assert isinstance(stmt.value, T.BinOp)

    def test_augmented_array_assignment(self):
        prog = lower_ok("def f(packet, _global):\n"
                        "    _global.scratch[1] += 5\n")
        assert isinstance(prog.functions[0].body[0], T.AssignArray)

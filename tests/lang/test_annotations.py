"""Tests for state schemas and annotations (paper Figure 8)."""

import pytest

from repro.lang import (AccessLevel, DEFAULT_PACKET_SCHEMA, Field,
                        FieldKind, Lifetime, Schema, SchemaError,
                        schema)


class TestField:
    def test_defaults(self):
        f = Field("x")
        assert f.access is AccessLevel.READ_ONLY
        assert f.kind is FieldKind.INT
        assert f.default == 0
        assert not f.is_array

    def test_int_field_stride_is_one(self):
        assert Field("x").stride == 1

    def test_flat_array_stride_is_one(self):
        f = Field("xs", kind=FieldKind.ARRAY)
        assert f.stride == 1
        assert f.is_array

    def test_record_array_stride_counts_members(self):
        f = Field("rs", kind=FieldKind.RECORD_ARRAY,
                  record_fields=("a", "b", "c"))
        assert f.stride == 3

    def test_record_array_requires_members(self):
        with pytest.raises(ValueError):
            Field("rs", kind=FieldKind.RECORD_ARRAY)

    def test_non_record_array_rejects_members(self):
        with pytest.raises(ValueError):
            Field("xs", kind=FieldKind.ARRAY, record_fields=("a",))

    def test_record_offset(self):
        f = Field("rs", kind=FieldKind.RECORD_ARRAY,
                  record_fields=("a", "b"))
        assert f.record_offset("a") == 0
        assert f.record_offset("b") == 1

    def test_record_offset_unknown_member(self):
        f = Field("rs", kind=FieldKind.RECORD_ARRAY,
                  record_fields=("a",))
        with pytest.raises(KeyError):
            f.record_offset("zzz")

    def test_writable_array_with_binder_rejected(self):
        with pytest.raises(ValueError):
            Field("xs", AccessLevel.READ_WRITE, FieldKind.ARRAY,
                  binder=lambda pkt, store: [])

    def test_readonly_array_with_binder_allowed(self):
        f = Field("xs", AccessLevel.READ_ONLY, FieldKind.ARRAY,
                  binder=lambda pkt, store: [1, 2])
        assert f.binder is not None


class TestSchema:
    def test_field_lookup(self):
        s = schema("S", Lifetime.GLOBAL, [Field("a"), Field("b")])
        assert s.field_named("a").name == "a"
        assert s.has_field("b")
        assert not s.has_field("c")

    def test_field_lookup_missing_raises(self):
        s = schema("S", Lifetime.GLOBAL, [Field("a")])
        with pytest.raises(SchemaError):
            s.field_named("missing")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            schema("S", Lifetime.GLOBAL, [Field("a"), Field("a")])

    def test_packet_schema_rejects_arrays(self):
        with pytest.raises(SchemaError):
            schema("P", Lifetime.PACKET,
                   [Field("xs", kind=FieldKind.ARRAY)])

    def test_field_names_ordered(self):
        s = schema("S", Lifetime.GLOBAL,
                   [Field("z"), Field("a"), Field("m")])
        assert s.field_names == ("z", "a", "m")

    def test_writable_fields(self):
        s = schema("S", Lifetime.GLOBAL, [
            Field("ro"), Field("rw", AccessLevel.READ_WRITE)])
        assert [f.name for f in s.writable_fields()] == ["rw"]


class TestDefaultPacketSchema:
    def test_lifetime(self):
        assert DEFAULT_PACKET_SCHEMA.lifetime is Lifetime.PACKET

    def test_size_maps_to_ipv4_total_length(self):
        f = DEFAULT_PACKET_SCHEMA.field_named("size")
        assert f.header_map["ipv4"] == "total_length"
        assert f.access is AccessLevel.READ_ONLY

    def test_priority_maps_to_pcp_and_is_writable(self):
        f = DEFAULT_PACKET_SCHEMA.field_named("priority")
        assert f.header_map["802.1q"] == "pcp"
        assert f.access is AccessLevel.READ_WRITE

    def test_header_fields_are_writable(self):
        # Section 3.4.2: action functions can change header fields.
        for name in ("src_ip", "dst_ip", "src_port", "dst_port"):
            f = DEFAULT_PACKET_SCHEMA.field_named(name)
            assert f.access is AccessLevel.READ_WRITE, name

    def test_eden_control_fields_present(self):
        for name in ("drop", "to_controller", "queue_id", "charge",
                     "path_id"):
            assert DEFAULT_PACKET_SCHEMA.has_field(name), name

    def test_no_arrays(self):
        assert not any(f.is_array
                       for f in DEFAULT_PACKET_SCHEMA.fields)

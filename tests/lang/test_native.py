"""Tests for the native backend and its equivalence contract."""

import pytest

from repro.lang import InterpreterFault, NativeFault

from conftest import Harness

PROGRAMS = [
    # (source, fields, arrays)
    ("def f(packet):\n"
     "    packet.priority = (packet.size * 3 - 7) % 11\n",
     {("packet", "size"): 1514}, {}),
    ("def f(packet, msg):\n"
     "    msg.counter = msg.counter + packet.size\n"
     "    packet.priority = 1 if msg.counter > msg.limit else 0\n",
     {("packet", "size"): 4, ("message", "counter"): 2,
      ("message", "limit"): 5}, {}),
    ("def f(packet, _global):\n"
     "    total = 0\n"
     "    for i in range(len(_global.weights)):\n"
     "        total += _global.weights[i]\n"
     "    packet.queue_id = total\n",
     {}, {("global", "weights"): [5, 10, 15]}),
    ("def f(packet, _global):\n"
     "    def pick(i):\n"
     "        if i >= len(_global.records):\n"
     "            return 0 - 1\n"
     "        elif packet.size <= _global.records[i].lo:\n"
     "            return _global.records[i].hi\n"
     "        else:\n"
     "            return pick(i + 1)\n"
     "    packet.priority = pick(0)\n",
     {("packet", "size"): 50},
     {("global", "records"): [10, 7, 100, 6, 10000, 5]}),
    ("def f(packet, _global):\n"
     "    _global.scratch[packet.size % len(_global.scratch)] += 1\n"
     "    _global.knob = _global.knob + 1\n",
     {("packet", "size"): 7, ("global", "knob"): 41},
     {("global", "scratch"): [0, 0, 0]}),
]


class TestEquivalence:
    @pytest.mark.parametrize("source,fields,arrays", PROGRAMS)
    def test_same_fields_and_arrays(self, source, fields, arrays):
        h = Harness(source)
        ri, fi, ai = h.run("interpreter", fields=fields,
                           arrays=arrays, seed=7)
        rn, fn_, an = h.run("native", fields=fields, arrays=arrays,
                            seed=7)
        assert fi == fn_
        assert ai == an
        assert ri.value == rn.value

    def test_rand_sequence_identical(self):
        src = ("def f(packet):\n"
               "    packet.priority = rand(7)\n"
               "    packet.queue_id = rand(100)\n")
        h = Harness(src)
        _, fi, _ = h.run("interpreter", seed=99)
        _, fn_, _ = h.run("native", seed=99)
        assert fi == fn_

    def test_clock_identical(self):
        src = "def f(packet):\n    packet.queue_id = clock()\n"
        h = Harness(src)
        _, fi, _ = h.run("interpreter", clock=314)
        _, fn_, _ = h.run("native", clock=314)
        assert fi == fn_
        assert fi[("packet", "queue_id")] == 314


class TestNativeFaults:
    def test_division_by_zero(self):
        h = Harness("def f(packet):\n"
                    "    packet.priority = 5 // packet.size\n")
        with pytest.raises(NativeFault, match="division"):
            h.run("native", fields={("packet", "size"): 0})

    def test_array_out_of_bounds(self):
        h = Harness("def f(packet, _global):\n"
                    "    packet.priority = _global.weights[10]\n")
        with pytest.raises(NativeFault, match="out of bounds"):
            h.run("native", arrays={("global", "weights"): [1]})

    def test_shift_out_of_range(self):
        h = Harness("def f(packet):\n"
                    "    packet.priority = 1 << packet.size\n")
        with pytest.raises(NativeFault, match="shift"):
            h.run("native", fields={("packet", "size"): 99})

    def test_rand_bad_bound(self):
        h = Harness("def f(packet):\n"
                    "    packet.priority = rand(packet.size)\n")
        with pytest.raises(NativeFault, match="rand"):
            h.run("native", fields={("packet", "size"): 0})

    def test_native_fault_is_interpreter_fault_subclass(self):
        # The enclave catches InterpreterFault for both backends.
        assert issubclass(NativeFault, InterpreterFault)

    def test_deep_recursion_faults_not_crashes(self):
        h = Harness("def f(packet):\n"
                    "    def down(n):\n"
                    "        if n == 0:\n"
                    "            return 0\n"
                    "        return 1 + down(n - 1)\n"
                    "    packet.priority = down(100000)\n",
                    optimize_tail_calls=False)
        with pytest.raises(InterpreterFault):
            h.run("native")


class TestGeneratedSource:
    def test_source_is_available_for_inspection(self):
        from repro.lang import NativeFunction
        h = Harness("def f(packet):\n    packet.priority = 1\n")
        native = NativeFunction(h.ast, h.program)
        assert "def __entry__" in native.python_source
        assert "F[" in native.python_source

    def test_wraparound_matches_interpreter(self):
        src = ("def f(packet):\n"
               "    big = 1 << 62\n"
               "    packet.queue_id = big * 4 + packet.size\n")
        h = Harness(src)
        _, fi, _ = h.run("interpreter",
                         fields={("packet", "size"): 3})
        _, fn_, _ = h.run("native", fields={("packet", "size"): 3})
        assert fi == fn_

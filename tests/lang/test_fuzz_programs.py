"""Differential fuzzing of the language pipeline.

``program_gen`` generates random (syntactically valid) DSL programs
from integer seeds; every generated program must:

* lower, compile (with and without the peephole optimizer), and pass
  the static verifier;
* behave identically on the interpreter and the native backend —
  including *faulting identically* (e.g. division by zero);
* behave identically with and without the optimizer.

The generator was promoted from this file's old hypothesis strategies
into the reusable, plain-``random`` module ``tests/lang/program_gen.py``
so the three-backend differential harness (``test_differential.py``)
and the optimizer property tests share it; a failing seed reproduces
exactly and can be persisted to ``tests/lang/corpus/``.
"""

import pytest

from repro.lang import verify
from repro.lang.compiler import compile_ast

import program_gen as pg

PIPELINE_SEEDS = range(120)


class TestFuzzedPrograms:
    @pytest.mark.parametrize("seed", PIPELINE_SEEDS)
    def test_pipeline_and_backend_equivalence(self, seed):
        source = pg.generate_program(seed)
        prog_ast = pg.lower_source(source)
        raw = compile_ast(prog_ast, peephole=False)
        opt = compile_ast(prog_ast, peephole=True)
        verify(raw)
        verify(opt)

        fields, arrays = pg.generate_inputs(raw, seed * 131 + 7)
        fvec_raw, avec_raw = pg.vectors(raw, fields, arrays)
        fvec_opt, avec_opt = pg.vectors(opt, fields, arrays)

        res_interp = pg.run_interp(raw, fvec_raw, avec_raw, "fast")
        res_native = pg.run_native(prog_ast, raw, fvec_raw, avec_raw)
        res_opt = pg.run_interp(opt, fvec_opt, avec_opt, "fast")

        # Interpreter vs native: same outcome; same results when ok.
        assert res_interp[0] == res_native[0], source
        if res_interp[0] == "ok":
            assert res_native[1:] == res_interp[1:4], source
        # Optimized vs raw bytecode: same outcome and same results
        # (stats differ legitimately — the optimizer removes ops).
        assert res_opt[0] == res_interp[0], source
        if res_interp[0] == "ok":
            assert res_opt[1:4] == res_interp[1:4], source

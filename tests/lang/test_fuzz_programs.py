"""Differential fuzzing of the language pipeline.

Hypothesis generates random (syntactically valid) DSL programs; every
generated program must:

* lower, compile (with and without the peephole optimizer), and pass
  the static verifier;
* behave identically on the interpreter and the native backend —
  including *faulting identically* (e.g. division by zero);
* behave identically with and without the optimizer.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import (DEFAULT_PACKET_SCHEMA, Interpreter,
                        InterpreterFault, NativeFunction,
                        compile_action, verify)
from repro.lang.compiler import compile_ast
from repro.lang.dsl import lower

from conftest import GLB_SCHEMA, MSG_SCHEMA

ATOMS = ("packet.size", "msg.counter", "msg.limit", "_global.knob",
         "v0", "v1")
BINOPS = ("+", "-", "*", "//", "%", "&", "|", "^")
CMPS = ("<", "<=", "==", "!=", ">", ">=")
WRITABLE = ("packet.priority", "packet.queue_id", "msg.counter",
            "_global.knob", "v0", "v1")


@st.composite
def expressions(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, len(ATOMS)))
        if choice == len(ATOMS):
            return str(draw(st.integers(-50, 50)))
        return ATOMS[choice]
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    op = draw(st.sampled_from(BINOPS))
    return f"({left} {op} {right})"


@st.composite
def conditions(draw):
    left = draw(expressions(depth=1))
    right = draw(expressions(depth=1))
    return f"{left} {draw(st.sampled_from(CMPS))} {right}"


@st.composite
def statements(draw, indent, depth=2):
    kind = draw(st.integers(0, 3 if depth > 0 else 1))
    pad = "    " * indent
    if kind <= 1:
        target = draw(st.sampled_from(WRITABLE))
        value = draw(expressions())
        return [f"{pad}{target} = {value}"]
    if kind == 2:
        cond = draw(conditions())
        then = draw(blocks(indent + 1, depth - 1))
        orelse = draw(blocks(indent + 1, depth - 1))
        lines = [f"{pad}if {cond}:"] + then
        if draw(st.booleans()):
            lines += [f"{pad}else:"] + orelse
        return lines
    bound = draw(st.integers(1, 5))
    body = draw(blocks(indent + 1, depth - 1))
    var = f"i{indent}"
    return [f"{pad}for {var} in range({bound}):"] + body


@st.composite
def blocks(draw, indent, depth=2):
    n = draw(st.integers(1, 3))
    lines = []
    for _ in range(n):
        lines.extend(draw(statements(indent, depth)))
    return lines


@st.composite
def programs(draw):
    body = ["    v0 = packet.size % 97",
            "    v1 = msg.counter + 1"]
    body.extend(draw(blocks(indent=1, depth=2)))
    return ("def f(packet, msg, _global):\n" + "\n".join(body) + "\n")


def run_backend(kind, prog_ast, program, fields, seed=3):
    import random
    fvec = [fields.get((r.scope, r.name), 0)
            for r in program.field_table]
    avec = [[] for _ in program.array_table]
    try:
        if kind == "native":
            native = NativeFunction(prog_ast, program,
                                    rng=random.Random(seed))
            result = native.execute(fvec, avec)
        else:
            interp = Interpreter(rng=random.Random(seed),
                                 op_budget=200_000)
            result = interp.execute(program, fvec, avec)
    except InterpreterFault as fault:
        return ("fault",)
    outputs = {(r.scope, r.name): v
               for r, v in zip(program.field_table, result.fields)}
    return ("ok", outputs)


class TestFuzzedPrograms:
    @settings(max_examples=120, deadline=None)
    @given(source=programs(),
           size=st.integers(-1000, 1000),
           counter=st.integers(-1000, 1000),
           knob=st.integers(-1000, 1000))
    def test_pipeline_and_backend_equivalence(self, source, size,
                                              counter, knob):
        prog_ast = lower(source,
                         packet_schema=DEFAULT_PACKET_SCHEMA,
                         message_schema=MSG_SCHEMA,
                         global_schema=GLB_SCHEMA)
        raw = compile_ast(prog_ast, peephole=False)
        opt = compile_ast(prog_ast, peephole=True)
        verify(raw)
        verify(opt)

        fields = {("packet", "size"): size,
                  ("message", "counter"): counter,
                  ("global", "knob"): knob}
        res_interp = run_backend("interpreter", prog_ast, raw,
                                 fields)
        res_native = run_backend("native", prog_ast, raw, fields)
        res_opt = run_backend("interpreter", prog_ast, opt, fields)
        assert res_interp == res_native, source
        assert res_interp == res_opt, source

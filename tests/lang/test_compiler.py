"""Tests for the bytecode compiler: code shape and optimizations."""

import pytest

from repro.lang import Op, compile_action, verify
from repro.lang.bytecode import Assembler, Instr

from conftest import Harness


def ops_of(program, fn_index=0):
    return [i.op for i in program.functions[fn_index].code]


class TestCodeShape:
    def test_assignment_compiles_to_putf(self):
        h = Harness("def f(packet):\n    packet.priority = 3\n")
        assert ops_of(h.program)[:2] == [Op.CONST, Op.PUTF]

    def test_state_read_compiles_to_getf(self):
        h = Harness("def f(packet):\n"
                    "    packet.priority = packet.size\n")
        assert Op.GETF in ops_of(h.program)

    def test_array_access_uses_abase_hload(self):
        h = Harness("def f(packet, _global):\n"
                    "    packet.priority = _global.weights[0]\n")
        ops = ops_of(h.program)
        assert Op.ABASE in ops and Op.HLOAD in ops

    def test_record_access_multiplies_by_stride(self):
        h = Harness("def f(packet, _global):\n"
                    "    packet.priority = "
                    "_global.records[packet.size].hi\n")
        consts = [i.arg for i in h.program.entry.code
                  if i.op is Op.CONST]
        assert 2 in consts  # the stride
        assert Op.MUL in ops_of(h.program)

    def test_flat_array_skips_stride_multiply(self):
        h = Harness("def f(packet, _global):\n"
                    "    packet.priority = _global.weights[1]\n")
        assert Op.MUL not in ops_of(h.program)

    def test_every_function_ends_with_ret(self):
        h = Harness("def f(packet):\n"
                    "    def g(x):\n"
                    "        return x\n"
                    "    packet.priority = g(1)\n")
        for fn in h.program.functions:
            assert fn.code[-1].op is Op.RET

    def test_field_table_deduplicates(self):
        h = Harness("def f(packet):\n"
                    "    packet.priority = packet.size + packet.size\n"
                    "    packet.queue_id = packet.size\n")
        names = [(r.scope, r.name) for r in h.program.field_table]
        assert len(names) == len(set(names))

    def test_disassembly_mentions_state_names(self):
        h = Harness("def f(packet):\n"
                    "    packet.priority = packet.size\n")
        listing = h.program.disassemble()
        assert "packet.size" in listing
        assert "packet.priority" in listing


class TestTailCallOptimization:
    SRC = ("def f(packet):\n"
           "    def loop(n, acc):\n"
           "        if n == 0:\n"
           "            return acc\n"
           "        return loop(n - 1, acc + n)\n"
           "    packet.queue_id = loop(50, 0)\n")

    def test_tco_removes_self_call(self):
        h = Harness(self.SRC, optimize_tail_calls=True)
        helper = h.program.functions[1]
        call_targets = [i.arg for i in helper.code
                        if i.op is Op.CALL]
        assert 1 not in call_targets  # no self-CALL left

    def test_without_tco_self_call_remains(self):
        h = Harness(self.SRC, optimize_tail_calls=False)
        helper = h.program.functions[1]
        call_targets = [i.arg for i in helper.code
                        if i.op is Op.CALL]
        assert 1 in call_targets

    def test_same_result_either_way(self):
        expected = sum(range(51))
        for tco in (True, False):
            h = Harness(self.SRC, optimize_tail_calls=tco)
            _, fields, _ = h.run()
            assert fields[("packet", "queue_id")] == expected

    def test_tco_keeps_call_depth_flat(self):
        h = Harness(self.SRC, optimize_tail_calls=True)
        result, _, _ = h.run()
        assert result.stats.max_call_depth == 2  # entry + one frame

    def test_non_tail_recursion_not_optimized(self):
        src = ("def f(packet):\n"
               "    def fact(n):\n"
               "        if n <= 1:\n"
               "            return 1\n"
               "        return n * fact(n - 1)\n"
               "    packet.queue_id = fact(5)\n")
        h = Harness(src, optimize_tail_calls=True)
        helper = h.program.functions[1]
        assert any(i.op is Op.CALL for i in helper.code)


class TestAssembler:
    def test_unbound_label_rejected(self):
        asm = Assembler("f", 0)
        asm.emit_jump(Op.JMP, "nowhere")
        with pytest.raises(ValueError, match="unbound label"):
            asm.finish(n_locals=0)

    def test_double_bind_rejected(self):
        asm = Assembler("f", 0)
        asm.bind("L")
        with pytest.raises(ValueError, match="bound twice"):
            asm.bind("L")

    def test_labels_resolve_to_indices(self):
        asm = Assembler("f", 0)
        asm.emit(Op.CONST, 0)
        target = asm.new_label()
        asm.emit_jump(Op.JMP, target)
        asm.emit(Op.POP)
        asm.bind(target)
        asm.emit(Op.RET)
        code = asm.finish(n_locals=0).code
        assert code[1].arg == 3

    def test_instr_arg_validation(self):
        with pytest.raises(ValueError):
            Instr(Op.CONST)          # missing arg
        with pytest.raises(ValueError):
            Instr(Op.ADD, 1)         # spurious arg

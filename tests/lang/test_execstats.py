"""ExecStats accounting across dispatch modes.

The fast-dispatch backend fuses instruction pairs/triples into
superinstructions; ``ops_executed`` must still count the *constituent*
bytecode ops so the §5.4 micro-bench (ns/op) stays comparable across
dispatch modes.  These tests pin the count for hand-assembled programs
whose fusion shapes are known, and assert tree/fast stats equality on
compiled programs.
"""

import pytest

from repro.lang import Instr, Interpreter, Op
from repro.lang.bytecode import FunctionCode, Program
from repro.lang.fastdispatch import fast_code

from conftest import Harness


def _program(code, name="pinned", n_locals=2):
    fn = FunctionCode("f", 0, n_locals, tuple(code))
    return Program(name, (fn,), (), ())


class TestPinnedOpCounts:
    def test_fused_straight_line_counts_constituents(self):
        # CONST;CONST fuse to push_push, ADD;RET stay single: the
        # fast path executes 2 handlers but must report 4 ops.
        prog = _program([
            Instr(Op.CONST, 2),
            Instr(Op.CONST, 3),
            Instr(Op.ADD),
            Instr(Op.RET),
        ])
        for dispatch in ("tree", "fast"):
            res = Interpreter(dispatch=dispatch).execute(prog, [], [])
            assert res.value == 5
            assert res.stats.ops_executed == 4, dispatch
            assert res.stats.max_operand_stack == 2, dispatch

    def test_fused_loop_counts_constituents(self):
        # A count-down loop built from fusable pairs:
        #   0 CONST 5        \ fused push+STORE
        #   1 STORE 0        /
        #   2 LOAD 0         \ fused push+cmp+branch (loop header)
        #   3 CONST 0        |   ...actually LOAD;CONST;CGT -> the
        #   4 CGT            |   fuser sees LOAD;CONST as push_push
        #   5 JZ 11          /   then CGT;JZ as cmp_branch
        #   6 LOAD 0         \ fused push+binop (CONST;SUB)
        #   7 CONST 1        |
        #   8 SUB            |
        #   9 STORE 0        / STORE fused with nothing (prev is SUB)
        #  10 JMP 2
        #  11 LOAD 0
        #  12 RET
        prog = _program([
            Instr(Op.CONST, 5),
            Instr(Op.STORE, 0),
            Instr(Op.LOAD, 0),
            Instr(Op.CONST, 0),
            Instr(Op.CGT),
            Instr(Op.JZ, 11),
            Instr(Op.LOAD, 0),
            Instr(Op.CONST, 1),
            Instr(Op.SUB),
            Instr(Op.STORE, 0),
            Instr(Op.JMP, 2),
            Instr(Op.LOAD, 0),
            Instr(Op.RET),
        ])
        # 2 setup ops + 5 iterations of 9 ops (2..10) + the exit pass
        # (2..5, then 11..12) = 2 + 45 + 4 + 2 = 53.
        tree = Interpreter(dispatch="tree").execute(prog, [], [])
        fast = Interpreter(dispatch="fast").execute(prog, [], [])
        assert tree.value == 0
        assert fast.value == tree.value
        assert tree.stats.ops_executed == 53
        assert fast.stats.ops_executed == tree.stats.ops_executed
        assert fast.stats.max_operand_stack == \
            tree.stats.max_operand_stack
        assert fast.stats.max_call_depth == tree.stats.max_call_depth

    def test_fusion_actually_happened(self):
        # Guard against the fusion pass silently regressing: the
        # straight-line program above must compile to fewer distinct
        # handlers than instructions.
        prog = _program([
            Instr(Op.CONST, 2),
            Instr(Op.CONST, 3),
            Instr(Op.ADD),
            Instr(Op.RET),
        ])
        handlers = fast_code(prog)[0]
        # pc 0 holds the push_push superinstruction; pc 1 keeps its
        # unfused handler only as a jump-target fallback.
        res = Interpreter(dispatch="fast").execute(prog, [], [])
        assert res.stats.ops_executed == 4
        assert len(handlers) == 5  # 4 instructions + fell-off sentinel


class TestCompiledProgramStats:
    @pytest.mark.parametrize("source,fields", [
        ("def f(packet, msg, _global):\n"
         "    total = 0\n"
         "    for i in range(8):\n"
         "        total += _global.weights[i % 8] * 3\n"
         "    packet.queue_id = total % 251\n",
         {("packet", "size"): 640}),
        ("def f(packet, msg, _global):\n"
         "    def helper(a, b):\n"
         "        if a > b:\n"
         "            return a - b\n"
         "        return helper(a + 1, b)\n"
         "    packet.queue_id = helper(0, 3)\n",
         {}),
    ])
    def test_stats_identical_across_dispatch(self, source, fields):
        h = Harness(source)
        arrays = {("global", "weights"): [3, 1, 4, 1, 5, 9, 2, 6]}
        res_tree, _, _ = h.run(fields=fields, arrays=arrays,
                               dispatch="tree")
        res_fast, _, _ = h.run(fields=fields, arrays=arrays,
                               dispatch="fast")
        assert res_fast.stats.ops_executed == \
            res_tree.stats.ops_executed
        assert res_fast.stats.max_operand_stack == \
            res_tree.stats.max_operand_stack
        assert res_fast.stats.max_call_depth == \
            res_tree.stats.max_call_depth
        assert res_fast.stats.heap_words == res_tree.stats.heap_words

"""Property-based tests: interpreter/native equivalence and
arithmetic invariants, via hypothesis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import wrap64
from repro.lang.bytecode import INT_MAX, INT_MIN

from conftest import Harness

ints64 = st.integers(min_value=INT_MIN, max_value=INT_MAX)
small_ints = st.integers(min_value=-1000, max_value=1000)


class TestWrap64:
    @given(ints64)
    def test_identity_in_range(self, x):
        assert wrap64(x) == x

    @given(st.integers())
    def test_always_in_range(self, x):
        assert INT_MIN <= wrap64(x) <= INT_MAX

    @given(st.integers())
    def test_idempotent(self, x):
        assert wrap64(wrap64(x)) == wrap64(x)

    @given(st.integers(), st.integers())
    def test_addition_homomorphism(self, a, b):
        assert wrap64(wrap64(a) + wrap64(b)) == wrap64(a + b)

    @given(st.integers(), st.integers())
    def test_multiplication_homomorphism(self, a, b):
        assert wrap64(wrap64(a) * wrap64(b)) == wrap64(a * b)


# Compile-once program table for equivalence properties.
_ARITH = Harness(
    "def f(packet, msg, _global):\n"
    "    a = packet.size\n"
    "    b = msg.counter\n"
    "    c = _global.knob\n"
    "    x = a * 31 + (b ^ c)\n"
    "    y = (x << 3) >> 2\n"
    "    if b != 0:\n"
    "        y = y + a // b + a % b\n"
    "    packet.queue_id = y\n"
    "    msg.counter = (b + 1) & 1023\n")

_LOOPY = Harness(
    "def f(packet, _global):\n"
    "    total = 0\n"
    "    n = len(_global.weights)\n"
    "    for i in range(n):\n"
    "        if _global.weights[i] < 0:\n"
    "            continue\n"
    "        total += _global.weights[i]\n"
    "        if total > 10000:\n"
    "            break\n"
    "    packet.queue_id = total\n")

_RECURSIVE = Harness(
    "def f(packet, _global):\n"
    "    def search(i):\n"
    "        if i >= len(_global.records):\n"
    "            return 0 - 1\n"
    "        elif packet.size <= _global.records[i].lo:\n"
    "            return _global.records[i].hi\n"
    "        else:\n"
    "            return search(i + 1)\n"
    "    packet.queue_id = search(0)\n")


class TestBackendEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(size=ints64, counter=small_ints, knob=ints64)
    def test_arithmetic_program(self, size, counter, knob):
        fields = {("packet", "size"): size,
                  ("message", "counter"): counter,
                  ("global", "knob"): knob}
        ri, fi, ai = _ARITH.run("interpreter", fields=fields)
        rn, fn_, an = _ARITH.run("native", fields=fields)
        assert fi == fn_ and ai == an and ri.value == rn.value

    @settings(max_examples=60, deadline=None)
    @given(weights=st.lists(small_ints, max_size=20))
    def test_loop_program(self, weights):
        arrays = {("global", "weights"): weights}
        _, fi, _ = _LOOPY.run("interpreter", arrays=arrays)
        _, fn_, _ = _LOOPY.run("native", arrays=arrays)
        assert fi == fn_

    @settings(max_examples=60, deadline=None)
    @given(size=st.integers(min_value=0, max_value=100_000),
           records=st.lists(
               st.tuples(st.integers(min_value=0, max_value=100_000),
                         st.integers(min_value=0, max_value=7)),
               max_size=10))
    def test_recursive_search_program(self, size, records):
        flat = [v for rec in records for v in rec]
        fields = {("packet", "size"): size}
        arrays = {("global", "records"): flat}
        _, fi, _ = _RECURSIVE.run("interpreter", fields=fields,
                                  arrays=arrays)
        _, fn_, _ = _RECURSIVE.run("native", fields=fields,
                                   arrays=arrays)
        assert fi == fn_

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31),
           bound=st.integers(min_value=1, max_value=1_000_000))
    def test_rand_equivalence(self, seed, bound):
        h = Harness(f"def f(packet):\n"
                    f"    packet.queue_id = rand({bound})\n")
        _, fi, _ = h.run("interpreter", seed=seed)
        _, fn_, _ = h.run("native", seed=seed)
        assert fi == fn_


class TestInterpreterInvariants:
    @settings(max_examples=40, deadline=None)
    @given(size=ints64, counter=small_ints, knob=ints64)
    def test_outputs_always_wrapped(self, size, counter, knob):
        fields = {("packet", "size"): size,
                  ("message", "counter"): counter,
                  ("global", "knob"): knob}
        result, _, _ = _ARITH.run("interpreter", fields=fields)
        for value in result.fields:
            assert INT_MIN <= value <= INT_MAX

    @settings(max_examples=40, deadline=None)
    @given(weights=st.lists(small_ints, min_size=1, max_size=20))
    def test_readonly_arrays_never_mutated(self, weights):
        arrays = {("global", "weights"): weights}
        _, _, out_arrays = _LOOPY.run("interpreter", arrays=arrays)
        assert out_arrays[("global", "weights")] == \
            [wrap64(w) for w in weights]

    @settings(max_examples=40, deadline=None)
    @given(size=ints64)
    def test_deterministic_given_seed(self, size):
        fields = {("packet", "size"): size,
                  ("message", "counter"): 3,
                  ("global", "knob"): 9}
        r1, f1, _ = _ARITH.run("interpreter", fields=fields, seed=5)
        r2, f2, _ = _ARITH.run("interpreter", fields=fields, seed=5)
        assert f1 == f2 and r1.value == r2.value
        assert r1.stats.ops_executed == r2.stats.ops_executed

"""Edge-case pins for the codegen/fusion fault contract.

Three scenarios where the superinstruction fusion pass and the
pycodegen backend hoist or batch work that the tree walk does one op
at a time — exactly where a sloppy implementation would drift from
the reference semantics:

* an op-budget fault whose boundary lands *inside* a fused window
  (both fast dispatch and codegen charge a window's ops up-front);
* an operand-stack-depth fault at the exact limit (fused windows only
  check depth at new running maxima);
* a ``PUTF`` to a read-only field slot (fusion must refuse to fuse
  the window; the plain handler owns the fault).

Every scenario is pinned to identical ``ExecStats`` and identical
fault class + *message* across tree / fast / pycodegen, using the
same summary tuples as the differential harness.
"""

import pytest

from repro.lang.bytecode import (Assembler, FieldRef, Op,
                                 Program)
from repro.lang.compiler import compile_ast
from repro.lang.fastdispatch import fast_code

import program_gen as pg

DISPATCHES = ("tree", "fast", "pycodegen")

LOOP_SOURCE = (
    "def f(packet, msg, _global):\n"
    "    v0 = 8\n"
    "    while v0 > 0:\n"
    "        v0 = v0 - 1\n"
    "        msg.counter = msg.counter + v0\n"
)

DEEP_EXPR_SOURCE = (
    "def f(packet, msg, _global):\n"
    "    v0 = packet.size + (msg.counter + (msg.limit + "
    "(_global.knob + packet.priority)))\n"
)


def _compile(source):
    return compile_ast(pg.lower_source(source))


def _zero_vectors(program):
    return ([0] * len(program.field_table),
            [[] for _ in program.array_table])


class TestBudgetFaultMidSuperinstruction:
    """Budget hoisting inside fused windows never changes outcomes."""

    def test_loop_program_actually_fuses(self):
        program = _compile(LOOP_SOURCE)
        quals = [h.__qualname__ for h in fast_code(program)[0]]
        assert any(q.startswith("_w.") for q in quals), (
            "loop body no longer compiles to any fused window; "
            "the budget sweep below would not cross one")

    def test_every_budget_boundary_agrees(self):
        """Sweep the budget across every op of a fused loop.

        Fast dispatch and codegen charge a whole window/segment at
        its first op, so many of these budgets land mid-window; the
        fault (class, reason) and any ok-run stats must still be
        bit-identical to the per-op tree walk.
        """
        program = _compile(LOOP_SOURCE)
        fvec, avec = _zero_vectors(program)
        total = pg.run_interp(program, fvec, avec, "tree")[4][0]
        assert total > 50
        faults = 0
        for budget in range(1, total + 2):
            runs = {d: pg.run_interp(program, fvec, avec, d,
                                     op_budget=budget)
                    for d in DISPATCHES}
            assert runs["fast"] == runs["tree"], budget
            assert runs["pycodegen"] == runs["tree"], budget
            if runs["tree"][0] == "fault":
                faults += 1
                assert runs["tree"][1] == "InterpreterFault"
                assert runs["tree"][2] == \
                    f"op budget of {budget} exceeded"
        # Every budget below the program's total op count faults.
        assert faults == total - 1


class TestStackDepthFaultAtExactLimit:
    """The depth check convention is invisible at the boundary."""

    def _depth(self, program):
        fvec, avec = _zero_vectors(program)
        return pg.run_interp(program, fvec, avec, "tree")[4][1]

    def test_exact_limit_is_allowed(self):
        program = _compile(DEEP_EXPR_SOURCE)
        depth = self._depth(program)
        assert depth >= 5
        fvec, avec = _zero_vectors(program)
        runs = [pg.run_interp(program, fvec, avec, d,
                              max_operand_stack=depth)
                for d in DISPATCHES]
        assert runs[0][0] == "ok"
        assert runs[0] == runs[1] == runs[2]
        assert runs[0][4][1] == depth  # stats pin the exact maximum

    def test_one_below_limit_faults_identically(self):
        program = _compile(DEEP_EXPR_SOURCE)
        depth = self._depth(program)
        fvec, avec = _zero_vectors(program)
        runs = [pg.run_interp(program, fvec, avec, d,
                              max_operand_stack=depth - 1)
                for d in DISPATCHES]
        assert runs[0] == runs[1] == runs[2]
        assert runs[0] == (
            "fault", "InterpreterFault",
            f"operand stack of {depth} words exceeds limit "
            f"{depth - 1}")


def _readonly_putf_program():
    """Hand-assembled ``CONST 7; PUTF 0`` against a read-only slot.

    The DSL frontend and the verifier both reject this statically, so
    the runtime check is reachable only from raw bytecode — exactly
    the defense-in-depth path fusion must not bypass (a window
    containing a read-only ``PUTF`` is refused at compile time and
    the plain handler faults).
    """
    asm = Assembler("f", n_args=0)
    asm.emit(Op.CONST, 7)
    asm.emit(Op.PUTF, 0)
    asm.emit(Op.CONST, 0)
    asm.emit(Op.RET)
    return Program(
        name="readonly_putf",
        functions=(asm.finish(n_locals=0),),
        field_table=(FieldRef("message", "limit", False),),
        array_table=())


class TestReadonlyPutfScopeFault:
    def test_all_dispatches_fault_with_scope_and_name(self):
        program = _readonly_putf_program()
        runs = [pg.run_interp(program, [5], [], d)
                for d in DISPATCHES]
        assert runs[0] == runs[1] == runs[2]
        assert runs[0] == (
            "fault", "InterpreterFault",
            "write to read-only field message.limit")

    def test_writable_twin_is_fused_and_succeeds(self):
        """The same shape against a writable slot fuses fine."""
        asm = Assembler("f", n_args=0)
        asm.emit(Op.CONST, 7)
        asm.emit(Op.PUTF, 0)
        asm.emit(Op.CONST, 0)
        asm.emit(Op.RET)
        program = Program(
            name="writable_putf",
            functions=(asm.finish(n_locals=0),),
            field_table=(FieldRef("message", "counter", True),),
            array_table=())
        runs = [pg.run_interp(program, [5], [], d)
                for d in DISPATCHES]
        assert runs[0] == runs[1] == runs[2]
        assert runs[0][0] == "ok"
        assert runs[0][2] == [7]  # the PUTF landed

"""Telemetry-disabled overhead gate (ISSUE acceptance: <= 5%).

The interpreter hot path must not slow down when telemetry is off:
``Interpreter.telemetry`` stays ``None`` by default, so ``execute()``
pays exactly one ``is None`` check per invocation.  This test holds
the fast-dispatch ns/op to within 5% of the checked-in baseline
(``benchmarks/interp_baseline.json``) — the same reference
``python -m repro bench-smoke`` gates against at 2x.
"""

import json
import os

import pytest

from repro.experiments import micro
from repro.lang.interpreter import Interpreter
from repro.telemetry import Telemetry

BASELINE = os.path.join(os.path.dirname(__file__), "..", "..",
                        "benchmarks", "interp_baseline.json")

#: ISSUE bound: ns/op within 5% of the recorded baseline.
THRESHOLD = 1.05


def test_interpreter_defaults_to_no_telemetry():
    interp = Interpreter()
    assert interp.telemetry is None


def test_bind_disabled_telemetry_keeps_fast_path():
    interp = Interpreter()
    interp.bind_telemetry(Telemetry(enabled=False,
                                    recorder_capacity=1))
    assert interp.telemetry is None


def test_disabled_overhead_within_baseline():
    with open(BASELINE) as handle:
        baseline = json.load(handle)

    # Timing on shared CI hardware is noisy (single-core runners see
    # every background blip); retry a few times and gate on the best
    # run — a true regression fails every attempt.
    attempts = 6
    last = None
    for attempt in range(attempts):
        results = micro.run_dispatch_micro(invocations=600)
        for res in results:
            ref = baseline.get(res.name)
            assert ref is not None, \
                f"{res.name} missing from {BASELINE}"
            assert res.ops_per_invoke == ref["ops_per_invoke"], \
                "program drifted; re-baseline via bench-smoke"
        worst = max(res.fast_ns_per_op /
                    baseline[res.name]["fast_ns_per_op"]
                    for res in results)
        last = worst
        if worst <= THRESHOLD:
            return
    pytest.fail(
        f"fast dispatch ns/op is {last:.2f}x the baseline after "
        f"{attempts} attempts (allowed {THRESHOLD}x) — the "
        f"telemetry-disabled hot path regressed")

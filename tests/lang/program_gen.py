"""Seeded random DSL program generation + differential helpers.

This module is plain-`random` (no hypothesis) so the same seed always
yields the same program, which makes failures reproducible from a
single integer and lets the corpus under ``tests/lang/corpus/`` replay
byte-identical inputs in CI.  It is shared by:

* ``test_differential.py`` — the five-backend differential harness;
* ``test_fuzz_programs.py`` — pipeline fuzzing (compile/verify/optimize);
* ``test_optimizer_properties.py`` — optimizer equivalence properties.

The grammar covers scalar reads at every scope, writable packet /
message / global scalars, local variables, ``if``/``else``, bounded
``for`` and ``while`` loops with ``break``, boolean connectives, and
global array reads/writes.  Array indices are always ``expr % 8`` and
the input generator always materialises 8-element arrays, so programs
exercise the heap without depending on out-of-bounds semantics (which
the differential harness pins separately via the corpus).
"""

import ast
import random

from repro.lang import (DEFAULT_PACKET_SCHEMA, Interpreter,
                        InterpreterFault, NativeFunction)
from repro.lang.dsl import lower

from conftest import GLB_SCHEMA, MSG_SCHEMA

#: Op budget used by every differential run: far above anything the
#: bounded loops below can execute, so every backend agrees on
#: termination, but a hard stop for a buggy compiled loop.
OP_BUDGET = 200_000

ATOMS = ("packet.size", "msg.counter", "msg.limit", "_global.knob",
         "v0", "v1")
BINOPS = ("+", "-", "*", "//", "%", "&", "|", "^")
CMPS = ("<", "<=", "==", "!=", ">", ">=")
WRITABLE = ("packet.priority", "packet.queue_id", "msg.counter",
            "_global.knob", "v0", "v1")
#: Arrays the generator touches; inputs always provide 8 elements.
ARRAY_LEN = 8

#: Generator profiles.  "default" is the historical statement mix;
#: "loops" skews toward nested for/while bodies (back-edges, break
#: jumps, budget pressure); "arrays" skews toward weights/scratch
#: reads and writes (ABASE/HLOAD/HSTORE address arithmetic).  The
#: superinstruction miner and the differential harness sweep all
#: three so fused windows and codegen see every statement shape.
PROFILES = ("default", "loops", "arrays")


def lower_source(source):
    """Lower one generated source with the shared test schemas."""
    return lower(source, packet_schema=DEFAULT_PACKET_SCHEMA,
                 message_schema=MSG_SCHEMA, global_schema=GLB_SCHEMA)


class ProgramGen:
    """Deterministic program generator for one (seed, profile)."""

    def __init__(self, seed, profile="default"):
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}; "
                             f"use one of {PROFILES}")
        # "default" keeps the historical seed -> program mapping;
        # other profiles derive an independent stream per profile.
        self.rng = random.Random(
            seed if profile == "default" else f"{profile}:{seed}")
        self.profile = profile
        self._loop_vars = []
        self._uid = 0

    # -- expressions ----------------------------------------------------

    def expression(self, depth=2):
        rng = self.rng
        if depth == 0 or rng.random() < 0.4:
            return self._atom()
        roll = rng.random()
        if roll < 0.12:
            return "len(_global.weights)"
        array_p = 0.24 if self.profile != "arrays" else 0.55
        if roll < array_p and self._loop_vars:
            idx = rng.choice(self._loop_vars + ["v0", "v1"])
            arr = ("weights" if self.profile != "arrays"
                   or rng.random() < 0.5 else "scratch")
            return f"_global.{arr}[{idx} % {ARRAY_LEN}]"
        left = self.expression(depth - 1)
        right = self.expression(depth - 1)
        return f"({left} {rng.choice(BINOPS)} {right})"

    def _atom(self):
        rng = self.rng
        pool = list(ATOMS) + self._loop_vars
        if rng.random() < 0.25:
            if rng.random() < 0.1:
                # Values near the 64-bit boundary exercise wraparound.
                return str(rng.choice(
                    (2**63 - 1, -2**63, 2**62, -2**62 + 1)))
            return str(rng.randint(-50, 50))
        return rng.choice(pool)

    def condition(self, depth=1):
        rng = self.rng
        left = self.expression(depth)
        right = self.expression(depth)
        cond = f"{left} {rng.choice(CMPS)} {right}"
        if depth > 0 and rng.random() < 0.2:
            other = self.condition(depth - 1)
            cond = f"({cond}) {rng.choice(('and', 'or'))} ({other})"
        return cond

    # -- statements -----------------------------------------------------

    def statement(self, indent, depth):
        rng = self.rng
        pad = "    " * indent
        kinds = ["assign", "assign", "augment", "scratch"]
        if self.profile == "arrays":
            kinds += ["scratch", "scratch", "shuffle"]
        if depth > 0:
            kinds += ["if", "for", "while"]
            if self.profile == "loops":
                kinds += ["for", "for", "while"]
        kind = rng.choice(kinds)
        if kind == "shuffle":
            # Array-to-array traffic: read one slot, write another.
            src = rng.choice(("weights", "scratch"))
            i1 = rng.choice(["v0", "v1"] + self._loop_vars)
            i2 = rng.choice(["v0", "v1"] + self._loop_vars)
            return [f"{pad}_global.scratch[{i1} % {ARRAY_LEN}] = "
                    f"_global.{src}[{i2} % {ARRAY_LEN}] + "
                    f"{self.expression(0)}"]
        if kind == "assign":
            return [f"{pad}{rng.choice(WRITABLE)} = "
                    f"{self.expression()}"]
        if kind == "augment":
            return [f"{pad}{rng.choice(WRITABLE)} "
                    f"{rng.choice(('+=', '-=', '*='))} "
                    f"{self.expression(1)}"]
        if kind == "scratch":
            idx = rng.choice(["v0", "v1"] + self._loop_vars)
            return [f"{pad}_global.scratch[{idx} % {ARRAY_LEN}] = "
                    f"{self.expression(1)}"]
        if kind == "if":
            lines = [f"{pad}if {self.condition()}:"]
            lines += self.block(indent + 1, depth - 1)
            if rng.random() < 0.5:
                lines += [f"{pad}else:"]
                lines += self.block(indent + 1, depth - 1)
            return lines
        if kind == "for":
            var = f"i{self._next_uid()}"
            bound = rng.randint(1, ARRAY_LEN)
            lines = [f"{pad}for {var} in range({bound}):"]
            self._loop_vars.append(var)
            lines += self.block(indent + 1, depth - 1)
            self._loop_vars.pop()
            return lines
        # while: a counter guarantees termination; an optional break
        # exercises the loop-exit jumps.
        var = f"w{self._next_uid()}"
        bound = rng.randint(1, 6)
        lines = [f"{pad}{var} = 0",
                 f"{pad}while {var} < {bound}:",
                 f"{pad}    {var} += 1"]
        self._loop_vars.append(var)
        body = self.block(indent + 1, depth - 1)
        self._loop_vars.pop()
        lines += body
        if rng.random() < 0.4:
            lines += [f"{pad}    if {self.condition(0)}:",
                      f"{pad}        break"]
        return lines

    def block(self, indent, depth):
        lines = []
        for _ in range(self.rng.randint(1, 3)):
            lines.extend(self.statement(indent, depth))
        return lines

    def program(self):
        body = ["    v0 = packet.size % 97",
                "    v1 = msg.counter + 1"]
        depth = 3 if self.profile == "loops" else 2
        body.extend(self.block(indent=1, depth=depth))
        return ("def f(packet, msg, _global):\n"
                + "\n".join(body) + "\n")

    def _next_uid(self):
        self._uid += 1
        return self._uid


def generate_program(seed, profile="default"):
    """The canonical (seed, profile) -> source mapping."""
    return ProgramGen(seed, profile).program()


def generate_inputs(program, seed):
    """Seeded (fields, arrays) dicts aligned with ``program``'s tables.

    Arrays referenced by generated programs are always 8 elements long
    (times the stride), matching the ``% 8`` indexing in the grammar.
    """
    rng = random.Random(seed)

    def value():
        if rng.random() < 0.1:
            return rng.choice((2**63 - 1, -2**63, 2**62, -2**61))
        return rng.randint(-1000, 1000)

    fields = {(ref.scope, ref.name): value()
              for ref in program.field_table}
    arrays = {(ref.scope, ref.name):
              [value() for _ in range(ARRAY_LEN * ref.stride)]
              for ref in program.array_table}
    return fields, arrays


def vectors(program, fields, arrays):
    """Positional field/array vectors for ``Interpreter.execute``."""
    fvec = [fields.get((r.scope, r.name), 0)
            for r in program.field_table]
    avec = [list(arrays.get((r.scope, r.name), ()))
            for r in program.array_table]
    return fvec, avec


# -- backend runners ----------------------------------------------------

def run_interp(program, fvec, avec, dispatch, seed=3,
               op_budget=OP_BUDGET, **limits):
    """One interpreter run, summarised as a comparable tuple.

    Faults summarise as ``("fault", class name, reason)`` so the
    differential harness compares fault *identity*, not just ok-ness.
    """
    interp = Interpreter(dispatch=dispatch, rng=random.Random(seed),
                         op_budget=op_budget, **limits)
    try:
        r = interp.execute(program, list(fvec),
                           [list(a) for a in avec])
    except InterpreterFault as fault:
        return ("fault", type(fault).__name__, fault.reason)
    return ("ok", r.value, r.fields, r.arrays,
            (r.stats.ops_executed, r.stats.max_operand_stack,
             r.stats.max_call_depth, r.stats.heap_words))


def _summary(res):
    """The comparable tuple for one ExecResult-or-fault batch entry."""
    if isinstance(res, InterpreterFault):
        return ("fault", type(res).__name__, res.reason)
    return ("ok", res.value, res.fields, res.arrays,
            (res.stats.ops_executed, res.stats.max_operand_stack,
             res.stats.max_call_depth, res.stats.heap_words))


def run_interp_batch(program, snapshots, dispatch, seed=3,
                     op_budget=OP_BUDGET, **limits):
    """One ``Interpreter.execute_batch`` run, one summary per snapshot.

    ``snapshots`` is a list of ``(fvec, avec)`` pairs; the summaries
    use the same shape as :func:`run_interp` so batch entries compare
    directly against scalar runs.
    """
    interp = Interpreter(dispatch=dispatch, rng=random.Random(seed),
                         op_budget=op_budget, **limits)
    results = interp.execute_batch(
        program, [(list(f), [list(a) for a in avec])
                  for f, avec in snapshots])
    return [_summary(r) for r in results]


def run_interp_seq(program, snapshots, dispatch, seed=3,
                   op_budget=OP_BUDGET, **limits):
    """The scalar reference for :func:`run_interp_batch`: the same
    snapshots through ``execute`` on one shared interpreter (so RNG
    state threads across invocations exactly as in a batch), faults
    isolated per invocation."""
    interp = Interpreter(dispatch=dispatch, rng=random.Random(seed),
                         op_budget=op_budget, **limits)
    out = []
    for fvec, avec in snapshots:
        try:
            out.append(_summary(interp.execute(
                program, list(fvec), [list(a) for a in avec])))
        except InterpreterFault as fault:
            out.append(_summary(fault))
    return out


def run_native(prog_ast, program, fvec, avec, seed=3):
    """One native-backend run; summarised without stats.

    Native fault *reasons* differ legitimately (e.g. Python's
    ZeroDivisionError text, RecursionError for call depth), so only
    the fault/ok outcome participates in cross-backend comparison.
    """
    native = NativeFunction(prog_ast, program, rng=random.Random(seed))
    try:
        r = native.execute(list(fvec), [list(a) for a in avec])
    except InterpreterFault:
        return ("fault",)
    return ("ok", r.value, r.fields, r.arrays)


#: Copies of each snapshot run through ``execute_batch`` by
#: check_parity — >1 so the batch threads RNG/dispatch state across
#: invocations exactly as back-to-back scalar calls do.
BATCH_COPIES = 3


def check_parity(prog_ast, program, fields, arrays, seed=3,
                 native=True):
    """Run all five backends on one input; return an error or None.

    tree vs fast vs pycodegen must agree on everything — value,
    fields, arrays, stats, fault class and fault reason.  native must
    agree on the fault/ok outcome and, when ok, on (value, fields,
    arrays).  Batch execution (the fifth backend) must agree
    entry-for-entry with back-to-back scalar fast-dispatch calls on a
    shared interpreter — including ``ExecStats`` and fault identity.
    """
    fvec, avec = vectors(program, fields, arrays)
    tree = run_interp(program, fvec, avec, "tree", seed=seed)
    fast = run_interp(program, fvec, avec, "fast", seed=seed)
    if tree != fast:
        return (f"tree/fast divergence on fields={fields!r} "
                f"arrays={arrays!r}:\n  tree={tree!r}\n  fast={fast!r}")
    codegen = run_interp(program, fvec, avec, "pycodegen", seed=seed)
    if tree != codegen:
        return (f"tree/pycodegen divergence on fields={fields!r} "
                f"arrays={arrays!r}:\n  tree={tree!r}\n"
                f"  pycodegen={codegen!r}")
    snapshots = [(fvec, avec)] * BATCH_COPIES
    batch = run_interp_batch(program, snapshots, "fast", seed=seed)
    scalar = run_interp_seq(program, snapshots, "fast", seed=seed)
    if batch != scalar:
        return (f"batch/scalar divergence on fields={fields!r} "
                f"arrays={arrays!r}:\n  batch={batch!r}\n"
                f"  scalar={scalar!r}")
    if batch[0] != fast:
        return (f"batch first entry differs from single scalar run "
                f"on fields={fields!r} arrays={arrays!r}:\n"
                f"  batch[0]={batch[0]!r}\n  fast={fast!r}")
    if native:
        nat = run_native(prog_ast, program, fvec, avec, seed=seed)
        if nat[0] != tree[0]:
            return (f"native outcome differs on fields={fields!r} "
                    f"arrays={arrays!r}: interp={tree!r} "
                    f"native={nat!r}")
        if nat[0] == "ok" and nat[1:] != (tree[1], tree[2], tree[3]):
            return (f"native result differs on fields={fields!r} "
                    f"arrays={arrays!r}: interp={tree!r} "
                    f"native={nat!r}")
    return None


# -- minimization -------------------------------------------------------

def _indent(line):
    return len(line) - len(line.lstrip(" "))


def _block_span(lines, idx):
    """End index of the statement at ``idx`` including its suite."""
    indent = _indent(lines[idx])
    j = idx + 1
    while j < len(lines) and (not lines[j].strip()
                              or _indent(lines[j]) > indent):
        j += 1
    return j


def _parses(lines):
    if len(lines) < 2:
        return False
    try:
        ast.parse("\n".join(lines) + "\n")
        return True
    except SyntaxError:
        return False


def minimize(source, still_fails):
    """Greedy block-aware line removal while ``still_fails`` holds.

    ``still_fails(candidate_source)`` must return True only when the
    candidate reproduces the *original* failure (compile errors from
    over-aggressive removal should return False).
    """
    lines = source.rstrip("\n").splitlines()
    changed = True
    while changed:
        changed = False
        i = 1  # keep the def line
        while i < len(lines):
            end = _block_span(lines, i)
            candidate = lines[:i] + lines[end:]
            if _parses(candidate) and \
                    still_fails("\n".join(candidate) + "\n"):
                lines = candidate
                changed = True
            else:
                i = end
    return "\n".join(lines) + "\n"

"""Property-based tests for the peephole optimizer over random programs.

For every seeded random program from ``program_gen``:

* the optimized bytecode must be differentially equal to the
  unoptimized bytecode (same outcome; same value/fields/arrays on
  success) on seeded inputs;
* the optimized program must never contain more ops than the original;
* optimization must be idempotent.

These complement the fixed-program cases in ``test_optimizer.py`` with
breadth: the generator reaches loop/branch/array shapes no hand-written
fixture list covers.
"""

import pytest

from repro.lang import verify
from repro.lang.compiler import compile_ast
from repro.lang.optimizer import optimize_program

import program_gen as pg

PROPERTY_SEEDS = range(160)


def _total_ops(program):
    return sum(len(f.code) for f in program.functions)


def _compile_both(seed):
    source = pg.generate_program(seed)
    prog_ast = pg.lower_source(source)
    raw = compile_ast(prog_ast, peephole=False)
    opt = optimize_program(raw)
    return source, raw, opt


class TestOptimizerProperties:
    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_optimized_differentially_equal(self, seed):
        source, raw, opt = _compile_both(seed)
        verify(raw)
        verify(opt)
        for i in range(2):
            fields, arrays = pg.generate_inputs(raw, seed * 977 + i)
            fvec_r, avec_r = pg.vectors(raw, fields, arrays)
            fvec_o, avec_o = pg.vectors(opt, fields, arrays)
            res_raw = pg.run_interp(raw, fvec_r, avec_r, "fast")
            res_opt = pg.run_interp(opt, fvec_o, avec_o, "fast")
            assert res_raw[0] == res_opt[0], source
            if res_raw[0] == "ok":
                # value, fields, arrays — stats legitimately differ.
                assert res_raw[1:4] == res_opt[1:4], source

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_optimized_op_count_never_grows(self, seed):
        source, raw, opt = _compile_both(seed)
        assert _total_ops(opt) <= _total_ops(raw), source

    @pytest.mark.parametrize("seed", range(40))
    def test_optimization_idempotent(self, seed):
        _, _, opt = _compile_both(seed)
        again = optimize_program(opt)
        assert [f.code for f in again.functions] == \
            [f.code for f in opt.functions]

def f(packet, msg, _global):
    v0 = packet.size % 97
    v1 = msg.counter + 1
    packet.priority = 0
    for i1 in range(8):
        if _global.weights[i1 % 8] <= v0:
            packet.priority = i1 + 1
        else:
            break
    _global.scratch[v1 % 8] = packet.priority * 4

def f(packet, msg, _global):
    v0 = packet.size % 97
    v1 = msg.counter + 1
    v0 = 9223372036854775807 + v1
    v1 = (v0 * 2862933555777941757) ^ (-9223372036854775808 // 3)
    msg.counter = v1 % 1000003
    packet.queue_id = (v1 >> 13) & 255
    _global.knob = v0 - v1

def f(packet, msg, _global):
    v0 = packet.size % 97
    v1 = msg.counter + 1
    w1 = 0
    while w1 < 6:
        w1 += 1
        _global.scratch[w1 % 8] = _global.weights[w1 % 8] + v1
        if _global.knob > v0:
            break
    packet.priority = _global.weights[v0]

def f(packet, msg, _global):
    v0 = packet.size % 97
    v1 = msg.counter + 1
    if msg.limit > 0:
        v1 = v1 // (msg.counter % msg.limit + 1)
    packet.queue_id = 1 << (v0 % 70)
    packet.priority = v1 // (v0 - v0 + (_global.knob & 1))

"""Five-backend differential harness: tree, fast, pycodegen, native,
and batch.

This is the correctness guard for every execution backend in the
:mod:`repro.lang.backends` registry and the enclave hot path: every
DSL program in the repo (the §5 functions library via ``table1()``)
plus hundreds of seeded fuzz programs — across the default, loop-heavy
and array-heavy generator profiles — run through

* the original decode-per-op tree walk  (``Interpreter(dispatch="tree")``),
* the closure-threaded fast dispatch    (``Interpreter(dispatch="fast")``),
* generated straight-line Python        (``Interpreter(dispatch="pycodegen")``),
* the native compiled backend           (``repro.lang.native``),
* batched execution                     (``Interpreter.execute_batch``),

on randomized-but-seeded inputs.  tree, fast and pycodegen must agree
bit-for-bit on ``(value, fields, arrays)``, on ``ExecStats``, and on
the fault class *and reason*; native must agree on the fault/ok
outcome and the result triple (its fault wording legitimately differs
— see ``program_gen.run_native``).  Batch execution must agree
entry-for-entry with back-to-back scalar calls on a shared
interpreter, including stats and fault identity — batching is an
optimization, never a semantic.

``TestEnclaveBatchDifferential`` lifts the same property to the whole
enclave data path: ``Enclave.process_batch`` over the fuzz corpus must
leave identical per-packet results, packet writes, function stats, and
message/global state as sequential ``process_packet`` calls.

Any fuzz failure is minimized (``program_gen.minimize``) and persisted
into ``tests/lang/corpus/``; the corpus is replayed here in CI so past
failures stay fixed.

Run just this harness with ``pytest -m differential``; the
enclave-level batch slice alone with ``pytest -m batch``.
"""

import glob
import os
import random
import zlib

import pytest

from repro.core.enclave import Enclave
from repro.core.stage import Classification
from repro.lang import DEFAULT_PACKET_SCHEMA
from repro.lang.compiler import compile_action, compile_ast
from repro.functions.library import table1

import program_gen as pg
from conftest import GLB_SCHEMA, MSG_SCHEMA

pytestmark = pytest.mark.differential

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
#: ≥200 seeded fuzz programs (acceptance criterion).
FUZZ_SEEDS = range(240)
#: Seeds per non-default generator profile (loops / arrays).
PROFILE_SEEDS = range(60)
#: Distinct seeded input snapshots per program.
INPUTS_PER_PROGRAM = 2


def _stable_seed(text):
    return zlib.crc32(text.encode())


def _library_entries():
    return [e for e in table1() if e.demo is not None]


def _compile_demo(demo):
    return compile_action(demo.action,
                          packet_schema=DEFAULT_PACKET_SCHEMA,
                          message_schema=demo.message_schema,
                          global_schema=demo.global_schema,
                          name=demo.function_name)


class TestLibraryPrograms:
    """Every program of the §5 functions library, on seeded inputs."""

    def test_covers_whole_library(self):
        entries = _library_entries()
        # Table 1 ships 13+ runnable demos; if this shrinks, the
        # differential net has a hole.
        assert len(entries) >= 13

    @pytest.mark.parametrize(
        "entry", _library_entries(), ids=lambda e: e.name)
    def test_backends_agree(self, entry):
        prog_ast, program = _compile_demo(entry.demo)
        base = _stable_seed(entry.name)
        for i in range(4):
            fields, arrays = pg.generate_inputs(program, base + i)
            err = pg.check_parity(prog_ast, program, fields, arrays,
                                  seed=base % 1000 + i)
            assert err is None, f"{entry.name}: {err}"


class TestFuzzedPrograms:
    """Seeded random programs through all five backends."""

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_backends_agree(self, seed):
        source = pg.generate_program(seed)
        prog_ast = pg.lower_source(source)
        program = compile_ast(prog_ast)
        for i in range(INPUTS_PER_PROGRAM):
            fields, arrays = pg.generate_inputs(program,
                                                seed * 31 + i)
            err = pg.check_parity(prog_ast, program, fields, arrays)
            if err is not None:
                path = _persist_failure(source, fields, arrays, seed)
                pytest.fail(
                    f"seed {seed}: {err}\n"
                    f"minimized reproducer saved to {path}")

    @pytest.mark.parametrize("profile", ("loops", "arrays"))
    @pytest.mark.parametrize("seed", PROFILE_SEEDS)
    def test_profiled_backends_agree(self, profile, seed):
        """Loop-heavy and array-heavy sweeps of the same property."""
        source = pg.generate_program(seed, profile=profile)
        prog_ast = pg.lower_source(source)
        program = compile_ast(prog_ast)
        for i in range(INPUTS_PER_PROGRAM):
            fields, arrays = pg.generate_inputs(program,
                                                seed * 31 + i)
            err = pg.check_parity(prog_ast, program, fields, arrays)
            if err is not None:
                path = _persist_failure(source, fields, arrays,
                                        f"{profile}{seed}")
                pytest.fail(
                    f"profile {profile} seed {seed}: {err}\n"
                    f"minimized reproducer saved to {path}")

    def test_fuzz_exercises_both_outcomes(self):
        """The net catches faults, not just happy paths."""
        outcomes = set()
        for seed in range(40):
            source = pg.generate_program(seed)
            prog_ast = pg.lower_source(source)
            program = compile_ast(prog_ast)
            fields, arrays = pg.generate_inputs(program, seed * 31)
            fvec, avec = pg.vectors(program, fields, arrays)
            outcomes.add(
                pg.run_interp(program, fvec, avec, "fast")[0])
            if outcomes == {"ok", "fault"}:
                return
        assert outcomes == {"ok", "fault"}


class _DiffPacket:
    """A deterministic packet exposing the default schema's fields."""

    def __init__(self, rng, i):
        self.size = rng.randint(0, 4000)
        self.priority = rng.randint(0, 7)
        self.queue_id = rng.randint(0, 3)
        self.src_ip = 1
        self.src_port = 1000 + (i % 4)
        self.dst_ip = 2
        self.dst_port = 80
        self.proto = 6


def _batch_enclave_for(source, seed):
    enclave = Enclave("diff", rng=random.Random(seed))
    enclave.install_function(source, name="f",
                             message_schema=MSG_SCHEMA,
                             global_schema=GLB_SCHEMA)
    enclave.set_global_array("f", "weights", list(range(1, 9)))
    enclave.set_global_array("f", "scratch", [0] * 8)
    enclave.install_rule("*", "f")
    return enclave


@pytest.mark.batch
class TestEnclaveBatchDifferential:
    """``process_batch`` == sequential ``process_packet`` over the
    fuzz corpus: per-packet results, packet writes, function stats,
    and the message/global state left behind."""

    N_PACKETS = 12

    def _packets(self, seed):
        rng = random.Random(seed * 7 + 1)
        return [_DiffPacket(rng, i) for i in range(self.N_PACKETS)]

    def _classifications(self, i):
        if i % 3 == 2:
            return ()   # flow-granularity fallback path
        return [Classification(class_name=f"app.r1.c{i % 2}",
                               metadata={"msg_id": ("app", i % 2)})]

    @pytest.mark.parametrize("seed", range(24))
    def test_batch_equals_scalar(self, seed):
        source = pg.generate_program(seed)
        cls_list = [self._classifications(i)
                    for i in range(self.N_PACKETS)]

        scalar = _batch_enclave_for(source, seed)
        pkts_s = self._packets(seed)
        res_s = [scalar.process_packet(p, cls_list[i], now_ns=5)
                 for i, p in enumerate(pkts_s)]

        batch = _batch_enclave_for(source, seed)
        pkts_b = self._packets(seed)
        res_b = batch.process_batch(
            [(p, cls_list[i]) for i, p in enumerate(pkts_b)],
            now_ns=5)

        assert res_b == res_s
        for ps, pb in zip(pkts_s, pkts_b):
            assert pb.__dict__ == ps.__dict__
        fn_s = scalar.function("f")
        fn_b = batch.function("f")
        assert fn_b.stats == fn_s.stats
        assert fn_b.global_store.snapshot() == \
            fn_s.global_store.snapshot()
        store_s = fn_s.message_store
        store_b = fn_b.message_store
        assert set(store_b._entries) == set(store_s._entries)
        for key, entry_s in store_s._entries.items():
            entry_b = store_b._entries[key]
            assert (entry_b.values, entry_b.packets,
                    entry_b.created_at, entry_b.last_used_at) == \
                (entry_s.values, entry_s.packets,
                 entry_s.created_at, entry_s.last_used_at)
        assert batch.packets_processed == scalar.packets_processed
        assert batch.packets_dropped == scalar.packets_dropped

    def test_batch_matches_scalar_on_corpus_reproducers(self):
        """Past tree/fast divergences are exactly the programs most
        likely to trip the batch runner too — replay them through the
        enclave pairing as well."""
        paths = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.py")))
        assert paths, "corpus should not be empty"
        for path in paths:
            with open(path) as fh:
                source = fh.read()
            seed = _stable_seed(os.path.basename(path)) % 1000
            cls_list = [self._classifications(i)
                        for i in range(self.N_PACKETS)]
            scalar = _batch_enclave_for(source, seed)
            pkts_s = self._packets(seed)
            res_s = [scalar.process_packet(p, cls_list[i], now_ns=5)
                     for i, p in enumerate(pkts_s)]
            batch = _batch_enclave_for(source, seed)
            pkts_b = self._packets(seed)
            res_b = batch.process_batch(
                [(p, cls_list[i]) for i, p in enumerate(pkts_b)],
                now_ns=5)
            assert res_b == res_s, path
            for ps, pb in zip(pkts_s, pkts_b):
                assert pb.__dict__ == ps.__dict__, path
            assert batch.function("f").stats == \
                scalar.function("f").stats, path


def _persist_failure(source, fields, arrays, seed):
    """Minimize a failing program against its inputs and save it."""

    def still_fails(candidate):
        try:
            past = pg.lower_source(candidate)
            prog = compile_ast(past)
        except Exception:
            return False
        return pg.check_parity(past, prog, fields, arrays) is not None

    minimized = pg.minimize(source, still_fails)
    os.makedirs(CORPUS_DIR, exist_ok=True)
    path = os.path.join(CORPUS_DIR, f"failing_seed{seed}.py")
    with open(path, "w") as fh:
        fh.write(minimized)
    return path


class TestCorpus:
    """Replay persisted (minimized) reproducers on every CI run."""

    @pytest.mark.parametrize(
        "path", sorted(glob.glob(os.path.join(CORPUS_DIR, "*.py"))),
        ids=os.path.basename)
    def test_corpus_program_parity(self, path):
        with open(path) as fh:
            source = fh.read()
        prog_ast = pg.lower_source(source)
        program = compile_ast(prog_ast)
        base = _stable_seed(os.path.basename(path))
        for i in range(6):
            fields, arrays = pg.generate_inputs(program, base + i)
            err = pg.check_parity(prog_ast, program, fields, arrays)
            assert err is None, f"{path}: {err}"

    def test_corpus_fault_program_faults_identically(self):
        """A deterministic fault: division by zero when knob is even."""
        path = os.path.join(CORPUS_DIR, "fault_div_and_shift.py")
        with open(path) as fh:
            source = fh.read()
        prog_ast = pg.lower_source(source)
        program = compile_ast(prog_ast)
        fields = {("packet", "size"): 3, ("message", "counter"): 1,
                  ("message", "limit"): 5, ("global", "knob"): 0}
        fvec, avec = pg.vectors(program, fields, {})
        tree = pg.run_interp(program, fvec, avec, "tree")
        fast = pg.run_interp(program, fvec, avec, "fast")
        assert tree[0] == "fault"
        assert tree == fast
        assert tree[1] == "InterpreterFault"
        assert "division by zero" in tree[2]
        nat = pg.run_native(prog_ast, program, fvec, avec)
        assert nat[0] == "fault"

"""Tests for the bytecode interpreter: semantics, safety, stats."""

import pytest

from repro.lang import Interpreter, InterpreterFault, wrap64
from repro.lang.bytecode import (Assembler, FieldRef, Op, Program)

from conftest import Harness


def run_src(src, **kwargs):
    return Harness(src).run(**kwargs)


class TestArithmetic:
    def test_add_sub_mul(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    packet.priority = (2 + 3) * 4 - 19\n")
        assert fields[("packet", "priority")] == 1

    def test_floor_division_negative(self):
        # Python floor semantics: -7 // 2 == -4.
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    packet.priority = (0 - 7) // 2\n")
        assert fields[("packet", "priority")] == -4

    def test_modulo_negative(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    packet.priority = (0 - 7) % 3\n")
        assert fields[("packet", "priority")] == 2

    def test_division_by_zero_faults(self):
        with pytest.raises(InterpreterFault, match="division by zero"):
            run_src("def f(packet):\n"
                    "    packet.priority = 1 // (packet.size - 54)\n",
                    fields={("packet", "size"): 54})

    def test_modulo_by_zero_faults(self):
        with pytest.raises(InterpreterFault, match="modulo by zero"):
            run_src("def f(packet):\n"
                    "    packet.priority = 1 % (packet.size - 54)\n",
                    fields={("packet", "size"): 54})

    def test_wraparound_64bit(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    big = (1 << 62) + ((1 << 62) - 1)\n"
            "    packet.priority = big + big + 2\n")
        # (2^63-1) + (2^63-1) + 2 wraps to 0.
        assert fields[("packet", "priority")] == 0

    def test_shift_semantics(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    packet.priority = (1 << 10) >> 3\n")
        assert fields[("packet", "priority")] == 128

    def test_shift_out_of_range_faults(self):
        with pytest.raises(InterpreterFault, match="shift amount"):
            run_src("def f(packet):\n"
                    "    packet.priority = 1 << (packet.size + 10)\n",
                    fields={("packet", "size"): 60})

    def test_bitwise_ops(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    packet.priority = (12 & 10) | (1 ^ 3)\n")
        assert fields[("packet", "priority")] == (12 & 10) | (1 ^ 3)

    def test_unary_ops(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    packet.priority = -(~5)\n")
        assert fields[("packet", "priority")] == 6


class TestControlFlow:
    def test_if_elif_else(self):
        src = ("def f(packet):\n"
               "    if packet.size < 10:\n"
               "        packet.priority = 1\n"
               "    elif packet.size < 100:\n"
               "        packet.priority = 2\n"
               "    else:\n"
               "        packet.priority = 3\n")
        h = Harness(src)
        for size, expect in ((5, 1), (50, 2), (500, 3)):
            _, fields, _ = h.run(fields={("packet", "size"): size})
            assert fields[("packet", "priority")] == expect

    def test_while_loop(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    total = 0\n"
            "    i = 0\n"
            "    while i < 10:\n"
            "        total += i\n"
            "        i += 1\n"
            "    packet.priority = total\n")
        assert fields[("packet", "priority")] == 45

    def test_for_loop_with_continue(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    total = 0\n"
            "    for i in range(10):\n"
            "        if i % 2 == 0:\n"
            "            continue\n"
            "        total += i\n"
            "    packet.priority = total\n")
        assert fields[("packet", "priority")] == 1 + 3 + 5 + 7 + 9

    def test_for_loop_with_break(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    total = 0\n"
            "    for i in range(100):\n"
            "        if i == 5:\n"
            "            break\n"
            "        total += 1\n"
            "    packet.priority = total\n")
        assert fields[("packet", "priority")] == 5

    def test_for_loop_negative_step(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    total = 0\n"
            "    for i in range(5, 0, -1):\n"
            "        total += i\n"
            "    packet.priority = total\n")
        assert fields[("packet", "priority")] == 15

    def test_short_circuit_and(self):
        # The right operand would fault (div by zero) if evaluated.
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    z = packet.size - 54\n"
            "    ok = packet.size > 100 and (10 // z) > 0\n"
            "    packet.priority = ok\n",
            fields={("packet", "size"): 54})
        assert fields[("packet", "priority")] == 0

    def test_short_circuit_or(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    z = packet.size - 54\n"
            "    ok = packet.size < 100 or (10 // z) > 0\n"
            "    packet.priority = ok\n",
            fields={("packet", "size"): 54})
        assert fields[("packet", "priority")] == 1

    def test_conditional_expression(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    packet.priority = 7 if packet.size > 10 else 1\n",
            fields={("packet", "size"): 5})
        assert fields[("packet", "priority")] == 1


class TestStateAndArrays:
    def test_message_state_roundtrip(self):
        _, fields, _ = run_src(
            "def f(packet, msg):\n"
            "    msg.counter = msg.counter + 2\n",
            fields={("message", "counter"): 40})
        assert fields[("message", "counter")] == 42

    def test_readonly_array_heap_read(self):
        _, fields, _ = run_src(
            "def f(packet, _global):\n"
            "    packet.priority = _global.weights[1]\n",
            arrays={("global", "weights"): [10, 20, 30]})
        assert fields[("packet", "priority")] == 20

    def test_record_array_member_access(self):
        _, fields, _ = run_src(
            "def f(packet, _global):\n"
            "    packet.priority = _global.records[1].hi\n",
            arrays={("global", "records"): [1, 2, 3, 4]})
        assert fields[("packet", "priority")] == 4

    def test_writable_array_mutation_committed(self):
        _, _, arrays = run_src(
            "def f(packet, _global):\n"
            "    _global.scratch[0] = 99\n",
            arrays={("global", "scratch"): [0, 1]})
        assert arrays[("global", "scratch")] == [99, 1]

    def test_heap_read_out_of_bounds_faults(self):
        with pytest.raises(InterpreterFault, match="out of bounds"):
            run_src("def f(packet, _global):\n"
                    "    packet.priority = _global.weights[5]\n",
                    arrays={("global", "weights"): [1, 2]})

    def test_heap_negative_index_faults(self):
        with pytest.raises(InterpreterFault, match="out of bounds"):
            run_src("def f(packet, _global):\n"
                    "    packet.priority = "
                    "_global.weights[0 - 1]\n",
                    arrays={("global", "weights"): [1, 2]})

    def test_heap_write_to_readonly_region_is_impossible(self):
        # The frontend rejects stores to read-only arrays; simulate a
        # hostile program by patching the bytecode to HSTORE into the
        # read-only region and check the runtime catches it.
        h = Harness("def f(packet, _global):\n"
                    "    packet.priority = _global.weights[0]\n")
        from repro.lang.bytecode import FunctionCode, Instr, Program
        entry = h.program.entry
        hacked_code = (Instr(Op.CONST, 123), Instr(Op.CONST, 0),
                       Instr(Op.HSTORE), Instr(Op.CONST, 0),
                       Instr(Op.RET))
        hacked = Program(
            name="hack",
            functions=(FunctionCode("f", 0, entry.n_locals,
                                    hacked_code),),
            field_table=h.program.field_table,
            array_table=h.program.array_table)
        with pytest.raises(InterpreterFault, match="writable"):
            Interpreter().execute(
                hacked, [0] * len(hacked.field_table), [[1, 2]])

    def test_len_matches_array(self):
        _, fields, _ = run_src(
            "def f(packet, _global):\n"
            "    packet.priority = len(_global.records)\n",
            arrays={("global", "records"): [1, 2, 3, 4, 5, 6]})
        assert fields[("packet", "priority")] == 3

    def test_misaligned_record_array_faults(self):
        with pytest.raises(InterpreterFault, match="stride"):
            run_src("def f(packet, _global):\n"
                    "    packet.priority = len(_global.records)\n",
                    arrays={("global", "records"): [1, 2, 3]})


class TestBuiltins:
    def test_rand_within_bound_and_deterministic(self):
        h = Harness("def f(packet):\n"
                    "    packet.priority = rand(8)\n")
        _, fields_a, _ = h.run(seed=42)
        _, fields_b, _ = h.run(seed=42)
        assert fields_a == fields_b
        assert 0 <= fields_a[("packet", "priority")] < 8

    def test_rand_nonpositive_bound_faults(self):
        with pytest.raises(InterpreterFault, match="rand bound"):
            run_src("def f(packet):\n"
                    "    packet.priority = rand(packet.size - 54)\n",
                    fields={("packet", "size"): 54})

    def test_clock_sampled_once_per_invocation(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    a = clock()\n"
            "    b = clock()\n"
            "    packet.priority = 1 if a == b else 0\n",
            clock=123456)
        assert fields[("packet", "priority")] == 1

    def test_clock_value(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    packet.queue_id = clock()\n", clock=777)
        assert fields[("packet", "queue_id")] == 777


class TestFunctionsAndRecursion:
    def test_helper_function_call(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    def square(x):\n"
            "        return x * x\n"
            "    packet.priority = square(square(2))\n")
        assert fields[("packet", "priority")] == 16

    def test_nontail_recursion(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    def fact(n):\n"
            "        if n <= 1:\n"
            "            return 1\n"
            "        return n * fact(n - 1)\n"
            "    packet.priority = fact(6)\n")
        assert fields[("packet", "priority")] == 720

    def test_tail_recursion_deep_with_tco(self):
        # 10000 levels would blow the call-depth limit without TCO.
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    def count(n, acc):\n"
            "        if n == 0:\n"
            "            return acc\n"
            "        return count(n - 1, acc + 1)\n"
            "    packet.queue_id = count(10000, 0)\n")
        assert fields[("packet", "queue_id")] == 10000

    def test_deep_nontail_recursion_faults(self):
        with pytest.raises(InterpreterFault, match="call depth"):
            run_src("def f(packet):\n"
                    "    def fact(n):\n"
                    "        if n <= 1:\n"
                    "            return 1\n"
                    "        return n * fact(n - 1)\n"
                    "    packet.queue_id = fact(10000)\n")

    def test_mutual_state_through_captures(self):
        _, fields, _ = run_src(
            "def f(packet):\n"
            "    base = packet.size\n"
            "    def add(x):\n"
            "        return x + base\n"
            "    packet.queue_id = add(add(0))\n",
            fields={("packet", "size"): 7})
        assert fields[("packet", "queue_id")] == 14


class TestResourceLimits:
    def test_op_budget_enforced(self):
        with pytest.raises(InterpreterFault, match="op budget"):
            run_src("def f(packet):\n"
                    "    x = 0\n"
                    "    while True:\n"
                    "        x += 1\n",
                    op_budget=1000)

    def test_heap_limit_enforced(self):
        with pytest.raises(InterpreterFault, match="heap"):
            run_src("def f(packet, _global):\n"
                    "    packet.priority = _global.weights[0]\n",
                    arrays={("global", "weights"): [1] * 100},
                    max_heap_words=10)

    def test_stats_reported(self):
        result, _, _ = run_src(
            "def f(packet):\n"
            "    packet.priority = packet.size + packet.queue_id\n")
        assert result.stats.ops_executed > 0
        assert result.stats.max_operand_stack >= 2
        assert result.stats.stack_bytes == \
            result.stats.max_operand_stack * 8

    def test_field_count_mismatch_faults(self):
        h = Harness("def f(packet):\n    packet.priority = 1\n")
        with pytest.raises(InterpreterFault, match="fields"):
            Interpreter().execute(h.program, [], [])

    def test_array_count_mismatch_faults(self):
        h = Harness("def f(packet, _global):\n"
                    "    packet.priority = _global.weights[0]\n")
        with pytest.raises(InterpreterFault, match="arrays"):
            Interpreter().execute(
                h.program, [0] * len(h.program.field_table), [])


class TestReturnValue:
    def test_explicit_return_value(self):
        result, _, _ = run_src("def f(packet):\n    return 42\n")
        assert result.value == 42

    def test_fallthrough_returns_zero(self):
        result, _, _ = run_src("def f(packet):\n    x = 1\n")
        assert result.value == 0

    def test_bare_return_returns_zero(self):
        result, _, _ = run_src(
            "def f(packet):\n"
            "    if packet.size == 0:\n"
            "        return\n"
            "    return 9\n",
            fields={("packet", "size"): 0})
        assert result.value == 0

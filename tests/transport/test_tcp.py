"""Tests for the TCP transport: handshake, delivery, loss recovery,
reordering tolerance, message semantics."""

import pytest

from repro.core.stage import Classification
from repro.netsim import GBPS, MS, SEC, Simulator, star
from repro.netsim.packet import MSS
from repro.stack import HostStack
from repro.transport import TcpConnection


@pytest.fixture
def rig():
    """Two hosts behind one switch, plus a data sink on h2:5000."""
    sim = Simulator(seed=2)
    net = star(sim, 2, host_rate_bps=10 * GBPS)
    s1 = HostStack(sim, net.hosts["h1"])
    s2 = HostStack(sim, net.hosts["h2"])
    delivered = {}

    def on_conn(conn):
        conn.on_data = lambda c, total: delivered.__setitem__(
            c.five_tuple, total)

    s2.listen(5000, on_conn)
    return sim, net, s1, s2, delivered


class TestHandshakeAndTransfer:
    def test_connection_establishes(self, rig):
        sim, net, s1, s2, _ = rig
        established = []
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.on_established = lambda c: established.append(sim.now)
        sim.run(until_ns=5 * MS)
        assert established and conn.state == TcpConnection.ESTABLISHED

    def test_small_message_delivered(self, rig):
        sim, net, s1, s2, delivered = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(500)
        sim.run(until_ns=5 * MS)
        assert list(delivered.values()) == [500]

    def test_multi_segment_message(self, rig):
        sim, net, s1, s2, delivered = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(10 * MSS + 7)
        sim.run(until_ns=20 * MS)
        assert list(delivered.values()) == [10 * MSS + 7]

    def test_multiple_messages_in_order(self, rig):
        sim, net, s1, s2, delivered = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        for size in (100, 5000, 30):
            conn.message_send(size)
        sim.run(until_ns=20 * MS)
        assert list(delivered.values()) == [5130]

    def test_message_send_before_connect_auto_opens(self, rig):
        sim, net, s1, s2, delivered = rig
        conn = TcpConnection(sim, s1, s1.ip, 4444,
                             net.host_ip("h2"), 5000)
        s1._connections[conn.five_tuple] = conn
        conn.message_send(100)
        sim.run(until_ns=5 * MS)
        assert list(delivered.values()) == [100]

    def test_zero_byte_message_rejected(self, rig):
        sim, net, s1, _, _ = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        with pytest.raises(ValueError):
            conn.message_send(0)

    def test_concurrent_connections(self, rig):
        sim, net, s1, s2, delivered = rig
        for _ in range(5):
            conn = s1.connect(net.host_ip("h2"), 5000)
            conn.message_send(2000)
        sim.run(until_ns=20 * MS)
        assert sorted(delivered.values()) == [2000] * 5


class TestMessageSemantics:
    def test_on_complete_fires_when_acked(self, rig):
        sim, net, s1, s2, _ = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        done = []
        conn.message_send(5000,
                          on_complete=lambda rec, now: done.append(
                              (rec.start_seq, rec.end_seq, now)))
        sim.run(until_ns=20 * MS)
        assert len(done) == 1
        start, end, when = done[0]
        assert end - start == 5000 and when > 0

    def test_completion_order_matches_send_order(self, rig):
        sim, net, s1, s2, _ = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        order = []
        for i, size in enumerate((4000, 100, 9000)):
            conn.message_send(
                size, on_complete=lambda r, n, i=i: order.append(i))
        sim.run(until_ns=20 * MS)
        assert order == [0, 1, 2]

    def test_classifications_ride_on_packets(self, rig):
        sim, net, s1, s2, _ = rig
        seen = []
        original = s1.send_packet

        def spy(packet, pure_ack=False):
            if packet.payload_len > 0:
                seen.append(tuple(c.class_name
                                  for c in packet.classifications))
            original(packet, pure_ack=pure_ack)

        s1.send_packet = spy
        conn = s1.connect(net.host_ip("h2"), 5000)
        cls = [Classification("app.r1.msg", {"msg_id": ("app", 1)})]
        conn.message_send(3 * MSS, classifications=cls)
        sim.run(until_ns=20 * MS)
        assert len(seen) == 3
        assert all(s == ("app.r1.msg",) for s in seen)

    def test_segments_do_not_span_messages(self, rig):
        sim, net, s1, s2, _ = rig
        sizes = []
        original = s1.send_packet

        def spy(packet, pure_ack=False):
            if packet.payload_len > 0:
                sizes.append(packet.payload_len)
            original(packet, pure_ack=pure_ack)

        s1.send_packet = spy
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(MSS + 10)  # 2 segments: MSS, 10
        conn.message_send(20)        # separate packet
        sim.run(until_ns=20 * MS)
        assert sizes == [MSS, 10, 20]

    def test_send_after_close_rejected(self, rig):
        sim, net, s1, _, _ = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(10)
        conn.close()
        with pytest.raises(RuntimeError):
            conn.message_send(10)


class TestClose:
    def test_clean_close_completes(self, rig):
        sim, net, s1, s2, delivered = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        closed = []
        conn.on_close = lambda c: closed.append(sim.now)
        conn.message_send(1000)
        conn.close()
        sim.run(until_ns=20 * MS)
        assert conn.state == TcpConnection.DONE
        assert closed
        assert conn.five_tuple not in s1._connections

    def test_receiver_side_finishes_on_fin(self, rig):
        sim, net, s1, s2, delivered = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(1000)
        conn.close()
        sim.run(until_ns=20 * MS)
        assert not s2.connections()


class TestLossRecovery:
    def make_lossy(self, rig, drop_indices):
        """Drop the n-th data packets traversing the tor->h2 port."""
        sim, net, s1, s2, delivered = rig
        port = net.switches["tor"].port_to("h2")
        counter = {"n": 0}
        original = port.enqueue

        def lossy(packet):
            if packet.payload_len > 0:
                counter["n"] += 1
                if counter["n"] in drop_indices:
                    return False  # dropped
            return original(packet)

        port.enqueue = lossy
        return sim, net, s1, s2, delivered

    def test_single_drop_recovers_via_fast_retransmit(self, rig):
        sim, net, s1, s2, delivered = self.make_lossy(rig, {3})
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(20 * MSS)
        sim.run(until_ns=100 * MS)
        assert list(delivered.values()) == [20 * MSS]
        assert conn.stats.fast_retransmits >= 1
        assert conn.stats.timeouts == 0

    def test_burst_drop_recovers(self, rig):
        sim, net, s1, s2, delivered = self.make_lossy(
            rig, set(range(5, 12)))
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(30 * MSS)
        sim.run(until_ns=200 * MS)
        assert list(delivered.values()) == [30 * MSS]

    def test_tail_drop_recovers(self, rig):
        # The last packets of the window are lost: no dupacks; the
        # tail loss probe (or RTO) must fire.
        sim, net, s1, s2, delivered = self.make_lossy(
            rig, {9, 10})
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(10 * MSS)
        sim.run(until_ns=200 * MS)
        assert list(delivered.values()) == [10 * MSS]

    def test_syn_loss_retries(self, rig):
        sim, net, s1, s2, delivered = rig
        port = net.hosts["h1"].ports[0]
        original = port.enqueue
        state = {"dropped": False}

        def drop_first_syn(packet):
            if packet.is_syn and not state["dropped"]:
                state["dropped"] = True
                return False
            return original(packet)

        port.enqueue = drop_first_syn
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(100)
        sim.run(until_ns=100 * MS)
        assert list(delivered.values()) == [100]
        assert conn.stats.timeouts >= 1

    def test_cwnd_reduced_on_loss(self, rig):
        sim, net, s1, s2, delivered = self.make_lossy(rig, {8})
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(40 * MSS)
        sim.run(until_ns=100 * MS)
        assert conn.ssthresh < (1 << 30)


class TestRttAndRto:
    def test_srtt_estimated(self, rig):
        sim, net, s1, s2, _ = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(5 * MSS)
        sim.run(until_ns=20 * MS)
        assert conn.srtt is not None
        assert 0 < conn.srtt < 1 * MS

    def test_rto_floor_respected(self, rig):
        sim, net, s1, s2, _ = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(5 * MSS)
        sim.run(until_ns=20 * MS)
        assert conn.rto >= conn.min_rto_ns

    def test_rto_backoff_doubles(self, rig):
        sim, net, s1, s2, _ = rig
        # Cut the wire entirely after connect to force repeated RTOs.
        conn = s1.connect(net.host_ip("h2"), 5000)
        sim.run(until_ns=2 * MS)
        port = net.hosts["h1"].ports[0]
        port.enqueue = lambda packet: False
        conn.message_send(1000)
        rto_before = conn.rto
        sim.run(until_ns=50 * MS)
        assert conn.stats.timeouts >= 2
        assert conn.rto > rto_before


class TestReorderingTolerance:
    def test_dup_thresh_adapts_upward(self, rig):
        """Persistent reordering raises the duplicate-ACK threshold
        instead of triggering endless spurious retransmissions."""
        sim, net, s1, s2, delivered = rig
        port = net.switches["tor"].port_to("h2")
        original = port.enqueue
        counter = {"n": 0, "held": None}

        def reorder(packet):
            # Delay every 12th data packet behind the next few.
            if packet.payload_len > 0:
                counter["n"] += 1
                if counter["n"] % 12 == 0:
                    sim.schedule(40_000, original, packet)
                    return True
            return original(packet)

        port.enqueue = reorder
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(300 * MSS)
        sim.run(until_ns=200 * MS)
        assert list(delivered.values()) == [300 * MSS]
        assert conn.dup_thresh > 3

    def test_adaptation_can_be_disabled(self, rig):
        sim, net, s1, s2, _ = rig
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.adaptive_reordering = False
        port = net.switches["tor"].port_to("h2")
        original = port.enqueue
        counter = {"n": 0}

        def reorder(packet):
            if packet.payload_len > 0:
                counter["n"] += 1
                if counter["n"] % 12 == 0:
                    sim.schedule(40_000, original, packet)
                    return True
            return original(packet)

        port.enqueue = reorder
        conn.message_send(300 * MSS)
        sim.run(until_ns=200 * MS)
        assert conn.dup_thresh == 3

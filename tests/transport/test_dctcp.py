"""Tests for the DCTCP extension (ECN-proportional backoff)."""

import pytest

from repro.netsim import GBPS, MS, Simulator
from repro.netsim.packet import MSS
from repro.netsim.topology import Network
from repro.stack import HostStack


def build_ecn_rig(seed=12, ecn_threshold=30_000,
                  bottleneck_bps=1 * GBPS):
    """Two hosts over one switch whose egress marks ECN."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("h1")
    net.add_host("h2")
    net.add_switch("sw")
    net.connect("h1", "sw", 10 * GBPS)
    net.connect("sw", "h2", bottleneck_bps,
                ecn_threshold_bytes=ecn_threshold)
    net.switches["sw"].install_route(net.host_ip("h1"), ["h1"])
    net.switches["sw"].install_route(net.host_ip("h2"), ["h2"])
    s1 = HostStack(sim, net.hosts["h1"])
    s2 = HostStack(sim, net.hosts["h2"])
    return sim, net, s1, s2


def run_flow(sim, net, s1, s2, dctcp, duration_ms=60,
             chunk=3_000_000):
    delivered = {}

    def on_conn(conn):
        conn.on_data = lambda c, n: delivered.__setitem__("n", n)

    s2.listen(5000, on_conn)
    conn = s1.connect(net.host_ip("h2"), 5000)
    if dctcp:
        conn.enable_dctcp()

    def refill(record, now):
        conn.message_send(chunk, on_complete=refill)

    conn.on_established = lambda c: c.message_send(
        chunk, on_complete=refill)
    sim.run(until_ns=duration_ms * MS)
    return conn, delivered.get("n", 0)


class TestDctcp:
    def test_alpha_tracks_marking(self):
        sim, net, s1, s2 = build_ecn_rig()
        conn, delivered = run_flow(sim, net, s1, s2, dctcp=True)
        assert delivered > 1_000_000
        assert conn.dctcp_alpha > 0  # marks observed and averaged

    def test_dctcp_keeps_queue_shorter(self):
        """The point of DCTCP: ECN-proportional backoff holds the
        bottleneck queue near the marking threshold instead of
        filling the buffer."""
        results = {}
        for dctcp in (False, True):
            sim, net, s1, s2 = build_ecn_rig(seed=13)
            port = net.switches["sw"].port_to("h2")
            samples = []

            def probe():
                samples.append(port.queued_bytes)
                if sim.now < 60 * MS:
                    sim.schedule(500_000, probe)

            sim.schedule(5_000_000, probe)
            conn, delivered = run_flow(sim, net, s1, s2,
                                       dctcp=dctcp)
            avg_queue = sum(samples) / max(1, len(samples))
            results[dctcp] = (avg_queue, delivered,
                              port.stats.drops)
        assert results[True][0] < results[False][0]

    def test_throughput_not_sacrificed(self):
        sim, net, s1, s2 = build_ecn_rig(seed=14)
        conn, delivered = run_flow(sim, net, s1, s2, dctcp=True,
                                   duration_ms=80)
        # >= 70% of the 1 Gbps bottleneck over 80 ms.
        assert delivered * 8 / (80e-3) > 0.7e9

    def test_disabled_by_default(self):
        sim, net, s1, s2 = build_ecn_rig(seed=15)
        conn, _ = run_flow(sim, net, s1, s2, dctcp=False,
                           duration_ms=20)
        assert not conn.dctcp_enabled
        assert conn.dctcp_alpha == 0.0

    def test_no_ecn_no_reduction(self):
        # DCTCP on a path that never marks behaves like plain TCP in
        # the no-loss regime.
        sim, net, s1, s2 = build_ecn_rig(seed=16,
                                         ecn_threshold=10**9)
        conn, delivered = run_flow(sim, net, s1, s2, dctcp=True,
                                   duration_ms=30)
        assert conn.dctcp_alpha == 0.0
        assert delivered > 1_000_000

    def test_receiver_echoes_marks(self):
        sim, net, s1, s2 = build_ecn_rig(seed=17)
        seen_echo = []
        original = s2.send_packet

        def spy(packet, pure_ack=False):
            if pure_ack and packet.ecn:
                seen_echo.append(packet.ack)
            original(packet, pure_ack=pure_ack)

        s2.send_packet = spy
        run_flow(sim, net, s1, s2, dctcp=True, duration_ms=30)
        assert seen_echo  # at least one mark echoed

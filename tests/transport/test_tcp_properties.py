"""Property-based robustness tests for the TCP transport.

The invariant: whatever (bounded) loss and reordering the network
inflicts, every queued message is eventually delivered in full and in
order, and the receiver's delivered-byte count never runs ahead of
what the sender emitted.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import GBPS, MS, Simulator, star
from repro.netsim.packet import MSS
from repro.stack import HostStack


def run_transfer(seed, sizes, drop_mask, reorder_every):
    """One transfer under a deterministic loss/reorder pattern.

    ``drop_mask`` is a set of data-packet indices to drop (first
    transmission attempt counted by traversal order); a packet index
    divisible by ``reorder_every`` (if non-zero) is delayed by 30 us
    instead of dropped.
    """
    sim = Simulator(seed=seed)
    net = star(sim, 2, host_rate_bps=10 * GBPS)
    s1 = HostStack(sim, net.hosts["h1"])
    s2 = HostStack(sim, net.hosts["h2"])
    port = net.switches["tor"].port_to("h2")
    original = port.enqueue
    counter = {"n": 0}

    def mangle(packet):
        if packet.payload_len > 0:
            counter["n"] += 1
            n = counter["n"]
            if n in drop_mask:
                return False
            if reorder_every and n % reorder_every == 0:
                sim.schedule(30_000, original, packet)
                return True
        return original(packet)

    port.enqueue = mangle
    delivered = {}

    def on_conn(conn):
        conn.on_data = lambda c, total: delivered.__setitem__(
            "total", total)

    s2.listen(7000, on_conn)
    conn = s1.connect(net.host_ip("h2"), 7000)
    completed = []
    for size in sizes:
        conn.message_send(size, on_complete=lambda r, t: (
            completed.append(r.end_seq - r.start_seq)))
    sim.run(until_ns=400 * MS)
    return sizes, delivered.get("total", 0), completed, conn


class TestDeliveryUnderAdversity:
    @settings(max_examples=25, deadline=None)
    @given(sizes=st.lists(st.integers(1, 4 * MSS), min_size=1,
                          max_size=4),
           drops=st.sets(st.integers(1, 30), max_size=6),
           reorder_every=st.sampled_from([0, 5, 9]))
    def test_everything_delivered(self, sizes, drops,
                                  reorder_every):
        sizes, total, completed, conn = run_transfer(
            seed=1, sizes=sizes, drop_mask=drops,
            reorder_every=reorder_every)
        assert total == sum(sizes)
        assert completed == list(sizes)  # completion in send order

    @settings(max_examples=15, deadline=None)
    @given(drops=st.sets(st.integers(1, 60), max_size=25))
    def test_heavy_loss_single_big_message(self, drops):
        sizes, total, completed, conn = run_transfer(
            seed=2, sizes=[40 * MSS], drop_mask=drops,
            reorder_every=0)
        assert total == 40 * MSS
        assert completed == [40 * MSS]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_clean_path_no_retransmits(self, seed):
        sizes, total, completed, conn = run_transfer(
            seed=seed, sizes=[10 * MSS], drop_mask=set(),
            reorder_every=0)
        assert total == 10 * MSS
        assert conn.stats.retransmits == 0
        assert conn.stats.timeouts == 0

    @settings(max_examples=15, deadline=None)
    @given(reorder_every=st.integers(2, 12))
    def test_pure_reordering_never_loses_data(self, reorder_every):
        sizes, total, completed, conn = run_transfer(
            seed=3, sizes=[30 * MSS], drop_mask=set(),
            reorder_every=reorder_every)
        assert total == 30 * MSS
        # Reordering may trigger spurious retransmits, but DSACK
        # feedback must keep them bounded.
        assert conn.stats.retransmits < 60

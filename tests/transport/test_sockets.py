"""Tests for the message socket (the paper's extended send, §4.2)."""

import pytest

from repro.core import Classifier
from repro.core.stage import Stage
from repro.netsim import GBPS, MS, Simulator, star
from repro.stack import HostStack
from repro.transport import MessageSocket


@pytest.fixture
def rig():
    sim = Simulator(seed=11)
    net = star(sim, 2, host_rate_bps=10 * GBPS)
    s1 = HostStack(sim, net.hosts["h1"])
    s2 = HostStack(sim, net.hosts["h2"])
    s2.listen(5000, lambda conn: None)
    conn = s1.connect(net.host_ip("h2"), 5000)
    return sim, conn


def make_stage():
    stage = Stage("app", ("msg_type",),
                  ("msg_id", "msg_type", "msg_size", "priority"))
    stage.create_stage_rule("r1", Classifier.of(msg_type="rpc"),
                            "RPC", ["msg_id", "msg_size"])
    stage.create_stage_rule("r1", Classifier.of(), "OTHER",
                            ["msg_id"])
    return stage


class TestMessageSocket:
    def test_send_classifies_through_stage(self, rig):
        sim, conn = rig
        socket = MessageSocket(conn, make_stage())
        record = socket.send(4000, attrs={"msg_type": "rpc"})
        assert len(record.classifications) == 1
        assert record.classifications[0].class_name == "app.r1.RPC"
        assert record.metadata["msg_size"] == 4000

    def test_msg_size_defaults_to_length(self, rig):
        sim, conn = rig
        socket = MessageSocket(conn, make_stage())
        record = socket.send(1234, attrs={"msg_type": "rpc"})
        assert record.metadata["msg_size"] == 1234

    def test_explicit_msg_size_wins(self, rig):
        # An app may declare a logical size different from the bytes
        # on this connection (e.g. a READ request standing for 64 KB).
        sim, conn = rig
        socket = MessageSocket(conn, make_stage())
        record = socket.send(
            100, attrs={"msg_type": "rpc", "msg_size": 65536})
        assert record.metadata["msg_size"] == 65536

    def test_non_matching_attrs_fall_to_catchall(self, rig):
        sim, conn = rig
        socket = MessageSocket(conn, make_stage())
        record = socket.send(10, attrs={"msg_type": "bulk"})
        assert record.classifications[0].class_name == "app.r1.OTHER"

    def test_no_stage_degrades_gracefully(self, rig):
        sim, conn = rig
        socket = MessageSocket(conn)
        record = socket.send(10)
        assert record.classifications == ()
        assert record.metadata == {}

    def test_counts_messages(self, rig):
        sim, conn = rig
        socket = MessageSocket(conn, make_stage())
        for _ in range(3):
            socket.send(10, attrs={"msg_type": "rpc"})
        assert socket.messages_sent == 3

    def test_close_closes_connection(self, rig):
        sim, conn = rig
        socket = MessageSocket(conn)
        socket.send(10)
        socket.close()
        sim.run(until_ns=20 * MS)
        assert conn.state == conn.DONE


class TestCpuAccounting:
    def test_buckets_and_percentiles(self):
        from repro.core import CpuAccounting
        acct = CpuAccounting(enabled=True)
        for v in (100, 200, 300, 400):
            acct.record("api", v)
        assert acct.mean_ns("api") == 250
        assert acct.percentile_ns("api", 95) in (300, 400)
        assert acct.totals()["api"] == 1000
        assert acct.counts()["api"] == 4

    def test_disabled_accounting_is_free(self):
        from repro.core import CpuAccounting
        acct = CpuAccounting(enabled=False)
        acct.record("api", 100)
        assert acct.counts()["api"] == 0
        assert acct.now() == 0

    def test_reset(self):
        from repro.core import CpuAccounting
        acct = CpuAccounting(enabled=True)
        acct.record("enclave", 5)
        acct.reset()
        assert acct.totals()["enclave"] == 0

    def test_empty_percentile(self):
        from repro.core import CpuAccounting
        acct = CpuAccounting(enabled=True)
        assert acct.percentile_ns("interpreter", 95) == 0.0
        assert acct.mean_ns("interpreter") == 0.0

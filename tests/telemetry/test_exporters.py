"""Tests for the Prometheus and JSONL exporters."""

import json

from repro.telemetry import (FlightRecorder, MetricRegistry, Tracer,
                             jsonl_dump, metric_jsonl_lines,
                             prometheus_text, span_jsonl_lines,
                             write_jsonl)


def sample_registry():
    reg = MetricRegistry()
    reg.counter("pkts_total", host="h1").inc(7)
    reg.counter("pkts_total", host="h2").inc(1)
    reg.gauge("backlog_bytes", queue="q0").set(512)
    h = reg.histogram("lat_ns")
    for v in (1, 2, 3, 1000):
        h.observe(v)
    return reg


class TestPrometheusText:
    def test_counters_and_gauges(self):
        text = prometheus_text(sample_registry())
        lines = text.splitlines()
        assert "# TYPE pkts_total counter" in lines
        assert lines.count("# TYPE pkts_total counter") == 1
        assert 'pkts_total{host="h1"} 7' in lines
        assert 'pkts_total{host="h2"} 1' in lines
        assert "# TYPE backlog_bytes gauge" in lines
        assert 'backlog_bytes{queue="q0"} 512' in lines

    def test_histogram_series(self):
        text = prometheus_text(sample_registry())
        lines = text.splitlines()
        assert "# TYPE lat_ns histogram" in lines
        # Buckets are cumulative: 1 -> le=1, 2,3 -> le=3, 1000 -> le=1023.
        assert 'lat_ns_bucket{le="1"} 1' in lines
        assert 'lat_ns_bucket{le="3"} 3' in lines
        assert 'lat_ns_bucket{le="1023"} 4' in lines
        assert 'lat_ns_bucket{le="+Inf"} 4' in lines
        assert "lat_ns_sum 1006" in lines
        assert "lat_ns_count 4" in lines

    def test_name_sanitization(self):
        reg = MetricRegistry()
        reg.counter("weird-name.total", **{"bad-label": "x"}).inc()
        text = prometheus_text(reg)
        assert 'weird_name_total{bad_label="x"} 1' in text

    def test_empty_registry(self):
        assert prometheus_text(MetricRegistry()) == ""


class TestJsonl:
    def test_metric_lines_parse(self):
        records = [json.loads(line)
                   for line in metric_jsonl_lines(sample_registry())]
        by_key = {(r["name"], tuple(sorted(r["labels"].items()))): r
                  for r in records}
        counter = by_key[("pkts_total", (("host", "h1"),))]
        assert counter["type"] == "counter" and counter["value"] == 7
        hist = by_key[("lat_ns", ())]
        assert hist["type"] == "histogram"
        assert hist["count"] == 4 and hist["total"] == 1006
        assert hist["min"] == 1 and hist["max"] == 1000

    def test_span_lines_parse(self):
        rec = FlightRecorder()
        ticks = iter(range(1, 100))
        tracer = Tracer(rec, clock=lambda: next(ticks))
        with tracer.span("root", host="h1"):
            with tracer.span("leaf"):
                pass
        records = [json.loads(line)
                   for line in span_jsonl_lines(rec.spans())]
        assert [r["name"] for r in records] == ["leaf", "root"]
        root = records[1]
        assert root["type"] == "span"
        assert root["parent"] is None
        assert root["attrs"] == {"host": "h1"}
        assert records[0]["parent"] == root["span"]
        assert records[0]["trace"] == root["trace"]

    def test_dump_and_write(self, tmp_path):
        reg = sample_registry()
        rec = FlightRecorder()
        tracer = Tracer(rec, clock=lambda: 0)
        with tracer.span("s"):
            pass
        body = jsonl_dump(reg, rec)
        parsed = [json.loads(line) for line in body.splitlines()]
        assert parsed[-1]["type"] == "span"
        assert any(r.get("type") == "counter" for r in parsed)
        out = tmp_path / "telemetry.jsonl"
        n = write_jsonl(str(out), reg, rec)
        assert n == len(parsed)
        assert out.read_text() == body

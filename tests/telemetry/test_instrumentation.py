"""End-to-end telemetry: instrumented components publish the right
metrics and spans, and the control plane ships registry snapshots."""

import random

import pytest

from repro.core import Classification, Enclave
from repro.core.accounting import CpuAccounting, Reservoir
from repro.core.stage import Classifier, Stage
from repro.telemetry import Telemetry, traces_containing


def set_priority_five(packet):
    packet.priority = 5


class FakePacket:
    def __init__(self, size=1500):
        self.size = size
        self.priority = 0
        self.drop = 0
        self.to_controller = 0


def run_one_packet(tel):
    """One message through stage -> enclave -> interpreter."""
    stage = Stage("app", classifier_fields=("kind",),
                  metadata_fields=("msg_id",), telemetry=tel)
    stage.create_stage_rule("rs", Classifier.of(kind="q"), "query",
                            ["msg_id"])
    enclave = Enclave("e1", telemetry=tel)
    enclave.install_function(set_priority_five)
    enclave.install_rule("*", "set_priority_five")
    with tel.tracer.span("message.packet"):
        cls = stage.classify({"kind": "q"})
        result = enclave.process_packet(FakePacket(), cls)
    return result


class TestDataPathInstrumentation:
    def test_counters(self):
        tel = Telemetry()
        result = run_one_packet(tel)
        assert result.executed == ["set_priority_five"]
        reg = tel.registry
        assert reg.total("stage_messages_classified_total") == 1
        assert reg.total("enclave_packets_total") == 1
        assert reg.total("enclave_lookups_total") >= 1
        assert reg.total("enclave_lookup_hits_total") == 1
        assert reg.total("enclave_invocations_total") == 1
        assert reg.total("interp_invocations_total") == 1
        assert reg.total("interp_ops_per_invocation") == 1
        assert reg.total("enclave_faults_total") == 0

    def test_span_chain(self):
        tel = Telemetry()
        run_one_packet(tel)
        spans = tel.recorder.spans()
        chains = traces_containing(
            spans, ("stage.classify", "enclave.lookup",
                    "interpreter.execute"))
        assert len(chains) == 1
        by_name = {s.name: s for s in spans
                   if s.trace_id == chains[0]}
        root = by_name["message.packet"]
        assert root.parent_id is None
        assert by_name["stage.classify"].parent_id == root.span_id
        process = by_name["enclave.process"]
        assert process.parent_id == root.span_id
        assert by_name["enclave.lookup"].parent_id == process.span_id
        assert by_name["interpreter.execute"].parent_id == \
            process.span_id
        assert by_name["interpreter.execute"].attrs["ops"] >= 1

    def test_disabled_records_nothing(self):
        tel = Telemetry(enabled=False, recorder_capacity=1)
        result = run_one_packet(tel)
        assert result.executed == ["set_priority_five"]
        assert tel.registry.instruments() == []
        assert tel.recorder.recorded == 0

    def test_default_enclave_has_no_live_telemetry(self):
        enclave = Enclave("plain")
        assert not enclave.telemetry.enabled
        # The interpreter's guard stays None, so the hot path takes
        # the uninstrumented branch (see test_telemetry_overhead).
        assert enclave.interpreter.telemetry is None


class TestStatsReportRegistry:
    def test_report_carries_snapshot(self):
        from repro.core.controller import Controller
        from repro.netsim.simulator import MS, Simulator

        tel = Telemetry()
        sim = Simulator(seed=3)
        controller = Controller(transport="sim", sim=sim,
                                telemetry=tel)
        enclave = Enclave("h1.enclave", clock=sim.clock,
                          telemetry=tel)
        controller.register_enclave("h1", enclave)
        enclave.install_function(set_priority_five)
        enclave.install_rule("*", "set_priority_five")
        cls = [Classification(class_name="a.b.c", metadata={})]
        enclave.process_packet(FakePacket(), cls)
        controller.agent("h1").start_reporting(1 * MS)
        sim.run(until_ns=5 * MS)

        report = controller.plane.latest_report.get("h1")
        assert report is not None
        snap = report.registry
        assert snap["counters"]["enclave_packets_total"
                                "{enclave=h1.enclave}"] == 1
        assert "interp_ops_per_invocation{dispatch=fast}" in \
            snap["histograms"]
        assert tel.registry.total("agent_reports_total") >= 1
        assert tel.registry.total("plane_reports_total") >= 1


class TestReservoirAccounting:
    def test_reservoir_bounded_totals_exact(self):
        acct = CpuAccounting(enabled=True, reservoir_size=100)
        for i in range(5000):
            acct.record("enclave", i + 1)
        assert len(acct.samples["enclave"]) == 100
        assert acct.counts()["enclave"] == 5000
        assert acct.totals()["enclave"] == 5000 * 5001 // 2
        assert acct.mean_ns("enclave") == pytest.approx(2500.5)
        p50 = acct.percentile_ns("enclave", 50)
        assert 0 < p50 <= 5000

    def test_reservoir_uniformity(self):
        # Algorithm R: every element is retained with probability
        # k/n; the retained sample's mean tracks the population mean.
        res = Reservoir(capacity=200, rng=random.Random(7))
        for i in range(10_000):
            res.add(i)
        assert res.seen == 10_000
        assert len(res.values) == 200
        mean = sum(res.values) / len(res.values)
        assert abs(mean - 5000) < 800

    def test_registry_mirror(self):
        from repro.telemetry import MetricRegistry
        reg = MetricRegistry()
        acct = CpuAccounting(enabled=True, registry=reg)
        acct.record("interpreter", 123)
        hist = reg.histogram("cpu_ns", component="interpreter")
        assert hist.count == 1 and hist.total == 123
        assert reg.total("cpu_ns") == 1

    def test_disabled_records_nothing(self):
        acct = CpuAccounting(enabled=False)
        acct.record("enclave", 10)
        assert all(n == 0 for n in acct.counts().values())
        assert all(not vals for vals in acct.samples.values())

"""Unit tests for the metrics registry (repro.telemetry.registry)."""

import pytest

from repro.telemetry import (NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM,
                             Telemetry)
from repro.telemetry.registry import (MetricRegistry, RegistryError,
                                      nearest_rank)


class TestNearestRank:
    def test_empty(self):
        assert nearest_rank([], 95) == 0.0

    def test_single(self):
        for pct in (0, 50, 95, 100):
            assert nearest_rank([3], pct) == 3

    def test_two_values(self):
        assert nearest_rank([1, 2], 50) == 1
        assert nearest_rank([1, 2], 51) == 2
        assert nearest_rank([1, 2], 95) == 2

    def test_clamping(self):
        assert nearest_rank([4, 8, 6], 0) == 4
        assert nearest_rank([4, 8, 6], -1) == 4
        assert nearest_rank([4, 8, 6], 100) == 8
        assert nearest_rank([4, 8, 6], 101) == 8

    def test_unsorted_input(self):
        assert nearest_rank([9, 1, 5], 50) == 5


class TestCounter:
    def test_inc(self):
        reg = MetricRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_memoized_per_label_set(self):
        reg = MetricRegistry()
        a = reg.counter("hits_total", host="h1")
        b = reg.counter("hits_total", host="h1")
        other = reg.counter("hits_total", host="h2")
        assert a is b
        assert a is not other
        a.inc()
        assert reg.total("hits_total") == 1
        other.inc(2)
        assert reg.total("hits_total") == 3

    def test_kind_collision(self):
        reg = MetricRegistry()
        reg.counter("thing")
        with pytest.raises(RegistryError):
            reg.gauge("thing")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricRegistry().gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_exact_stats(self):
        h = MetricRegistry().histogram("lat_ns")
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.count == 4
        assert h.total == 106
        assert h.vmin == 1
        assert h.vmax == 100

    def test_quantile_within_bucket_resolution(self):
        h = MetricRegistry().histogram("lat_ns")
        for v in range(1, 101):
            h.observe(v)
        # Bucket upper bounds are 2^k - 1; p50 of 1..100 lands in
        # the 33..64 bucket, and p100 is clamped to the true max.
        assert 32 <= h.quantile(0.50) <= 63
        assert h.quantile(1.0) == 100

    def test_nonpositive_goes_to_bucket_zero(self):
        h = MetricRegistry().histogram("lat_ns")
        h.observe(0)
        h.observe(-5)
        assert h.count == 2
        assert h.bucket_counts[0] == 2
        assert h.quantile(0.5) == 0.0

    def test_empty_quantile(self):
        assert MetricRegistry().histogram("x").quantile(0.95) == 0


class TestDisabledRegistry:
    def test_instruments_are_shared_nulls(self):
        reg = MetricRegistry(enabled=False)
        assert reg.counter("a_total") is NULL_COUNTER
        assert reg.gauge("b") is NULL_GAUGE
        assert reg.histogram("c") is NULL_HISTOGRAM

    def test_null_ops_are_noops(self):
        reg = MetricRegistry(enabled=False)
        c = reg.counter("a_total")
        c.inc()
        c.inc(10)
        assert c.value == 0
        h = reg.histogram("h")
        h.observe(42)
        assert h.count == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}

    def test_null_telemetry_bundle(self):
        tel = Telemetry(enabled=False, recorder_capacity=1)
        tel.registry.counter("x_total").inc()
        with tel.tracer.span("s"):
            pass
        assert tel.recorder.recorded == 0
        assert not tel.registry.instruments()


class TestSnapshot:
    def test_structure(self):
        reg = MetricRegistry()
        reg.counter("pkts_total", host="h1").inc(3)
        reg.gauge("depth").set(7)
        h = reg.histogram("lat_ns")
        h.observe(10)
        h.observe(20)
        snap = reg.snapshot()
        assert snap["counters"] == {'pkts_total{host=h1}': 3}
        assert snap["gauges"] == {"depth": 7}
        hist = snap["histograms"]["lat_ns"]
        assert hist["count"] == 2
        assert hist["total"] == 30
        assert hist["min"] == 10 and hist["max"] == 20
        assert hist["mean"] == pytest.approx(15.0)

    def test_reset_drops_instruments(self):
        reg = MetricRegistry()
        c = reg.counter("a_total")
        c.inc(5)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}
        fresh = reg.counter("a_total")
        assert fresh is not c
        assert fresh.value == 0
        # A reset also forgets the kind, so the name can be reused.
        reg.reset()
        reg.gauge("a_total")

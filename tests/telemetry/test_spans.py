"""Unit tests for span tracing (repro.telemetry.spans)."""

import pytest

from repro.telemetry import (FlightRecorder, NULL_SPAN, Telemetry,
                             Tracer)
from repro.telemetry.spans import format_trace, traces_containing


def make_tracer(capacity=64):
    """Tracer on a deterministic manual clock (1 tick per call)."""
    ticks = [0]

    def clock():
        ticks[0] += 1
        return ticks[0]

    rec = FlightRecorder(capacity=capacity)
    return Tracer(recorder=rec, clock=clock), rec


class TestNesting:
    def test_child_inherits_trace_and_parent(self):
        tracer, rec = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = rec.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[0].end_ns <= spans[1].end_ns

    def test_sibling_roots_get_fresh_traces(self):
        tracer, rec = make_tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = rec.spans()
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_current_tracks_stack(self):
        tracer, _ = make_tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_attrs_and_set(self):
        tracer, rec = make_tracer()
        with tracer.span("s", host="h1") as span:
            span.set(ops=40)
        (rec_span,) = rec.spans()
        assert rec_span.attrs == {"host": "h1", "ops": 40}
        assert rec_span.duration_ns > 0
        d = rec_span.as_dict()
        assert d["name"] == "s" and d["attrs"]["ops"] == 40


class TestExceptions:
    def test_error_attr_and_stack_unwind(self):
        tracer, rec = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        # Both spans closed despite the exception; stack is clean.
        assert tracer.current() is None
        by_name = {s.name: s for s in rec.spans()}
        assert by_name["inner"].attrs["error"] == "RuntimeError"
        assert by_name["outer"].attrs["error"] == "RuntimeError"
        assert all(s.end_ns is not None for s in rec.spans())

    def test_tracer_usable_after_exception(self):
        tracer, rec = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError()
        with tracer.span("good"):
            pass
        good = rec.spans()[-1]
        assert good.parent_id is None  # not parented under "bad"


class TestFlightRecorder:
    def test_bounded_with_drop_count(self):
        tracer, rec = make_tracer(capacity=10)
        for _ in range(25):
            with tracer.span("s"):
                pass
        assert len(rec.spans()) == 10
        assert rec.recorded == 25
        assert rec.dropped == 15

    def test_traces_grouping(self):
        tracer, rec = make_tracer()
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        traces = rec.traces()
        assert len(traces) == 1
        (spans,) = traces.values()
        assert {s.name for s in spans} == {"root", "leaf"}

    def test_clear(self):
        tracer, rec = make_tracer()
        with tracer.span("s"):
            pass
        rec.clear()
        assert rec.spans() == [] and rec.recorded == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDisabled:
    def test_disabled_tracer_returns_null_span(self):
        tracer = Tracer(recorder=FlightRecorder(), enabled=False)
        span = tracer.span("s", k=1)
        assert span is NULL_SPAN
        with span as s:
            s.set(more=2)
        assert tracer.recorder.recorded == 0
        assert NULL_SPAN.attrs == {}

    def test_disabled_telemetry_bundle(self):
        tel = Telemetry(enabled=False, recorder_capacity=1)
        with tel.tracer.span("s"):
            pass
        assert tel.recorder.recorded == 0


class TestTraceQueries:
    def test_traces_containing(self):
        tracer, rec = make_tracer()
        with tracer.span("message.packet"):
            with tracer.span("stage.classify"):
                pass
            with tracer.span("enclave.process"):
                with tracer.span("interpreter.execute"):
                    pass
        with tracer.span("control.stats_report"):
            pass
        spans = rec.spans()
        full = traces_containing(
            spans, ("stage.classify", "interpreter.execute"))
        assert len(full) == 1
        assert traces_containing(spans, ("no.such.span",)) == []

    def test_format_trace_tree(self):
        tracer, rec = make_tracer()
        with tracer.span("root", host="h1"):
            with tracer.span("child"):
                pass
        text = format_trace(rec.spans())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "host=h1" in lines[0]
        assert lines[1].startswith("  child")

    def test_format_trace_orphaned_parent(self):
        # A finished child whose parent is still open (so not yet in
        # the recorder) renders as a root instead of vanishing.
        tracer, rec = make_tracer()
        root = tracer.span("long.lived")
        with tracer.span("child"):
            pass
        spans = rec.spans()
        assert [s.name for s in spans] == ["child"]
        assert format_trace(spans).startswith("child")
        with root:
            pass  # close it so the tracer stack drains

"""Fault-injection harness: partitions, restarts, desired-state replay."""

import pytest

from repro.control import (ChannelConfig, Envelope, FaultInjector,
                           Hello, schedule_restart)
from repro.core import Controller, Enclave
from repro.lang import AccessLevel, Field, Lifetime, schema
from repro.netsim.simulator import MS, Simulator

pytestmark = pytest.mark.control_faults


# Module-level so the enclave's quotation step can recover the source.
def tag_priority(packet, _global):
    packet.priority = _global.level


TAG_SCHEMA = schema("Tag", Lifetime.GLOBAL, [
    Field("level", AccessLevel.READ_ONLY, default=1),
])

FAST = ChannelConfig(rto_ns=1 * MS, backoff_cap_ns=8 * MS,
                     jitter_ns=100_000)


def make_cluster(seed=1, num_hosts=1, **fault_kwargs):
    sim = Simulator(seed=seed)
    faults = FaultInjector(rng=sim.rng, **fault_kwargs)
    controller = Controller(transport="sim", sim=sim, faults=faults,
                            channel_config=FAST)
    for i in range(num_hosts):
        controller.register_enclave(f"h{i + 1}",
                                    Enclave(f"h{i + 1}.enclave"))
    return sim, faults, controller


class TestInjector:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultInjector(dup_prob=-0.1)

    def test_drop_everything(self):
        faults = FaultInjector(drop_prob=1.0)
        env = Envelope("a", "b", 1, 0, Hello(host="x"))
        assert faults.deliveries(env) == 0
        assert faults.dropped == 1

    def test_duplicate_everything(self):
        faults = FaultInjector(dup_prob=1.0)
        env = Envelope("a", "b", 1, 0, Hello(host="x"))
        assert faults.deliveries(env) == 2
        assert faults.duplicated == 1

    def test_partition_beats_probabilities(self):
        faults = FaultInjector(drop_prob=0.0, dup_prob=1.0)
        faults.partition("b")
        assert faults.is_partitioned("b")
        env = Envelope("a", "b", 1, 0, Hello(host="x"))
        assert faults.deliveries(env) == 0          # dst cut off
        env = Envelope("b", "a", 1, 0, Hello(host="x"))
        assert faults.deliveries(env) == 0          # src cut off
        assert faults.partition_drops == 2
        assert faults.duplicated == 0
        faults.heal("b")
        assert faults.deliveries(
            Envelope("a", "b", 1, 0, Hello(host="x"))) == 2

    def test_summary_counts(self):
        faults = FaultInjector(drop_prob=1.0)
        faults.partition("x")
        faults.deliveries(Envelope("a", "b", 1, 0, Hello(host="h")))
        summary = faults.summary()
        assert summary["dropped"] == 1
        assert summary["partitioned"] == ["x"]


class TestPartitionRecovery:
    def test_install_rides_out_a_partition(self):
        sim, faults, controller = make_cluster(seed=2)
        agent = controller.agent("h1")
        faults.partition(agent.address)
        (pending,) = controller.install_function(
            "h1", tag_priority, global_schema=TAG_SCHEMA)
        sim.run(until_ns=10 * MS)
        assert not pending.done
        assert faults.partition_drops > 0
        assert "tag_priority" not in controller.enclave(
            "h1").functions()
        faults.heal(agent.address)
        sim.run(until_ns=100 * MS)
        assert pending.acked
        assert "tag_priority" in controller.enclave("h1").functions()
        assert controller.plane.endpoint.stats.retransmits > 0

    def test_updates_queued_during_partition_all_land(self):
        sim, faults, controller = make_cluster(seed=3)
        controller.install_function("h1", tag_priority,
                                    global_schema=TAG_SCHEMA)
        sim.run(until_ns=20 * MS)
        agent = controller.agent("h1")
        faults.partition(agent.address)
        for level in (2, 3, 4):
            controller.set_global("h1", "tag_priority", "level",
                                  level)
        sim.run(until_ns=40 * MS)
        faults.heal(agent.address)
        sim.run(until_ns=400 * MS)
        enclave = controller.enclave("h1")
        assert enclave.query_global("tag_priority")["level"] == 4
        assert agent.applied_epoch == \
            controller.plane.desired("h1").epoch
        assert controller.plane.pending_count() == 0


class TestRestartReplay:
    def test_restart_loses_state_then_replay_restores_it(self):
        sim, faults, controller = make_cluster(seed=4)
        controller.install_function("h1", tag_priority,
                                    global_schema=TAG_SCHEMA)
        controller.install_rule("h1", "*", "tag_priority")
        controller.set_global("h1", "tag_priority", "level", 5)
        sim.run(until_ns=50 * MS)
        enclave = controller.enclave("h1")
        assert enclave.query_global("tag_priority")["level"] == 5

        agent = controller.agent("h1")
        agent.restart()
        # Soft state is gone until the replay lands.
        assert enclave.functions() == []
        assert agent.applied_epoch == 0

        sim.run(until_ns=300 * MS)
        assert agent.restarts == 1
        assert controller.plane.replays >= 1
        assert controller.plane.hellos_handled >= 1
        assert enclave.functions() == ["tag_priority"]
        assert len(enclave.query_rules(0)) == 1
        assert enclave.query_global("tag_priority")["level"] == 5
        assert agent.applied_epoch == \
            controller.plane.desired("h1").epoch

    def test_restart_under_loss_still_converges(self):
        sim, faults, controller = make_cluster(seed=5, drop_prob=0.2)
        controller.install_function("h1", tag_priority,
                                    global_schema=TAG_SCHEMA)
        controller.set_global("h1", "tag_priority", "level", 7)
        schedule_restart(sim, 30 * MS, controller.agent("h1"))
        sim.run(until_ns=60 * MS)
        faults.drop_prob = 0.0      # bounded drain window
        sim.run(until_ns=1_000 * MS)
        enclave = controller.enclave("h1")
        assert controller.agent("h1").restarts == 1
        assert enclave.query_global("tag_priority")["level"] == 7
        assert controller.agent("h1").applied_epoch == \
            controller.plane.desired("h1").epoch

    def test_schedule_restart_fires_at_absolute_time(self):
        sim, faults, controller = make_cluster(seed=6)
        agent = controller.agent("h1")
        schedule_restart(sim, 10 * MS, agent)
        sim.run(until_ns=9 * MS)
        assert agent.restarts == 0
        sim.run(until_ns=200 * MS)
        assert agent.restarts == 1


class TestScheduledHeals:
    """Partition windows: scheduled heals with generation fencing."""

    def test_partition_heals_itself_at_heal_at_ns(self):
        sim, faults, controller = make_cluster(seed=7)
        agent = controller.agent("h1")
        faults.bind_scheduler(sim)
        faults.partition(agent.address, heal_at_ns=30 * MS)
        (pending,) = controller.install_function(
            "h1", tag_priority, global_schema=TAG_SCHEMA)
        sim.run(until_ns=25 * MS)
        assert not pending.done
        assert faults.is_partitioned(agent.address)
        sim.run(until_ns=300 * MS)
        assert not faults.is_partitioned(agent.address)
        assert faults.scheduled_heals_fired == 1
        assert pending.acked
        assert "tag_priority" in controller.enclave("h1").functions()

    def test_partition_window_bounds_the_outage(self):
        sim, faults, controller = make_cluster(seed=8)
        agent = controller.agent("h1")
        faults.bind_scheduler(sim)
        faults.partition_window(agent.address, 10 * MS, 40 * MS)
        (pending,) = controller.install_function(
            "h1", tag_priority, global_schema=TAG_SCHEMA)
        # Before the window opens the channel is clean...
        sim.run(until_ns=8 * MS)
        assert pending.acked
        # ...inside it, nothing flows...
        sim.run(until_ns=20 * MS)
        assert faults.is_partitioned(agent.address)
        (stuck,) = controller.set_global("h1", "tag_priority",
                                         "level", 9)
        sim.run(until_ns=35 * MS)
        assert not stuck.done
        # ...and after heal_at_ns the queued update lands.
        sim.run(until_ns=400 * MS)
        assert stuck.acked
        assert controller.enclave(
            "h1").query_global("tag_priority")["level"] == 9

    def test_stale_scheduled_heal_cannot_heal_newer_partition(self):
        sim, faults, controller = make_cluster(seed=9)
        agent = controller.agent("h1")
        faults.bind_scheduler(sim)
        faults.partition(agent.address, heal_at_ns=50 * MS)
        # An operator heals early and installs a NEW partition; the
        # old timer must not heal it (generation fencing).
        sim.run(until_ns=10 * MS)
        faults.heal(agent.address)
        faults.partition(agent.address)
        sim.run(until_ns=200 * MS)
        assert faults.is_partitioned(agent.address)
        assert faults.scheduled_heals_fired == 0

    def test_manual_heal_wins_and_timer_is_orphaned(self):
        sim, faults, controller = make_cluster(seed=10)
        agent = controller.agent("h1")
        faults.bind_scheduler(sim)
        faults.partition(agent.address, heal_at_ns=100 * MS)
        sim.run(until_ns=20 * MS)
        faults.heal(agent.address)
        assert not faults.is_partitioned(agent.address)
        sim.run(until_ns=300 * MS)
        # The orphaned timer fired as a no-op.
        assert faults.scheduled_heals_fired == 0
        assert not faults.is_partitioned(agent.address)

    def test_window_validation(self):
        sim, faults, _ = make_cluster(seed=11)
        faults.bind_scheduler(sim)
        with pytest.raises(ValueError):
            faults.partition_window("agent:h1", 20 * MS, 20 * MS)
        unscheduled = FaultInjector()
        with pytest.raises(ValueError):
            unscheduled.partition("agent:h1", heal_at_ns=5 * MS)
        with pytest.raises(ValueError):
            unscheduled.partition_window("agent:h1", 0, 5 * MS)

    def test_summary_counts_scheduled_heals(self):
        sim, faults, controller = make_cluster(seed=12)
        faults.bind_scheduler(sim)
        faults.partition("agent:h1", heal_at_ns=5 * MS)
        faults.partition_window("agent:h1", 10 * MS, 15 * MS)
        sim.run(until_ns=50 * MS)
        assert faults.summary()["scheduled_heals_fired"] == 2

"""Reliable-channel semantics: retries, ordering, dedup, sessions.

Every test runs on the deterministic simulator; loss and duplication
come from the seeded FaultInjector, so failures reproduce exactly.
"""

import pytest

from repro.control import (Ack, ChannelConfig, ControlEndpoint,
                           ControlError, Envelope, FaultInjector,
                           Hello, InprocTransport, Outcome,
                           SimTransport)
from repro.netsim.simulator import MS, Simulator


def make_pair(sim, faults=None, config=None, delay_ns=50_000,
              jitter_ns=0):
    """A sender endpoint 'ctl' and a recording receiver 'agt'."""
    transport = SimTransport(sim, delay_ns=delay_ns,
                             jitter_ns=jitter_ns, faults=faults)
    received = []

    def handler(src, payload):
        received.append(payload)
        return Outcome(True, result=len(received))

    sender = ControlEndpoint("ctl", transport, scheduler=sim,
                             rng=sim.rng, config=config)
    receiver = ControlEndpoint("agt", transport, scheduler=sim,
                               rng=sim.rng, config=config,
                               handler=handler)
    return transport, sender, receiver, received


class TestBasicDelivery:
    def test_send_delivers_and_acks(self):
        sim = Simulator(seed=1)
        _, sender, _, received = make_pair(sim)
        pending = sender.send("agt", Hello(host="h1"))
        assert not pending.done
        sim.run()
        assert pending.acked and pending.result == 1
        assert len(received) == 1

    def test_unreliable_send_has_no_handle(self):
        sim = Simulator(seed=1)
        _, sender, _, received = make_pair(sim)
        assert sender.send("agt", Hello(host="h1"),
                           reliable=False) is None
        sim.run()
        assert len(received) == 1
        assert sender.stats.sent_unreliable == 1
        assert sender.stats.acked == 0


class TestLossAndRetransmit:
    def test_delivery_survives_heavy_loss(self):
        sim = Simulator(seed=3)
        faults = FaultInjector(rng=sim.rng, drop_prob=0.5)
        cfg = ChannelConfig(rto_ns=1 * MS, backoff_cap_ns=4 * MS,
                            jitter_ns=0)
        _, sender, _, received = make_pair(sim, faults=faults,
                                           config=cfg)
        pendings = [sender.send("agt", Hello(host=f"h{i}"))
                    for i in range(20)]
        sim.run(until_ns=2_000 * MS)
        assert all(p.acked for p in pendings)
        assert len(received) == 20
        assert sender.stats.retransmits > 0
        assert faults.dropped > 0

    def test_retransmits_are_idempotent_under_duplication(self):
        sim = Simulator(seed=5)
        faults = FaultInjector(rng=sim.rng, dup_prob=1.0)
        _, sender, receiver, received = make_pair(sim, faults=faults)
        pendings = [sender.send("agt", Hello(host=f"h{i}"))
                    for i in range(10)]
        sim.run(until_ns=1_000 * MS)
        assert all(p.acked for p in pendings)
        # Every envelope was duplicated in flight, but each message
        # was processed exactly once.
        assert len(received) == 10
        assert receiver.stats.duplicates_dropped >= 10

    def test_delivery_order_matches_send_order_despite_jitter(self):
        sim = Simulator(seed=7)
        _, sender, _, received = make_pair(sim, delay_ns=10_000,
                                           jitter_ns=500_000)
        for i in range(30):
            sender.send("agt", Hello(host=f"h{i}"))
        sim.run()
        assert [p.host for p in received] == \
            [f"h{i}" for i in range(30)]

    def test_backoff_doubles_then_caps(self):
        sim = Simulator(seed=1)
        faults = FaultInjector(rng=sim.rng)
        faults.partition("agt")
        cfg = ChannelConfig(rto_ns=1 * MS, backoff_factor=2,
                            backoff_cap_ns=4 * MS, jitter_ns=0)
        transport, sender, _, _ = make_pair(sim, faults=faults,
                                            config=cfg)
        send_times = []
        original = transport.send

        def recording_send(env):
            send_times.append(sim.now)
            original(env)

        transport.send = recording_send
        sender.send("agt", Hello(host="h1"))
        sim.run(until_ns=20 * MS)
        gaps = [b - a for a, b in zip(send_times, send_times[1:])]
        assert gaps[:5] == [1 * MS, 2 * MS, 4 * MS, 4 * MS, 4 * MS]

    def test_max_retries_expires_the_send(self):
        sim = Simulator(seed=1)
        faults = FaultInjector(rng=sim.rng)
        faults.partition("agt")
        cfg = ChannelConfig(rto_ns=1 * MS, backoff_cap_ns=2 * MS,
                            jitter_ns=0, max_retries=3)
        _, sender, _, _ = make_pair(sim, faults=faults, config=cfg)
        pending = sender.send("agt", Hello(host="h1"))
        sim.run(until_ns=100 * MS)
        assert pending.failed and pending.done and not pending.ok
        assert pending.attempts == 3
        assert sender.stats.expired == 1
        assert sender.pending_count() == 0


class TestLostAcks:
    def test_lost_ack_is_reacked_with_cached_result(self):
        sim = Simulator(seed=2)
        transport = SimTransport(sim, delay_ns=10_000)
        dropped = {"n": 0}
        original = transport.send

        def ack_dropping_send(env):
            if isinstance(env.payload, Ack) and dropped["n"] < 1:
                dropped["n"] += 1
                return
            original(env)

        transport.send = ack_dropping_send
        applies = []
        receiver = ControlEndpoint(
            "agt", transport, scheduler=sim, rng=sim.rng,
            handler=lambda src, p: Outcome(True, result="applied"))
        receiver.handler = lambda src, p: (
            applies.append(p) or Outcome(True, result="applied"))
        cfg = ChannelConfig(rto_ns=1 * MS, jitter_ns=0)
        sender = ControlEndpoint("ctl", transport, scheduler=sim,
                                 rng=sim.rng, config=cfg)
        pending = sender.send("agt", Hello(host="h1"))
        sim.run(until_ns=100 * MS)
        assert pending.acked
        assert pending.result == "applied"  # from the re-ack cache
        assert len(applies) == 1            # not re-applied
        assert receiver.stats.reacked == 1


class TestSessions:
    def test_reset_supersedes_inflight_sends(self):
        sim = Simulator(seed=4)
        faults = FaultInjector(rng=sim.rng)
        faults.partition("agt")
        _, sender, _, received = make_pair(sim, faults=faults)
        stuck = sender.send("agt", Hello(host="old"))
        sim.run(until_ns=5 * MS)
        sender.reset_peer("agt")
        faults.heal("agt")
        fresh = sender.send("agt", Hello(host="new"))
        sim.run(until_ns=500 * MS)
        assert stuck.superseded and stuck.done and not stuck.ok
        assert fresh.acked
        assert [p.host for p in received] == ["new"]

    def test_stale_session_envelopes_are_discarded(self):
        sim = Simulator(seed=4)
        transport, sender, receiver, received = make_pair(sim)
        sender.send("agt", Hello(host="a"))
        sim.run()
        sender.reset_peer("agt")
        sender.send("agt", Hello(host="b"))
        sim.run()
        # Inject a ghost retransmit from the dead session 1.
        transport.send(Envelope("ctl", "agt", 1, 1,
                                Hello(host="ghost")))
        sim.run()
        assert [p.host for p in received] == ["a", "b"]
        assert receiver.stats.stale_session_drops == 1


class TestNacks:
    def test_nack_completes_pending_with_reason_and_error(self):
        sim = Simulator(seed=1)
        transport = SimTransport(sim, delay_ns=10_000)
        boom = ValueError("boom")

        def failing_handler(src, payload):
            raise boom

        ControlEndpoint("agt", transport, scheduler=sim, rng=sim.rng,
                        handler=failing_handler)
        sender = ControlEndpoint("ctl", transport, scheduler=sim,
                                 rng=sim.rng)
        seen = []
        sender.on_nack = lambda peer, p: seen.append((peer, p.reason))
        pending = sender.send("agt", Hello(host="h1"))
        sim.run()
        assert pending.nacked and pending.done and not pending.ok
        assert pending.reason == "ValueError"
        assert pending.error is boom
        assert seen == [("agt", "ValueError")]
        assert sender.stats.nacked == 1


class TestInproc:
    def test_synchronous_roundtrip(self):
        transport = InprocTransport()
        received = []
        ControlEndpoint("agt", transport,
                        handler=lambda src, p: (
                            received.append(p) or
                            Outcome(True, result=41 + 1)))
        sender = ControlEndpoint("ctl", transport)
        pending = sender.send("agt", Hello(host="h1"))
        # Completed before send() returned: no scheduler involved.
        assert pending.acked and pending.result == 42
        assert len(received) == 1

    def test_send_to_missing_endpoint_fails_fast(self):
        transport = InprocTransport()
        sender = ControlEndpoint("ctl", transport)
        with pytest.raises(ControlError):
            sender.send("nowhere", Hello(host="h1"))

"""Control plane: desired state, epochs, replay, telemetry loops.

Everything here runs over the synchronous inproc transport, so each
test sees the final state immediately — the asynchronous/lossy paths
are covered by test_faults.py and the integration scenario.
"""

import pytest

from repro.control import (ControlError, ControlLoop, EnclaveAgent,
                           InprocTransport, InstallFunction,
                           STALE_EPOCH, StatsReport)
from repro.core import (Controller, ControllerError, Enclave,
                        EnclaveError)
from repro.functions.pias import (PIAS_FUNCTION_NAME,
                                  PIAS_GLOBAL_SCHEMA,
                                  PIAS_MESSAGE_SCHEMA,
                                  PiasThresholdLoop, pias_action)
from repro.functions.wcmp import (FUNCTION_NAME as WCMP_FUNCTION_NAME,
                                  WCMP_GLOBAL_SCHEMA, WcmpWeightLoop,
                                  wcmp_action)
from repro.lang import AccessLevel, Field, Lifetime, schema


def tag_priority(packet, _global):
    packet.priority = _global.level


def tag_priority_v2(packet, _global):
    packet.priority = _global.level + 1


TAG_SCHEMA = schema("Tag", Lifetime.GLOBAL, [
    Field("level", AccessLevel.READ_ONLY, default=1),
])


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.register_enclave("h1", Enclave("h1.enclave"))
    return ctl


class TestDesiredState:
    def test_every_mutation_bumps_the_epoch(self, controller):
        plane = controller.plane
        assert plane.desired("h1").epoch == 0
        controller.install_function("h1", tag_priority,
                                    global_schema=TAG_SCHEMA)
        assert plane.desired("h1").epoch == 1
        controller.set_global("h1", "tag_priority", "level", 3)
        assert plane.desired("h1").epoch == 2
        controller.install_rule("h1", "*", "tag_priority")
        assert plane.desired("h1").epoch == 3
        ds = plane.desired("h1")
        assert "tag_priority" in ds.functions
        assert len(ds.rules) == 1
        assert ds.globals[("tag_priority", "level", "scalar",
                           None)] == 3

    def test_unattached_host_rejected(self, controller):
        with pytest.raises(ControlError):
            controller.plane.desired("ghost")
        with pytest.raises(ControlError):
            controller.plane.install_function("ghost", "f",
                                              tag_priority)

    def test_duplicate_attach_rejected(self, controller):
        with pytest.raises(ControlError):
            controller.plane.attach("h1")


class TestInprocFacade:
    def test_results_come_back_synchronously(self, controller):
        assert controller.synchronous
        (installed,) = controller.install_function(
            "h1", tag_priority, global_schema=TAG_SCHEMA)
        assert installed.name == "tag_priority"
        (rule_id,) = controller.install_rule("h1", "*",
                                             "tag_priority")
        assert rule_id in {r.rule_id for r in
                           controller.enclave("h1").query_rules(0)}
        assert controller.set_global("h1", "tag_priority", "level",
                                     9) is None
        assert controller.enclave("h1").query_global(
            "tag_priority")["level"] == 9

    def test_apply_errors_reraise_in_the_caller(self, controller):
        with pytest.raises(EnclaveError):
            controller.install_rule("h1", "*", "no_such_function")

    def test_replace_function_swaps_the_program(self, controller):
        controller.install_function("h1", tag_priority,
                                    global_schema=TAG_SCHEMA)
        controller.replace_function("h1", "tag_priority",
                                    tag_priority_v2,
                                    global_schema=TAG_SCHEMA)
        assert controller.enclave("h1").functions() == \
            ["tag_priority"]
        # The replacement is recorded in desired state, so a replay
        # after restart reinstalls v2, not v1.
        spec = controller.plane.desired("h1").functions[
            "tag_priority"]
        assert spec.source_fn is tag_priority_v2


class TestStaleEpochs:
    def test_stale_install_is_nacked_without_side_effects(
            self, controller):
        controller.install_function("h1", tag_priority,
                                    global_schema=TAG_SCHEMA)
        agent = controller.agent("h1")
        pending = controller.plane.endpoint.send(
            agent.address,
            InstallFunction(host="h1", epoch=0, name="rogue",
                            source_fn=tag_priority))
        assert pending.nacked
        assert pending.reason == STALE_EPOCH
        assert agent.stale_rejections == 1
        assert controller.plane.stale_nacks_seen == 1
        assert controller.plane.nack_log == \
            [(agent.address, STALE_EPOCH)]
        assert "rogue" not in controller.enclave("h1").functions()

    def test_current_epoch_messages_still_apply(self, controller):
        controller.install_function("h1", tag_priority,
                                    global_schema=TAG_SCHEMA)
        controller.set_global("h1", "tag_priority", "level", 2)
        agent = controller.agent("h1")
        assert agent.applied_epoch == \
            controller.plane.desired("h1").epoch
        assert agent.stale_rejections == 0


class TestHelloReplay:
    def test_restart_replays_desired_state_inline(self, controller):
        controller.install_function("h1", tag_priority,
                                    global_schema=TAG_SCHEMA)
        controller.install_rule("h1", "*", "tag_priority")
        controller.set_global("h1", "tag_priority", "level", 5)
        agent = controller.agent("h1")
        enclave = controller.enclave("h1")
        agent.restart()
        # Inproc: the Hello, the replay, and its acks all completed
        # inside restart().
        assert enclave.functions() == ["tag_priority"]
        assert len(enclave.query_rules(0)) == 1
        assert enclave.query_global("tag_priority")["level"] == 5
        assert agent.applied_epoch == \
            controller.plane.desired("h1").epoch
        assert controller.plane.replays == 1
        assert controller.plane.hellos_handled == 1

    def test_hello_from_unknown_host_is_nacked(self, controller):
        rogue = EnclaveAgent("h9", Enclave("h9.enclave"),
                             controller.transport)
        pending = rogue.send_hello()
        assert pending.nacked
        assert "unknown host" in pending.reason


class TestTelemetry:
    def test_reports_land_and_feed_loops(self, controller):
        seen = []

        class Recorder(ControlLoop):
            def on_report(self, host, report):
                seen.append((host, report.applied_epoch))

        controller.plane.add_loop(Recorder())
        agent = controller.agent("h1")
        assert not controller.plane.in_sync("h1")  # no report yet
        agent.send_report()
        assert controller.plane.reports_received == 1
        assert controller.plane.latest_report["h1"].host == "h1"
        assert seen == [("h1", 0)]
        assert controller.plane.in_sync("h1")
        controller.plane.clear_loops()
        agent.send_report()
        assert len(seen) == 1  # detached loops stay silent

    def test_pias_loop_pushes_thresholds_once_converged(
            self, controller):
        plane = controller.plane
        plane.install_function("h1", PIAS_FUNCTION_NAME, pias_action,
                               message_schema=PIAS_MESSAGE_SCHEMA,
                               global_schema=PIAS_GLOBAL_SCHEMA)
        loop = PiasThresholdLoop(plane, hosts=["h1"], min_samples=4)
        plane.add_loop(loop)
        agent = controller.agent("h1")
        agent.add_telemetry_source(
            "flow_sizes", lambda: (1_000, 2_000, 300_000, 4_000_000))
        agent.send_report()
        assert loop.updates_pushed == 1
        flat = [v for row in loop.current for v in row]
        store = controller.enclave("h1").function(
            PIAS_FUNCTION_NAME).global_store
        assert list(store.array("priorities")) == flat
        # An identical sample window does not push a new epoch.
        epoch = plane.desired("h1").epoch
        agent.send_report()
        assert loop.updates_pushed == 1
        assert plane.desired("h1").epoch == epoch

    def test_wcmp_loop_reweights_on_capacity_change(
            self, controller):
        plane = controller.plane
        plane.install_function("h1", WCMP_FUNCTION_NAME, wcmp_action,
                               global_schema=WCMP_GLOBAL_SCHEMA)
        key = (1, 2)
        loop = WcmpWeightLoop(plane, key, ["h1"])
        plane.add_loop(loop)
        agent = controller.agent("h1")
        capacity = {"rows": [(1, 5e9), (2, 5e9)]}
        agent.add_telemetry_source("path_capacity",
                                   lambda: capacity["rows"])
        agent.send_report()
        assert loop.current == [(1, 500), (2, 500)]
        capacity["rows"] = [(1, 9e9), (2, 1e9)]
        agent.send_report()
        assert loop.current == [(1, 900), (2, 100)]
        store = controller.enclave("h1").function(
            WCMP_FUNCTION_NAME).global_store
        assert list(store.keyed_array("paths", key)) == \
            [1, 900, 2, 100]
        assert loop.updates_pushed == 2


class TestFacadeErrors:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ControllerError):
            Controller(transport="carrier-pigeon")

    def test_sim_transport_needs_a_simulator(self):
        with pytest.raises(ControllerError):
            Controller(transport="sim")

    def test_unknown_host_fails_before_sending(self, controller):
        sent_before = controller.plane.endpoint.stats.sent
        with pytest.raises(ControllerError):
            controller.install_function("ghost", tag_priority)
        assert controller.plane.endpoint.stats.sent == sent_before

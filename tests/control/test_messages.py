"""Wire-protocol basics: envelopes, payload typing, epoch fields."""

import dataclasses

import pytest

from repro.control import (Ack, ConfigMessage, Envelope, Hello,
                           InstallFunction, InstallRule, Nack,
                           ReplaceFunction, RuleSpec, StatsReport,
                           UpdateGlobals, UpdateRules)


class TestEnvelope:
    def test_reliable_iff_sequenced(self):
        payload = Hello(host="h1")
        assert Envelope("a", "b", 1, 0, payload).reliable
        assert not Envelope("a", "b", 1, -1, payload).reliable

    def test_describe_names_payload_and_stream(self):
        env = Envelope("controller", "agent:h1", 3, 7,
                       InstallFunction(host="h1", epoch=9, name="f"))
        text = env.describe()
        assert "InstallFunction" in text
        assert "controller->agent:h1" in text
        assert "s3#7" in text


class TestPayloads:
    def test_config_messages_carry_host_and_epoch(self):
        for cls in (InstallFunction, ReplaceFunction, InstallRule,
                    UpdateRules, UpdateGlobals):
            msg = cls(host="h9", epoch=4)
            assert isinstance(msg, ConfigMessage)
            assert msg.host == "h9" and msg.epoch == 4

    def test_non_config_messages_are_not_epoch_checked(self):
        for msg in (Hello(host="h1"), StatsReport(host="h1"),
                    Ack(session=1, seq=2), Nack(session=1, seq=2)):
            assert not isinstance(msg, ConfigMessage)

    def test_payloads_are_frozen(self):
        msg = InstallFunction(host="h1", epoch=1, name="f")
        with pytest.raises(dataclasses.FrozenInstanceError):
            msg.epoch = 2

    def test_rule_spec_defaults(self):
        spec = RuleSpec(pattern="*", function="f")
        assert spec.table_id == 0
        assert spec.priority == 0
        assert spec.next_table is None

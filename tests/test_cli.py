"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("table1", "fig9", "fig10", "fig11", "fig12",
                    "micro"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_duration_option(self):
        args = build_parser().parse_args(["fig10",
                                          "--duration-ms", "42"])
        assert args.duration_ms == 42

    def test_backend_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--backend", "jit"])


class TestExecution:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "WCMP" in out and "14/14" in out

    def test_table1_native_backend(self, capsys):
        assert main(["table1", "--backend", "native"]) == 0

    def test_micro_runs(self, capsys):
        assert main(["micro", "--packets", "50"]) == 0
        out = capsys.readouterr().out
        assert "PIAS" in out and "stack" in out

    @pytest.mark.slow
    def test_fig12_runs(self, capsys):
        assert main(["fig12", "--duration-ms", "5"]) == 0
        out = capsys.readouterr().out
        assert "interpreter" in out


class TestReportCommand:
    def test_report_option_parsed(self):
        args = build_parser().parse_args(
            ["report", "--out", "/tmp/x.md", "--seed", "5"])
        assert args.out == "/tmp/x.md" and args.seed == 5


class TestLatencyCommands:
    def test_latency_serve_options_parsed(self):
        args = build_parser().parse_args(
            ["latency-serve", "--once", "--smoke", "--shards", "2",
             "--duration-ms", "40", "--port", "8123"])
        assert args.once and args.smoke
        assert args.shards == 2 and args.port == 8123

    def test_latency_breakdown_loads_parsed(self):
        args = build_parser().parse_args(
            ["latency-breakdown", "--loads", "0.2,0.8"])
        assert args.loads == "0.2,0.8"

    @pytest.mark.slow
    @pytest.mark.latency
    def test_latency_serve_once_smoke_passes(self, capsys):
        assert main(["latency-serve", "--once", "--smoke",
                     "--duration-ms", "40"]) == 0
        out = capsys.readouterr().out
        assert "latency-serve smoke OK" in out
        assert "unattributed" in out

    @pytest.mark.slow
    @pytest.mark.latency
    def test_latency_breakdown_runs(self, capsys):
        assert main(["latency-breakdown", "--loads", "0.5",
                     "--duration-ms", "30"]) == 0
        out = capsys.readouterr().out
        assert "Latency decomposition vs offered load" in out

"""Regression tests for ConcurrencyGuard acquire/release edge cases.

Section 3.4.4 derives the admissible parallelism from a function's
write set; the guard enforces it.  These tests pin the interleaving
semantics and — importantly for operators debugging violations — that
every ``ConcurrencyViolation`` message names the offending message key.
"""

import pytest

from repro.core.enclave import ConcurrencyGuard, ConcurrencyViolation
from repro.core.state import ConcurrencyLevel


class TestParallel:
    def test_unbounded_interleaving(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PARALLEL)
        for key in ("a", "a", "b", "c"):
            guard.acquire(key)
        for key in ("a", "b", "a", "c"):
            guard.release(key)

    def test_release_without_acquire_raises(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PARALLEL)
        with pytest.raises(ConcurrencyViolation,
                           match=r"release without matching acquire"):
            guard.release("orphan")

    def test_release_without_acquire_names_key(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PARALLEL)
        with pytest.raises(ConcurrencyViolation, match=r"'orphan'"):
            guard.release("orphan")


class TestPerMessage:
    def test_interleaved_distinct_keys_allowed(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PER_MESSAGE)
        guard.acquire("m1")
        guard.acquire("m2")
        guard.release("m1")
        guard.acquire("m3")
        guard.release("m3")
        guard.release("m2")

    def test_double_acquire_same_key_raises(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PER_MESSAGE)
        guard.acquire("m1")
        with pytest.raises(ConcurrencyViolation, match=r"'m1'"):
            guard.acquire("m1")

    def test_failed_acquire_leaves_guard_usable(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PER_MESSAGE)
        guard.acquire("m1")
        with pytest.raises(ConcurrencyViolation):
            guard.acquire("m1")
        # The failed acquire must not have leaked a hold.
        guard.release("m1")
        guard.acquire("m1")
        guard.release("m1")

    def test_reacquire_after_release(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PER_MESSAGE)
        guard.acquire("m1")
        guard.release("m1")
        guard.acquire("m1")
        guard.release("m1")

    def test_release_wrong_key_raises_and_names_it(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PER_MESSAGE)
        guard.acquire("m1")
        with pytest.raises(ConcurrencyViolation, match=r"'m2'"):
            guard.release("m2")
        guard.release("m1")

    def test_double_release_raises(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PER_MESSAGE)
        guard.acquire("m1")
        guard.release("m1")
        with pytest.raises(ConcurrencyViolation, match=r"'m1'"):
            guard.release("m1")

    def test_tuple_keys(self):
        # Flow five-tuples are real message keys in the enclave.
        guard = ConcurrencyGuard(ConcurrencyLevel.PER_MESSAGE)
        key = (10, 1234, 20, 80, 6)
        guard.acquire(key)
        with pytest.raises(ConcurrencyViolation, match=r"1234"):
            guard.acquire(key)
        guard.release(key)


class TestSerial:
    def test_one_invocation_at_a_time(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.SERIAL)
        guard.acquire("m1")
        with pytest.raises(ConcurrencyViolation, match=r"'m2'"):
            guard.acquire("m2")
        guard.release("m1")
        guard.acquire("m2")
        guard.release("m2")

    def test_serial_blocks_even_same_key(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.SERIAL)
        guard.acquire("m1")
        with pytest.raises(ConcurrencyViolation, match=r"'m1'"):
            guard.acquire("m1")
        guard.release("m1")

    def test_violation_message_names_blocked_key(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.SERIAL)
        guard.acquire("holder")
        with pytest.raises(ConcurrencyViolation) as exc:
            guard.acquire("blocked")
        assert "'blocked'" in str(exc.value)
        assert "global state" in str(exc.value)

    def test_release_without_acquire_raises(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.SERIAL)
        with pytest.raises(ConcurrencyViolation,
                           match=r"release without matching acquire"):
            guard.release("m1")

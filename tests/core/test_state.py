"""Tests for enclave state management and the concurrency model."""

import pytest

from repro.core import (ConcurrencyLevel, GlobalStore, MessageStore,
                        StateError, concurrency_of)
from repro.lang import (AccessLevel, DEFAULT_PACKET_SCHEMA, Field,
                        FieldKind, Lifetime, lower, schema)

GLB = schema("G", Lifetime.GLOBAL, [
    Field("knob", AccessLevel.READ_WRITE, default=7),
    Field("weights", AccessLevel.READ_ONLY, FieldKind.ARRAY),
    Field("recs", AccessLevel.READ_ONLY, FieldKind.RECORD_ARRAY,
          record_fields=("a", "b")),
])

MSG = schema("M", Lifetime.MESSAGE, [
    Field("size", AccessLevel.READ_WRITE),
    Field("priority", AccessLevel.READ_ONLY, default=7),
])


class TestGlobalStore:
    def test_scalar_defaults(self):
        store = GlobalStore(GLB)
        assert store.scalar("knob") == 7

    def test_set_scalar(self):
        store = GlobalStore(GLB)
        store.set_scalar("knob", 99)
        assert store.scalar("knob") == 99

    def test_set_scalar_on_array_rejected(self):
        store = GlobalStore(GLB)
        with pytest.raises(StateError, match="set_array"):
            store.set_scalar("weights", 1)

    def test_set_array(self):
        store = GlobalStore(GLB)
        store.set_array("weights", [1, 2, 3])
        assert store.array("weights") == [1, 2, 3]

    def test_set_array_on_scalar_rejected(self):
        store = GlobalStore(GLB)
        with pytest.raises(StateError, match="set_scalar"):
            store.set_array("knob", [1])

    def test_set_records(self):
        store = GlobalStore(GLB)
        store.set_records("recs", [(1, 2), (3, 4)])
        assert store.array("recs") == [1, 2, 3, 4]

    def test_set_records_wrong_arity_rejected(self):
        store = GlobalStore(GLB)
        with pytest.raises(StateError, match="members"):
            store.set_records("recs", [(1, 2, 3)])

    def test_record_stride_validated_on_set_array(self):
        store = GlobalStore(GLB)
        with pytest.raises(StateError, match="stride"):
            store.set_array("recs", [1, 2, 3])

    def test_keyed_arrays(self):
        store = GlobalStore(GLB)
        store.set_keyed_array("weights", (10, 20), [5, 6])
        assert store.keyed_array("weights", (10, 20)) == [5, 6]
        assert store.keyed_array("weights", (1, 1)) == []

    def test_snapshot_is_a_copy(self):
        store = GlobalStore(GLB)
        store.set_array("weights", [1])
        snap = store.snapshot()
        snap["weights"].append(99)
        assert store.array("weights") == [1]

    def test_commit_wraps_values(self):
        store = GlobalStore(GLB)
        store.commit_scalar("knob", 1 << 64)
        assert store.scalar("knob") == 0


class TestMessageStore:
    def test_lookup_creates_with_defaults(self):
        store = MessageStore(MSG)
        entry, is_new = store.lookup("m1", now_ns=0)
        assert is_new
        assert entry.values == {"size": 0, "priority": 7}

    def test_metadata_seeds_matching_fields(self):
        store = MessageStore(MSG)
        entry, _ = store.lookup("m1", 0, {"priority": 2, "junk": 9})
        assert entry.values["priority"] == 2
        assert "junk" not in entry.values

    def test_metadata_ignored_on_existing_entry(self):
        store = MessageStore(MSG)
        store.lookup("m1", 0, {"priority": 2})
        entry, is_new = store.lookup("m1", 1, {"priority": 5})
        assert not is_new
        assert entry.values["priority"] == 2

    def test_commit_updates(self):
        store = MessageStore(MSG)
        store.lookup("m1", 0)
        store.commit("m1", {"size": 123})
        entry, _ = store.lookup("m1", 1)
        assert entry.values["size"] == 123

    def test_commit_unknown_key_rejected(self):
        store = MessageStore(MSG)
        with pytest.raises(StateError):
            store.commit("nope", {"size": 1})

    def test_end_message(self):
        store = MessageStore(MSG)
        store.lookup("m1", 0)
        store.end_message("m1")
        assert "m1" not in store
        assert store.expired_total == 1

    def test_end_message_idempotent(self):
        store = MessageStore(MSG)
        store.end_message("ghost")
        assert store.expired_total == 0

    def test_idle_expiry(self):
        store = MessageStore(MSG, idle_timeout_ns=100)
        store.lookup("old", 0)
        store.lookup("fresh", 950)
        dropped = store.expire_idle(now_ns=1000)
        assert dropped == 1
        assert "old" not in store and "fresh" in store

    def test_packet_counting(self):
        store = MessageStore(MSG)
        store.lookup("m1", 0)
        entry, _ = store.lookup("m1", 1)
        assert entry.packets == 2
        assert store.created_total == 1


# -- concurrency derivation ------------------------------------------------

def _conc(src):
    prog = lower(src, packet_schema=DEFAULT_PACKET_SCHEMA,
                 message_schema=MSG, global_schema=schema(
                     "G2", Lifetime.GLOBAL, [
                         Field("knob", AccessLevel.READ_WRITE),
                         Field("buckets", AccessLevel.READ_WRITE,
                               FieldKind.ARRAY)]))
    return concurrency_of(prog)


class TestConcurrencyModel:
    def test_packet_only_writes_are_parallel(self):
        assert _conc("def f(packet):\n"
                     "    packet.priority = 1\n") is \
            ConcurrencyLevel.PARALLEL

    def test_message_reads_are_parallel(self):
        assert _conc("def f(packet, msg):\n"
                     "    packet.priority = msg.priority\n") is \
            ConcurrencyLevel.PARALLEL

    def test_message_writes_serialize_per_message(self):
        # Figure 7: "the function can update the message size and,
        # hence, we will process at most one packet per message
        # concurrently."
        assert _conc("def f(packet, msg):\n"
                     "    msg.size = msg.size + packet.size\n") is \
            ConcurrencyLevel.PER_MESSAGE

    def test_global_scalar_writes_serialize(self):
        assert _conc("def f(packet, _global):\n"
                     "    _global.knob = 1\n") is \
            ConcurrencyLevel.SERIAL

    def test_global_array_writes_serialize(self):
        assert _conc("def f(packet, _global):\n"
                     "    _global.buckets[0] = 1\n") is \
            ConcurrencyLevel.SERIAL

    def test_global_write_dominates_message_write(self):
        assert _conc("def f(packet, msg, _global):\n"
                     "    msg.size = 1\n"
                     "    _global.knob = 2\n") is \
            ConcurrencyLevel.SERIAL

    def test_writes_in_nested_functions_count(self):
        assert _conc("def f(packet, msg):\n"
                     "    def bump():\n"
                     "        msg.size = msg.size + 1\n"
                     "        return 0\n"
                     "    x = bump()\n") is \
            ConcurrencyLevel.PER_MESSAGE

"""Property-based tests for ``MatchActionTable``.

The table memoizes lookups per class-name tuple and clears the memo on
every ``add``/``remove``.  The property under test: a table driven
through a random interleaving of add/remove/lookup operations answers
every lookup exactly like a *fresh, never-memoized* table holding the
same rules.  Seeded ``random`` only — no external property-testing
dependency.
"""

import random

import pytest

from repro.core import MatchActionTable, MatchRule
from repro.core.enclave import _LOOKUP_CACHE_LIMIT

PATTERN_POOL = [
    "*",
    "app.*",
    "app.r1.*",
    "app.r1.get",
    "app.r1.set",
    "app.r2.*",
    "db.*",
    "db.scan",
    "other.exact",
]

CLASS_POOL = [
    "app.r1.get",
    "app.r1.set",
    "app.r2.get",
    "db.scan",
    "db.write",
    "other.exact",
    "unmatched.thing",
]


def _fresh_reference(rules):
    """A brand-new table holding the same rules: no memo state."""
    ref = MatchActionTable(table_id=99)
    for rule in rules:
        ref.add(rule)
    return ref


def _random_key(rng):
    n = rng.randint(0, 3)
    return tuple(rng.choice(CLASS_POOL) for _ in range(n))


@pytest.mark.parametrize("seed", range(30))
def test_interleaved_ops_agree_with_fresh_table(seed):
    rng = random.Random(seed)
    table = MatchActionTable(table_id=0)
    live = {}          # rule_id -> MatchRule
    next_id = 0

    for _ in range(120):
        op = rng.random()
        if op < 0.25:
            rule = MatchRule(rule_id=next_id,
                             pattern=rng.choice(PATTERN_POOL),
                             function=f"fn{next_id}",
                             priority=rng.randint(0, 3))
            next_id += 1
            table.add(rule)
            live[rule.rule_id] = rule
        elif op < 0.40 and live:
            victim = rng.choice(sorted(live))
            table.remove(victim)
            del live[victim]
        else:
            key = _random_key(rng)
            got = table.lookup(key)
            want = _fresh_reference(live.values()).lookup(key)
            assert got == want, (seed, key, sorted(live))
            # A second lookup hits the memo and must not change the
            # answer.
            assert table.lookup(key) == want


@pytest.mark.parametrize("seed", range(10))
def test_lookup_batch_matches_scalar_lookup(seed):
    rng = random.Random(1000 + seed)
    rules = [MatchRule(rule_id=i, pattern=rng.choice(PATTERN_POOL),
                       function=f"fn{i}", priority=rng.randint(0, 3))
             for i in range(rng.randint(1, 6))]

    batch_table = _fresh_reference(rules)
    scalar_table = _fresh_reference(rules)
    keys = [_random_key(rng) for _ in range(40)]

    got = batch_table.lookup_batch(keys)
    want = [scalar_table.lookup(k) for k in keys]
    assert got == want
    # Both paths populate the same memo cache.
    assert batch_table._lookup_cache == scalar_table._lookup_cache


def test_cache_eviction_keeps_answers_correct():
    """Overflow the memo past ``_LOOKUP_CACHE_LIMIT``; answers after
    the wholesale eviction must still match a fresh table."""
    table = MatchActionTable(table_id=0)
    rules = [MatchRule(rule_id=0, pattern="app.*", function="a"),
             MatchRule(rule_id=1, pattern="*", function="b",
                       priority=-1)]
    for r in rules:
        table.add(r)

    distinct = [(f"app.c{i}",) for i in range(_LOOKUP_CACHE_LIMIT + 5)]
    for key in distinct:
        table.lookup(key)
    assert len(table._lookup_cache) <= _LOOKUP_CACHE_LIMIT

    ref = _fresh_reference(rules)
    for key in distinct[:10] + distinct[-10:] + [("db.x",), ()]:
        assert table.lookup(key) == ref.lookup(key)


def test_lookup_batch_evicts_like_scalar():
    table = MatchActionTable(table_id=0)
    table.add(MatchRule(rule_id=0, pattern="*", function="f"))
    keys = [(f"c{i}",) for i in range(_LOOKUP_CACHE_LIMIT + 3)]
    out = table.lookup_batch(keys)
    assert all(hit is not None for hit in out)
    assert len(table._lookup_cache) <= _LOOKUP_CACHE_LIMIT


def test_add_remove_invalidate_memo():
    table = MatchActionTable(table_id=0)
    table.add(MatchRule(rule_id=0, pattern="app.*", function="old"))
    assert table.lookup(("app.x",))[0].function == "old"

    table.add(MatchRule(rule_id=1, pattern="app.x", function="new",
                        priority=5))
    assert table.lookup(("app.x",))[0].function == "new"

    table.remove(1)
    assert table.lookup(("app.x",))[0].function == "old"
    table.remove(0)
    assert table.lookup(("app.x",)) is None

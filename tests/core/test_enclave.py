"""Tests for the enclave: tables, runtime, state commit, safety."""

import pytest

from repro.core import (Classification, ConcurrencyGuard,
                        ConcurrencyLevel, ConcurrencyViolation,
                        Enclave, EnclaveError, MatchRule,
                        PLACEMENT_NIC, PLACEMENT_OS)
from repro.lang import (AccessLevel, Field, FieldKind, Lifetime,
                        schema)


# Action functions must live at module level so their source is
# recoverable by the quotation step.

def set_priority_five(packet):
    packet.priority = 5


def drop_small(packet):
    if packet.size < 100:
        packet.drop = 1


def count_message_bytes(packet, msg):
    msg.total = msg.total + packet.size


def use_threshold(packet, _global):
    if packet.size > _global.threshold:
        packet.priority = 1
    else:
        packet.priority = 6


def faulty_divide(packet):
    packet.priority = 100 // (packet.size - 54)


def bump_counter(packet, _global):
    _global.counter = _global.counter + 1


def to_controller_fn(packet):
    packet.to_controller = 1


MSG_SCHEMA = schema("Msg", Lifetime.MESSAGE, [
    Field("total", AccessLevel.READ_WRITE),
])
GLB_SCHEMA = schema("Glb", Lifetime.GLOBAL, [
    Field("threshold", AccessLevel.READ_ONLY, default=1000),
])
COUNTER_SCHEMA = schema("Cnt", Lifetime.GLOBAL, [
    Field("counter", AccessLevel.READ_WRITE),
])


class FakePacket:
    def __init__(self, **kw):
        self.src_ip = kw.get("src_ip", 1)
        self.dst_ip = kw.get("dst_ip", 2)
        self.src_port = kw.get("src_port", 1000)
        self.dst_port = kw.get("dst_port", 80)
        self.proto = 6
        self.size = kw.get("size", 1500)
        self.priority = 0
        self.path_id = 0
        self.drop = 0
        self.to_controller = 0
        self.queue_id = 0
        self.charge = 0
        self.ecn = 0
        self.tenant = kw.get("tenant", 0)


@pytest.fixture
def enclave():
    return Enclave("test.enclave")


class TestFunctionInstallation:
    def test_install_and_list(self, enclave):
        enclave.install_function(set_priority_five)
        assert enclave.functions() == ["set_priority_five"]

    def test_duplicate_name_rejected(self, enclave):
        enclave.install_function(set_priority_five)
        with pytest.raises(EnclaveError, match="already installed"):
            enclave.install_function(set_priority_five)

    def test_unknown_backend_rejected(self, enclave):
        with pytest.raises(EnclaveError, match="backend"):
            enclave.install_function(set_priority_five,
                                     name="x", backend="jit")

    def test_message_schema_with_arrays_rejected(self, enclave):
        bad = schema("B", Lifetime.MESSAGE,
                     [Field("xs", kind=FieldKind.ARRAY)])
        with pytest.raises(EnclaveError, match="scalar"):
            enclave.install_function(set_priority_five, name="x",
                                     message_schema=bad)

    def test_remove_function(self, enclave):
        enclave.install_function(set_priority_five)
        enclave.remove_function("set_priority_five")
        assert enclave.functions() == []

    def test_remove_referenced_function_rejected(self, enclave):
        enclave.install_function(set_priority_five)
        enclave.install_rule("*", "set_priority_five")
        with pytest.raises(EnclaveError, match="referenced"):
            enclave.remove_function("set_priority_five")

    def test_concurrency_derived(self, enclave):
        fn = enclave.install_function(count_message_bytes,
                                      message_schema=MSG_SCHEMA)
        assert fn.concurrency is ConcurrencyLevel.PER_MESSAGE


class TestTablesAndRules:
    def test_rule_for_unknown_function_rejected(self, enclave):
        with pytest.raises(EnclaveError, match="unknown function"):
            enclave.install_rule("*", "nope")

    def test_rule_patterns(self):
        rule = MatchRule(1, "memcached.r1.*", "f")
        assert rule.matches("memcached.r1.GET")
        assert not rule.matches("memcached.r2.GET")
        exact = MatchRule(2, "app.r1.msg", "f")
        assert exact.matches("app.r1.msg")
        assert not exact.matches("app.r1.msg2")
        wild = MatchRule(3, "*", "f")
        assert wild.matches("anything.at.all")

    def test_priority_ordering(self, enclave):
        enclave.install_function(set_priority_five)
        enclave.install_function(drop_small, name="drop_small")
        enclave.install_rule("*", "set_priority_five", priority=0)
        enclave.install_rule("*", "drop_small", priority=10)
        packet = FakePacket(size=50)
        result = enclave.process_packet(packet)
        assert result.executed == ["drop_small"]

    def test_remove_rule(self, enclave):
        enclave.install_function(set_priority_five)
        rid = enclave.install_rule("*", "set_priority_five")
        enclave.remove_rule(rid)
        packet = FakePacket()
        result = enclave.process_packet(packet)
        assert result.executed == []

    def test_remove_unknown_rule_rejected(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.remove_rule(77)

    def test_table_chaining(self, enclave):
        enclave.create_table(1)
        enclave.install_function(set_priority_five)
        enclave.install_function(to_controller_fn,
                                 name="to_controller_fn")
        enclave.install_rule("*", "set_priority_five", table_id=0,
                             next_table=1)
        enclave.install_rule("*", "to_controller_fn", table_id=1)
        packet = FakePacket()
        result = enclave.process_packet(packet)
        assert result.executed == ["set_priority_five",
                                   "to_controller_fn"]
        assert packet.priority == 5 and result.to_controller

    def test_next_table_must_exist(self, enclave):
        enclave.install_function(set_priority_five)
        with pytest.raises(EnclaveError, match="next table"):
            enclave.install_rule("*", "set_priority_five",
                                 next_table=9)

    def test_table_zero_cannot_be_deleted(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.delete_table(0)

    def test_create_duplicate_table_rejected(self, enclave):
        enclave.create_table(1)
        with pytest.raises(EnclaveError):
            enclave.create_table(1)


class TestProcessing:
    def test_packet_write_committed(self, enclave):
        enclave.install_function(set_priority_five)
        enclave.install_rule("*", "set_priority_five")
        packet = FakePacket()
        result = enclave.process_packet(packet)
        assert packet.priority == 5
        assert result.executed == ["set_priority_five"]

    def test_dry_run_skips_packet_writes(self, enclave):
        # The paper's "baseline EDEN" configuration (Section 5.1).
        fn = enclave.install_function(set_priority_five,
                                      commit_packet_writes=False)
        enclave.install_rule("*", "set_priority_five")
        packet = FakePacket()
        result = enclave.process_packet(packet)
        assert packet.priority == 0          # output ignored
        assert result.executed == ["set_priority_five"]
        assert fn.stats.invocations == 1     # but the work happened

    def test_drop_decision(self, enclave):
        enclave.install_function(drop_small, name="drop_small")
        enclave.install_rule("*", "drop_small")
        result = enclave.process_packet(FakePacket(size=50))
        assert result.drop
        assert enclave.packets_dropped == 1

    def test_message_state_accumulates_via_flow_fallback(self, enclave):
        # No stage classifications: the enclave's own five-tuple
        # classification gives message identity (Table 2, last row).
        enclave.install_function(count_message_bytes,
                                 message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "count_message_bytes")
        for _ in range(3):
            enclave.process_packet(FakePacket(size=100))
        store = enclave.function("count_message_bytes").message_store
        assert len(store) == 1
        ((key, entry),) = store._entries.items()
        assert entry.values["total"] == 300

    def test_distinct_flows_distinct_messages(self, enclave):
        enclave.install_function(count_message_bytes,
                                 message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "count_message_bytes")
        enclave.process_packet(FakePacket(src_port=1))
        enclave.process_packet(FakePacket(src_port=2))
        store = enclave.function("count_message_bytes").message_store
        assert len(store) == 2

    def test_stage_classification_selects_rule(self, enclave):
        enclave.install_function(set_priority_five)
        enclave.install_rule("memcached.r1.GET", "set_priority_five")
        packet = FakePacket()
        miss = enclave.process_packet(
            packet, [Classification("memcached.r1.PUT",
                                    {"msg_id": ("m", 1)})])
        assert miss.executed == []
        hit = enclave.process_packet(
            packet, [Classification("memcached.r1.GET",
                                    {"msg_id": ("m", 2)})])
        assert hit.executed == ["set_priority_five"]

    def test_metadata_seeds_message_state(self, enclave):
        enclave.install_function(count_message_bytes,
                                 message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "count_message_bytes")
        cls = [Classification("app.r1.msg",
                              {"msg_id": ("app", 7), "total": 1000})]
        enclave.process_packet(FakePacket(size=10), cls)
        store = enclave.function("count_message_bytes").message_store
        entry, _ = store.lookup(("app", 7), 0)
        assert entry.values["total"] == 1010

    def test_global_state_updates(self, enclave):
        enclave.install_function(bump_counter,
                                 global_schema=COUNTER_SCHEMA)
        enclave.install_rule("*", "bump_counter")
        for _ in range(5):
            enclave.process_packet(FakePacket())
        assert enclave.query_global("bump_counter")["counter"] == 5

    def test_global_threshold_readonly(self, enclave):
        enclave.install_function(use_threshold,
                                 global_schema=GLB_SCHEMA)
        enclave.install_rule("*", "use_threshold")
        enclave.set_global("use_threshold", "threshold", 100)
        small, big = FakePacket(size=50), FakePacket(size=5000)
        enclave.process_packet(small)
        enclave.process_packet(big)
        assert small.priority == 6 and big.priority == 1

    def test_fault_forwards_unmodified(self, enclave):
        # Section 3.4.3: a faulty function terminates its own
        # execution without affecting the rest of the system.
        enclave.install_function(faulty_divide, name="faulty")
        enclave.install_rule("*", "faulty")
        packet = FakePacket(size=54)  # divides by zero
        result = enclave.process_packet(packet)
        assert result.faults == 1
        assert result.executed == []
        assert packet.priority == 0
        assert enclave.function("faulty").stats.faults == 1

    def test_fault_then_success(self, enclave):
        enclave.install_function(faulty_divide, name="faulty")
        enclave.install_rule("*", "faulty")
        enclave.process_packet(FakePacket(size=54))
        ok = FakePacket(size=154)
        enclave.process_packet(ok)
        assert ok.priority == 1  # 100 // 100

    def test_end_message_clears_state(self, enclave):
        enclave.install_function(count_message_bytes,
                                 message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "count_message_bytes")
        packet = FakePacket()
        enclave.process_packet(packet)
        store = enclave.function("count_message_bytes").message_store
        key = ("enclave", packet.five_tuple) if hasattr(
            packet, "five_tuple") else None
        # use the enclave's own flow key format
        flow_key = ("enclave", (packet.src_ip, packet.src_port,
                                packet.dst_ip, packet.dst_port,
                                packet.proto))
        enclave.end_message("count_message_bytes", flow_key)
        assert len(store) == 0

    def test_expire_idle_messages(self, enclave):
        enclave.install_function(count_message_bytes,
                                 message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "count_message_bytes")
        enclave.process_packet(FakePacket(), now_ns=0)
        dropped = enclave.expire_idle_messages(
            now_ns=100_000_000_000)
        assert dropped == 1

    def test_native_backend_equivalent(self):
        results = {}
        for backend in ("interpreter", "native"):
            enclave = Enclave(f"e.{backend}")
            enclave.install_function(use_threshold,
                                     global_schema=GLB_SCHEMA,
                                     backend=backend)
            enclave.install_rule("*", "use_threshold")
            packet = FakePacket(size=5000)
            enclave.process_packet(packet)
            results[backend] = packet.priority
        assert results["interpreter"] == results["native"] == 1

    def test_interpreter_ops_reported(self, enclave):
        enclave.install_function(set_priority_five)
        enclave.install_rule("*", "set_priority_five")
        result = enclave.process_packet(FakePacket())
        assert result.interpreter_ops > 0


class TestConcurrencyGuard:
    def test_parallel_allows_overlap(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PARALLEL)
        guard.acquire("m1")
        guard.acquire("m1")
        guard.release("m1")
        guard.release("m1")

    def test_per_message_blocks_same_message(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PER_MESSAGE)
        guard.acquire("m1")
        with pytest.raises(ConcurrencyViolation):
            guard.acquire("m1")
        guard.release("m1")
        guard.acquire("m1")  # fine after release

    def test_per_message_allows_different_messages(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.PER_MESSAGE)
        guard.acquire("m1")
        guard.acquire("m2")

    def test_serial_blocks_everything(self):
        guard = ConcurrencyGuard(ConcurrencyLevel.SERIAL)
        guard.acquire("m1")
        with pytest.raises(ConcurrencyViolation):
            guard.acquire("m2")


class TestPlacement:
    def test_nic_cheaper_than_os(self):
        nic = Enclave("nic", placement=PLACEMENT_NIC)
        os_ = Enclave("os", placement=PLACEMENT_OS)
        assert nic.per_packet_base_cost_ns < \
            os_.per_packet_base_cost_ns

    def test_unknown_placement_rejected(self):
        with pytest.raises(EnclaveError):
            Enclave("x", placement="fpga")


class TestEnclaveFlowStage:
    """The enclave's own header classification (Table 2, last row)."""

    def test_flow_rule_classifies_and_matches(self, enclave):
        from repro.core import Classifier
        enclave.install_function(set_priority_five)
        enclave.install_flow_rule("r1", Classifier.of(dst_port=80),
                                  "web")
        enclave.install_rule("enclave.r1.web", "set_priority_five")
        web = FakePacket()           # dst_port 80
        other = FakePacket()
        other.dst_port = 443
        assert enclave.process_packet(web).executed == \
            ["set_priority_five"]
        assert enclave.process_packet(other).executed == []

    def test_flow_rule_message_identity_is_five_tuple(self, enclave):
        from repro.core import Classifier
        enclave.install_function(count_message_bytes,
                                 message_schema=MSG_SCHEMA)
        enclave.install_flow_rule("r1", Classifier.of(), "any")
        enclave.install_rule("enclave.r1.any", "count_message_bytes")
        for _ in range(3):
            enclave.process_packet(FakePacket(size=50))
        store = enclave.function("count_message_bytes").message_store
        assert len(store) == 1  # same flow -> same message
        ((key, entry),) = store._entries.items()
        assert entry.values["total"] == 150
        assert key[0] == "enclave"

    def test_without_flow_rules_nothing_changes(self, enclave):
        enclave.install_function(set_priority_five)
        enclave.install_rule("enclave.flows.default",
                             "set_priority_five")
        packet = FakePacket()
        assert enclave.process_packet(packet).executed == \
            ["set_priority_five"]


def old_behavior(packet):
    packet.priority = 1


def new_behavior(packet):
    packet.priority = 7


ALL_BACKENDS = ("interpreter", "tree", "fast", "pycodegen", "native")


class TestBackendRegistry:
    """Enclave plumbing of the repro.lang.backends registry."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_pinned_backend_scalar_and_batch(self, backend):
        enclave = Enclave(f"e.{backend}")
        enclave.install_function(set_priority_five, backend=backend)
        enclave.install_rule("*", "set_priority_five")
        packet = FakePacket()
        result = enclave.process_packet(packet)
        assert result.executed == ["set_priority_five"]
        assert packet.priority == 5
        batch = [FakePacket() for _ in range(3)]
        results = enclave.process_batch([(p, []) for p in batch])
        assert all(r.executed == ["set_priority_five"]
                   for r in results)
        assert [p.priority for p in batch] == [5, 5, 5]

    def test_registered_names_accepted_others_rejected(self, enclave):
        from repro.lang import backend_names
        assert set(backend_names()) == {"tree", "fast", "pycodegen",
                                        "native"}
        with pytest.raises(EnclaveError, match="unknown backend"):
            enclave.install_function(set_priority_five, name="x",
                                     backend="jit")

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_replace_runs_new_program_not_stale_handler(self, backend):
        """Satellite regression: warm every per-program cache (scalar
        + batch paths), hot-swap the function, and require the new
        behavior — a stale compiled handler must never run again."""
        enclave = Enclave(f"e.swap.{backend}")
        fn = enclave.install_function(old_behavior, name="policy",
                                      backend=backend)
        enclave.install_rule("*", "policy")
        old_program = fn.program
        packet = FakePacket()
        enclave.process_packet(packet)
        enclave.process_batch([(FakePacket(), []) for _ in range(2)])
        assert packet.priority == 1

        enclave.replace_function("policy", new_behavior)
        packet = FakePacket()
        enclave.process_packet(packet)
        assert packet.priority == 7
        batch = [FakePacket() for _ in range(2)]
        enclave.process_batch([(p, []) for p in batch])
        assert [p.priority for p in batch] == [7, 7]
        # The old program's compiled artifacts were dropped.
        assert getattr(old_program, "_fast_lists", None) is None
        assert getattr(old_program, "_pycodegen", None) is None
        assert getattr(old_program, "_native_fn", None) is None

    def test_remove_function_invalidates_backend_caches(self, enclave):
        fn = enclave.install_function(old_behavior, name="policy",
                                      backend="pycodegen")
        enclave.install_rule("*", "policy")
        old_program = fn.program
        enclave.process_packet(FakePacket())
        assert getattr(old_program, "_pycodegen", None) is not None
        enclave.remove_rule(1)
        enclave.remove_function("policy")
        assert getattr(old_program, "_pycodegen", None) is None
        assert fn._batch_runner is None

    def test_interpreter_dispatch_env_reaches_enclave(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH", "pycodegen")
        enclave = Enclave("e.env")
        assert enclave.interpreter.dispatch == "pycodegen"
        enclave.install_function(set_priority_five)
        enclave.install_rule("*", "set_priority_five")
        packet = FakePacket()
        enclave.process_packet(packet)
        assert packet.priority == 5
        from repro.lang.pycodegen import CodegenRunner
        enclave.process_batch([(FakePacket(), [])])
        assert isinstance(
            enclave.function("set_priority_five")._batch_runner,
            CodegenRunner)

"""Edge cases across the core: replace-function compatibility,
expression statements with side effects, rule-set interplay."""

import pytest

from repro.core import Enclave, EnclaveError
from repro.core.stage import Classification
from repro.lang import (AccessLevel, DslError, Field, Lifetime,
                        schema)

MSG_SCHEMA = schema("Msg", Lifetime.MESSAGE, [
    Field("total", AccessLevel.READ_WRITE),
])


def add_one(packet, msg):
    msg.total = msg.total + 1


def uses_unknown_field(packet, msg):
    msg.nonexistent = 5


def helper_called_as_statement(packet, msg):
    def bump(amount):
        msg.total = msg.total + amount
        return amount

    bump(2)
    bump(3)
    packet.priority = 1


class FakePacket:
    def __init__(self, src_port=1000):
        self.src_ip, self.dst_ip = 1, 2
        self.src_port, self.dst_port, self.proto = src_port, 80, 6
        self.size = 1000
        self.priority = self.path_id = self.drop = 0
        self.to_controller = self.queue_id = self.charge = 0
        self.ecn = self.tenant = 0


class TestReplaceCompatibility:
    def test_replace_with_incompatible_schema_rejected(self):
        enclave = Enclave("e")
        enclave.install_function(add_one, message_schema=MSG_SCHEMA)
        with pytest.raises(DslError, match="no field"):
            enclave.replace_function("add_one", uses_unknown_field)
        # The original function is still installed and functional.
        enclave.install_rule("*", "add_one")
        packet = FakePacket()
        result = enclave.process_packet(packet)
        assert result.executed == ["add_one"]


class TestSideEffectStatements:
    def test_helper_calls_as_statements(self):
        enclave = Enclave("e")
        enclave.install_function(helper_called_as_statement,
                                 message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "helper_called_as_statement")
        cls = [Classification("a.r.m", {"msg_id": ("a", 1)})]
        packet = FakePacket()
        enclave.process_packet(packet, cls)
        store = enclave.function(
            "helper_called_as_statement").message_store
        assert store.lookup(("a", 1), 0)[0].values["total"] == 5
        assert packet.priority == 1

    def test_both_backends_agree_on_side_effects(self):
        totals = {}
        for backend in ("interpreter", "native"):
            enclave = Enclave(f"e.{backend}")
            enclave.install_function(helper_called_as_statement,
                                     message_schema=MSG_SCHEMA,
                                     backend=backend)
            enclave.install_rule("*", "helper_called_as_statement")
            cls = [Classification("a.r.m", {"msg_id": ("a", 1)})]
            enclave.process_packet(FakePacket(), cls)
            store = enclave.function(
                "helper_called_as_statement").message_store
            totals[backend] = store.lookup(
                ("a", 1), 0)[0].values["total"]
        assert totals["interpreter"] == totals["native"] == 5


class TestMultiClassPackets:
    """A message can belong to several classes (one per rule-set);
    the first matching table rule wins (by priority)."""

    def test_most_specific_rule_wins_by_priority(self):
        enclave = Enclave("e")
        enclave.install_function(add_one, message_schema=MSG_SCHEMA)

        def set_drop(packet):
            packet.drop = 1

        enclave.install_function(set_drop, name="set_drop")
        enclave.install_rule("app.r1.*", "add_one", priority=0)
        enclave.install_rule("app.r2.SENSITIVE", "set_drop",
                             priority=10)
        cls = [Classification("app.r1.GET", {"msg_id": ("a", 1)}),
               Classification("app.r2.SENSITIVE",
                              {"msg_id": ("a", 1)})]
        packet = FakePacket()
        result = enclave.process_packet(packet, cls)
        assert result.executed == ["set_drop"]
        assert result.drop

    def test_first_metadata_msg_id_wins(self):
        enclave = Enclave("e")
        enclave.install_function(add_one, message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "add_one")
        cls = [Classification("app.r1.GET", {"msg_id": ("a", 1)}),
               Classification("app.r2.DEFAULT",
                              {"msg_id": ("a", 2)})]
        enclave.process_packet(FakePacket(), cls)
        store = enclave.function("add_one").message_store
        assert ("a", 1) in store
        assert ("a", 2) not in store

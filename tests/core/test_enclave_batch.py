"""Edge cases for ``Enclave.process_batch``.

The batch path must be packet-for-packet equivalent to scalar
``process_packet`` — these tests pin the boundary conditions the
differential harness is unlikely to hit by chance: empty batches,
rule churn between batches (memo invalidation), a ConcurrencyViolation
striking part of a batch (the rest keeps processing), and
message-scoped state accumulated across a batch.
"""

import pytest

from repro.core import (Classification, ConcurrencyViolation, Enclave)
from repro.lang import AccessLevel, Field, Lifetime, schema

pytestmark = pytest.mark.batch


# Module-level actions so their source survives quotation.

def set_priority_five(packet):
    packet.priority = 5


def tag_low(packet):
    packet.priority = 1


def count_message_bytes(packet, msg):
    msg.total = msg.total + packet.size


def bump_counter(packet, _global):
    _global.counter = _global.counter + 1


MSG_SCHEMA = schema("Msg", Lifetime.MESSAGE, [
    Field("total", AccessLevel.READ_WRITE),
])
COUNTER_SCHEMA = schema("Cnt", Lifetime.GLOBAL, [
    Field("counter", AccessLevel.READ_WRITE),
])


class FakePacket:
    def __init__(self, **kw):
        self.src_ip = kw.get("src_ip", 1)
        self.dst_ip = kw.get("dst_ip", 2)
        self.src_port = kw.get("src_port", 1000)
        self.dst_port = kw.get("dst_port", 80)
        self.proto = 6
        self.size = kw.get("size", 1500)
        self.priority = 0
        self.path_id = 0
        self.drop = 0
        self.to_controller = 0
        self.queue_id = 0
        self.charge = 0
        self.ecn = 0
        self.tenant = 0


def _msg_cls(key):
    return [Classification("app.r1.x", {"msg_id": ("m", key)})]


def test_empty_batch_returns_empty_list():
    enclave = Enclave("batch.test")
    enclave.install_function(set_priority_five)
    enclave.install_rule("*", "set_priority_five")
    assert enclave.process_batch([]) == []
    assert enclave.packets_processed == 0


def test_batch_spanning_rule_install_and_remove():
    """Rule churn between batches must invalidate the lookup memo for
    the batched pass exactly as for scalar lookups."""
    enclave = Enclave("batch.test")
    enclave.install_function(set_priority_five)
    enclave.install_function(tag_low, name="tag_low")
    rule = enclave.install_rule("*", "set_priority_five")

    batch = [(FakePacket(), ()) for _ in range(4)]
    first = enclave.process_batch(batch)
    assert all(r.executed == ["set_priority_five"] for r in first)
    assert all(p.priority == 5 for p, _ in batch)

    enclave.remove_rule(rule)
    missed = enclave.process_batch([(FakePacket(), ())
                                    for _ in range(3)])
    assert all(r.executed == [] for r in missed)
    assert all(r.matched_classes == [] for r in missed)

    enclave.install_rule("*", "tag_low")
    batch2 = [(FakePacket(), ()) for _ in range(4)]
    second = enclave.process_batch(batch2)
    assert all(r.executed == ["tag_low"] for r in second)
    assert all(p.priority == 1 for p, _ in batch2)
    # Misses still count as processed packets (scalar parity).
    assert enclave.packets_processed == 11


def test_concurrency_violation_mid_batch_isolated():
    """An externally held PER_MESSAGE guard errors only that
    message's packets; the remainder of the batch still processes."""
    enclave = Enclave("batch.test")
    fn = enclave.install_function(count_message_bytes,
                                  message_schema=MSG_SCHEMA)
    enclave.install_rule("*", "count_message_bytes")

    fn.guard.acquire(("m", 0))   # simulate an in-flight invocation
    try:
        batch = [(FakePacket(size=100 + i), _msg_cls(i % 2))
                 for i in range(6)]
        results = enclave.process_batch(batch, now_ns=7)
    finally:
        fn.guard.release(("m", 0))

    blocked = [r for i, r in enumerate(results) if i % 2 == 0]
    passed = [r for i, r in enumerate(results) if i % 2 == 1]
    assert all(isinstance(r.error, ConcurrencyViolation)
               for r in blocked)
    assert all(r.executed == [] for r in blocked)
    assert all(r.error is None and
               r.executed == ["count_message_bytes"] for r in passed)
    # Errored packets are not counted as processed (the scalar path
    # raises before its bookkeeping).
    assert enclave.packets_processed == 3
    # Only message ("m", 1) accumulated state: sizes 101 + 103 + 105.
    entries = fn.message_store._entries
    assert list(entries) == [("m", 1)]
    assert entries[("m", 1)].values["total"] == 101 + 103 + 105
    # Scalar path agrees: it raises for the held message.
    fn.guard.acquire(("m", 0))
    try:
        with pytest.raises(ConcurrencyViolation):
            enclave.process_packet(FakePacket(), _msg_cls(0),
                                   now_ns=8)
    finally:
        fn.guard.release(("m", 0))


def test_serial_violation_blocks_whole_batch_then_recovers():
    enclave = Enclave("batch.test")
    fn = enclave.install_function(bump_counter,
                                  global_schema=COUNTER_SCHEMA)
    enclave.install_rule("*", "bump_counter")

    fn.guard.acquire("external")
    try:
        results = enclave.process_batch([(FakePacket(), ())
                                         for _ in range(3)])
    finally:
        fn.guard.release("external")
    assert all(isinstance(r.error, ConcurrencyViolation)
               for r in results)
    assert enclave.packets_processed == 0
    assert enclave.query_global("bump_counter")["counter"] == 0

    ok = enclave.process_batch([(FakePacket(), ()) for _ in range(3)])
    assert all(r.error is None for r in ok)
    assert enclave.query_global("bump_counter")["counter"] == 3
    assert enclave.packets_processed == 3


def test_message_scoped_state_accumulates_across_batch():
    """One batch mixing two messages leaves the same message state as
    the equivalent scalar sequence."""
    sizes = [100, 200, 300, 400, 500]

    def run(use_batch):
        enclave = Enclave("batch.test")
        fn = enclave.install_function(count_message_bytes,
                                      message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "count_message_bytes")
        pairs = [(FakePacket(size=s), _msg_cls(i % 2))
                 for i, s in enumerate(sizes)]
        if use_batch:
            enclave.process_batch(pairs, now_ns=3)
        else:
            for p, cls in pairs:
                enclave.process_packet(p, cls, now_ns=3)
        return {k: (e.values["total"], e.packets)
                for k, e in fn.message_store._entries.items()}

    scalar_state = run(use_batch=False)
    batch_state = run(use_batch=True)
    assert batch_state == scalar_state
    assert batch_state[("m", 0)] == (100 + 300 + 500, 3)
    assert batch_state[("m", 1)] == (200 + 400, 2)

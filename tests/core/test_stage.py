"""Tests for stages and classification (paper Section 3.3)."""

import pytest

from repro.core import (Classifier, Stage, StageError, WILDCARD,
                        http_stage, memcached_stage, storage_stage)


@pytest.fixture
def stage():
    return memcached_stage()


class TestStageInfo:
    def test_get_stage_info(self, stage):
        info = stage.get_stage_info()
        assert info.name == "memcached"
        assert "msg_type" in info.classifier_fields
        assert "key" in info.classifier_fields
        assert set(info.metadata_fields) >= {"msg_id", "msg_type",
                                             "key", "msg_size"}

    def test_http_stage_matches_table2(self):
        info = http_stage().get_stage_info()
        assert info.classifier_fields == ("msg_type", "url")

    def test_storage_stage(self):
        info = storage_stage().get_stage_info()
        assert "op_type" in info.classifier_fields


class TestRuleManagement:
    def test_create_returns_unique_ids(self, stage):
        a = stage.create_stage_rule("r1", Classifier.of(
            msg_type="GET"), "GET", ["msg_id"])
        b = stage.create_stage_rule("r1", Classifier.of(
            msg_type="PUT"), "PUT", ["msg_id"])
        assert a != b

    def test_unknown_classifier_field_rejected(self, stage):
        with pytest.raises(StageError, match="cannot classify"):
            stage.create_stage_rule("r1", Classifier.of(color="red"),
                                    "C", ["msg_id"])

    def test_unknown_metadata_field_rejected(self, stage):
        with pytest.raises(StageError, match="cannot generate"):
            stage.create_stage_rule("r1", Classifier.of(
                msg_type="GET"), "GET", ["bogus"])

    def test_remove_rule(self, stage):
        rid = stage.create_stage_rule("r1", Classifier.of(
            msg_type="GET"), "GET", ["msg_id"])
        stage.remove_stage_rule("r1", rid)
        assert stage.classify({"msg_type": "GET"}) == []

    def test_remove_unknown_rule_rejected(self, stage):
        with pytest.raises(StageError):
            stage.remove_stage_rule("r1", 999)

    def test_remove_wrong_rule_set_rejected(self, stage):
        rid = stage.create_stage_rule("r1", Classifier.of(
            msg_type="GET"), "GET", ["msg_id"])
        with pytest.raises(StageError):
            stage.remove_stage_rule("r2", rid)


class TestClassification:
    """The rule-sets of paper Figure 6."""

    @pytest.fixture
    def fig6(self, stage):
        stage.create_stage_rule("r1", Classifier.of(msg_type="GET"),
                                "GET", ["msg_id", "msg_size"])
        stage.create_stage_rule("r1", Classifier.of(msg_type="PUT"),
                                "PUT", ["msg_id", "msg_size"])
        stage.create_stage_rule("r2", Classifier.of(),
                                "DEFAULT", ["msg_id", "msg_size"])
        stage.create_stage_rule("r3",
                                Classifier.of(msg_type="GET", key="a"),
                                "GETA", ["msg_id", "msg_size"])
        stage.create_stage_rule("r3",
                                Classifier.of(msg_type=WILDCARD,
                                              key="a"),
                                "A", ["msg_id", "msg_size"])
        stage.create_stage_rule("r3",
                                Classifier.of(msg_type=WILDCARD,
                                              key=WILDCARD),
                                "OTHER", ["msg_id", "msg_size"])
        return stage

    def test_put_for_key_a(self, fig6):
        # Paper: a PUT for key "a" belongs to memcached.r1.PUT,
        # memcached.r2.DEFAULT, and memcached.r3.A.
        classes = {c.class_name for c in fig6.classify(
            {"msg_type": "PUT", "key": "a", "msg_size": 100})}
        assert classes == {"memcached.r1.PUT",
                           "memcached.r2.DEFAULT",
                           "memcached.r3.A"}

    def test_get_for_key_a_hits_most_specific(self, fig6):
        classes = {c.class_name for c in fig6.classify(
            {"msg_type": "GET", "key": "a"})}
        assert "memcached.r3.GETA" in classes

    def test_get_for_other_key(self, fig6):
        classes = {c.class_name for c in fig6.classify(
            {"msg_type": "GET", "key": "z"})}
        assert "memcached.r3.OTHER" in classes
        assert "memcached.r1.GET" in classes

    def test_at_most_one_class_per_rule_set(self, fig6):
        results = fig6.classify({"msg_type": "GET", "key": "a"})
        rule_sets = [c.class_name.split(".")[1] for c in results]
        assert len(rule_sets) == len(set(rule_sets))

    def test_metadata_includes_requested_fields(self, fig6):
        cls = fig6.classify({"msg_type": "GET", "key": "a",
                             "msg_size": 4096})
        for c in cls:
            assert c.metadata["msg_size"] == 4096
            assert c.message_id is not None

    def test_message_ids_unique_per_message(self, fig6):
        first = fig6.classify({"msg_type": "GET", "key": "a"})
        second = fig6.classify({"msg_type": "GET", "key": "a"})
        assert first[0].message_id != second[0].message_id

    def test_same_message_same_id_across_rule_sets(self, fig6):
        results = fig6.classify({"msg_type": "PUT", "key": "a"})
        ids = {c.message_id for c in results}
        assert len(ids) == 1

    def test_explicit_msg_id_respected(self, fig6):
        results = fig6.classify({"msg_type": "GET", "key": "a"},
                                msg_id=1234)
        assert results[0].message_id == ("memcached", 1234)


class TestClassifier:
    def test_wildcard_matches_anything(self):
        c = Classifier.of(msg_type=WILDCARD)
        assert c.covers({"msg_type": "GET"})
        assert c.covers({})

    def test_empty_classifier_matches_all(self):
        assert Classifier.of().covers({"anything": 1})

    def test_specificity_ordering(self):
        assert Classifier.of(a=1, b=2).specificity == 2
        assert Classifier.of(a=1, b=WILDCARD).specificity == 1
        assert Classifier.of().specificity == 0

    def test_exact_match_required(self):
        c = Classifier.of(key="a")
        assert c.covers({"key": "a"})
        assert not c.covers({"key": "b"})
        assert not c.covers({})

    def test_str_rendering(self):
        assert "msg_type" in str(Classifier.of(msg_type="GET"))

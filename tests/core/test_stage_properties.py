"""Property-based tests for stage classification invariants."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Classifier, Stage, WILDCARD

field_names = st.sampled_from(["msg_type", "key"])
values = st.sampled_from(["GET", "PUT", "a", "b", "c", WILDCARD])


def rule_strategy():
    return st.fixed_dictionaries({
        "rule_set": st.sampled_from(["r1", "r2", "r3"]),
        "matches": st.dictionaries(field_names, values, max_size=2),
        "class_name": st.text(alphabet=string.ascii_uppercase,
                              min_size=1, max_size=6),
    })


attrs_strategy = st.fixed_dictionaries({
    "msg_type": st.sampled_from(["GET", "PUT", "DELETE"]),
    "key": st.sampled_from(["a", "b", "z"]),
})


class TestClassificationInvariants:
    @settings(max_examples=100, deadline=None)
    @given(rules=st.lists(rule_strategy(), max_size=10),
           attrs=attrs_strategy)
    def test_at_most_one_class_per_rule_set(self, rules, attrs):
        stage = Stage("s", ("msg_type", "key"),
                      ("msg_id", "msg_type", "key"))
        for rule in rules:
            stage.create_stage_rule(
                rule["rule_set"], Classifier.of(**rule["matches"]),
                rule["class_name"], ["msg_id"])
        results = stage.classify(attrs)
        rule_sets = [c.class_name.split(".")[1] for c in results]
        assert len(rule_sets) == len(set(rule_sets))

    @settings(max_examples=100, deadline=None)
    @given(rules=st.lists(rule_strategy(), max_size=10),
           attrs=attrs_strategy)
    def test_class_names_fully_qualified(self, rules, attrs):
        stage = Stage("mystage", ("msg_type", "key"), ("msg_id",))
        for rule in rules:
            stage.create_stage_rule(
                rule["rule_set"], Classifier.of(**rule["matches"]),
                rule["class_name"], ["msg_id"])
        for cls in stage.classify(attrs):
            parts = cls.class_name.split(".")
            assert parts[0] == "mystage"
            assert len(parts) == 3

    @settings(max_examples=100, deadline=None)
    @given(rules=st.lists(rule_strategy(), max_size=10),
           attrs=attrs_strategy)
    def test_matched_rule_actually_covers(self, rules, attrs):
        stage = Stage("s", ("msg_type", "key"), ("msg_id",))
        by_name = {}
        for rule in rules:
            stage.create_stage_rule(
                rule["rule_set"], Classifier.of(**rule["matches"]),
                rule["class_name"], ["msg_id"])
            by_name.setdefault(
                f"s.{rule['rule_set']}.{rule['class_name']}",
                []).append(rule["matches"])
        for cls in stage.classify(attrs):
            candidates = by_name[cls.class_name]
            assert any(
                all(v == WILDCARD or attrs.get(k) == v
                    for k, v in matches.items())
                for matches in candidates)

    @settings(max_examples=60, deadline=None)
    @given(attrs=attrs_strategy)
    def test_most_specific_rule_wins(self, attrs):
        stage = Stage("s", ("msg_type", "key"), ("msg_id",))
        stage.create_stage_rule("r", Classifier.of(), "CATCHALL",
                                ["msg_id"])
        stage.create_stage_rule(
            "r", Classifier.of(msg_type=attrs["msg_type"],
                               key=attrs["key"]),
            "EXACT", ["msg_id"])
        results = stage.classify(attrs)
        assert results[0].class_name == "s.r.EXACT"

    @settings(max_examples=60, deadline=None)
    @given(rules=st.lists(rule_strategy(), min_size=1, max_size=8),
           attrs=attrs_strategy)
    def test_removing_all_rules_silences_stage(self, rules, attrs):
        stage = Stage("s", ("msg_type", "key"), ("msg_id",))
        ids = []
        for rule in rules:
            ids.append((rule["rule_set"], stage.create_stage_rule(
                rule["rule_set"], Classifier.of(**rule["matches"]),
                rule["class_name"], ["msg_id"])))
        for rule_set, rule_id in ids:
            stage.remove_stage_rule(rule_set, rule_id)
        assert stage.classify(attrs) == []

"""Unknown rule/table ids raise a clear error naming the id.

The error is both an :class:`EnclaveError` (existing callers keep
working) and a :class:`KeyError` (the natural type for a missing-id
lookup), and its message names the offending id plus the known ids.
"""

import pytest

from repro.core import Enclave, EnclaveError
from repro.core.enclave import UnknownIdError


def noop(packet):
    packet.priority = 1


@pytest.fixture
def enclave():
    e = Enclave("ids.enclave")
    e.install_function(noop)
    return e


class TestRemoveRule:
    def test_unknown_rule_id(self, enclave):
        rule_id = enclave.install_rule("*", "noop")
        with pytest.raises(UnknownIdError) as exc:
            enclave.remove_rule(rule_id + 41)
        msg = str(exc.value)
        assert str(rule_id + 41) in msg
        assert str(rule_id) in msg  # known ids listed

    def test_is_both_enclave_error_and_key_error(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.remove_rule(99)
        with pytest.raises(KeyError):
            enclave.remove_rule(99)

    def test_remove_twice(self, enclave):
        rule_id = enclave.install_rule("*", "noop")
        enclave.remove_rule(rule_id)
        with pytest.raises(UnknownIdError):
            enclave.remove_rule(rule_id)

    def test_known_id_still_removes(self, enclave):
        rule_id = enclave.install_rule("*", "noop")
        enclave.remove_rule(rule_id)  # no raise

    def test_unknown_table_in_remove_rule(self, enclave):
        with pytest.raises(UnknownIdError, match="no table with id 7"):
            enclave.remove_rule(1, table_id=7)


class TestDeleteTable:
    def test_unknown_table_id(self, enclave):
        enclave.create_table(3)
        with pytest.raises(UnknownIdError) as exc:
            enclave.delete_table(9)
        msg = str(exc.value)
        assert "9" in msg
        assert "[0, 3]" in msg  # known ids listed

    def test_is_both_enclave_error_and_key_error(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.delete_table(9)
        with pytest.raises(KeyError):
            enclave.delete_table(9)

    def test_table_zero_still_protected(self, enclave):
        # Deleting the root table is a misuse, not a missing id.
        with pytest.raises(EnclaveError, match="table 0"):
            enclave.delete_table(0)

    def test_table_lookup_unknown(self, enclave):
        with pytest.raises(UnknownIdError, match="no table with id 5"):
            enclave.table(5)

    def test_message_is_not_keyerror_repr(self, enclave):
        # KeyError.__str__ reprs its argument; UnknownIdError must
        # render the plain message.
        with pytest.raises(UnknownIdError) as exc:
            enclave.delete_table(9)
        assert not str(exc.value).startswith("'")
        assert not str(exc.value).startswith('"')

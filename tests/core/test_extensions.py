"""Tests for the Section 6 extensions: batching, dynamic updates,
function composition, and controller monitoring."""

import pytest

from repro.core import (ChainLink, CompositionError, Controller,
                        Enclave, FunctionChain)
from repro.core.stage import Classification
from repro.lang import AccessLevel, Field, FieldKind, Lifetime, schema

MSG_SCHEMA = schema("Msg", Lifetime.MESSAGE, [
    Field("total", AccessLevel.READ_WRITE),
])


def count_bytes(packet, msg):
    msg.total = msg.total + packet.size


def set_priority_one(packet):
    packet.priority = 1


def set_priority_two(packet):
    packet.priority = 2


def set_queue_nine(packet):
    packet.queue_id = 9


def set_path_three(packet):
    packet.path_id = 3


class FakePacket:
    def __init__(self, src_port=1000, size=1500):
        self.src_ip, self.dst_ip = 1, 2
        self.src_port, self.dst_port, self.proto = src_port, 80, 6
        self.size = size
        self.priority = self.path_id = self.drop = 0
        self.to_controller = self.queue_id = self.charge = 0
        self.ecn = self.tenant = 0


class TestBatchProcessing:
    def test_batch_preserves_input_order(self):
        enclave = Enclave("e")
        enclave.install_function(set_priority_one)
        enclave.install_rule("*", "set_priority_one")
        batch = [(FakePacket(src_port=p), []) for p in (1, 2, 1, 3)]
        results = enclave.process_batch(batch)
        assert len(results) == 4
        assert all(r.executed == ["set_priority_one"]
                   for r in results)
        assert all(p.priority == 1 for p, _ in batch)

    def test_batch_splits_by_message(self):
        # Packets of the same message must be processed against a
        # consistent message state even when interleaved in a batch.
        enclave = Enclave("e")
        enclave.install_function(count_bytes,
                                 message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "count_bytes")
        cls_a = [Classification("x.r.m", {"msg_id": ("x", 1)})]
        cls_b = [Classification("x.r.m", {"msg_id": ("x", 2)})]
        batch = [(FakePacket(size=100), cls_a),
                 (FakePacket(size=200), cls_b),
                 (FakePacket(size=100), cls_a),
                 (FakePacket(size=200), cls_b)]
        enclave.process_batch(batch)
        store = enclave.function("count_bytes").message_store
        assert store.lookup(("x", 1), 0)[0].values["total"] == 200
        assert store.lookup(("x", 2), 0)[0].values["total"] == 400

    def test_batch_without_classifications_groups_by_flow(self):
        enclave = Enclave("e")
        enclave.install_function(count_bytes,
                                 message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "count_bytes")
        batch = [(FakePacket(src_port=1, size=10), []),
                 (FakePacket(src_port=2, size=20), []),
                 (FakePacket(src_port=1, size=10), [])]
        enclave.process_batch(batch)
        store = enclave.function("count_bytes").message_store
        assert len(store) == 2

    def test_empty_batch(self):
        enclave = Enclave("e")
        assert enclave.process_batch([]) == []


class TestDynamicUpdates:
    def test_replace_swaps_program(self):
        enclave = Enclave("e")
        enclave.install_function(set_priority_one, name="policy")
        enclave.install_rule("*", "policy")
        p1 = FakePacket()
        enclave.process_packet(p1)
        assert p1.priority == 1
        enclave.replace_function("policy", set_priority_two)
        p2 = FakePacket()
        enclave.process_packet(p2)
        assert p2.priority == 2

    def test_replace_preserves_rules(self):
        enclave = Enclave("e")
        enclave.install_function(set_priority_one, name="policy")
        rid = enclave.install_rule("*", "policy")
        enclave.replace_function("policy", set_priority_two)
        rules = enclave.query_rules(0)
        assert [r.rule_id for r in rules] == [rid]

    def test_replace_preserves_message_state(self):
        enclave = Enclave("e")
        enclave.install_function(count_bytes, name="counter",
                                 message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "counter")
        cls = [Classification("x.r.m", {"msg_id": ("x", 1)})]
        enclave.process_packet(FakePacket(size=100), cls)
        # Swap in an identical program; accumulated state survives.
        enclave.replace_function("counter", count_bytes)
        enclave.process_packet(FakePacket(size=100), cls)
        store = enclave.function("counter").message_store
        assert store.lookup(("x", 1), 0)[0].values["total"] == 200

    def test_replace_unknown_function_rejected(self):
        from repro.core import EnclaveError
        enclave = Enclave("e")
        with pytest.raises(EnclaveError):
            enclave.replace_function("ghost", set_priority_one)

    def test_controller_replace_fans_out(self):
        controller = Controller()
        for host in ("h1", "h2"):
            enclave = Enclave(host)
            controller.register_enclave(host, enclave)
            enclave.install_function(set_priority_one, name="policy")
            enclave.install_rule("*", "policy")
        controller.replace_function(["h1", "h2"], "policy",
                                    set_priority_two)
        for host in ("h1", "h2"):
            p = FakePacket()
            controller.enclave(host).process_packet(p)
            assert p.priority == 2


class TestFunctionChain:
    def make_controller(self):
        controller = Controller()
        controller.register_enclave("h1", Enclave("h1.enclave"))
        return controller

    def test_chain_executes_in_order(self):
        controller = self.make_controller()
        chain = FunctionChain(controller, [
            ChainLink(set_priority_one),
            ChainLink(set_queue_nine),
            ChainLink(set_path_three),
        ])
        tables = chain.deploy("h1")
        assert tables[0] == 0 and len(tables) == 3
        packet = FakePacket()
        result = controller.enclave("h1").process_packet(packet)
        assert result.executed == ["set_priority_one",
                                   "set_queue_nine",
                                   "set_path_three"]
        assert (packet.priority, packet.queue_id,
                packet.path_id) == (1, 9, 3)

    def test_conflicting_writes_rejected(self):
        controller = self.make_controller()
        with pytest.raises(CompositionError, match="priority"):
            FunctionChain(controller, [
                ChainLink(set_priority_one),
                ChainLink(set_priority_two),
            ])

    def test_empty_chain_rejected(self):
        with pytest.raises(CompositionError):
            FunctionChain(self.make_controller(), [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CompositionError, match="duplicate"):
            FunctionChain(self.make_controller(), [
                ChainLink(set_priority_one, name="x"),
                ChainLink(set_queue_nine, name="x"),
            ])

    def test_pattern_miss_ends_walk(self):
        controller = self.make_controller()
        chain = FunctionChain(controller, [
            ChainLink(set_priority_one, pattern="app.r1.special"),
            ChainLink(set_queue_nine),
        ])
        chain.deploy("h1")
        plain = FakePacket()
        result = controller.enclave("h1").process_packet(plain)
        assert result.executed == []  # head pattern missed

        special = FakePacket()
        cls = [Classification("app.r1.special",
                              {"msg_id": ("a", 1)})]
        result = controller.enclave("h1").process_packet(special,
                                                         cls)
        assert result.executed == ["set_priority_one",
                                   "set_queue_nine"]


class TestMonitoring:
    def test_stats_summary(self):
        enclave = Enclave("e")
        enclave.install_function(count_bytes,
                                 message_schema=MSG_SCHEMA)
        enclave.install_rule("*", "count_bytes")
        for i in range(3):
            enclave.process_packet(FakePacket(src_port=i))
        stats = enclave.stats_summary()["count_bytes"]
        assert stats["invocations"] == 3
        assert stats["messages_tracked"] == 3
        assert stats["ops_executed"] > 0

    def test_controller_collects_from_all_hosts(self):
        controller = Controller()
        for host in ("h1", "h2"):
            enclave = Enclave(host)
            controller.register_enclave(host, enclave)
            enclave.install_function(set_priority_one, name="p")
            enclave.install_rule("*", "p")
        controller.enclave("h1").process_packet(FakePacket())
        stats = controller.collect_stats()
        assert stats["h1"]["p"]["invocations"] == 1
        assert stats["h2"]["p"]["invocations"] == 0

"""Tests for the Eden controller: registry, APIs, control algorithms."""

import pytest

from repro.core import (Classifier, Controller, ControllerError,
                        Enclave, memcached_stage)


def mark_priority(packet):
    packet.priority = 3


@pytest.fixture
def controller():
    return Controller()


class TestRegistry:
    def test_register_and_fetch_enclave(self, controller):
        enclave = Enclave("h1.enclave")
        controller.register_enclave("h1", enclave)
        assert controller.enclave("h1") is enclave
        assert controller.hosts() == ["h1"]

    def test_duplicate_enclave_rejected(self, controller):
        controller.register_enclave("h1", Enclave("a"))
        with pytest.raises(ControllerError):
            controller.register_enclave("h1", Enclave("b"))

    def test_unknown_host_rejected(self, controller):
        with pytest.raises(ControllerError):
            controller.enclave("nowhere")

    def test_register_and_fetch_stage(self, controller):
        stage = memcached_stage()
        controller.register_stage("h1", stage)
        assert controller.stage("h1", "memcached") is stage
        assert controller.stages_at("h1") == ["memcached"]

    def test_duplicate_stage_rejected(self, controller):
        controller.register_stage("h1", memcached_stage())
        with pytest.raises(ControllerError):
            controller.register_stage("h1", memcached_stage())


class TestStageApiPassthrough:
    def test_get_stage_info(self, controller):
        controller.register_stage("h1", memcached_stage())
        info = controller.get_stage_info("h1", "memcached")
        assert info.name == "memcached"

    def test_create_and_remove_rule(self, controller):
        stage = memcached_stage()
        controller.register_stage("h1", stage)
        rid = controller.create_stage_rule(
            "h1", "memcached", "r1", Classifier.of(msg_type="GET"),
            "GET", ["msg_id"])
        assert stage.classify({"msg_type": "GET"})
        controller.remove_stage_rule("h1", "memcached", "r1", rid)
        assert stage.classify({"msg_type": "GET"}) == []


class TestEnclaveApiPassthrough:
    def test_install_on_multiple_hosts(self, controller):
        for host in ("h1", "h2"):
            controller.register_enclave(host,
                                        Enclave(f"{host}.enclave"))
        installed = controller.install_function(
            ["h1", "h2"], mark_priority)
        assert len(installed) == 2
        rules = controller.install_rule(["h1", "h2"], "*",
                                        "mark_priority")
        assert len(rules) == 2

    def test_star_addresses_all_hosts(self, controller):
        for host in ("h1", "h2", "h3"):
            controller.register_enclave(host,
                                        Enclave(f"{host}.enclave"))
        installed = controller.install_function("*", mark_priority)
        assert len(installed) == 3


class TestReplaceFunction:
    def test_replace_never_installed_raises_controller_error(
            self, controller):
        controller.register_enclave("h1", Enclave("h1.enclave"))
        with pytest.raises(ControllerError,
                           match="never installed"):
            controller.replace_function("h1", "ghost_fn",
                                        mark_priority)

    def test_replace_checks_every_target_before_sending(
            self, controller):
        # h1 has the function, h2 does not: nothing may change
        # anywhere when one target fails validation.
        for host in ("h1", "h2"):
            controller.register_enclave(host,
                                        Enclave(f"{host}.enclave"))
        controller.install_function("h1", mark_priority)
        epoch_before = controller.plane.desired("h1").epoch
        with pytest.raises(ControllerError):
            controller.replace_function(["h1", "h2"],
                                        "mark_priority",
                                        mark_priority)
        assert controller.plane.desired("h1").epoch == epoch_before

    def test_replace_installed_function_succeeds(self, controller):
        controller.register_enclave("h1", Enclave("h1.enclave"))
        controller.install_function("h1", mark_priority)
        controller.replace_function("h1", "mark_priority",
                                    mark_priority)
        assert controller.enclave("h1").functions() == \
            ["mark_priority"]


STATS_KEYS = {"invocations", "faults", "ops_executed",
              "max_stack_bytes", "max_heap_bytes",
              "messages_tracked"}


class TestCollectStats:
    def test_per_host_per_function_shape(self, controller):
        for host in ("h1", "h2"):
            controller.register_enclave(host,
                                        Enclave(f"{host}.enclave"))
        controller.install_function(["h1", "h2"], mark_priority)
        stats = controller.collect_stats()
        assert set(stats) == {"h1", "h2"}
        for host in ("h1", "h2"):
            assert set(stats[host]) == {"mark_priority"}
            assert set(stats[host]["mark_priority"]) == STATS_KEYS

    def test_fresh_enclave_reports_zeroed_counters(self, controller):
        controller.register_enclave("h1", Enclave("h1.enclave"))
        controller.install_function("h1", mark_priority)
        counters = controller.collect_stats()["h1"]["mark_priority"]
        assert all(value == 0 for value in counters.values())

    def test_no_functions_means_empty_per_host_dict(self, controller):
        controller.register_enclave("h1", Enclave("h1.enclave"))
        assert controller.collect_stats() == {"h1": {}}


class TestWcmpWeights:
    def test_proportional_to_capacity(self):
        weights = Controller.wcmp_weights([(1, 10e9), (2, 1e9)])
        by_id = {w.path_id: w.weight for w in weights}
        assert by_id[1] == 909 and by_id[2] == 91

    def test_sum_equals_scale(self):
        weights = Controller.wcmp_weights(
            [(1, 3.0), (2, 3.0), (3, 3.0)], scale=1000)
        assert sum(w.weight for w in weights) == 1000

    def test_equal_capacities_give_ecmp(self):
        weights = Controller.wcmp_weights([(1, 5.0), (2, 5.0)])
        assert weights[0].weight == weights[1].weight

    def test_empty_rejected(self):
        with pytest.raises(ControllerError):
            Controller.wcmp_weights([])

    def test_zero_capacity_rejected(self):
        with pytest.raises(ControllerError):
            Controller.wcmp_weights([(1, 0.0)])


class TestPiasThresholds:
    def test_bands_are_quantiles(self):
        sizes = [1000] * 50 + [100_000] * 30 + [10_000_000] * 20
        rows = Controller.pias_thresholds(sizes, num_priorities=3,
                                          max_priority=7)
        assert len(rows) == 3
        limits = [r[0] for r in rows]
        prios = [r[1] for r in rows]
        assert prios == [7, 6, 5]
        assert limits[0] <= limits[1] <= limits[2]
        assert limits[-1] > 10_000_000  # unbounded last band

    def test_needs_samples(self):
        with pytest.raises(ControllerError):
            Controller.pias_thresholds([])

    def test_needs_two_bands(self):
        with pytest.raises(ControllerError):
            Controller.pias_thresholds([1, 2], num_priorities=1)

    def test_limits_non_decreasing_on_skewed_data(self):
        rows = Controller.pias_thresholds([5] * 100,
                                          num_priorities=4)
        limits = [r[0] for r in rows]
        assert limits == sorted(limits)

    def test_single_sample(self):
        rows = Controller.pias_thresholds([42], num_priorities=3,
                                          max_priority=7)
        assert rows == [(42, 7), (42, 6), (1 << 62, 5)]

    def test_all_equal_sizes_give_non_decreasing_limits(self):
        rows = Controller.pias_thresholds([5] * 10,
                                          num_priorities=3)
        limits = [r[0] for r in rows]
        assert limits == sorted(limits)
        assert limits[:-1] == [5, 5]
        assert limits[-1] == 1 << 62  # last band stays unbounded

    def test_more_priorities_than_samples(self):
        rows = Controller.pias_thresholds([10, 20],
                                          num_priorities=5,
                                          max_priority=7)
        limits = [r[0] for r in rows]
        prios = [r[1] for r in rows]
        assert limits == [10, 10, 20, 20, 1 << 62]
        assert prios == [7, 6, 5, 4, 3]


class TestTenantQueueMap:
    def test_assignment(self):
        qmap = Controller.tenant_queue_map(["tb", "ta"])
        assert qmap == {"ta": 1, "tb": 2}

    def test_base_queue_offset(self):
        qmap = Controller.tenant_queue_map(["x"], base_queue=10)
        assert qmap == {"x": 10}

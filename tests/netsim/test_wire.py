"""Tests for the wire format (header-map annotations made real)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import Packet, WireFormatError
from repro.netsim.packet import (FLAG_ACK, FLAG_FIN, FLAG_SYN,
                                 HEADER_BYTES)
from repro.netsim.wire import (decode, encode,
                               header_roundtrip_fields,
                               ipv4_checksum)


def make_packet(**kw):
    p = Packet(src_ip=kw.pop("src_ip", 0x0A000001),
               dst_ip=kw.pop("dst_ip", 0x0A000002),
               src_port=kw.pop("src_port", 40001),
               dst_port=kw.pop("dst_port", 80),
               payload_len=kw.pop("payload_len", 100),
               seq=kw.pop("seq", 12345),
               ack=kw.pop("ack", 999),
               flags=kw.pop("flags", FLAG_ACK))
    for name, value in kw.items():
        setattr(p, name, value)
    return p


class TestRoundtrip:
    def test_basic_fields(self):
        original = make_packet(priority=5, path_id=42, ecn=1)
        decoded = decode(encode(original))
        for name in header_roundtrip_fields():
            assert getattr(decoded, name) == getattr(original, name), \
                name

    def test_flags(self):
        for flags in (FLAG_SYN, FLAG_SYN | FLAG_ACK, FLAG_FIN |
                      FLAG_ACK, FLAG_ACK):
            decoded = decode(encode(make_packet(flags=flags)))
            assert decoded.flags == flags

    def test_sack_blocks(self):
        original = make_packet()
        original.sack = ((100, 200), (500, 900))
        decoded = decode(encode(original))
        assert decoded.sack == ((100, 200), (500, 900))

    def test_size_matches_total_length_mapping(self):
        # Figure 8: packet.size maps to ipv4.total_length.
        original = make_packet(payload_len=777)
        decoded = decode(encode(original))
        assert decoded.size == 777 + HEADER_BYTES

    def test_priority_occupies_pcp_bits(self):
        frame = encode(make_packet(priority=7, path_id=0))
        tci = (frame[14] << 8) | frame[15]
        assert tci >> 13 == 7

    def test_path_id_occupies_vlan_id_bits(self):
        frame = encode(make_packet(priority=0, path_id=0xABC))
        tci = (frame[14] << 8) | frame[15]
        assert tci & 0x0FFF == 0xABC


class TestValidation:
    def test_truncated_frame_rejected(self):
        frame = encode(make_packet())
        with pytest.raises(WireFormatError):
            decode(frame[:20])

    def test_corrupted_checksum_rejected(self):
        frame = bytearray(encode(make_packet()))
        frame[30] ^= 0xFF  # inside the IPv4 header
        with pytest.raises(WireFormatError):
            decode(bytes(frame))

    def test_non_vlan_frame_rejected(self):
        frame = bytearray(encode(make_packet()))
        frame[12] = 0x08
        frame[13] = 0x00  # plain IPv4 ethertype, no 802.1q tag
        with pytest.raises(WireFormatError, match="VLAN"):
            decode(bytes(frame))

    def test_checksum_algorithm(self):
        # RFC 1071 worked example.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert ipv4_checksum(data) == 0x220D


class TestRoundtripProperty:
    @settings(max_examples=80, deadline=None)
    @given(src_ip=st.integers(0, 2**32 - 1),
           dst_ip=st.integers(0, 2**32 - 1),
           src_port=st.integers(0, 2**16 - 1),
           dst_port=st.integers(0, 2**16 - 1),
           payload_len=st.integers(0, 1460),
           seq=st.integers(0, 2**32 - 1),
           ack=st.integers(0, 2**32 - 1),
           priority=st.integers(0, 7),
           path_id=st.integers(0, 0x0FFF),
           ecn=st.integers(0, 1),
           flags=st.sampled_from([FLAG_ACK, FLAG_SYN,
                                  FLAG_SYN | FLAG_ACK,
                                  FLAG_FIN | FLAG_ACK]),
           sack=st.lists(st.tuples(st.integers(0, 2**32),
                                   st.integers(0, 2**32)),
                         max_size=4))
    def test_encode_decode_identity(self, src_ip, dst_ip, src_port,
                                    dst_port, payload_len, seq, ack,
                                    priority, path_id, ecn, flags,
                                    sack):
        original = make_packet(
            src_ip=src_ip, dst_ip=dst_ip, src_port=src_port,
            dst_port=dst_port, payload_len=payload_len, seq=seq,
            ack=ack, flags=flags, priority=priority,
            path_id=path_id, ecn=ecn)
        original.sack = tuple(sack)
        decoded = decode(encode(original))
        for name in header_roundtrip_fields():
            assert getattr(decoded, name) == \
                getattr(original, name), name

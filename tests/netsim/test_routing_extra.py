"""Additional routing tests: richer fabrics and WCMP provisioning."""

import pytest

from repro.core import Controller
from repro.netsim import (GBPS, Network, Simulator,
                          install_l3_routes, simple_paths)
from repro.netsim.routing import as_graph


def leaf_spine(sim, n_leaves=2, n_spines=3, n_hosts_per_leaf=2,
               leaf_spine_bps=40 * GBPS, host_bps=10 * GBPS):
    """A small leaf-spine fabric."""
    net = Network(sim)
    for s in range(n_spines):
        net.add_switch(f"spine{s}")
    host_id = 1
    for l in range(n_leaves):
        leaf = f"leaf{l}"
        net.add_switch(leaf)
        for s in range(n_spines):
            net.connect(leaf, f"spine{s}", leaf_spine_bps)
        for _ in range(n_hosts_per_leaf):
            name = f"h{host_id}"
            net.add_host(name)
            net.connect(name, leaf, host_bps)
            host_id += 1
    return net


class TestLeafSpine:
    def test_l3_routes_use_all_spines(self):
        sim = Simulator(seed=2)
        net = leaf_spine(sim)
        install_l3_routes(net)
        h3_ip = net.host_ip("h3")  # lives under leaf1
        next_hops = net.switches["leaf0"].route_table[h3_ip]
        assert next_hops == ["spine0", "spine1", "spine2"]

    def test_cross_leaf_path_count(self):
        sim = Simulator(seed=2)
        net = leaf_spine(sim)
        paths = simple_paths(net, "h1", "h3")
        assert len(paths) == 3  # one per spine
        for path, bottleneck in paths:
            assert bottleneck == 10 * GBPS  # host links bound it

    def test_same_leaf_single_path(self):
        sim = Simulator(seed=2)
        net = leaf_spine(sim)
        paths = simple_paths(net, "h1", "h2", cutoff=2)
        assert len(paths) == 1
        assert paths[0][0] == ["h1", "leaf0", "h2"]

    def test_graph_kinds(self):
        sim = Simulator(seed=2)
        net = leaf_spine(sim)
        graph = as_graph(net)
        assert graph.nodes["h1"]["kind"] == "host"
        assert graph.nodes["spine0"]["kind"] == "switch"

    def test_wcmp_weights_equal_on_symmetric_fabric(self):
        sim = Simulator(seed=2)
        net = leaf_spine(sim)
        paths = simple_paths(net, "h1", "h3")
        weights = Controller.wcmp_weights(
            [(i + 1, float(b)) for i, (_, b) in enumerate(paths)])
        values = [w.weight for w in weights]
        assert max(values) - min(values) <= 1  # ECMP-like

    def test_end_to_end_cross_leaf_transfer(self):
        from repro.netsim import MS
        from repro.stack import HostStack
        sim = Simulator(seed=2)
        net = leaf_spine(sim)
        install_l3_routes(net)
        s1 = HostStack(sim, net.hosts["h1"])
        s3 = HostStack(sim, net.hosts["h3"])
        got = []

        def on_conn(conn):
            conn.on_data = lambda c, n: got.append(n)

        s3.listen(5000, on_conn)
        conn = s1.connect(net.host_ip("h3"), 5000)
        conn.message_send(100_000)
        sim.run(until_ns=30 * MS)
        assert got and got[-1] == 100_000

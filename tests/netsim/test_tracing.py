"""Tests for measurement helpers."""

import pytest

from repro.netsim import (FlowTracker, SEC, SeriesStats,
                          ThroughputMeter, mean, percentile)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 95) == 0.0

    def test_single(self):
        assert percentile([7.0], 95) == 7.0

    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_p95_of_hundred(self):
        values = list(range(1, 101))
        assert percentile(values, 95) == 95 or \
            percentile(values, 95) == 96

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    # Nearest-rank edge cases: the old round((pct/100) * (n - 1))
    # index underestimated high percentiles on small samples (e.g.
    # p95 of two values picked the *smaller* one).
    def test_n1_all_percentiles(self):
        for pct in (0, 1, 50, 95, 99, 100):
            assert percentile([42], pct) == 42

    def test_n2_high_percentile_picks_max(self):
        assert percentile([10, 20], 95) == 20
        assert percentile([20, 10], 99) == 20
        assert percentile([10, 20], 50) == 10

    def test_pct_0_is_min(self):
        assert percentile([5, 1, 9], 0) == 1
        assert percentile([5, 1, 9], -3) == 1

    def test_pct_100_is_max(self):
        assert percentile([5, 1, 9], 100) == 9
        assert percentile([5, 1, 9], 250) == 9

    def test_nearest_rank_definition(self):
        # p25 of 1..10 is the ceil(0.25*10) = 3rd smallest.
        assert percentile(list(range(1, 11)), 25) == 3
        # p95 of 1..100 is the ceil(0.95*100) = 95th smallest.
        assert percentile(list(range(1, 101)), 95) == 95


class TestFlowTracker:
    def test_record_and_fct(self):
        t = FlowTracker()
        rec = t.record("f1", 5000, 1000, 3000)
        assert rec.fct_ns == 2000
        assert rec.fct_us == 2.0
        assert len(t) == 1

    def test_filter_by_size(self):
        t = FlowTracker()
        t.record("small", 1_000, 0, 10)
        t.record("mid", 100_000, 0, 20)
        t.record("big", 10_000_000, 0, 30)
        small = t.filtered(max_size=10_000)
        mid = t.filtered(min_size=10_000, max_size=1_000_000)
        assert [r.flow_id for r in small] == ["small"]
        assert [r.flow_id for r in mid] == ["mid"]

    def test_filter_by_kind(self):
        t = FlowTracker()
        t.record("a", 10, 0, 1, kind="request")
        t.record("b", 10, 0, 1, kind="bulk")
        assert len(t.filtered(kind="request")) == 1

    def test_summary(self):
        t = FlowTracker()
        for fct in (1000, 2000, 3000):
            t.record("f", 100, 0, fct)
        avg, p95, n = t.fct_summary_us()
        assert avg == 2.0 and n == 3


class TestThroughputMeter:
    def test_simple_rate(self):
        m = ThroughputMeter()
        m.add(125_000, 0)           # 1 Mbit
        m.add(125_000, SEC)         # after 1 s
        assert m.mbps(0, SEC) == pytest.approx(2.0)

    def test_windowing_excludes_outside_samples(self):
        m = ThroughputMeter()
        m.add(1_000_000, 0)             # before window
        m.add(125_000, 2 * SEC)
        m.add(125_000, 3 * SEC)
        mbps = m.mbps(SEC, 3 * SEC)
        assert mbps == pytest.approx(1.0)

    def test_empty_meter(self):
        assert ThroughputMeter().mbps() == 0.0

    def test_mbytes(self):
        m = ThroughputMeter()
        m.add(1_000_000, 0)
        m.add(1_000_000, SEC)
        assert m.mbytes_per_s(0, SEC) == pytest.approx(2.0 / 8 * 8)


class TestSeriesStats:
    def test_mean_and_ci(self):
        s = SeriesStats("x")
        for v in (10.0, 12.0, 8.0, 10.0):
            s.add(v)
        assert s.mean == 10.0
        assert s.ci95 > 0

    def test_single_sample_no_ci(self):
        s = SeriesStats("x")
        s.add(5.0)
        assert s.ci95 == 0.0

    def test_str(self):
        s = SeriesStats("lbl")
        s.add(1.0)
        assert "lbl" in str(s)

"""Tests for switches: label forwarding, L3 routing, ECMP."""

import pytest

from repro.netsim import GBPS, Packet, Simulator, flow_hash
from repro.netsim.switchdev import Switch
from repro.netsim.link import duplex_connect

from test_link import Sink, make_packet


@pytest.fixture
def fabric():
    """One switch with three attached sinks."""
    sim = Simulator(seed=3)
    switch = Switch(sim, "sw")
    sinks = {}
    for name in ("a", "b", "c"):
        sink = Sink(sim, name)
        duplex_connect(sim, switch, sink, rate_bps=10 * GBPS)
        sinks[name] = sink
    return sim, switch, sinks


class TestLabelForwarding:
    def test_label_overrides_routing(self, fabric):
        sim, switch, sinks = fabric
        switch.install_route(2, ["a"])
        switch.install_label(5, "b")
        packet = make_packet()
        packet.path_id = 5
        switch.receive(packet, None)
        sim.run()
        assert len(sinks["b"].received) == 1
        assert len(sinks["a"].received) == 0

    def test_unknown_label_falls_back_to_route(self, fabric):
        sim, switch, sinks = fabric
        switch.install_route(2, ["a"])
        packet = make_packet()
        packet.path_id = 99
        switch.receive(packet, None)
        sim.run()
        assert len(sinks["a"].received) == 1

    def test_label_zero_reserved(self, fabric):
        _, switch, _ = fabric
        with pytest.raises(ValueError):
            switch.install_label(0, "a")

    def test_remove_label(self, fabric):
        sim, switch, sinks = fabric
        switch.install_route(2, ["a"])
        switch.install_label(5, "b")
        switch.remove_label(5)
        packet = make_packet()
        packet.path_id = 5
        switch.receive(packet, None)
        sim.run()
        assert len(sinks["a"].received) == 1


class TestL3AndEcmp:
    def test_single_next_hop(self, fabric):
        sim, switch, sinks = fabric
        switch.install_route(2, ["c"])
        switch.receive(make_packet(), None)
        sim.run()
        assert len(sinks["c"].received) == 1

    def test_no_route_drops(self, fabric):
        sim, switch, sinks = fabric
        switch.receive(make_packet(), None)
        sim.run()
        assert switch.no_route_drops == 1
        assert all(len(s.received) == 0 for s in sinks.values())

    def test_empty_route_rejected(self, fabric):
        _, switch, _ = fabric
        with pytest.raises(ValueError):
            switch.install_route(2, [])

    def test_ecmp_flow_stickiness(self, fabric):
        sim, switch, sinks = fabric
        switch.install_route(2, ["a", "b"])
        for _ in range(10):
            switch.receive(make_packet(), None)  # same five-tuple
        sim.run()
        counts = {n: len(s.received) for n, s in sinks.items()}
        assert sorted(counts.values(), reverse=True)[:2] == [10, 0]

    def test_ecmp_spreads_across_flows(self, fabric):
        sim, switch, sinks = fabric
        switch.install_route(2, ["a", "b"])
        for sport in range(64):
            p = Packet(src_ip=1, dst_ip=2, src_port=sport,
                       dst_port=80, payload_len=100)
            switch.receive(p, None)
        sim.run()
        assert len(sinks["a"].received) > 10
        assert len(sinks["b"].received) > 10


class TestFlowHash:
    def test_deterministic(self):
        t = (1, 2, 3, 4, 5)
        assert flow_hash(t, 42) == flow_hash(t, 42)

    def test_salt_changes_hash(self):
        t = (1, 2, 3, 4, 5)
        values = {flow_hash(t, salt) for salt in range(16)}
        assert len(values) > 1

    def test_distribution_roughly_uniform(self):
        buckets = [0, 0]
        for sport in range(1000):
            buckets[flow_hash((1, sport, 2, 80, 6), 7) % 2] += 1
        assert 350 < buckets[0] < 650

"""Tests for the discrete-event core."""

import pytest

from repro.netsim import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(30, log.append, "c")
        sim.schedule(10, log.append, "a")
        sim.schedule(20, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for tag in ("x", "y", "z"):
            sim.schedule(5, log.append, tag)
        sim.run()
        assert log == ["x", "y", "z"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42] and sim.now == 42

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_absolute_scheduling(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: sim.at(50, lambda: seen.append(
            sim.now)))
        sim.run()
        assert seen == [50]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.schedule(10, chain, n + 1)

        sim.schedule(0, chain, 0)
        sim.run()
        assert log == [0, 1, 2, 3]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        event = sim.schedule(10, log.append, "no")
        event.cancel()
        sim.run()
        assert log == []

    def test_pending_counts_live_events(self):
        sim = Simulator()
        e1 = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        e1.cancel()
        assert sim.pending == 1


class TestRunBounds:
    def test_until_stops_and_advances_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(10, log.append, "early")
        sim.schedule(100, log.append, "late")
        sim.run(until_ns=50)
        assert log == ["early"] and sim.now == 50
        sim.run()
        assert log == ["early", "late"]

    def test_max_events(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(i + 1, log.append, i)
        processed = sim.run(max_events=2)
        assert processed == 2 and log == [0, 1]


class TestRunEdgeCases:
    def test_until_before_first_event_only_advances_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(100, log.append, "later")
        processed = sim.run(until_ns=50)
        assert processed == 0
        assert log == []
        assert sim.now == 50
        assert sim.pending == 1

    def test_max_events_cuts_same_instant_batch(self):
        sim = Simulator()
        log = []
        for tag in ("a", "b", "c"):
            sim.schedule(5, log.append, tag)
        processed = sim.run(max_events=2)
        assert processed == 2 and log == ["a", "b"]
        assert sim.pending == 1
        # The rest of the batch fires later, still in schedule order.
        sim.run()
        assert log == ["a", "b", "c"]

    def test_callback_scheduling_into_past_raises(self):
        sim = Simulator()

        def bad():
            sim.schedule(-5, lambda: None)

        sim.schedule(10, bad)
        with pytest.raises(SimulationError):
            sim.run()


class TestPendingCounter:
    """`pending` is an O(1) live counter; every schedule/cancel/fire
    path must move it exactly once."""

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        sim.run(until_ns=15)
        assert sim.pending == 1
        event.cancel()  # already fired: must not decrement again
        assert sim.pending == 1

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 0

    def test_pending_tracks_schedule_fire_and_callback_schedules(self):
        sim = Simulator()

        def respawn():
            sim.schedule(10, lambda: None)

        sim.schedule(5, respawn)
        assert sim.pending == 1
        sim.run(until_ns=5)
        assert sim.pending == 1  # respawned event still live
        sim.run()
        assert sim.pending == 0

    def test_next_event_time_skips_cancelled_head(self):
        sim = Simulator()
        head = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        head.cancel()
        assert sim.next_event_time() == 20
        sim.run()
        assert sim.next_event_time() is None


class TestDeterminism:
    def test_same_seed_same_randoms(self):
        a = Simulator(seed=7)
        b = Simulator(seed=7)
        assert [a.rng.random() for _ in range(5)] == \
            [b.rng.random() for _ in range(5)]

    def test_clock_callable(self):
        sim = Simulator()
        sim.schedule(33, lambda: None)
        sim.run()
        assert sim.clock() == 33

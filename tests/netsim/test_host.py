"""Tests for the Host device."""

import pytest

from repro.netsim import GBPS, MS, Packet, Simulator, star
from repro.netsim.host import Host
from repro.stack import HostStack


class TestHost:
    def test_bind_stack_twice_rejected(self):
        sim = Simulator()
        host = Host(sim, "h", ip=1)
        HostStack(sim, host)
        with pytest.raises(RuntimeError, match="already has a stack"):
            HostStack(sim, host)

    def test_rx_counter(self):
        sim = Simulator(seed=1)
        net = star(sim, 2)
        s1 = HostStack(sim, net.hosts["h1"])
        s2 = HostStack(sim, net.hosts["h2"])
        s2.listen(80, lambda c: None)
        s1.connect(net.host_ip("h2"), 80)
        sim.run(until_ns=5 * MS)
        assert net.hosts["h2"].rx_packets > 0
        assert net.hosts["h1"].rx_packets > 0  # SYN-ACK came back

    def test_stackless_host_swallows_packets(self):
        sim = Simulator()
        host = Host(sim, "h", ip=5)
        packet = Packet(src_ip=1, dst_ip=5, src_port=1, dst_port=2)
        host.receive(packet, None)  # no stack bound: counted, dropped
        assert host.rx_packets == 1

    def test_repr(self):
        sim = Simulator()
        host = Host(sim, "worker-1", ip=9)
        assert "worker-1" in repr(host)


class TestDynamicThresholdUpdate:
    def test_pias_thresholds_updated_mid_run(self):
        """Section 2.1.3: thresholds are recalculated periodically.
        The controller push must take effect on in-flight traffic
        without reinstalling the function."""
        from repro.core import Controller, Enclave
        from repro.core.stage import Classification
        from repro.functions.pias import (FlowSchedulingDeployment)

        controller = Controller()
        enclave = Enclave("h1.enclave")
        controller.register_enclave("h1", enclave)
        deployment = FlowSchedulingDeployment(controller, "pias")
        deployment.install(["h1"], [(10_000, 7), (1 << 50, 5)])

        class Pkt:
            def __init__(self):
                self.src_ip, self.dst_ip = 1, 2
                self.src_port, self.dst_port, self.proto = 9, 80, 6
                self.size = 1000
                self.priority = self.path_id = self.drop = 0
                self.to_controller = self.queue_id = 0
                self.charge = self.ecn = self.tenant = 0

        cls = [Classification("a.r.m", {"msg_id": ("a", 1),
                                        "priority": 7})]
        # 5 KB into the message: still highest band.
        for _ in range(5):
            p = Pkt()
            enclave.process_packet(p, cls)
        assert p.priority == 7
        # Controller tightens the first band to 2 KB: the same
        # message immediately demotes.
        deployment.update_thresholds(["h1"], [(2_000, 7),
                                              (1 << 50, 5)])
        q = Pkt()
        enclave.process_packet(q, cls)
        assert q.priority == 5

"""Tests for topology builders and route/label computation."""

import pytest

from repro.netsim import (GBPS, Network, PATH_FAST, PATH_SLOW,
                          Simulator, TopologyError,
                          asymmetric_two_path, install_l3_routes,
                          install_path_labels, provision_labeled_paths,
                          simple_paths, star)
from repro.stack import HostStack


class TestNetwork:
    def test_duplicate_names_rejected(self):
        net = Network(Simulator())
        net.add_host("x")
        with pytest.raises(TopologyError):
            net.add_switch("x")

    def test_unique_ips(self):
        net = Network(Simulator())
        ips = {net.add_host(f"h{i}").ip for i in range(10)}
        assert len(ips) == 10

    def test_adjacency(self):
        net = Network(Simulator())
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", 1 * GBPS)
        adj = net.adjacency()
        assert ("b", 1 * GBPS) in adj["a"]
        assert ("a", 1 * GBPS) in adj["b"]

    def test_unknown_device_rejected(self):
        net = Network(Simulator())
        with pytest.raises(TopologyError):
            net.device("ghost")


class TestStar:
    def test_structure(self):
        net = star(Simulator(), 4)
        assert set(net.hosts) == {"h1", "h2", "h3", "h4"}
        assert set(net.switches) == {"tor"}
        assert len(net.links) == 4

    def test_routes_installed(self):
        net = star(Simulator(), 3)
        tor = net.switches["tor"]
        for name, host in net.hosts.items():
            assert tor.route_table[host.ip] == [name]

    def test_per_host_rates(self):
        net = star(Simulator(), 3, host_rate_bps=10 * GBPS,
                   host_rates={"h3": 1 * GBPS})
        rates = {(a, b): r for a, b, r in net.links}
        assert rates[("h3", "tor")] == 1 * GBPS
        assert rates[("h1", "tor")] == 10 * GBPS

    def test_needs_two_hosts(self):
        with pytest.raises(TopologyError):
            star(Simulator(), 1)


class TestAsymmetricTwoPath:
    def test_structure(self):
        net = asymmetric_two_path(Simulator())
        assert set(net.hosts) == {"h1", "h2"}
        assert set(net.switches) == {"sfast", "sslow"}

    def test_end_to_end_delivery(self):
        sim = Simulator()
        net = asymmetric_two_path(sim)
        s1 = HostStack(sim, net.hosts["h1"])
        s2 = HostStack(sim, net.hosts["h2"])
        got = []

        def on_conn(conn):
            conn.on_data = lambda c, n: got.append(n)

        s2.listen(1234, on_conn)
        conn = s1.connect(net.host_ip("h2"), 1234)
        conn.on_established = lambda c: c.message_send(5000)
        sim.run(until_ns=50_000_000)
        assert got and got[-1] == 5000


class TestPathComputation:
    def test_simple_paths_sorted_by_capacity(self):
        net = asymmetric_two_path(Simulator())
        paths = simple_paths(net, "h1", "h2")
        assert len(paths) == 2
        (fast_path, fast_bn), (slow_path, slow_bn) = paths
        assert fast_bn == 10 * GBPS and slow_bn == 1 * GBPS
        assert "sfast" in fast_path and "sslow" in slow_path

    def test_paths_through_hosts_excluded(self):
        sim = Simulator()
        net = Network(sim)
        for name in ("h1", "h2", "h3"):
            net.add_host(name)
        net.add_switch("s")
        net.connect("h1", "s", GBPS)
        net.connect("h2", "s", GBPS)
        net.connect("h1", "h3", GBPS)
        net.connect("h3", "h2", GBPS)
        paths = simple_paths(net, "h1", "h2")
        assert len(paths) == 1
        assert paths[0][0] == ["h1", "s", "h2"]

    def test_install_path_labels(self):
        net = asymmetric_two_path(Simulator())
        install_path_labels(net, 7, ["h1", "sfast", "h2"])
        assert net.switches["sfast"].label_table[7] == "h2"
        assert 7 not in net.switches["sslow"].label_table

    def test_provision_fills_port_map(self):
        sim = Simulator()
        net = asymmetric_two_path(sim)
        stack = HostStack(sim, net.hosts["h1"])
        rows = provision_labeled_paths(net, "h1", "h2")
        assert len(rows) == 2
        labels = {label for label, _, _ in rows}
        assert labels == {1, 2}
        assert set(stack.path_port_map) == {1, 2}
        # Fastest path gets the first label.
        assert stack.path_port_map[1] == "sfast"


class TestL3Routes:
    def test_ecmp_next_hops_on_parallel_fabric(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("h1")
        net.add_host("h2")
        for s in ("tor1", "tor2", "spine1", "spine2"):
            net.add_switch(s)
        net.connect("h1", "tor1", GBPS)
        net.connect("h2", "tor2", GBPS)
        for spine in ("spine1", "spine2"):
            net.connect("tor1", spine, GBPS)
            net.connect(spine, "tor2", GBPS)
        install_l3_routes(net)
        h2_ip = net.host_ip("h2")
        assert net.switches["tor1"].route_table[h2_ip] == \
            ["spine1", "spine2"]
        assert net.switches["spine1"].route_table[h2_ip] == ["tor2"]
        assert net.switches["tor2"].route_table[h2_ip] == ["h2"]

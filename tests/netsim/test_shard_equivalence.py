"""Sharded vs single-heap equivalence harness (``pytest -m shard``).

Seeded random topologies and workloads run through both the sharded
simulator (sequential backend) and the plain single-heap simulator;
every observable must agree exactly:

* per-host packet traces — ``(arrival_ns, wire digest)`` sequences;
* per-send completion times (single-packet flows keyed by the
  globally unique source port);
* final enclave/function state — each receiving host feeds its
  packets through an interpreted rx-stats action function, and the
  function's global store plus the enclave packet counters must
  match;
* switch receive/drop counters and per-port tx/drop/ECN statistics.

Workloads draw globally distinct transmission start times
(``rng.sample``), the one precondition for exact equivalence: two
transmissions starting the same nanosecond in different shards have
no defined relative order in the single heap either (docs/SHARDING.md).
"""

import random

import pytest

from repro.core.enclave import Enclave
from repro.lang.annotations import (AccessLevel, Field, FieldKind,
                                    Lifetime, schema)
from repro.netsim.packet import Packet, ip_of
from repro.netsim.sharded import (ShardPlan, ShardedSimulator,
                                  ShardingError, run_multiprocessing)
from repro.netsim.simulator import GBPS, Simulator
from repro.netsim.topology import (HostSpec, LinkSpec, SwitchSpec,
                                   TopologySpec)
from repro.netsim.wire import packet_digest

pytestmark = pytest.mark.shard


# ---------------------------------------------------------------------------
# Random topologies: clusters of hosts behind per-cluster switches,
# joined by one or two root switches (dual roots exercise pinned-salt
# ECMP).  Cut links (cluster switch <-> root) get 2-5 us propagation,
# so the conservative window is always >= 2 us.
# ---------------------------------------------------------------------------


def random_cluster_spec(rng):
    n_clusters = rng.randrange(2, 5)
    roots = ("root0", "root1") if rng.random() < 0.5 else ("root0",)
    hosts, switches, links = [], [], []
    routes = {}
    group_of = {}
    cluster_hosts = []
    host_index = 1
    for c in range(n_clusters):
        sw = f"s{c}"
        switches.append(SwitchSpec(sw, rng.getrandbits(32)))
        routes[sw] = {}
        group_of[sw] = c
        members = []
        for i in range(rng.randrange(2, 5)):
            h = HostSpec(f"h{c}_{i}", ip_of(host_index))
            host_index += 1
            hosts.append(h)
            members.append(h)
            group_of[h.name] = c
            links.append(LinkSpec(
                h.name, sw, rng.choice((1 * GBPS, 10 * GBPS)),
                prop_delay_ns=rng.randrange(500, 1500),
                queue_capacity_bytes=rng.choice((30_000, 300_000)),
                ecn_threshold_bytes=rng.choice((None, 20_000))))
        cluster_hosts.append(members)
    for r in roots:
        switches.append(SwitchSpec(r, rng.getrandbits(32)))
        routes[r] = {}
        group_of[r] = -1
        for c in range(n_clusters):
            links.append(LinkSpec(
                f"s{c}", r, 40 * GBPS,
                prop_delay_ns=rng.randrange(2_000, 5_001)))
    for c in range(n_clusters):
        table = routes[f"s{c}"]
        for cc, members in enumerate(cluster_hosts):
            for h in members:
                table[h.ip] = (h.name,) if cc == c else roots
    for r in roots:
        table = routes[r]
        for cc, members in enumerate(cluster_hosts):
            for h in members:
                table[h.ip] = (f"s{cc}",)
    spec = TopologySpec(hosts=tuple(hosts), switches=tuple(switches),
                        links=tuple(links), routes=routes)
    return spec, group_of, n_clusters


def random_workload(spec, rng, n_packets=120, horizon_ns=400_000):
    names = [h.name for h in spec.hosts]
    sends = []
    for j, t in enumerate(sorted(rng.sample(range(horizon_ns),
                                            n_packets))):
        src = names[rng.randrange(len(names))]
        dst = names[rng.randrange(len(names))]
        while dst == src:
            dst = names[rng.randrange(len(names))]
        sends.append((t, src, spec.host_ip(dst), 10_000 + j,
                      rng.choice((0, 200, 700, 1460)),
                      rng.randrange(8)))
    return sends


def _send_one(host, dst_ip, src_port, payload_len, priority):
    packet = Packet(src_ip=host.ip, dst_ip=dst_ip, src_port=src_port,
                    dst_port=9000, payload_len=payload_len,
                    created_at=host.sim.now)
    packet.priority = priority
    host.ports[0].enqueue(packet)


def _schedule_sends(hosts, sends):
    for t, src, dst_ip, src_port, payload_len, priority in sends:
        host = hosts[src]
        host.sim.at(t, _send_one, host, dst_ip, src_port,
                    payload_len, priority)


# ---------------------------------------------------------------------------
# The observer: a host "stack" recording (arrival, digest) and pushing
# every packet through an interpreted enclave function so final
# function state is part of the equivalence check.
# ---------------------------------------------------------------------------

RX_STATS_SCHEMA = schema(
    "RxStatsGlobal", Lifetime.GLOBAL, [
        Field("flow_count", AccessLevel.READ_WRITE, FieldKind.ARRAY),
        Field("total_bytes", AccessLevel.READ_WRITE),
    ])


def rx_stats_action(packet, _global):
    n = len(_global.flow_count)
    if n != 0:
        idx = (packet.src_ip * 31 + packet.src_port) % n
        _global.flow_count[idx] = _global.flow_count[idx] + 1
    _global.total_bytes = _global.total_bytes + packet.size
    return 0


class RxObserver:
    def __init__(self, host):
        self.host = host
        self.trace = []
        self.fct = {}
        self.enclave = Enclave(f"{host.name}.enclave",
                               clock=host.sim.clock, rng=host.sim.rng)
        self.enclave.install_function(rx_stats_action,
                                      global_schema=RX_STATS_SCHEMA)
        self.enclave.set_global_array("rx_stats_action", "flow_count",
                                      [0] * 16)
        self.enclave.set_global("rx_stats_action", "total_bytes", 0)
        self.enclave.install_rule("*", "rx_stats_action")
        host.bind_stack(self)

    def handle_rx(self, packet, from_port):
        now = self.host.sim.now
        self.trace.append((now, packet_digest(packet)))
        self.fct[packet.src_port] = now - packet.created_at
        result = self.enclave.process_packet(packet, (), now_ns=now)
        assert result.error is None

    def state(self):
        return (self.enclave.query_global("rx_stats_action"),
                self.enclave.packets_processed)


def _port_stats(devices):
    out = {}
    for device in devices:
        for port in device.ports:
            s = port.stats
            out[port.name] = (s.tx_packets, s.tx_bytes, s.drops,
                              s.drop_bytes, s.ecn_marks, s.busy_ns)
    return out


def _snapshot(observers, hosts, switches):
    fct = {}
    for obs in observers.values():
        fct.update(obs.fct)
    return {
        "traces": {name: obs.trace
                   for name, obs in observers.items()},
        "fct": fct,
        "enclaves": {name: obs.state()
                     for name, obs in observers.items()},
        "switches": {sw.name: (sw.rx_packets, sw.no_route_drops)
                     for sw in switches},
        "ports": _port_stats(list(hosts) + list(switches)),
    }


def run_single(spec, sends, seed):
    sim = Simulator(seed=seed)
    net = spec.build(sim)
    observers = {name: RxObserver(host)
                 for name, host in net.hosts.items()}
    _schedule_sends(net.hosts, sends)
    events = sim.run()
    snap = _snapshot(observers, net.hosts.values(),
                     net.switches.values())
    return snap, events


def run_sharded(spec, plan, sends, seed, window_ns=None):
    sharded = ShardedSimulator(spec, plan, seed=seed,
                               window_ns=window_ns)
    hosts = sharded.hosts
    observers = {name: RxObserver(host)
                 for name, host in hosts.items()}
    _schedule_sends(hosts, sends)
    sharded.run()
    snap = _snapshot(observers, hosts.values(),
                     sharded.switches.values())
    return snap, sharded


def _assert_equal_snapshots(single, sharded):
    for key in single:
        assert sharded[key] == single[key], f"{key} diverged"


SEEDS = list(range(20))


class TestShardEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_topology_matches_single_heap(self, seed):
        rng = random.Random(1000 + seed)
        spec, group_of, n_clusters = random_cluster_spec(rng)
        sends = random_workload(spec, rng)
        n_shards = rng.randrange(1, n_clusters + 1)
        plan = ShardPlan.from_groups(group_of, n_shards)

        single, _ = run_single(spec, sends, seed)
        sharded_snap, sharded = run_sharded(spec, plan, sends, seed)

        _assert_equal_snapshots(single, sharded_snap)
        delivered = sum(len(t) for t in single["traces"].values())
        assert delivered > 0, "degenerate workload: nothing arrived"
        assert sharded.windows > 0
        # The roots are always on the coordinator while every cluster
        # shard is >= 1, so cross-shard traffic exists on every seed.
        assert sharded.handoffs > 0

    def test_smaller_window_is_still_exact(self):
        rng = random.Random(77)
        spec, group_of, n_clusters = random_cluster_spec(rng)
        sends = random_workload(spec, rng, n_packets=60)
        plan = ShardPlan.from_groups(group_of, n_clusters)
        single, _ = run_single(spec, sends, seed=5)
        lookahead = plan.lookahead_ns(spec)
        snap, _ = run_sharded(spec, plan, sends, seed=5,
                              window_ns=max(1, lookahead // 3))
        _assert_equal_snapshots(single, snap)

    def test_window_above_lookahead_rejected(self):
        rng = random.Random(3)
        spec, group_of, n_clusters = random_cluster_spec(rng)
        plan = ShardPlan.from_groups(group_of, n_clusters)
        lookahead = plan.lookahead_ns(spec)
        with pytest.raises(ShardingError):
            ShardedSimulator(spec, plan, window_ns=lookahead + 1)

    def test_bounded_run_resumes_exactly(self):
        """run(until) + run() must equal one uninterrupted run —
        arrivals queued past the bound stay pending, not lost."""
        rng = random.Random(11)
        spec, group_of, n_clusters = random_cluster_spec(rng)
        sends = random_workload(spec, rng, n_packets=60)
        plan = ShardPlan.from_groups(group_of, n_clusters)
        single, _ = run_single(spec, sends, seed=2)

        sharded = ShardedSimulator(spec, plan, seed=2)
        hosts = sharded.hosts
        observers = {name: RxObserver(host)
                     for name, host in hosts.items()}
        _schedule_sends(hosts, sends)
        sharded.run(until_ns=150_000)
        assert sharded.now == 150_000
        sharded.run()
        snap = _snapshot(observers, hosts.values(),
                         sharded.switches.values())
        _assert_equal_snapshots(single, snap)


class TestMultiprocessingParity:
    def test_mp_backend_matches_sequential(self):
        """The pickled-mailbox backend must reproduce the sequential
        backend exactly (same scenario digests, same event totals)."""
        from repro.experiments.scale import ScaleScenario

        rng = random.Random(42)
        spec, group_of, n_clusters = random_cluster_spec(rng)
        sends = tuple(random_workload(spec, rng, n_packets=80))
        plan = ShardPlan.from_groups(group_of, n_clusters)
        scenario = ScaleScenario(sends)

        sequential = ShardedSimulator(spec, plan, seed=9)
        for partition in sequential.partitions:
            scenario.setup(partition)
        seq_events = sequential.run()
        seq_rx = {}
        for partition in sequential.partitions:
            seq_rx.update(scenario.collect(partition))

        mp_result = run_multiprocessing(spec, plan, scenario, seed=9)
        mp_rx = {}
        for collected in mp_result.results.values():
            mp_rx.update(collected)

        assert mp_rx == seq_rx
        assert mp_result.events_processed == seq_events
        assert sum(c for c, _ in seq_rx.values()) == len(sends)

"""Tests for the pcap capture of simulated traffic."""

import io
import struct

import pytest

from repro.netsim import GBPS, MS, Simulator, star
from repro.netsim.pcap import (GLOBAL_HEADER, PCAP_MAGIC, PcapWriter,
                               PortTap, read_pcap)
from repro.netsim.packet import FLAG_ACK, Packet
from repro.stack import HostStack


def make_packet(payload=100, seq=1):
    return Packet(src_ip=0x0A000001, dst_ip=0x0A000002,
                  src_port=1234, dst_port=80, payload_len=payload,
                  seq=seq, flags=FLAG_ACK)


class TestPcapWriter:
    def test_global_header(self):
        stream = io.BytesIO()
        PcapWriter(stream)
        stream.seek(0)
        magic, major, minor, *_ = GLOBAL_HEADER.unpack(
            stream.read(GLOBAL_HEADER.size))
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)

    def test_roundtrip_through_file(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        with PcapWriter(path) as writer:
            writer.write(make_packet(seq=10), timestamp_ns=1_500_000)
            writer.write(make_packet(seq=20),
                         timestamp_ns=2_000_000_000)
            assert writer.packets_written == 2
        records = read_pcap(path)
        assert len(records) == 2
        ts0, pkt0 = records[0]
        assert ts0 == 1_500_000 and pkt0.seq == 10
        ts1, pkt1 = records[1]
        assert ts1 == 2_000_000_000 and pkt1.seq == 20

    def test_snaplen_truncates(self, tmp_path):
        path = str(tmp_path / "snap.pcap")
        with PcapWriter(path, snaplen=40) as writer:
            writer.write(make_packet(payload=1000), timestamp_ns=0)
        # The record header survives; the frame is truncated, so
        # decoding must fail loudly rather than silently mis-parse.
        with pytest.raises(Exception):
            read_pcap(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bad.pcap")
        with open(path, "wb") as f:
            f.write(b"\x00" * 24)
        with pytest.raises(ValueError, match="magic"):
            read_pcap(path)


class TestPortTap:
    def test_captures_live_traffic(self, tmp_path):
        path = str(tmp_path / "live.pcap")
        sim = Simulator(seed=9)
        net = star(sim, 2, host_rate_bps=10 * GBPS)
        s1 = HostStack(sim, net.hosts["h1"])
        s2 = HostStack(sim, net.hosts["h2"])
        got = []

        def on_conn(conn):
            conn.on_data = lambda c, n: got.append(n)

        s2.listen(5000, on_conn)
        tap = PortTap(sim, net.switches["tor"].port_to("h2"), path)
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(5000)
        sim.run(until_ns=20 * MS)
        tap.close()
        assert got and got[-1] == 5000

        records = read_pcap(path)
        assert len(records) >= 4  # SYN + data segments
        timestamps = [t for t, _ in records]
        assert timestamps == sorted(timestamps)
        data_bytes = sum(p.payload_len for _, p in records)
        assert data_bytes >= 5000
        assert any(p.is_syn for _, p in records)
        # Captured packets carry the connection's real addressing.
        assert all(p.dst_port in (5000, conn.local_port)
                   for _, p in records)

    def test_detach_stops_capture(self, tmp_path):
        path = str(tmp_path / "detach.pcap")
        sim = Simulator(seed=9)
        net = star(sim, 2)
        s1 = HostStack(sim, net.hosts["h1"])
        HostStack(sim, net.hosts["h2"])
        tap = PortTap(sim, net.hosts["h1"].port_to("tor"), path)
        tap.detach()
        s1.connect(net.host_ip("h2"), 7777)
        sim.run(until_ns=2 * MS)
        tap.close()
        assert read_pcap(path) == []

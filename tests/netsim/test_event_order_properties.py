"""Property test: the heap-based Simulator against a naive reference.

Seeded random event programs — schedule, cancel, reschedule, events
that spawn more events (including same-instant ones) from inside
callbacks — run through both the production heap simulator and a
deliberately naive executor that keeps a plain list and re-sorts it
on every step.  The observable callback order must be identical,
including same-instant ties (defined to fire in schedule order) and
events created while the batch they join is already firing.
"""

import random

import pytest

from repro.netsim.simulator import SimulationError, Simulator

SPAWN_LIMIT = 600


class HeapExecutor:
    """The production simulator behind the common driver API."""

    def __init__(self):
        self.sim = Simulator()

    @property
    def now(self):
        return self.sim.now

    def schedule(self, delay, callback, *args):
        return self.sim.schedule(delay, callback, *args)

    def cancel(self, handle):
        handle.cancel()

    def run(self):
        return self.sim.run()

    @property
    def pending(self):
        return self.sim.pending


class ReferenceExecutor:
    """Sorted-list executor: obviously correct, O(n log n) per event.

    Keeps every live event in a plain list and re-sorts by
    ``(time, schedule_seq)`` before each step — the specification the
    heap implementation must match.
    """

    def __init__(self):
        self.now = 0
        self._events = []
        self._seq = 0

    def schedule(self, delay, callback, *args):
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} ns in the past")
        record = [self.now + delay, self._seq, callback, args, False]
        self._seq += 1
        self._events.append(record)
        return record

    def cancel(self, record):
        record[4] = True

    def run(self):
        processed = 0
        while True:
            live = [r for r in self._events if not r[4]]
            if not live:
                break
            live.sort(key=lambda r: (r[0], r[1]))
            record = live[0]
            self._events.remove(record)
            self.now = record[0]
            record[2](*record[3])
            processed += 1
        return processed

    @property
    def pending(self):
        return sum(1 for r in self._events if not r[4])


def build_program(rng, n_roots=25, n_ids=80):
    """A random event program as plain data.

    ``rules[event_id] = (spawns, cancels)``: when ``event_id`` fires
    it schedules each ``(delay, child_id)`` (delay 0 joins the batch
    currently firing) and cancels the latest live handle of each
    listed id — which may already have fired or never exist, both
    no-ops.
    """
    rules = {}
    for event_id in range(n_ids):
        spawns = []
        cancels = []
        if rng.random() < 0.7:
            for _ in range(rng.randrange(1, 4)):
                delay = rng.choice((0, 0, 1, 3, rng.randrange(40)))
                spawns.append((delay, rng.randrange(n_ids)))
        if rng.random() < 0.4:
            cancels.append(rng.randrange(n_ids))
        rules[event_id] = (spawns, cancels)
    roots = [(rng.randrange(60), rng.randrange(n_ids))
             for _ in range(n_roots)]
    return roots, rules


class Driver:
    """Plays one program against one executor, logging fire order."""

    def __init__(self, executor, roots, rules):
        self.executor = executor
        self.rules = rules
        self.handles = {}
        self.log = []
        self.spawned = 0
        for time, event_id in roots:
            self._spawn(time, event_id)

    def _spawn(self, delay, event_id):
        if self.spawned >= SPAWN_LIMIT:
            return
        self.spawned += 1
        self.handles[event_id] = self.executor.schedule(
            delay, self._fire, event_id)

    def _fire(self, event_id):
        self.log.append((event_id, self.executor.now))
        spawns, cancels = self.rules[event_id]
        for delay, child_id in spawns:
            self._spawn(delay, child_id)
        for target in cancels:
            handle = self.handles.get(target)
            if handle is not None:
                self.executor.cancel(handle)


@pytest.mark.parametrize("seed", range(15))
def test_heap_matches_reference_executor(seed):
    rng = random.Random(seed)
    roots, rules = build_program(rng)

    heap = HeapExecutor()
    heap_driver = Driver(heap, roots, rules)
    heap_processed = heap.run()

    reference = ReferenceExecutor()
    ref_driver = Driver(reference, roots, rules)
    ref_processed = reference.run()

    assert heap_driver.log == ref_driver.log
    assert heap_processed == ref_processed
    assert heap.pending == reference.pending == 0
    assert len(heap_driver.log) > 0


def test_same_instant_spawn_joins_current_batch_in_order():
    """An event scheduled with delay 0 from inside a callback fires in
    the same instant, after everything already scheduled there."""
    for executor in (HeapExecutor(), ReferenceExecutor()):
        log = []
        executor.schedule(
            10, lambda: (log.append("first"),
                         executor.schedule(0, log.append, "spawned")))
        executor.schedule(10, log.append, "second")
        executor.run()
        assert log == ["first", "second", "spawned"]


def test_cancel_inside_batch_prevents_same_instant_peer():
    """Cancelling a same-instant peer from a callback must stop it in
    both executors (the heap pops lazily; the reference filters)."""
    for executor_cls in (HeapExecutor, ReferenceExecutor):
        executor = executor_cls()
        log = []
        handles = {}

        def killer():
            log.append("killer")
            executor.cancel(handles["victim"])

        executor.schedule(5, killer)
        handles["victim"] = executor.schedule(5, log.append, "victim")
        executor.schedule(5, log.append, "survivor")
        executor.run()
        assert log == ["killer", "survivor"]

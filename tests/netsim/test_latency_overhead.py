"""The latency instrumentation must be a true no-op when disabled.

Dwell-time hooks sit on the hottest paths of the simulator — port
enqueue/transmit, host receive, stack send, rate-limiter admit — so
they are gated behind a single ``is None`` check.  These regressions
pin the contract: with no collector bound nothing is recorded and
nothing changes; with one bound, the *simulated* outcome is still
bit-identical (observation never perturbs the experiment)."""

import pytest

from repro.experiments.fig9 import build_flow_scheduling
from repro.latency import LatencyCollector, LatencyStore
from repro.netsim.link import Port
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.netsim.switchdev import Device
from repro.stack.netstack import HostStack
from repro.telemetry import NULL_TELEMETRY, Telemetry

pytestmark = pytest.mark.latency


def test_simulator_has_no_latency_sink_by_default():
    sim = Simulator(seed=0)
    assert sim.latency is None
    # Binding latency-free telemetry keeps the no-op path.
    sim.bind_telemetry(Telemetry())
    assert sim.latency is None


def test_disabled_telemetry_never_exposes_a_collector():
    collector = LatencyCollector(store=LatencyStore())
    tel = Telemetry(enabled=False, latency=collector)
    assert tel.latency is None
    sim = Simulator(seed=0)
    sim.bind_telemetry(tel)
    assert sim.latency is None
    assert NULL_TELEMETRY.latency is None


def test_port_path_records_nothing_without_collector():
    sim = Simulator(seed=0)
    sink = Device(sim, "sink")
    received = []
    sink.receive = lambda packet, port: received.append(packet)
    port = Port(sim, "p", rate_bps=1_000_000_000)
    port.connect(sink)
    port.enqueue(Packet(src_ip=1, dst_ip=2, src_port=1, dst_port=2,
                        payload_len=100))
    sim.run()
    assert len(received) == 1             # data path unaffected


def test_stack_and_bank_bind_no_sink_without_collector():
    sim = Simulator(seed=0)
    from repro.netsim.topology import star
    net = star(sim, 2, host_rate_bps=1_000_000_000)
    stack = HostStack(sim, net.hosts["h1"], telemetry=Telemetry())
    assert stack._lat is None
    queue = stack.rate_limiters.configure(1, 1_000_000)
    assert queue._lat is None


def run_fct_digest(telemetry):
    """Deterministic digest of a short fig9 run's simulated outcome."""
    scenario = build_flow_scheduling(
        policy="pias", variant="eden", seed=5, duration_ms=30,
        telemetry=telemetry)
    scenario.run()
    records = tuple((r.flow_id, r.size_bytes, r.started_at,
                     r.completed_at) for r in scenario.tracker.records)
    background = tuple(b.bytes_completed
                       for b in scenario.bulk_senders)
    return records, background, scenario.now_ns


def test_observation_does_not_perturb_the_simulation():
    """Same seed, with and without a collector: every flow completes
    at the identical simulated nanosecond."""
    bare = run_fct_digest(telemetry=None)
    collector = LatencyCollector(store=LatencyStore())
    observed = run_fct_digest(
        telemetry=Telemetry(latency=collector))
    assert collector.completed > 0        # observation really ran
    assert bare == observed

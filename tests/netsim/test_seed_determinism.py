"""Seed determinism: same seed => bit-identical runs.

Two layers of evidence:

* a small fig9 configuration run twice with the same seed must return
  identical results (including the processed-event count) and
  identical telemetry snapshots, on both the single-heap and the
  sharded paths — and a different seed must actually change them;
* a star workload captured through a :class:`PortTap` must produce
  byte-identical pcap captures for the same seed (packet ids are
  reset per run — the one process-global, non-seeded piece of packet
  state) and different bytes for a different seed.
"""

import io
import random

from repro.experiments.fig9 import run_flow_scheduling
from repro.netsim.packet import Packet, reset_packet_ids
from repro.netsim.pcap import PortTap
from repro.netsim.simulator import Simulator
from repro.netsim.topology import star_spec
from repro.telemetry import Telemetry


def _fig9(seed, shards=0):
    telemetry = Telemetry(enabled=True)
    result = run_flow_scheduling("pias", "eden", seed=seed,
                                 duration_ms=15, shards=shards,
                                 telemetry=telemetry)
    return result, telemetry.registry.snapshot()


class TestFig9Determinism:
    def test_same_seed_identical_result_and_telemetry(self):
        result_a, snap_a = _fig9(seed=3)
        result_b, snap_b = _fig9(seed=3)
        assert result_a == result_b
        assert result_a.events > 0
        assert snap_a == snap_b
        assert any("sim_events_total" in key
                   for key in snap_a["counters"])

    def test_different_seed_differs(self):
        _, snap_a = _fig9(seed=3)
        _, snap_b = _fig9(seed=4)
        assert snap_a != snap_b

    def test_sharded_run_is_deterministic_too(self):
        result_a, snap_a = _fig9(seed=3, shards=2)
        result_b, snap_b = _fig9(seed=3, shards=2)
        assert result_a == result_b
        # The barrier-wait histogram measures host wall-clock time, so
        # it is legitimately run-dependent; everything event-derived
        # (counters, gauges) must be identical.
        assert snap_a["counters"] == snap_b["counters"]
        assert snap_a["gauges"] == snap_b["gauges"]
        assert snap_a["counters"]["sim_events_total{shard=1}"] > 0


def _captured_star_run(seed):
    """A seeded random star workload with the ToR->h1 port tapped."""
    reset_packet_ids()
    sim = Simulator(seed=seed)
    net = star_spec(4, salt_seed=seed).build(sim)
    capture = io.BytesIO()
    PortTap(sim, net.switches["tor"].port_to("h1"), capture)

    rng = random.Random(seed)
    times = sorted(rng.sample(range(200_000), 60))

    def send(src, t, port_seq):
        packet = Packet(src_ip=net.hosts[src].ip,
                        dst_ip=net.host_ip("h1"),
                        src_port=20_000 + port_seq, dst_port=9000,
                        payload_len=rng.choice((0, 200, 1460)),
                        created_at=t)
        packet.priority = rng.randrange(8)
        net.hosts[src].ports[0].enqueue(packet)

    for i, t in enumerate(times):
        src = f"h{rng.randrange(2, 5)}"
        sim.at(t, send, src, t, i)
    events = sim.run()
    return capture.getvalue(), events


class TestCaptureDigests:
    def test_same_seed_identical_pcap_bytes(self):
        bytes_a, events_a = _captured_star_run(seed=11)
        bytes_b, events_b = _captured_star_run(seed=11)
        assert events_a == events_b
        assert len(bytes_a) > 24  # more than just the pcap header
        assert bytes_a == bytes_b

    def test_different_seed_different_pcap_bytes(self):
        bytes_a, _ = _captured_star_run(seed=11)
        bytes_b, _ = _captured_star_run(seed=12)
        assert bytes_a != bytes_b

"""Tests for ports and links: serialization, priorities, drops, ECN."""

import pytest

from repro.netsim import (GBPS, Packet, Port, SEC, Simulator,
                          duplex_connect)
from repro.netsim.switchdev import Device


class Sink(Device):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, from_port):
        self.received.append((self.sim.now, packet))


def make_packet(payload=1460, priority=0):
    p = Packet(src_ip=1, dst_ip=2, src_port=1, dst_port=2,
               payload_len=payload)
    p.priority = priority
    return p


@pytest.fixture
def rig():
    sim = Simulator()
    sink = Sink(sim, "sink")
    port = Port(sim, "p", rate_bps=1 * GBPS, prop_delay_ns=1000)
    port.connect(sink)
    return sim, port, sink


class TestSerialization:
    def test_delivery_time_is_tx_plus_propagation(self, rig):
        sim, port, sink = rig
        packet = make_packet(payload=1460)
        port.enqueue(packet)
        sim.run()
        expected = packet.size * 8 * SEC // (1 * GBPS) + 1000
        assert sink.received[0][0] == expected

    def test_back_to_back_serialized(self, rig):
        sim, port, sink = rig
        for _ in range(3):
            port.enqueue(make_packet())
        sim.run()
        times = [t for t, _ in sink.received]
        tx = make_packet().size * 8 * SEC // (1 * GBPS)
        assert times == [tx + 1000, 2 * tx + 1000, 3 * tx + 1000]

    def test_utilization(self, rig):
        sim, port, sink = rig
        port.enqueue(make_packet())
        sim.run()
        tx = make_packet().size * 8 * SEC // (1 * GBPS)
        assert port.stats.busy_ns == tx
        assert 0 < port.utilization(2 * tx) <= 1.0

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            Port(Simulator(), "bad", rate_bps=0)


class TestPriorities:
    def test_higher_pcp_served_first(self, rig):
        sim, port, sink = rig
        # First packet occupies the wire; the rest queue.
        port.enqueue(make_packet(priority=0))
        low = make_packet(priority=1)
        high = make_packet(priority=7)
        port.enqueue(low)
        port.enqueue(high)
        sim.run()
        order = [p.priority for _, p in sink.received]
        assert order == [0, 7, 1]

    def test_priority_out_of_range_clamped(self, rig):
        sim, port, sink = rig
        packet = make_packet()
        packet.priority = 99
        port.enqueue(packet)
        sim.run()
        assert len(sink.received) == 1


class TestDropsAndEcn:
    def test_tail_drop_when_full(self):
        sim = Simulator()
        sink = Sink(sim, "sink")
        port = Port(sim, "p", rate_bps=1 * GBPS,
                    queue_capacity_bytes=4000)
        port.connect(sink)
        results = [port.enqueue(make_packet()) for _ in range(5)]
        sim.run()
        assert not all(results)
        assert port.stats.drops >= 1
        assert len(sink.received) + port.stats.drops == 5

    def test_ecn_marking_over_threshold(self):
        sim = Simulator()
        sink = Sink(sim, "sink")
        port = Port(sim, "p", rate_bps=1 * GBPS,
                    queue_capacity_bytes=100_000,
                    ecn_threshold_bytes=3000)
        port.connect(sink)
        for _ in range(5):
            port.enqueue(make_packet())
        sim.run()
        marks = [p.ecn for _, p in sink.received]
        assert any(marks) and not all(marks)
        assert port.stats.ecn_marks == sum(marks)

    def test_unconnected_port_rejected(self):
        port = Port(Simulator(), "p", rate_bps=1 * GBPS)
        with pytest.raises(RuntimeError):
            port.enqueue(make_packet())


class TestDuplexConnect:
    def test_creates_both_directions(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        ab, ba = duplex_connect(sim, a, b, rate_bps=1 * GBPS)
        assert a.port_to("b") is ab
        assert b.port_to("a") is ba
        ab.enqueue(make_packet())
        sim.run()
        assert len(b.received) == 1

    def test_port_to_unknown_neighbor(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        duplex_connect(sim, a, b, rate_bps=1 * GBPS)
        with pytest.raises(KeyError, match="neighbors"):
            a.port_to("zzz")

"""LatencyStore: windows, rollups, bounds, snapshot/export."""

import pytest

from repro.latency import (ALL_CLASSES, LatencyStore, PacketRecord,
                           RESIDUAL)

pytestmark = pytest.mark.latency

WINDOW = 1_000_000  # 1 ms windows for the tests


def record(packet_id, received_ns, flow="f1", function="pias",
           e2e_ns=5_000, size=1000):
    segments = {cls: 0 for cls in ALL_CLASSES}
    segments["link_propagation"] = e2e_ns
    return PacketRecord(packet_id=packet_id, flow=flow,
                        function=function, size_bytes=size,
                        sent_ns=received_ns - e2e_ns,
                        received_ns=received_ns, segments=segments)


def test_windows_close_when_a_newer_one_opens():
    store = LatencyStore(window_ns=WINDOW)
    store.add(record(1, received_ns=100))
    store.add(record(2, received_ns=200))
    assert store.windows() == []          # window 0 still open
    store.add(record(3, received_ns=WINDOW + 50))
    [closed] = store.windows()
    assert closed.index == 0
    assert closed.count == 2
    assert closed.start_ns == 0 and closed.end_ns == WINDOW
    assert closed.e2e_mean_ns == 5000.0
    assert closed.segment_mean_ns["link_propagation"] == 5000.0


def test_flush_closes_open_windows():
    store = LatencyStore(window_ns=WINDOW)
    store.add(record(1, received_ns=100))
    store.flush()
    [closed] = store.windows()
    assert closed.count == 1


def test_late_record_counts_but_keeps_aggregates_honest():
    store = LatencyStore(window_ns=WINDOW)
    store.add(record(1, received_ns=3 * WINDOW + 1))
    store.add(record(2, received_ns=100))  # window 0, long closed
    assert store.late_records == 1
    assert store.count == 2                # still in the run totals
    assert store.e2e_histogram().count == 2


def test_windows_since_index_filters():
    store = LatencyStore(window_ns=WINDOW)
    for i in range(4):
        store.add(record(i + 1, received_ns=i * WINDOW + 10))
    assert [w.index for w in store.windows()] == [0, 1, 2]
    assert [w.index for w in store.windows(since_index=1)] == [2]


def test_wait_for_windows_timeout_returns_empty():
    store = LatencyStore(window_ns=WINDOW)
    assert store.wait_for_windows(-1, timeout=0.01) == []
    store.add(record(1, received_ns=10))
    store.flush()
    got = store.wait_for_windows(-1, timeout=0.01)
    assert [w.index for w in got] == [0]


def test_recent_filters_by_flow_newest_first():
    store = LatencyStore(window_ns=WINDOW)
    store.add(record(1, received_ns=100, flow="a"))
    store.add(record(2, received_ns=200, flow="b"))
    store.add(record(3, received_ns=300, flow="a"))
    assert [r.packet_id for r in store.recent()] == [3, 2, 1]
    assert [r.packet_id for r in store.recent(flow="a")] == [3, 1]
    assert [r.packet_id for r in store.recent(limit=1)] == [3]


def test_record_ring_is_bounded():
    store = LatencyStore(window_ns=WINDOW, max_records=3)
    for i in range(5):
        store.add(record(i + 1, received_ns=100 + i))
    assert [r.packet_id for r in store.recent()] == [5, 4, 3]
    assert store.count == 5               # totals keep counting


def test_flow_rollups_evict_coldest():
    store = LatencyStore(window_ns=WINDOW, max_flows=2)
    store.add(record(1, received_ns=100, flow="a"))
    store.add(record(2, received_ns=200, flow="b"))
    store.add(record(3, received_ns=300, flow="a"))  # refresh a
    store.add(record(4, received_ns=400, flow="c"))  # evicts b
    snap = store.snapshot()
    assert set(snap["flows"]) == {"a", "c"}
    assert snap["flows"]["a"]["count"] == 2
    assert snap["flows"]["a"]["e2e_mean_ns"] == 5000.0


def test_snapshot_schema_has_every_segment_class():
    store = LatencyStore(window_ns=WINDOW)
    store.add(record(1, received_ns=100))
    snap = store.snapshot()
    for key in ("packets", "window_ns", "e2e", "segments", "flows",
                "functions", "windows", "late_records"):
        assert key in snap
    assert set(snap["segments"]) == set(ALL_CLASSES)
    assert snap["e2e"]["count"] == 1
    assert snap["segments"][RESIDUAL]["total_ns"] == 0
    assert snap["functions"]["pias"]["count"] == 1


def test_prometheus_export_carries_segment_series():
    store = LatencyStore(window_ns=WINDOW)
    store.add(record(1, received_ns=100))
    text = store.prometheus()
    assert "latency_packets_total 1" in text
    assert 'latency_segment_ns_count{segment="link_propagation"} 1' \
        in text
    assert 'segment="unattributed"' in text


def test_rejects_nonpositive_window():
    with pytest.raises(ValueError):
        LatencyStore(window_ns=0)

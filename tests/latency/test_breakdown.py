"""End-to-end scenario tests: the fig9-style workload decomposes
with the unattributed residual within budget (in fact exactly zero)
on both simulator backends, and the breakdown figure reproduces."""

import pytest

from repro.experiments.latency_breakdown import (format_breakdown,
                                                 run_breakdown)
from repro.latency import ALL_CLASSES, RESIDUAL
from repro.latency.scenario import LatencyScenario, ServeConfig

pytestmark = [pytest.mark.latency, pytest.mark.slow]


def run_scenario(shards=0, duration_ms=50):
    scenario = LatencyScenario(ServeConfig(
        duration_ms=duration_ms, seed=2, shards=shards))
    scenario.run()
    scenario.finish()
    return scenario


def assert_contract(scenario):
    store = scenario.store
    assert scenario.collector.completed > 1000
    for cls in ALL_CLASSES:
        assert store.segment_histogram(cls).count == \
            scenario.collector.completed, f"class {cls} incomplete"
    # The headline acceptance bound: unattributed stays within 5% of
    # the mean end-to-end delay...
    e2e = store.e2e_histogram()
    residual = store.segment_histogram(RESIDUAL)
    assert residual.total <= 0.05 * e2e.total
    # ...and with complete instrumentation it is in fact exactly 0
    # for every single packet.
    assert residual.total == 0
    assert residual.vmax == 0
    assert scenario.smoke_failures() == []


def test_fig9_scenario_residual_within_budget_single_heap():
    scenario = run_scenario(shards=0)
    store = scenario.store
    assert_contract(scenario)
    # The scenario exercises every attributable segment for real.
    for cls in ("ratelimiter_queue", "switch_queue",
                "link_serialization", "interpreter_execute"):
        assert store.segment_histogram(cls).total > 0, cls
    # Journeys are conserved: started = delivered + dropped + still
    # in flight (no silent losses, no double counting).
    stats = scenario.collector.stats()
    assert stats["started"] == (stats["completed"] +
                                stats["dropped"] +
                                stats["pending"] +
                                stats["evicted"])
    assert stats["orphan_events"] == 0


@pytest.mark.shard
def test_fig9_scenario_residual_within_budget_sharded():
    scenario = run_scenario(shards=2)
    assert_contract(scenario)
    assert scenario.store.late_records == 0


def test_breakdown_figure_reproduces():
    points = run_breakdown(loads=(0.5,), duration_ms=40, seed=3)
    [point] = points
    assert point.packets > 1000
    assert point.residual_fraction == 0.0
    assert set(point.segment_mean_us) == set(ALL_CLASSES)
    # Queueing dominates the wire terms in this congested setup.
    assert point.segment_mean_us["switch_queue"] > \
        point.segment_mean_us["link_propagation"]
    text = format_breakdown(points, shards=0)
    assert "Latency decomposition vs offered load" in text
    assert "unattr" in text and "0.50" in text
    assert "worst unattributed residual: 0.000%" in text

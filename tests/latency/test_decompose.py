"""Analytic decomposition tests: segments sum exactly to the
measured end-to-end delay, with the residual identically zero."""

import pytest

from repro.core.enclave import Enclave
from repro.latency import (ALL_CLASSES, LatencyCollector, LatencyStore,
                           PacketRecord, RESIDUAL, SEGMENTS, flow_key)
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.netsim.topology import star
from repro.stack.netstack import HostStack
from repro.telemetry import Telemetry

pytestmark = pytest.mark.latency

RATE_BPS = 1_000_000_000          # 1 Gbps -> 8 ns per byte
PROP_NS = 1_000                   # per hop (topology default)
PAYLOAD = 946                     # 946 + 54 header = 1000 B on wire
WIRE_BYTES = 1000
TX_NS = WIRE_BYTES * 8            # 8000 ns serialization per hop
STACK_NS = 300                    # HostStack default stack latency


def build_two_hosts(with_enclave=False):
    sim = Simulator(seed=0)
    net = star(sim, 2, host_rate_bps=RATE_BPS)
    store = LatencyStore()
    collector = LatencyCollector(store=store)
    tel = Telemetry(latency=collector)
    sim.bind_telemetry(tel)
    stacks = {}
    for name, host in net.hosts.items():
        enclave = None
        if with_enclave and name == "h1":
            enclave = Enclave(f"{name}.enclave", clock=sim.clock,
                              rng=sim.rng, telemetry=tel)
        stacks[name] = HostStack(host.sim, host, enclave=enclave,
                                 telemetry=tel)
    return sim, net, stacks, collector, store


def make_packet(net, src="h1", dst="h2", payload=PAYLOAD):
    return Packet(src_ip=net.host_ip(src), dst_ip=net.host_ip(dst),
                  src_port=1111, dst_port=2222, payload_len=payload)


def test_single_packet_segments_sum_exactly():
    """One uncontended packet: every segment has its closed-form
    value and the residual is exactly zero."""
    sim, net, stacks, collector, store = build_two_hosts()
    packet = make_packet(net)
    stacks["h1"].send_packet(packet)
    sim.run()

    assert collector.completed == 1
    [record] = store.recent()
    assert record.packet_id == packet.packet_id
    assert record.flow == flow_key(packet.five_tuple)
    # t=0 send; emit at 300; NIC idle -> tx 300..8300; arrive tor at
    # 9300; tor idle -> arrive h2 at 18300.
    assert record.sent_ns == 0
    assert record.received_ns == STACK_NS + 2 * (TX_NS + PROP_NS)
    expected = {
        "stage_classify": STACK_NS,
        "enclave_match": 0,
        "interpreter_execute": 0,
        "host_queue": 0,
        "ratelimiter_queue": 0,
        "switch_queue": 0,
        "link_serialization": 2 * TX_NS,
        "link_propagation": 2 * PROP_NS,
        RESIDUAL: 0,
    }
    assert record.segments == expected
    assert sum(record.segments.values()) == record.e2e_ns


def test_back_to_back_packets_charge_queueing_exactly():
    """Two same-tick packets: the second's NIC wait lands in
    switch_queue and the identity still closes with residual 0."""
    sim, net, stacks, collector, store = build_two_hosts()
    first = make_packet(net)
    second = make_packet(net)
    stacks["h1"].send_packet(first)
    stacks["h1"].send_packet(second)
    sim.run()

    assert collector.completed == 2
    by_id = {r.packet_id: r for r in store.recent()}
    rec1, rec2 = by_id[first.packet_id], by_id[second.packet_id]
    assert rec1.segments["switch_queue"] == 0
    # Both emitted at t=300; the second serializes only after the
    # first's 8000 ns NIC transmission.
    assert rec2.segments["switch_queue"] == TX_NS
    for record in (rec1, rec2):
        assert record.segments[RESIDUAL] == 0
        assert sum(record.segments.values()) == record.e2e_ns


def test_enclave_costs_split_into_match_segment():
    """With an enclave on the send path the placement's base cost
    shows up as enclave_match — and the identity still closes."""
    sim, net, stacks, collector, store = build_two_hosts(
        with_enclave=True)
    enclave = stacks["h1"].enclave
    packet = make_packet(net)
    stacks["h1"].send_packet(packet)
    sim.run()

    [record] = store.recent()
    assert record.segments["enclave_match"] == \
        enclave.per_packet_base_cost_ns
    assert record.segments["interpreter_execute"] == 0
    assert record.segments[RESIDUAL] == 0
    assert sum(record.segments.values()) == record.e2e_ns


def test_every_class_is_reported_for_every_packet():
    """Zeros are recorded, not omitted: a record always carries the
    full class set (what the serve smoke check relies on)."""
    sim, net, stacks, collector, store = build_two_hosts()
    stacks["h1"].send_packet(make_packet(net))
    sim.run()
    [record] = store.recent()
    assert set(record.segments) == set(ALL_CLASSES)
    assert set(SEGMENTS) | {RESIDUAL} == set(ALL_CLASSES)


class _FakePacket:
    def __init__(self, packet_id, size=100):
        self.packet_id = packet_id
        self.five_tuple = (1, 2, 3, 4, 6)
        self.size = size


def test_dropped_packets_leave_no_record():
    collector = LatencyCollector(store=LatencyStore())
    pkt = _FakePacket(7)
    collector.stack_sent(pkt, 0, 300, 300, 0, 0)
    collector.packet_dropped(7)
    assert collector.pending == 0
    assert collector.dropped == 1
    assert collector.store.count == 0
    # A second drop for the same id is a no-op.
    collector.packet_dropped(7)
    assert collector.dropped == 1


def test_orphan_events_are_counted_not_correlated():
    collector = LatencyCollector(store=LatencyStore())
    collector.port_enqueued(99, 10)
    collector.rlq_released(99, 10)
    collector.host_received(_FakePacket(99), 20, "h2")
    assert collector.orphan_events == 2
    assert collector.completed == 0


def test_pending_bound_evicts_oldest():
    collector = LatencyCollector(store=LatencyStore(), max_pending=2)
    for pid in (1, 2, 3):
        collector.stack_sent(_FakePacket(pid), 0, 300, 300, 0, 0)
    assert collector.pending == 2
    assert collector.evicted == 1
    # The oldest journey (packet 1) was the one evicted.
    collector.host_received(_FakePacket(1), 500, "h2")
    assert collector.completed == 0
    collector.host_received(_FakePacket(3), 500, "h2")
    assert collector.completed == 1


def test_retransmission_restarts_the_journey():
    collector = LatencyCollector(store=LatencyStore())
    pkt = _FakePacket(5)
    collector.stack_sent(pkt, 0, 300, 300, 0, 0)
    collector.stack_sent(pkt, 1000, 1300, 300, 0, 0)
    assert collector.restarted == 1
    collector.host_received(pkt, 2000, "h2")
    [record] = collector.store.recent()
    # The decomposition describes the delivering attempt.
    assert record.sent_ns == 1000
    assert record.e2e_ns == 1000


def test_flow_key_is_dashed_five_tuple():
    assert flow_key((167772161, 40000, 167772162, 9000, 6)) == \
        "167772161-40000-167772162-9000-6"


def test_packet_record_as_dict_round_trip():
    segments = {cls: 0 for cls in ALL_CLASSES}
    segments["link_propagation"] = 2000
    record = PacketRecord(packet_id=3, flow="a-b", function="pias",
                          size_bytes=1000, sent_ns=10,
                          received_ns=2010, segments=segments)
    data = record.as_dict()
    assert data["e2e_ns"] == 2000
    assert data["segments"]["link_propagation"] == 2000
    assert data["function"] == "pias"

"""LatencyServer: live endpoints on an ephemeral port, stream
semantics, and clean shutdown with no leaked threads."""

import json
import threading
import time
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.latency import (ALL_CLASSES, LatencyCollector,
                           LatencyServer, LatencyStore, PacketRecord)

pytestmark = pytest.mark.latency

WINDOW = 1_000_000


def record(packet_id, received_ns, flow="10-1-20-2-6"):
    segments = {cls: 0 for cls in ALL_CLASSES}
    segments["link_propagation"] = 2000
    return PacketRecord(packet_id=packet_id, flow=flow,
                        function="pias", size_bytes=1000,
                        sent_ns=received_ns - 2000,
                        received_ns=received_ns, segments=segments)


def populated_store():
    store = LatencyStore(window_ns=WINDOW)
    for i in range(3):
        store.add(record(i + 1, received_ns=i * WINDOW + 10))
    return store


def get_json(url):
    with urlopen(url, timeout=10) as resp:
        assert resp.headers["Content-Type"].startswith(
            "application/json")
        return json.loads(resp.read())


def test_endpoints_serve_live_data():
    store = populated_store()
    collector = LatencyCollector(store=store)
    server = LatencyServer(store, collector=collector).start()
    try:
        assert server.port != 0           # ephemeral port was bound

        index = get_json(server.url + "/")
        assert index["service"] == "repro.latency"
        assert "/stream" in index["endpoints"]
        assert index["collector"]["completed"] == 0

        snap = get_json(server.url + "/snapshot")
        assert snap["packets"] == 3
        assert set(snap["segments"]) == set(ALL_CLASSES)

        with urlopen(server.url + "/prometheus", timeout=10) as resp:
            text = resp.read().decode()
        assert "latency_packets_total 3" in text

        packets = get_json(server.url + "/packets/10-1-20-2-6")
        assert packets["flow"] == "10-1-20-2-6"
        assert len(packets["records"]) == 3
        assert packets["records"][0]["e2e_ns"] == 2000

        packets = get_json(server.url +
                           "/packets/10-1-20-2-6?limit=1")
        assert len(packets["records"]) == 1

        everything = get_json(server.url + "/packets")
        assert len(everything["records"]) == 3

        with pytest.raises(HTTPError) as excinfo:
            urlopen(server.url + "/nope", timeout=10)
        assert excinfo.value.code == 404
    finally:
        server.stop()


def test_stream_sends_closed_windows_and_terminates():
    store = populated_store()
    server = LatencyServer(store).start()
    try:
        # Scenario over: flush opens -> 3 closed windows, stream ends.
        server.finish()
        with urlopen(server.url + "/stream", timeout=10) as resp:
            assert resp.headers["Content-Type"].startswith(
                "application/x-ndjson")
            lines = [json.loads(line)
                     for line in resp.read().splitlines() if line]
        assert [w["index"] for w in lines] == [0, 1, 2]
        assert all(w["count"] == 1 for w in lines)
        assert lines[0]["segment_mean_ns"]["link_propagation"] == \
            2000.0

        # ?since= skips already-seen windows.
        with urlopen(server.url + "/stream?since=1",
                     timeout=10) as resp:
            lines = [json.loads(line)
                     for line in resp.read().splitlines() if line]
        assert [w["index"] for w in lines] == [2]
    finally:
        server.stop()


def test_stream_delivers_windows_closed_while_connected():
    store = LatencyStore(window_ns=WINDOW)
    server = LatencyServer(store).start()
    try:
        got = []

        def reader():
            with urlopen(server.url + "/stream", timeout=30) as resp:
                for line in resp:
                    line = line.strip()
                    if line:
                        got.append(json.loads(line))

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        time.sleep(0.05)                  # reader parked on the store
        store.add(record(1, received_ns=10))
        store.add(record(2, received_ns=WINDOW + 10))  # closes w0
        server.finish()                   # closes w1, ends stream
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert [w["index"] for w in got] == [0, 1]
    finally:
        server.stop()


def test_stop_leaks_no_threads():
    before = set(threading.enumerate())
    store = populated_store()
    server = LatencyServer(store).start()
    get_json(server.url + "/snapshot")
    server.stop()
    # Handler threads are daemonic and exit with the listener; give
    # them a moment to unwind before comparing.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [t for t in threading.enumerate()
                  if t not in before and t.is_alive()]
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked, f"leaked threads: {leaked}"


def test_stop_is_idempotent_and_restart_refused():
    store = populated_store()
    server = LatencyServer(store).start()
    server.stop()
    server.stop()
    second = LatencyServer(store).start()
    try:
        with pytest.raises(RuntimeError):
            second.start()
    finally:
        second.stop()

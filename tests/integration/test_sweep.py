"""Tests for the multi-seed sweep utility."""

import pytest

from repro.experiments import fig10
from repro.experiments.sweep import format_sweep, numeric_fields, sweep


class TestNumericFields:
    def test_extracts_dataclass_numbers(self):
        res = fig10.Fig10Result(mode="wcmp", variant="eden",
                                granularity="packet",
                                throughput_mbps=100.0,
                                fast_path_share=0.9,
                                retransmits=3, timeouts=0)
        fields = numeric_fields(res)
        assert fields["throughput_mbps"] == 100.0
        assert fields["retransmits"] == 3.0
        assert "mode" not in fields

    def test_plain_object(self):
        class R:
            def __init__(self):
                self.x = 5
                self.label = "abc"
                self._private = 1.0

        fields = numeric_fields(R())
        assert fields == {"x": 5.0}


class TestSweep:
    def test_needs_seeds(self):
        with pytest.raises(ValueError):
            sweep(lambda seed: None, [])

    def test_aggregates_synthetic_results(self):
        class R:
            def __init__(self, v):
                self.value = v

        stats = sweep(lambda seed: R(seed * 10.0), seeds=[1, 2, 3])
        assert stats["value"].mean == 20.0
        assert stats["value"].ci95 > 0

    @pytest.mark.slow
    def test_fig10_sweep_with_ci(self):
        stats = sweep(fig10.run_wcmp, seeds=[1, 2, 3],
                      mode="wcmp", variant="eden", duration_ms=25,
                      warmup_ms=8, n_flows=2)
        tput = stats["throughput_mbps"]
        assert len(tput.values) == 3
        assert tput.mean > 2000
        text = format_sweep("fig10 wcmp", stats,
                            ["throughput_mbps", "retransmits"])
        assert "±" in text and "throughput_mbps" in text

"""Integration: PIAS + WCMP composed on live traffic.

The full pipeline of the dynamic_update example as an automated test:
every data packet of a flow gets a priority (from PIAS demotion) AND a
path label (from WCMP) in one enclave pass, and both effects are
observable in the network.
"""

import pytest

from repro.core import ChainLink, Controller, Enclave, FunctionChain
from repro.core.stage import Classifier
from repro.functions.pias import (PIAS_GLOBAL_SCHEMA,
                                  PIAS_MESSAGE_SCHEMA, pias_action)
from repro.functions.wcmp import WCMP_GLOBAL_SCHEMA, wcmp_action
from repro.netsim import MS, Simulator, asymmetric_two_path
from repro.netsim.routing import provision_labeled_paths
from repro.stack import HostStack
from repro.transport.sockets import MessageSocket
from repro.apps.workloads import generic_app_stage


@pytest.mark.slow
def test_pias_and_wcmp_compose_on_live_traffic():
    sim = Simulator(seed=6)
    net = asymmetric_two_path(sim)
    controller = Controller()
    enclave = Enclave("h1.enclave", rng=sim.rng, clock=sim.clock)
    controller.register_enclave("h1", enclave)
    s1 = HostStack(sim, net.hosts["h1"], enclave=enclave,
                   process_pure_acks=False)
    s2 = HostStack(sim, net.hosts["h2"])

    chain = FunctionChain(controller, [
        ChainLink(pias_action, name="pias",
                  message_schema=PIAS_MESSAGE_SCHEMA,
                  global_schema=PIAS_GLOBAL_SCHEMA),
        ChainLink(wcmp_action, name="wcmp",
                  global_schema=WCMP_GLOBAL_SCHEMA),
    ])
    chain.deploy("h1")
    enclave.set_global_records("pias", "priorities",
                               [(10_000, 7), (1 << 50, 2)])
    provision_labeled_paths(net, "h1", "h2")
    enclave.set_global_keyed(
        "wcmp", "paths",
        (net.host_ip("h1"), net.host_ip("h2")), [1, 500, 2, 500])

    # Observe what actually leaves the host.
    observed = []
    for peer in ("sfast", "sslow"):
        port = net.hosts["h1"].port_to(peer)
        original = port.enqueue

        def spy(packet, _orig=original):
            if packet.payload_len > 0:
                observed.append((packet.priority, packet.path_id))
            return _orig(packet)

        port.enqueue = spy

    stage = generic_app_stage()
    stage.create_stage_rule("r1", Classifier.of(), "m",
                            ["msg_id", "msg_size", "priority"])
    delivered = []

    def on_conn(conn):
        conn.on_data = lambda c, n: delivered.append(n)

    s2.listen(5000, on_conn)
    conn = s1.connect(net.host_ip("h2"), 5000)
    socket = MessageSocket(conn, stage)
    socket.send(400_000, attrs={"msg_type": "bulk", "priority": 7})
    sim.run(until_ns=60 * MS)

    assert delivered and delivered[-1] == 400_000
    priorities = {p for p, _ in observed}
    labels = {l for _, l in observed}
    # PIAS demoted the big message: both bands appear.
    assert 7 in priorities and 2 in priorities
    # WCMP labeled every packet and used both paths.
    assert labels <= {1, 2} and len(labels) == 2
    assert all(l != 0 for _, l in observed)
    # Both functions ran on every data packet.
    stats = enclave.stats_summary()
    assert stats["pias"]["invocations"] == \
        stats["wcmp"]["invocations"] > 100

"""Paper Table 2 end to end: all three stage kinds feed one policy.

The memcached stage, the HTTP-library stage, and the enclave's own
five-tuple classification each drive the same match-action pipeline —
demonstrating §3.3's point that classes from different classification
sources are uniform at the enclave.
"""

import pytest

from repro.core import Classifier, Controller, Enclave
from repro.core.stage import http_stage, memcached_stage
from repro.lang import AccessLevel, Field, Lifetime, schema

MSG_SCHEMA = schema("Msg", Lifetime.MESSAGE, [
    Field("bytes", AccessLevel.READ_WRITE),
])


def mark_get(packet):
    packet.priority = 6


def mark_html(packet):
    packet.priority = 4


def mark_flow(packet):
    packet.priority = 2


class Pkt:
    def __init__(self, dst_port=80):
        self.src_ip, self.dst_ip = 1, 2
        self.src_port, self.dst_port, self.proto = 999, dst_port, 6
        self.size = 1000
        self.priority = self.path_id = self.drop = 0
        self.to_controller = self.queue_id = self.charge = 0
        self.ecn = self.tenant = 0


@pytest.fixture
def world():
    controller = Controller()
    enclave = Enclave("h1.enclave")
    controller.register_enclave("h1", enclave)
    mc = memcached_stage()
    web = http_stage()
    controller.register_stage("h1", mc)
    controller.register_stage("h1", web)

    # Stage rules (Table 2 / Figure 6 style).
    controller.create_stage_rule(
        "h1", "memcached", "r1", Classifier.of(msg_type="GET"),
        "GET", ["msg_id", "msg_size"])
    controller.create_stage_rule(
        "h1", "http", "r1", Classifier.of(url="/index.html"),
        "HTML", ["msg_id", "url"])
    enclave.install_flow_rule("r1", Classifier.of(dst_port=22),
                              "ssh")

    # One table, three sources of classes.
    controller.install_function("h1", mark_get, name="mark_get")
    controller.install_function("h1", mark_html, name="mark_html")
    controller.install_function("h1", mark_flow, name="mark_flow")
    controller.install_rule("h1", "memcached.r1.GET", "mark_get",
                            priority=10)
    controller.install_rule("h1", "http.r1.HTML", "mark_html",
                            priority=10)
    controller.install_rule("h1", "enclave.r1.ssh", "mark_flow",
                            priority=10)
    return controller, enclave, mc, web


class TestTable2EndToEnd:
    def test_memcached_class_selects_policy(self, world):
        controller, enclave, mc, web = world
        cls = mc.classify({"msg_type": "GET", "key": "a",
                           "msg_size": 100})
        packet = Pkt()
        enclave.process_packet(packet, cls)
        assert packet.priority == 6

    def test_http_class_selects_policy(self, world):
        controller, enclave, mc, web = world
        cls = web.classify({"msg_type": "GET",
                            "url": "/index.html"})
        packet = Pkt()
        enclave.process_packet(packet, cls)
        assert packet.priority == 4

    def test_enclave_flow_class_selects_policy(self, world):
        controller, enclave, mc, web = world
        packet = Pkt(dst_port=22)
        enclave.process_packet(packet)   # no stage classification
        assert packet.priority == 2

    def test_unclassified_traffic_untouched(self, world):
        controller, enclave, mc, web = world
        packet = Pkt(dst_port=443)
        result = enclave.process_packet(packet)
        assert result.executed == []
        assert packet.priority == 0

    def test_put_misses_get_rule(self, world):
        controller, enclave, mc, web = world
        cls = mc.classify({"msg_type": "PUT", "key": "a"})
        packet = Pkt()
        enclave.process_packet(packet, cls)
        assert packet.priority == 0

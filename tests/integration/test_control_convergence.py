"""Acceptance: the control plane converges over a lossy channel.

Runs the full control-demo scenario — 10% control-message loss,
duplication, jitter, one mid-run enclave restart, telemetry-driven
PIAS and WCMP reconfiguration — and checks the paper's claim for the
coarse-timescale loop: every enclave ends at the controller's latest
epoch with data-plane state equal to the desired state, and a
stale-epoch install is provably rejected.
"""

import pytest

from repro.experiments import control_demo


@pytest.mark.slow
@pytest.mark.control_faults
class TestLossyConvergence:
    @pytest.fixture(scope="class")
    def result(self):
        return control_demo.run_scenario(seed=1, loss=0.10)

    def test_scenario_converges(self, result):
        assert result.converged

    def test_every_host_reaches_the_desired_epoch(self, result):
        assert len(result.hosts) == 3
        for outcome in result.hosts.values():
            assert outcome.applied_epoch == outcome.desired_epoch
            assert outcome.pias_in_sync
            assert outcome.wcmp_in_sync

    def test_faults_actually_happened(self, result):
        assert result.faults["dropped"] > 0
        assert result.faults["duplicated"] > 0
        assert result.channel["retransmits"] > 0

    def test_restart_was_replayed(self, result):
        restarts = [h.restarts for h in result.hosts.values()]
        assert sum(restarts) == 1
        assert result.replays >= 1

    def test_telemetry_drove_reconfiguration(self, result):
        assert result.reports_received > 0
        assert result.pias_updates >= 1
        assert result.wcmp_updates >= 1
        # The capacity feed went asymmetric 9:1 mid-run; the rolled
        # out weights must reflect it.
        assert result.final_weights == [(1, 900), (2, 100)]
        assert len(result.final_thresholds) == 3

    def test_stale_epoch_install_rejected(self, result):
        assert result.stale_rejected

    def test_format_mentions_convergence(self, result):
        text = control_demo.format_result(result)
        assert "converged: yes" in text


@pytest.mark.slow
@pytest.mark.control_faults
def test_higher_loss_and_other_seed_still_converge():
    result = control_demo.run_scenario(seed=7, loss=0.20,
                                       duration_ms=300)
    assert result.converged

"""Whole-stack determinism: a seed fully determines a run.

The simulator promises bit-for-bit reproducibility (integer time,
seeded RNG, stable tie-breaking); these tests pin that property at the
level users rely on — whole experiments.
"""

import pytest

from repro.experiments import fig10, fig11


@pytest.mark.slow
class TestDeterminism:
    def test_fig10_identical_across_runs(self):
        a = fig10.run_wcmp("wcmp", "eden", seed=5, duration_ms=20,
                           warmup_ms=5, n_flows=2)
        b = fig10.run_wcmp("wcmp", "eden", seed=5, duration_ms=20,
                           warmup_ms=5, n_flows=2)
        assert a.throughput_mbps == b.throughput_mbps
        assert a.retransmits == b.retransmits
        assert a.fast_path_share == b.fast_path_share

    def test_fig10_differs_across_seeds(self):
        a = fig10.run_wcmp("wcmp", "eden", seed=5, duration_ms=20,
                           warmup_ms=5, n_flows=2)
        b = fig10.run_wcmp("wcmp", "eden", seed=6, duration_ms=20,
                           warmup_ms=5, n_flows=2)
        # Different random path choices => different retransmit
        # patterns (throughput may coincide by rounding).
        assert (a.retransmits, a.throughput_mbps) != \
            (b.retransmits, b.throughput_mbps)

    def test_fig11_identical_across_runs(self):
        a = fig11.run_storage("simultaneous", seed=7,
                              duration_ms=60, warmup_ms=10)
        b = fig11.run_storage("simultaneous", seed=7,
                              duration_ms=60, warmup_ms=10)
        assert a.read_mbytes_per_s == b.read_mbytes_per_s
        assert a.write_mbytes_per_s == b.write_mbytes_per_s

    def test_interpreter_and_native_backends_deterministic(self):
        from repro.functions.library import run_demos
        assert run_demos("interpreter") == run_demos("interpreter")
        assert run_demos("native") == run_demos("native")

"""Integration tests: miniature versions of the paper's case studies.

Short-duration runs of the experiment harnesses asserting the
*direction* of each paper result — the benchmarks regenerate the full
numbers.
"""

import pytest

from repro.experiments import fig9, fig10, fig11, fig12, micro


@pytest.mark.slow
class TestFlowScheduling:
    def test_pias_beats_baseline_for_small_flows(self):
        base = fig9.run_flow_scheduling("baseline", "native",
                                        duration_ms=60, warmup_ms=10)
        pias = fig9.run_flow_scheduling("pias", "eden",
                                        duration_ms=60, warmup_ms=10)
        assert pias.small_avg_us < base.small_avg_us
        assert pias.n_small > 50

    def test_native_and_eden_comparable(self):
        native = fig9.run_flow_scheduling("pias", "native",
                                          duration_ms=60,
                                          warmup_ms=10)
        eden = fig9.run_flow_scheduling("pias", "eden",
                                        duration_ms=60, warmup_ms=10)
        # "the performance of the native implementation of the policy
        # and the interpreted one are similar" — same order of
        # magnitude here (single seed, short run).
        assert eden.small_avg_us < 3 * native.small_avg_us


@pytest.mark.slow
class TestWcmpCaseStudy:
    def test_wcmp_beats_ecmp_but_below_min_cut(self):
        ecmp = fig10.run_wcmp("ecmp", "eden", duration_ms=50,
                              warmup_ms=15, n_flows=2)
        wcmp = fig10.run_wcmp("wcmp", "eden", duration_ms=50,
                              warmup_ms=15, n_flows=2)
        assert wcmp.throughput_mbps > 2.5 * ecmp.throughput_mbps
        assert wcmp.throughput_mbps < 11_000
        # ECMP splits evenly; WCMP sends ~10/11 on the fast path.
        assert 0.4 < ecmp.fast_path_share < 0.65
        assert wcmp.fast_path_share > 0.85

    def test_message_granularity_also_works(self):
        res = fig10.run_wcmp("wcmp", "eden", granularity="message",
                             duration_ms=50, warmup_ms=15, n_flows=2)
        assert res.throughput_mbps > 2000


@pytest.mark.slow
class TestPulsarCaseStudy:
    def test_write_collapse_and_rate_control(self):
        iso = fig11.run_storage("isolated", duration_ms=120,
                                warmup_ms=20)
        sim = fig11.run_storage("simultaneous", duration_ms=120,
                                warmup_ms=20)
        ctl = fig11.run_storage("rate_controlled", duration_ms=120,
                                warmup_ms=20)
        # Isolation: both near the 1 Gbps link (~110+ MB/s).
        assert iso.read_mbytes_per_s > 80
        assert iso.write_mbytes_per_s > 80
        # Competition collapses writes (paper: 72% drop).
        assert sim.write_mbytes_per_s < 0.5 * iso.write_mbytes_per_s
        # Pulsar equalizes.
        ratio = ctl.read_mbytes_per_s / max(1e-9,
                                            ctl.write_mbytes_per_s)
        assert 0.6 < ratio < 1.7
        assert ctl.write_mbytes_per_s > sim.write_mbytes_per_s


@pytest.mark.slow
class TestOverheads:
    def test_components_measured_and_ordered(self):
        result = fig12.run_overheads(duration_ms=8)
        api = result.overhead_pct["api"][0]
        enclave = result.overhead_pct["enclave"][0]
        interp = result.overhead_pct["interpreter"][0]
        assert result.packets > 500
        assert api < enclave  # metadata pass is the cheap part
        assert interp > 0

    def test_micro_footprint_in_paper_ballpark(self):
        # The interp-vs-native ordering has a wide true margin
        # (~2-3x) but single-core CI boxes can land a load spike on
        # one side's measurement; retry the timing-ordering part and
        # gate on any clean attempt — a true inversion fails all.
        for attempt in range(4):
            results = micro.run_micro(packets=100, repeat=1)
            for res in results:
                # Section 5.4: stack ~64 B, heap ~256 B — same order.
                assert res.stack_bytes <= 128, res.name
                assert res.heap_bytes <= 1024, res.name
            if all(res.interp_ns_per_packet >
                   res.native_ns_per_packet for res in results):
                return
        for res in results:
            assert res.interp_ns_per_packet > \
                res.native_ns_per_packet, res.name


@pytest.mark.slow
class TestEndToEndEden:
    def test_stage_to_enclave_to_wire_priorities(self):
        """Full path: stage classifies, enclave assigns priority,
        switch serves high priority first under congestion."""
        from repro.core import Controller, Enclave
        from repro.core.stage import Classifier
        from repro.functions.pias import FlowSchedulingDeployment
        from repro.netsim import GBPS, MS, Simulator, star
        from repro.stack import HostStack
        from repro.apps.workloads import generic_app_stage
        from repro.transport.sockets import MessageSocket

        sim = Simulator(seed=8)
        net = star(sim, 2, host_rate_bps=1 * GBPS)
        controller = Controller()
        enclave = Enclave("h1.enclave", rng=sim.rng, clock=sim.clock)
        controller.register_enclave("h1", enclave)
        s1 = HostStack(sim, net.hosts["h1"], enclave=enclave,
                       process_pure_acks=False)
        s2 = HostStack(sim, net.hosts["h2"])
        stage = generic_app_stage()
        controller.register_stage("h1", stage)
        controller.create_stage_rule(
            "h1", "app", "r1", Classifier.of(), "msg",
            ["msg_id", "msg_size", "priority"])
        FlowSchedulingDeployment(controller, "sff").install(
            ["h1"], [(10_000, 7), (1 << 50, 0)])

        finished = {}

        def listener(conn):
            conn.on_data = lambda c, n: finished.__setitem__(
                c.five_tuple, (n, sim.now))

        s2.listen(5000, listener)

        # A big low-priority flow first, then a small high-priority
        # one; with SFF the small one must finish long before the big.
        big = s1.connect(net.host_ip("h2"), 5000)
        MessageSocket(big, stage).send(
            2_000_000, attrs={"msg_type": "bulk",
                              "msg_size": 2_000_000})
        small = s1.connect(net.host_ip("h2"), 5000)
        MessageSocket(small, stage).send(
            5_000, attrs={"msg_type": "rpc", "msg_size": 5_000})
        sim.run(until_ns=100 * MS)
        small_done = finished[(small.remote_ip, small.remote_port,
                               small.local_ip, small.local_port,
                               6)][1]
        big_done = finished[(big.remote_ip, big.remote_port,
                             big.local_ip, big.local_port, 6)][1]
        assert small_done < big_done

"""Unit tests for the experiment runners: validation and formatting
(the heavy end-to-end shapes are covered by the benchmarks and
test_case_studies)."""

import pytest

from repro.experiments import fig9, fig10, fig11, micro
from repro.experiments.fig9 import Fig9Result
from repro.experiments.fig10 import Fig10Result
from repro.experiments.fig11 import Fig11Result
from repro.experiments.micro import MicroResult


class TestValidation:
    def test_fig9_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            fig9.run_flow_scheduling(policy="wfq")

    def test_fig9_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            fig9.run_flow_scheduling(variant="fpga")

    def test_fig10_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            fig10.run_wcmp(mode="lcmp")

    def test_fig10_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            fig10.run_wcmp(variant="hw")

    def test_fig11_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            fig11.run_storage("chaos")

    def test_micro_rejects_unknown_function(self):
        with pytest.raises(KeyError):
            micro._spec_for("Quantum routing")


class TestFormatting:
    def test_fig9_rows(self):
        res = Fig9Result(policy="pias", variant="eden",
                         small_avg_us=100.0, small_p95_us=500.0,
                         mid_avg_us=900.0, mid_p95_us=2000.0,
                         n_small=10, n_mid=5, requests=15,
                         background_mbps=1000.0)
        text = fig9.format_results([res])
        assert "pias" in text and "100.0" in text
        assert "Figure 9" in text

    def test_fig10_rows(self):
        res = Fig10Result(mode="wcmp", variant="native",
                          granularity="packet",
                          throughput_mbps=7800.0,
                          fast_path_share=0.91, retransmits=5,
                          timeouts=0)
        text = fig10.format_results([res])
        assert "7800" in text and "91.0%" in text

    def test_fig11_rows(self):
        res = Fig11Result(scenario="isolated",
                          read_mbytes_per_s=117.0,
                          write_mbytes_per_s=116.0)
        text = fig11.format_results([res])
        assert "isolated" in text and "117.0" in text

    def test_micro_rows(self):
        res = MicroResult(name="PIAS", bytecode_len=56,
                          ops_per_packet=59.0, stack_bytes=32,
                          heap_bytes=48,
                          interp_ns_per_packet=1000.0,
                          native_ns_per_packet=100.0)
        assert res.slowdown == pytest.approx(10.0)
        text = micro.format_results([res])
        assert "PIAS" in text and "10.0x" in text


class TestTinyRuns:
    """Very short runs exercising the full wiring of each runner."""

    def test_fig9_tiny(self):
        res = fig9.run_flow_scheduling("pias", "eden", seed=3,
                                       duration_ms=15, warmup_ms=2)
        assert res.requests > 0

    def test_fig10_tiny(self):
        res = fig10.run_wcmp("wcmp", "native", seed=3,
                             duration_ms=12, warmup_ms=4, n_flows=1)
        assert res.throughput_mbps > 0

    def test_fig11_tiny(self):
        res = fig11.run_storage("simultaneous", seed=3,
                                duration_ms=40, warmup_ms=5)
        assert res.read_mbytes_per_s > 0

    def test_fig9_baseline_eden_runs_function_without_effect(self):
        res = fig9.run_flow_scheduling("baseline", "eden", seed=3,
                                       duration_ms=15, warmup_ms=2)
        assert res.requests > 0

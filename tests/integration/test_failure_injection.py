"""Failure injection: link cuts and the controller's response.

Exercises the end-host-functions advantage the paper argues for in
Section 2.2: updating an enforcement function at the *source* of
traffic (here: the controller re-weighting WCMP after a path dies)
takes one enclave update, with no in-network consistency dance.
"""

import pytest

from repro.core import Controller, Enclave
from repro.functions.wcmp import WcmpDeployment
from repro.netsim import (GBPS, MS, Simulator, asymmetric_two_path,
                          star)
from repro.stack import HostStack


class TestLinkFailure:
    def test_failed_port_drops_everything(self):
        sim = Simulator(seed=1)
        net = star(sim, 2)
        s1 = HostStack(sim, net.hosts["h1"])
        s2 = HostStack(sim, net.hosts["h2"])
        got = []

        def on_conn(conn):
            conn.on_data = lambda c, n: got.append(n)

        s2.listen(5000, on_conn)
        net.fail_link("h1", "tor")
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(1000)
        sim.run(until_ns=10 * MS)
        assert got == []
        assert net.hosts["h1"].port_to("tor").stats.failed_drops > 0

    def test_repair_restores_connectivity(self):
        sim = Simulator(seed=1)
        net = star(sim, 2)
        s1 = HostStack(sim, net.hosts["h1"])
        s2 = HostStack(sim, net.hosts["h2"])
        got = []

        def on_conn(conn):
            conn.on_data = lambda c, n: got.append(n)

        s2.listen(5000, on_conn)
        net.fail_link("h1", "tor")
        conn = s1.connect(net.host_ip("h2"), 5000)
        conn.message_send(1000)
        sim.run(until_ns=5 * MS)
        assert got == []
        net.repair_link("h1", "tor")
        sim.run(until_ns=100 * MS)  # RTO-driven retries succeed
        assert got and got[-1] == 1000

    def test_queued_packets_lost_on_failure(self):
        sim = Simulator(seed=1)
        net = star(sim, 2, host_rate_bps=1 * GBPS)
        port = net.hosts["h1"].port_to("tor")
        from repro.netsim import Packet
        for _ in range(5):
            port.enqueue(Packet(src_ip=1, dst_ip=2, src_port=1,
                                dst_port=2, payload_len=1000))
        dropped = port.fail()
        assert dropped >= 4  # one may already be on the wire


@pytest.mark.slow
class TestControllerFailover:
    def test_wcmp_reweighting_after_path_failure(self):
        """Fast path dies; the controller pushes all-weight-on-slow
        to the sender's enclave and traffic keeps flowing."""
        sim = Simulator(seed=4)
        net = asymmetric_two_path(sim)
        controller = Controller()
        enclave = Enclave("h1.nic", rng=sim.rng, clock=sim.clock)
        controller.register_enclave("h1", enclave)
        s1 = HostStack(sim, net.hosts["h1"], enclave=enclave,
                       process_pure_acks=False)
        s2 = HostStack(sim, net.hosts["h2"])
        deployment = WcmpDeployment(controller, net)
        deployment.provision_pair("h1", "h2")  # 10:1 weights

        delivered = {}

        def on_conn(conn):
            conn.on_data = lambda c, n: delivered.__setitem__(
                "bytes", n)

        s2.listen(5000, on_conn)
        conn = s1.connect(net.host_ip("h2"), 5000)

        def refill(record, now):
            conn.message_send(500_000, on_complete=refill)

        conn.on_established = lambda c: c.message_send(
            500_000, on_complete=refill)
        sim.run(until_ns=30 * MS)
        before_failure = delivered.get("bytes", 0)
        assert before_failure > 0

        # Fiber cut on the fast path.
        net.fail_link("h1", "sfast")
        # The controller detects it (out of band here) and reweights:
        # all traffic onto the slow path (label 2) — and repoints the
        # receiver's default (ACK) port away from the dead link.
        controller.set_global_keyed(
            "h1", "wcmp", "paths",
            (net.host_ip("h1"), net.host_ip("h2")), [2, 1000])
        s2.default_peer = "sslow"
        sim.run(until_ns=250 * MS)
        after_failover = delivered.get("bytes", 0)
        # Progress resumed over the surviving 1 Gbps path.
        grown = after_failover - before_failure
        assert grown > 1_000_000, (before_failure, after_failover)
        slow_tx = net.switches["sslow"].port_to("h2").stats.tx_packets
        assert slow_tx > 500

"""Reliable, ordered, idempotent delivery of control messages.

One :class:`ControlEndpoint` lives at the controller and one at every
enclave agent.  Per peer, an endpoint owns an outgoing *stream*
(session number + sequence counter + unacked window) and mirrors the
peer's incoming stream (expected session, last delivered seq, reorder
buffer).  On top of an unreliable transport this provides:

* **at-least-once delivery** — unacked messages are retransmitted on a
  timeout that backs off exponentially (capped, with deterministic
  jitter drawn from the injected RNG);
* **exactly-once processing** — receivers deduplicate by sequence
  number and deliver strictly in order, so idempotent retransmits and
  duplicated envelopes never re-apply an operation;
* **session fencing** — streams are restarted with a higher session
  number on reconnect (enclave restart, controller-initiated replay);
  envelopes from dead sessions are discarded, so a retransmit from
  before a restart can never leapfrog the replayed desired state.

Acks are sent after *processing*, and a ``Nack`` carries the reason
(e.g. ``stale-epoch``) plus the exception the apply raised, so the
synchronous inproc facade can re-raise it in the caller.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..telemetry import NULL_TELEMETRY, Telemetry
from .messages import (Ack, ControlError, ControlMessage, Envelope,
                       Nack)
from .transport import Transport

#: How many processed-message outcomes are remembered per peer for
#: re-acking duplicates whose original ack was lost.
_RESULT_CACHE = 256


@dataclass
class ChannelConfig:
    """Retransmission policy knobs."""

    rto_ns: int = 5_000_000             # initial retransmit timeout
    backoff_factor: int = 2
    backoff_cap_ns: int = 80_000_000    # retransmit interval ceiling
    jitter_ns: int = 1_000_000          # uniform, de-synchronizes herds
    max_retries: Optional[int] = None   # None = retry forever

    def backoff_ns(self, attempts: int, rng: random.Random) -> int:
        delay = self.rto_ns
        for _ in range(attempts):
            delay *= self.backoff_factor
            if delay >= self.backoff_cap_ns:
                delay = self.backoff_cap_ns
                break
        if self.jitter_ns:
            delay += rng.randrange(self.jitter_ns + 1)
        return delay


@dataclass
class Outcome:
    """Result of processing one delivered message."""

    ok: bool = True
    result: object = None
    reason: str = ""
    error: Optional[BaseException] = None


class PendingSend:
    """Sender-side handle for one reliable message."""

    __slots__ = ("env", "attempts", "acked", "nacked", "failed",
                 "superseded", "reason", "error", "result", "_timer")

    def __init__(self, env: Envelope) -> None:
        self.env = env
        self.attempts = 0          # retransmissions, not counting #1
        self.acked = False
        self.nacked = False
        self.failed = False        # max_retries exhausted
        self.superseded = False    # stream reset; op covered by replay
        self.reason = ""
        self.error: Optional[BaseException] = None
        self.result: object = None
        self._timer = None

    @property
    def done(self) -> bool:
        return self.acked or self.nacked or self.failed or \
            self.superseded

    @property
    def ok(self) -> bool:
        return self.acked

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


class _PeerStream:
    """Both directions of one endpoint↔peer relationship."""

    __slots__ = ("tx_session", "tx_next_seq", "pending",
                 "rx_session", "rx_last_delivered", "rx_buffer",
                 "rx_results")

    def __init__(self) -> None:
        self.tx_session = 1
        self.tx_next_seq = 0
        self.pending: Dict[int, PendingSend] = {}
        self.rx_session = 0
        self.rx_last_delivered = -1
        self.rx_buffer: Dict[int, ControlMessage] = {}
        self.rx_results: "OrderedDict[int, Outcome]" = OrderedDict()

    def reset_tx(self) -> None:
        for pending in self.pending.values():
            pending.superseded = True
            pending._cancel_timer()
        self.pending.clear()
        self.tx_session += 1
        self.tx_next_seq = 0

    def reset_rx(self, session: int) -> None:
        self.rx_session = session
        self.rx_last_delivered = -1
        self.rx_buffer.clear()
        self.rx_results.clear()


@dataclass
class ChannelStats:
    sent: int = 0
    sent_unreliable: int = 0
    retransmits: int = 0
    acked: int = 0
    nacked: int = 0
    expired: int = 0
    delivered: int = 0
    duplicates_dropped: int = 0
    stale_session_drops: int = 0
    reacked: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


#: ``handler(src, payload) -> Optional[Outcome]`` — raised exceptions
#: become Nacks carrying the exception.
HandlerFn = Callable[[str, ControlMessage], Optional[Outcome]]


class ControlEndpoint:
    """One party of the control channel (controller or agent)."""

    def __init__(self, address: str, transport: Transport,
                 scheduler=None, rng: Optional[random.Random] = None,
                 config: Optional[ChannelConfig] = None,
                 handler: Optional[HandlerFn] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.address = address
        self.transport = transport
        self.scheduler = scheduler
        self.rng = rng if rng is not None else random.Random(0)
        self.config = config if config is not None else ChannelConfig()
        self.handler = handler
        self.stats = ChannelStats()
        #: Called with ``(peer, pending)`` when a send is nacked.
        self.on_nack: Optional[Callable[[str, PendingSend], None]] = None
        self._peers: Dict[str, _PeerStream] = {}
        # Every ChannelStats field is mirrored into a registry counter
        # labeled by endpoint, so channel health shows up in telemetry
        # snapshots and exports.
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        registry = self.telemetry.registry
        self._m = {name: registry.counter(f"channel_{name}_total",
                                          endpoint=address)
                   for name in ChannelStats().as_dict()}
        self._h_backoff = registry.histogram("channel_backoff_ns",
                                             endpoint=address)
        transport.register(address, self._on_receive)

    # -- sending -----------------------------------------------------------

    def _peer(self, address: str) -> _PeerStream:
        stream = self._peers.get(address)
        if stream is None:
            stream = self._peers[address] = _PeerStream()
        return stream

    def send(self, dst: str, payload: ControlMessage,
             reliable: bool = True) -> Optional[PendingSend]:
        """Send ``payload``; returns a handle for reliable sends."""
        stream = self._peer(dst)
        if not reliable:
            self.stats.sent_unreliable += 1
            self._m["sent_unreliable"].inc()
            self.transport.send(Envelope(self.address, dst,
                                         stream.tx_session, -1,
                                         payload))
            return None
        seq = stream.tx_next_seq
        stream.tx_next_seq += 1
        env = Envelope(self.address, dst, stream.tx_session, seq,
                       payload)
        pending = PendingSend(env)
        stream.pending[seq] = pending
        self.stats.sent += 1
        self._m["sent"].inc()
        self.transport.send(env)
        # A synchronous transport may have delivered and acked already.
        if not pending.done and self.scheduler is not None:
            self._arm_timer(dst, stream, pending)
        elif not pending.done and self.transport.synchronous:
            raise ControlError(
                f"synchronous send of {env.describe()} did not "
                f"complete")
        return pending

    def _arm_timer(self, dst: str, stream: _PeerStream,
                   pending: PendingSend) -> None:
        delay = self.config.backoff_ns(pending.attempts, self.rng)
        self._h_backoff.observe(delay)
        pending._timer = self.scheduler.schedule(
            delay, self._on_timeout, dst, stream.tx_session,
            pending.env.seq)

    def _on_timeout(self, dst: str, session: int, seq: int) -> None:
        stream = self._peers.get(dst)
        if stream is None or stream.tx_session != session:
            return
        pending = stream.pending.get(seq)
        if pending is None or pending.done:
            return
        cfg = self.config
        if cfg.max_retries is not None and \
                pending.attempts >= cfg.max_retries:
            pending.failed = True
            del stream.pending[seq]
            self.stats.expired += 1
            self._m["expired"].inc()
            return
        pending.attempts += 1
        self.stats.retransmits += 1
        self._m["retransmits"].inc()
        self.transport.send(pending.env)
        self._arm_timer(dst, stream, pending)

    def reset_peer(self, dst: str) -> None:
        """Start a fresh outgoing session to ``dst``.

        In-flight sends are marked ``superseded`` — the caller is
        expected to replay their content under the new session.
        """
        self._peer(dst).reset_tx()

    def reset_all_peers(self) -> None:
        for stream in self._peers.values():
            stream.reset_tx()
            stream.reset_rx(0)

    def pending_count(self, dst: Optional[str] = None) -> int:
        if dst is not None:
            stream = self._peers.get(dst)
            return len(stream.pending) if stream else 0
        return sum(len(s.pending) for s in self._peers.values())

    # -- receiving ---------------------------------------------------------

    def _on_receive(self, env: Envelope) -> None:
        payload = env.payload
        if isinstance(payload, (Ack, Nack)):
            self._on_ack(env.src, payload)
            return
        if not env.reliable:
            self.stats.delivered += 1
            self._m["delivered"].inc()
            self._process(env.src, payload)
            return
        stream = self._peer(env.src)
        if env.session < stream.rx_session:
            self.stats.stale_session_drops += 1
            self._m["stale_session_drops"].inc()
            return
        if env.session > stream.rx_session:
            stream.reset_rx(env.session)
        if env.seq <= stream.rx_last_delivered:
            # Already processed: the ack was lost — re-ack with the
            # remembered outcome so the sender can complete.
            self.stats.duplicates_dropped += 1
            self._m["duplicates_dropped"].inc()
            outcome = stream.rx_results.get(env.seq, Outcome(True))
            self._send_outcome(env.src, stream.rx_session, env.seq,
                               outcome)
            self.stats.reacked += 1
            self._m["reacked"].inc()
            return
        if env.seq in stream.rx_buffer:
            # Buffered but not yet deliverable (gap before it); it
            # will be acked when the gap fills and it is processed.
            self.stats.duplicates_dropped += 1
            self._m["duplicates_dropped"].inc()
            return
        stream.rx_buffer[env.seq] = payload
        while stream.rx_last_delivered + 1 in stream.rx_buffer:
            seq = stream.rx_last_delivered + 1
            queued = stream.rx_buffer.pop(seq)
            stream.rx_last_delivered = seq
            self.stats.delivered += 1
            self._m["delivered"].inc()
            outcome = self._process(env.src, queued)
            stream.rx_results[seq] = outcome
            while len(stream.rx_results) > _RESULT_CACHE:
                stream.rx_results.popitem(last=False)
            self._send_outcome(env.src, stream.rx_session, seq,
                               outcome)

    def _process(self, src: str, payload: ControlMessage) -> Outcome:
        if self.handler is None:
            return Outcome(True)
        try:
            outcome = self.handler(src, payload)
        except Exception as exc:
            return Outcome(False, reason=type(exc).__name__,
                           error=exc)
        return outcome if outcome is not None else Outcome(True)

    def _send_outcome(self, dst: str, session: int, seq: int,
                      outcome: Outcome) -> None:
        if outcome.ok:
            reply: ControlMessage = Ack(session=session, seq=seq,
                                        result=outcome.result)
        else:
            reply = Nack(session=session, seq=seq,
                         reason=outcome.reason, error=outcome.error)
        self.send(dst, reply, reliable=False)

    def _on_ack(self, src: str, payload) -> None:
        stream = self._peers.get(src)
        if stream is None or payload.session != stream.tx_session:
            return
        pending = stream.pending.pop(payload.seq, None)
        if pending is None:
            return
        pending._cancel_timer()
        pending.result = getattr(payload, "result", None)
        if isinstance(payload, Nack):
            pending.nacked = True
            pending.reason = payload.reason
            pending.error = payload.error
            self.stats.nacked += 1
            self._m["nacked"].inc()
            if self.on_nack is not None:
                self.on_nack(src, pending)
        else:
            pending.acked = True
            self.stats.acked += 1
            self._m["acked"].inc()

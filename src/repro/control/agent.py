"""The enclave-side control agent.

Each end host runs one :class:`EnclaveAgent` next to its enclave.  The
agent terminates the control channel: it applies configuration
messages to the local enclave in delivery order, enforces per-enclave
epoch monotonicity (stale installs are Nacked with ``stale-epoch``
and leave the data plane untouched), pushes periodic
:class:`~repro.control.messages.StatsReport` telemetry, and — after a
restart that lost all soft state — announces itself with ``Hello`` so
the controller replays its desired state.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from ..telemetry import NULL_TELEMETRY, Telemetry
from .channel import (ChannelConfig, ControlEndpoint, Outcome,
                      PendingSend)
from .messages import (ConfigMessage, ControlError, ControlMessage,
                       GLOBAL_ARRAY, GLOBAL_KEYED, GLOBAL_RECORDS,
                       GLOBAL_SCALAR, Hello, InstallFunction,
                       InstallRule, RemoveFunction, ReplaceFunction,
                       STALE_EPOCH, StatsReport, UpdateGlobals,
                       UpdateRules)
from .transport import Transport


def agent_address(host: str) -> str:
    """Transport address of the agent at ``host``."""
    return f"agent:{host}"


class EnclaveAgent:
    """Applies controller configuration to one enclave."""

    def __init__(self, host: str, enclave, transport: Transport,
                 scheduler=None, rng: Optional[random.Random] = None,
                 config: Optional[ChannelConfig] = None,
                 controller_address: str = "controller",
                 telemetry: Optional[Telemetry] = None) -> None:
        self.host = host
        self.enclave = enclave
        self.controller_address = controller_address
        self.scheduler = scheduler
        self.address = agent_address(host)
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        self.endpoint = ControlEndpoint(
            self.address, transport, scheduler=scheduler, rng=rng,
            config=config, handler=self._handle, telemetry=telemetry)
        self.applied_epoch = 0
        self.applied_ops = 0
        self.stale_rejections = 0
        self.restarts = 0
        self.reports_sent = 0
        registry = self.telemetry.registry
        self._m_applied = registry.counter("agent_applied_ops_total",
                                           host=host)
        self._m_stale = registry.counter(
            "agent_stale_rejections_total", host=host)
        self._m_restarts = registry.counter("agent_restarts_total",
                                            host=host)
        self._m_reports = registry.counter("agent_reports_total",
                                           host=host)
        self._telemetry_sources: Dict[str, Callable[[], object]] = {}
        self._health_source: Optional[Callable[[], Dict[str, object]]] \
            = None
        self._report_interval_ns: Optional[int] = None
        self._report_gen = 0

    # -- message handling --------------------------------------------------

    def _handle(self, src: str,
                payload: ControlMessage) -> Optional[Outcome]:
        if isinstance(payload, ConfigMessage):
            if payload.epoch < self.applied_epoch:
                self.stale_rejections += 1
                self._m_stale.inc()
                return Outcome(False, reason=STALE_EPOCH)
            result = self._apply(payload)
            self.applied_epoch = payload.epoch
            self.applied_ops += 1
            self._m_applied.inc()
            return Outcome(True, result=result)
        raise ControlError(
            f"agent {self.host}: unexpected {type(payload).__name__}")

    def _apply(self, msg: ConfigMessage) -> object:
        enclave = self.enclave
        if isinstance(msg, InstallFunction):
            # Replayed or re-sent installs must converge: an install
            # of an already-present function is a state-preserving
            # replace (same idempotence the channel's dedup gives
            # in-session, extended across session resets).
            if msg.name in enclave.functions():
                return enclave.replace_function(
                    msg.name, msg.source_fn,
                    backend=msg.kwargs.get("backend"))
            return enclave.install_function(msg.source_fn,
                                            name=msg.name,
                                            **dict(msg.kwargs))
        if isinstance(msg, ReplaceFunction):
            # The enclave keeps the old schemas and state across a
            # replace; only the execution knobs pass through.
            kwargs = {k: v for k, v in msg.kwargs.items()
                      if k in ("backend", "optimize_tail_calls")}
            return enclave.replace_function(msg.name, msg.source_fn,
                                            **kwargs)
        if isinstance(msg, RemoveFunction):
            # Idempotent: a retransmitted remove (or a remove replayed
            # after the function is already gone) is a no-op.
            if msg.name in enclave.functions():
                enclave.remove_function(msg.name)
                return True
            return False
        if isinstance(msg, InstallRule):
            rule = msg.rule
            # Desired state is authoritative: materialize the tables
            # the rule references, as the reconcile path already does.
            for table_id in (rule.table_id, rule.next_table):
                if table_id is not None and \
                        table_id not in enclave.query_tables():
                    enclave.create_table(table_id)
            return enclave.install_rule(rule.pattern, rule.function,
                                        table_id=rule.table_id,
                                        priority=rule.priority,
                                        next_table=rule.next_table)
        if isinstance(msg, UpdateRules):
            return self._reconcile_rules(msg)
        if isinstance(msg, UpdateGlobals):
            if msg.kind == GLOBAL_SCALAR:
                enclave.set_global(msg.function, msg.name, msg.values)
            elif msg.kind == GLOBAL_ARRAY:
                enclave.set_global_array(msg.function, msg.name,
                                         msg.values)
            elif msg.kind == GLOBAL_RECORDS:
                enclave.set_global_records(msg.function, msg.name,
                                           msg.values)
            elif msg.kind == GLOBAL_KEYED:
                enclave.set_global_keyed(msg.function, msg.name,
                                         msg.key, msg.values)
            else:
                raise ControlError(
                    f"unknown global kind {msg.kind!r}")
            return None
        raise ControlError(
            f"agent {self.host}: unknown config message "
            f"{type(msg).__name__}")

    def _reconcile_rules(self, msg: UpdateRules) -> Dict[int, list]:
        """Make the enclave's tables equal to ``msg.rules``."""
        enclave = self.enclave
        for table_id in enclave.query_tables():
            for rule in enclave.query_rules(table_id):
                enclave.remove_rule(rule.rule_id, table_id)
        installed: Dict[int, list] = {}
        for spec in msg.rules:
            if spec.table_id not in enclave.query_tables():
                enclave.create_table(spec.table_id)
            if spec.next_table is not None and \
                    spec.next_table not in enclave.query_tables():
                enclave.create_table(spec.next_table)
            rule_id = enclave.install_rule(
                spec.pattern, spec.function, table_id=spec.table_id,
                priority=spec.priority, next_table=spec.next_table)
            installed.setdefault(spec.table_id, []).append(rule_id)
        return installed

    # -- restart / reconnect ----------------------------------------------

    def restart(self) -> None:
        """Simulate an enclave restart: all soft state is lost.

        The data plane comes back empty, the agent forgets epochs and
        channel sessions, and a ``Hello`` asks the controller to
        replay the desired state (Section 3.2's controller owns the
        authoritative copy).
        """
        self.enclave.clear()
        self.applied_epoch = 0
        self.restarts += 1
        self._m_restarts.inc()
        self.endpoint.reset_all_peers()
        self.send_hello()
        if self._report_interval_ns is not None and \
                self.scheduler is not None:
            # Reporting timers are soft state too; restart them (the
            # generation bump orphans the pre-restart timer chain).
            self.start_reporting(self._report_interval_ns)

    def send_hello(self) -> Optional[PendingSend]:
        return self.endpoint.send(
            self.controller_address,
            Hello(host=self.host, applied_epoch=self.applied_epoch))

    # -- telemetry ---------------------------------------------------------

    def add_telemetry_source(self, name: str,
                             source: Callable[[], object]) -> None:
        """Register a feed sampled into every ``StatsReport``."""
        self._telemetry_sources[name] = source

    def set_health_source(
            self, source: Optional[Callable[[], Dict[str, object]]],
    ) -> None:
        """Sample ``source()`` into every report's ``health`` mapping.

        Rollout health gates (:mod:`repro.fleet.health`) read these
        signals to decide whether a wave may advance; ``None``
        detaches the source (reports go back to empty health).
        """
        self._health_source = source

    def build_report(self) -> StatsReport:
        now = self.scheduler.now if self.scheduler is not None else 0
        return StatsReport(
            host=self.host, at_ns=now,
            applied_epoch=self.applied_epoch,
            stats=self.enclave.stats_summary(),
            telemetry={name: source() for name, source
                       in self._telemetry_sources.items()},
            registry=(self.telemetry.registry.snapshot()
                      if self.telemetry.enabled else {}),
            health=(dict(self._health_source())
                    if self._health_source is not None else {}))

    def send_report(self) -> None:
        """Push one telemetry report (best-effort, unacked)."""
        if not self.telemetry.enabled:
            self.endpoint.send(self.controller_address,
                               self.build_report(), reliable=False)
            self.reports_sent += 1
            return
        # The report push is the tail of the data-path story: span it
        # so a trace can show classification -> enclave -> interpreter
        # -> StatsReport delivery.
        with self.telemetry.tracer.span("control.stats_report",
                                        host=self.host) as span:
            report = self.build_report()
            self.endpoint.send(self.controller_address, report,
                               reliable=False)
            span.set(epoch=report.applied_epoch,
                     functions=len(report.stats))
        self.reports_sent += 1
        self._m_reports.inc()

    def start_reporting(self, interval_ns: int) -> None:
        """Push a ``StatsReport`` every ``interval_ns`` forever."""
        if self.scheduler is None:
            raise ControlError(
                "periodic reporting needs a scheduler (Simulator)")
        if interval_ns <= 0:
            raise ControlError("report interval must be positive")
        self._report_interval_ns = interval_ns
        self._report_gen += 1
        self.scheduler.schedule(interval_ns, self._periodic_report,
                                interval_ns, self._report_gen)

    def _periodic_report(self, interval_ns: int, gen: int) -> None:
        if gen != self._report_gen:
            return  # orphaned timer from before a restart/reconfigure
        self.send_report()
        self.scheduler.schedule(interval_ns, self._periodic_report,
                                interval_ns, gen)

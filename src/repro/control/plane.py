"""The controller side of the control channel.

:class:`ControlPlane` owns the *desired-state table*: for every host,
the authoritative record of which functions, rules and globals its
enclave should be running, stamped with a per-host monotonic epoch
that is bumped on every change.  Every mutating operation updates the
desired state first, then rolls the change out through the reliable
channel.  Because the desired state is authoritative, recovery is
uniform: whenever an agent reconnects (``Hello`` after an enclave
restart or partition), the plane fences the old session and replays
the full desired state at the current epoch.

Telemetry flows the other way: agents push ``StatsReport`` messages
(best-effort), the plane records the latest per host and feeds every
registered *control loop* — closing the paper's coarse-timescale loop
(Section 2.1: PIAS thresholds from the observed flow-size
distribution, WCMP weights from observed path capacities).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..telemetry import NULL_TELEMETRY, Telemetry
from .agent import agent_address
from .channel import (ChannelConfig, ControlEndpoint, Outcome,
                      PendingSend)
from .messages import (ControlError, ControlMessage, GLOBAL_ARRAY,
                       GLOBAL_KEYED, GLOBAL_RECORDS, GLOBAL_SCALAR,
                       Hello, InstallFunction, InstallRule,
                       RemoveFunction, ReplaceFunction, RuleSpec,
                       STALE_EPOCH, StatsReport, UpdateGlobals,
                       UpdateRules)
from .transport import Transport


@dataclass
class FunctionSpec:
    """Desired configuration of one installed function."""

    source_fn: object
    kwargs: Dict[str, object] = field(default_factory=dict)


@dataclass
class DesiredState:
    """What one host's enclave should be running."""

    epoch: int = 0
    #: name -> spec, in install order (replay preserves it).
    functions: Dict[str, FunctionSpec] = field(default_factory=dict)
    #: appended by install_rule / replaced wholesale by update_rules.
    rules: List[RuleSpec] = field(default_factory=list)
    #: (function, name, kind, key) -> values; last writer wins.
    globals: Dict[Tuple[str, str, str, Optional[tuple]], object] = \
        field(default_factory=dict)

    def snapshot(self) -> "DesiredState":
        """Deep-enough copy for rollback: specs are copied, the
        (immutable) source functions and global values are shared."""
        return DesiredState(
            epoch=self.epoch,
            functions={name: FunctionSpec(spec.source_fn,
                                          dict(spec.kwargs))
                       for name, spec in self.functions.items()},
            rules=list(self.rules),
            globals=dict(self.globals))


class ControlLoop:
    """Interface for telemetry-driven reconfiguration loops."""

    def on_report(self, host: str, report: StatsReport) -> None:
        raise NotImplementedError


class ControlPlane:
    """Versioned rollouts plus telemetry ingestion for all hosts."""

    def __init__(self, transport: Transport, scheduler=None,
                 rng: Optional[random.Random] = None,
                 config: Optional[ChannelConfig] = None,
                 address: str = "controller",
                 telemetry: Optional[Telemetry] = None) -> None:
        self.address = address
        self.transport = transport
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        self.endpoint = ControlEndpoint(
            address, transport, scheduler=scheduler, rng=rng,
            config=config, handler=self._handle, telemetry=telemetry)
        self.endpoint.on_nack = self._record_nack
        self._desired: Dict[str, DesiredState] = {}
        self._agent_addrs: Dict[str, str] = {}
        self.latest_report: Dict[str, StatsReport] = {}
        self.reports_received = 0
        self.hellos_handled = 0
        self.replays = 0
        self.restores = 0
        self.stale_nacks_seen = 0
        self.nack_log: List[Tuple[str, str]] = []
        self._loops: List[ControlLoop] = []
        registry = self.telemetry.registry
        self._m_reports = registry.counter("plane_reports_total")
        self._m_hellos = registry.counter("plane_hellos_total")
        self._m_replays = registry.counter("plane_replays_total")
        self._m_restores = registry.counter("plane_restores_total")
        self._m_stale_nacks = registry.counter(
            "plane_stale_nacks_total")
        self._m_nacks = registry.counter("plane_nacks_total")

    # -- registry ----------------------------------------------------------

    def attach(self, host: str,
               address: Optional[str] = None) -> None:
        """Start managing the enclave agent at ``host``."""
        if host in self._agent_addrs:
            raise ControlError(f"host {host!r} already attached")
        self._agent_addrs[host] = (address if address is not None
                                   else agent_address(host))
        self._desired[host] = DesiredState()

    def hosts(self) -> List[str]:
        return sorted(self._agent_addrs)

    def desired(self, host: str) -> DesiredState:
        try:
            return self._desired[host]
        except KeyError:
            raise ControlError(
                f"host {host!r} not attached to the control plane"
            ) from None

    def agent_addr(self, host: str) -> str:
        self.desired(host)
        return self._agent_addrs[host]

    # -- versioned mutations ----------------------------------------------

    def _send(self, host: str, msg: ControlMessage) -> PendingSend:
        return self.endpoint.send(self.agent_addr(host), msg)

    def install_function(self, host: str, name: str, source_fn,
                         **kwargs) -> PendingSend:
        ds = self.desired(host)
        ds.epoch += 1
        ds.functions[name] = FunctionSpec(source_fn, dict(kwargs))
        return self._send(host, InstallFunction(
            host=host, epoch=ds.epoch, name=name,
            source_fn=source_fn, kwargs=dict(kwargs)))

    def replace_function(self, host: str, name: str, source_fn,
                         **kwargs) -> PendingSend:
        ds = self.desired(host)
        ds.epoch += 1
        spec = ds.functions.get(name)
        if spec is None:
            # Adopt a function that was installed out-of-band so the
            # replacement survives a restart replay.
            ds.functions[name] = FunctionSpec(source_fn, dict(kwargs))
        else:
            spec.source_fn = source_fn
            spec.kwargs.update(kwargs)
        return self._send(host, ReplaceFunction(
            host=host, epoch=ds.epoch, name=name,
            source_fn=source_fn, kwargs=dict(kwargs)))

    def remove_function(self, host: str, name: str) -> PendingSend:
        """Retire ``name`` from ``host``'s desired state.

        Any rules that still reference the function are retired first
        in the same epoch bump (the enclave refuses to drop a function
        with live rules), via a wholesale ``UpdateRules`` — so the
        remove itself can never fault on a consistent agent.
        """
        ds = self.desired(host)
        if name not in ds.functions:
            raise ControlError(
                f"function {name!r} not in desired state of {host!r}")
        ds.epoch += 1
        del ds.functions[name]
        kept = [r for r in ds.rules if r.function != name]
        if len(kept) != len(ds.rules):
            ds.rules = kept
            self._send(host, UpdateRules(host=host, epoch=ds.epoch,
                                         rules=tuple(kept)))
        ds.globals = {k: v for k, v in ds.globals.items()
                      if k[0] != name}
        return self._send(host, RemoveFunction(host=host,
                                               epoch=ds.epoch,
                                               name=name))

    def install_rule(self, host: str, pattern: str, function: str,
                     table_id: int = 0, priority: int = 0,
                     next_table: Optional[int] = None) -> PendingSend:
        ds = self.desired(host)
        ds.epoch += 1
        spec = RuleSpec(pattern=pattern, function=function,
                        table_id=table_id, priority=priority,
                        next_table=next_table)
        ds.rules.append(spec)
        return self._send(host, InstallRule(host=host, epoch=ds.epoch,
                                            rule=spec))

    def update_rules(self, host: str,
                     rules: List[RuleSpec]) -> PendingSend:
        ds = self.desired(host)
        ds.epoch += 1
        ds.rules = list(rules)
        return self._send(host, UpdateRules(host=host, epoch=ds.epoch,
                                            rules=tuple(rules)))

    def set_global(self, host: str, function: str, name: str,
                   value: int) -> PendingSend:
        return self._set_global(host, function, name, GLOBAL_SCALAR,
                                None, value)

    def set_global_array(self, host: str, function: str, name: str,
                         values) -> PendingSend:
        return self._set_global(host, function, name, GLOBAL_ARRAY,
                                None, tuple(values))

    def set_global_records(self, host: str, function: str, name: str,
                           records) -> PendingSend:
        frozen = tuple(tuple(r) for r in records)
        return self._set_global(host, function, name, GLOBAL_RECORDS,
                                None, frozen)

    def set_global_keyed(self, host: str, function: str, name: str,
                         key: tuple, values) -> PendingSend:
        return self._set_global(host, function, name, GLOBAL_KEYED,
                                tuple(key), tuple(values))

    def _set_global(self, host: str, function: str, name: str,
                    kind: str, key: Optional[tuple],
                    values) -> PendingSend:
        ds = self.desired(host)
        ds.epoch += 1
        ds.globals[(function, name, kind, key)] = values
        return self._send(host, UpdateGlobals(
            host=host, epoch=ds.epoch, function=function, name=name,
            kind=kind, key=key, values=values))

    # -- rollback ----------------------------------------------------------

    def snapshot_desired(self, host: str) -> DesiredState:
        """Copy of ``host``'s desired state, for later rollback."""
        return self.desired(host).snapshot()

    def restore_desired(self, host: str,
                        snapshot: DesiredState) -> List[PendingSend]:
        """Roll ``host`` back to a previously snapshotted state.

        The epoch keeps moving *forward* (one past whatever the host
        has seen), so in-flight messages from the abandoned rollout
        are fenced: anything still in the old session dies with it,
        and anything re-sent at the old epoch is Nacked stale.  The
        restored contents are pushed as a full replay; functions the
        abandoned rollout installed that the snapshot does not want
        are retired last, after the replayed ``UpdateRules`` has
        dropped their rules.
        """
        ds = self.desired(host)
        extras = [name for name in ds.functions
                  if name not in snapshot.functions]
        ds.functions = {name: FunctionSpec(spec.source_fn,
                                           dict(spec.kwargs))
                        for name, spec in snapshot.functions.items()}
        ds.rules = list(snapshot.rules)
        ds.globals = dict(snapshot.globals)
        ds.epoch = max(ds.epoch, snapshot.epoch) + 1
        self.restores += 1
        self._m_restores.inc()
        sends = self.replay(host)
        for name in extras:
            sends.append(self._send(host, RemoveFunction(
                host=host, epoch=ds.epoch, name=name)))
        return sends

    # -- recovery ----------------------------------------------------------

    def replay(self, host: str) -> List[PendingSend]:
        """Fence the old session and re-send the desired state.

        Install order is preserved; globals follow their functions;
        the rule set goes last as one idempotent ``UpdateRules`` —
        so a freshly restarted (empty) enclave converges to exactly
        the desired state, and a live enclave is unchanged.
        """
        ds = self.desired(host)
        self.endpoint.reset_peer(self.agent_addr(host))
        self.replays += 1
        self._m_replays.inc()
        sends: List[PendingSend] = []
        for name, spec in ds.functions.items():
            sends.append(self._send(host, InstallFunction(
                host=host, epoch=ds.epoch, name=name,
                source_fn=spec.source_fn, kwargs=dict(spec.kwargs))))
        for (function, gname, kind, key), values in \
                ds.globals.items():
            sends.append(self._send(host, UpdateGlobals(
                host=host, epoch=ds.epoch, function=function,
                name=gname, kind=kind, key=key, values=values)))
        sends.append(self._send(host, UpdateRules(
            host=host, epoch=ds.epoch, rules=tuple(ds.rules))))
        return sends

    # -- inbound traffic ---------------------------------------------------

    def _handle(self, src: str,
                payload: ControlMessage) -> Optional[Outcome]:
        if isinstance(payload, Hello):
            self.hellos_handled += 1
            self._m_hellos.inc()
            host = payload.host
            if host in self._agent_addrs:
                # Ack the Hello first (the outcome), then replay on
                # the fresh session.
                self.replay(host)
                return Outcome(True, result=self.desired(host).epoch)
            return Outcome(False,
                           reason=f"unknown host {host!r}")
        if isinstance(payload, StatsReport):
            self.reports_received += 1
            self._m_reports.inc()
            self.latest_report[payload.host] = payload
            for loop in self._loops:
                loop.on_report(payload.host, payload)
            return Outcome(True)
        raise ControlError(
            f"controller: unexpected {type(payload).__name__} "
            f"from {src}")

    def _record_nack(self, peer: str, pending: PendingSend) -> None:
        self.nack_log.append((peer, pending.reason))
        self._m_nacks.inc()
        if pending.reason == STALE_EPOCH:
            self.stale_nacks_seen += 1
            self._m_stale_nacks.inc()

    # -- control loops -----------------------------------------------------

    def add_loop(self, loop: ControlLoop) -> None:
        self._loops.append(loop)

    def clear_loops(self) -> None:
        """Detach all control loops (telemetry keeps arriving but no
        longer triggers reconfiguration)."""
        self._loops.clear()

    # -- convergence -------------------------------------------------------

    def pending_count(self) -> int:
        return self.endpoint.pending_count()

    def in_sync(self, host: str) -> bool:
        """All rollouts to ``host`` delivered and the agent reports
        (via its last telemetry) the current epoch."""
        if self.endpoint.pending_count(self.agent_addr(host)):
            return False
        report = self.latest_report.get(host)
        return (report is not None and
                report.applied_epoch >= self.desired(host).epoch)

    def summary(self) -> Dict[str, object]:
        return {
            "hosts": {h: {"epoch": self.desired(h).epoch,
                          "pending": self.endpoint.pending_count(
                              self.agent_addr(h))}
                      for h in self.hosts()},
            "channel": self.endpoint.stats.as_dict(),
            "reports_received": self.reports_received,
            "hellos_handled": self.hellos_handled,
            "replays": self.replays,
            "restores": self.restores,
            "stale_nacks_seen": self.stale_nacks_seen,
        }

"""Fault injection for the control channel.

The paper's control loop is coarse-timescale and must survive an
imperfect network between controller and enclaves.  This harness makes
that imperfection explicit and deterministic: a
:class:`FaultInjector` sits inside :class:`~repro.control.transport.
SimTransport` and decides, per envelope, whether to drop, duplicate or
extra-delay it, and whether either endpoint is currently partitioned.
Enclave restarts (losing all data-plane soft state, to be replayed
from the controller's desired-state table) are injected with
:func:`schedule_restart`.

All randomness comes from the injected :class:`random.Random` —
normally the simulator's seeded RNG — so every fault schedule is
bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from typing import Optional, Set

from .messages import Envelope


class FaultInjector:
    """Drops, duplicates, delays and partitions control messages.

    Probabilities are evaluated independently per send; a partition
    beats everything (no traffic in or out of a partitioned address).
    ``extra_delay_ns`` is the *maximum* additional one-way latency; the
    actual value is drawn uniformly per delivery.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 drop_prob: float = 0.0,
                 dup_prob: float = 0.0,
                 extra_delay_ns: int = 0) -> None:
        for name, p in (("drop_prob", drop_prob),
                        ("dup_prob", dup_prob)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.rng = rng if rng is not None else random.Random(0)
        self.drop_prob = drop_prob
        self.dup_prob = dup_prob
        self.extra_delay_ns = extra_delay_ns
        self._partitioned: Set[str] = set()
        self.dropped = 0
        self.duplicated = 0
        self.partition_drops = 0

    # -- partitions --------------------------------------------------------

    def partition(self, address: str) -> None:
        """Cut the endpoint ``address`` off from everyone."""
        self._partitioned.add(address)

    def heal(self, address: str) -> None:
        self._partitioned.discard(address)

    def heal_all(self) -> None:
        self._partitioned.clear()

    def is_partitioned(self, address: str) -> bool:
        return address in self._partitioned

    # -- per-envelope decisions -------------------------------------------

    def deliveries(self, env: Envelope) -> int:
        """How many copies of ``env`` to deliver (0 = lost).

        Duplication models a retransmit racing its own ack; both
        copies then exercise the receiver's dedup path.
        """
        if env.src in self._partitioned or env.dst in self._partitioned:
            self.partition_drops += 1
            return 0
        if self.drop_prob and self.rng.random() < self.drop_prob:
            self.dropped += 1
            return 0
        if self.dup_prob and self.rng.random() < self.dup_prob:
            self.duplicated += 1
            return 2
        return 1

    def extra_delay(self) -> int:
        if self.extra_delay_ns <= 0:
            return 0
        return self.rng.randrange(self.extra_delay_ns + 1)

    def summary(self) -> dict:
        return {"dropped": self.dropped,
                "duplicated": self.duplicated,
                "partition_drops": self.partition_drops,
                "partitioned": sorted(self._partitioned)}


def schedule_restart(sim, at_ns: int, agent) -> None:
    """Restart ``agent``'s enclave at absolute sim time ``at_ns``.

    The agent loses all soft state (installed functions, rules,
    globals, epochs, channel sessions) and announces itself to the
    controller with a ``Hello``, triggering desired-state replay.
    """
    sim.at(at_ns, agent.restart)

"""Fault injection for the control channel.

The paper's control loop is coarse-timescale and must survive an
imperfect network between controller and enclaves.  This harness makes
that imperfection explicit and deterministic: a
:class:`FaultInjector` sits inside :class:`~repro.control.transport.
SimTransport` and decides, per envelope, whether to drop, duplicate or
extra-delay it, and whether either endpoint is currently partitioned.
Enclave restarts (losing all data-plane soft state, to be replayed
from the controller's desired-state table) are injected with
:func:`schedule_restart`.

All randomness comes from the injected :class:`random.Random` —
normally the simulator's seeded RNG — so every fault schedule is
bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set

from .messages import Envelope


class FaultInjector:
    """Drops, duplicates, delays and partitions control messages.

    Probabilities are evaluated independently per send; a partition
    beats everything (no traffic in or out of a partitioned address).
    ``extra_delay_ns`` is the *maximum* additional one-way latency; the
    actual value is drawn uniformly per delivery.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 drop_prob: float = 0.0,
                 dup_prob: float = 0.0,
                 extra_delay_ns: int = 0,
                 scheduler=None) -> None:
        for name, p in (("drop_prob", drop_prob),
                        ("dup_prob", dup_prob)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.rng = rng if rng is not None else random.Random(0)
        self.drop_prob = drop_prob
        self.dup_prob = dup_prob
        self.extra_delay_ns = extra_delay_ns
        #: Needed only for scheduled partition windows (``heal_at_ns``
        #: / :meth:`partition_window`); any object with ``at(time_ns,
        #: cb, *args)`` works, normally the :class:`Simulator`.
        self.scheduler = scheduler
        self._partitioned: Set[str] = set()
        # Per-address partition generation: every partition/heal bumps
        # it, so a *scheduled* heal only fires against the partition
        # it was armed for — never against a newer one installed
        # after a manual heal (long runs re-partition freely).
        self._partition_gen: Dict[str, int] = {}
        self.dropped = 0
        self.duplicated = 0
        self.partition_drops = 0
        self.scheduled_heals_fired = 0

    # -- partitions --------------------------------------------------------

    def bind_scheduler(self, scheduler) -> None:
        """Late-bind the scheduler used for partition windows."""
        self.scheduler = scheduler

    def partition(self, address: str,
                  heal_at_ns: Optional[int] = None) -> None:
        """Cut the endpoint ``address`` off from everyone.

        With ``heal_at_ns`` the partition heals itself at that
        absolute sim time — unless it was manually healed or replaced
        by a newer partition first (generation fencing).
        """
        self._partitioned.add(address)
        gen = self._bump_gen(address)
        if heal_at_ns is not None:
            if self.scheduler is None:
                raise ValueError(
                    "heal_at_ns needs a scheduler; pass one to the "
                    "constructor or call bind_scheduler()")
            self.scheduler.at(heal_at_ns, self._scheduled_heal,
                              address, gen)

    def partition_window(self, address: str, start_ns: int,
                         heal_at_ns: int) -> None:
        """Partition ``address`` during ``[start_ns, heal_at_ns)``."""
        if heal_at_ns <= start_ns:
            raise ValueError(
                f"empty partition window [{start_ns}, {heal_at_ns})")
        if self.scheduler is None:
            raise ValueError(
                "partition_window needs a scheduler; pass one to the "
                "constructor or call bind_scheduler()")
        self.scheduler.at(start_ns, self.partition, address,
                          heal_at_ns)

    def _bump_gen(self, address: str) -> int:
        gen = self._partition_gen.get(address, 0) + 1
        self._partition_gen[address] = gen
        return gen

    def _scheduled_heal(self, address: str, gen: int) -> None:
        if self._partition_gen.get(address) != gen:
            return  # fenced: healed or re-partitioned since arming
        self.heal(address)
        self.scheduled_heals_fired += 1

    def heal(self, address: str) -> None:
        if address in self._partitioned:
            self._partitioned.discard(address)
            self._bump_gen(address)

    def heal_all(self) -> None:
        for address in list(self._partitioned):
            self.heal(address)

    def is_partitioned(self, address: str) -> bool:
        return address in self._partitioned

    # -- per-envelope decisions -------------------------------------------

    def deliveries(self, env: Envelope) -> int:
        """How many copies of ``env`` to deliver (0 = lost).

        Duplication models a retransmit racing its own ack; both
        copies then exercise the receiver's dedup path.
        """
        if env.src in self._partitioned or env.dst in self._partitioned:
            self.partition_drops += 1
            return 0
        if self.drop_prob and self.rng.random() < self.drop_prob:
            self.dropped += 1
            return 0
        if self.dup_prob and self.rng.random() < self.dup_prob:
            self.duplicated += 1
            return 2
        return 1

    def extra_delay(self) -> int:
        if self.extra_delay_ns <= 0:
            return 0
        return self.rng.randrange(self.extra_delay_ns + 1)

    def summary(self) -> dict:
        return {"dropped": self.dropped,
                "duplicated": self.duplicated,
                "partition_drops": self.partition_drops,
                "scheduled_heals_fired": self.scheduled_heals_fired,
                "partitioned": sorted(self._partitioned)}


def schedule_restart(sim, at_ns: int, agent) -> None:
    """Restart ``agent``'s enclave at absolute sim time ``at_ns``.

    The agent loses all soft state (installed functions, rules,
    globals, epochs, channel sessions) and announces itself to the
    controller with a ``Hello``, triggering desired-state replay.
    """
    sim.at(at_ns, agent.restart)

"""Eden's control-plane channel (controller ↔ enclave messaging).

The paper's controller "programs stages and enclaves" and periodically
recomputes data-plane parameters from global state (Sections 2.1,
3.5).  This package puts a real (simulated) network between the two:
typed control messages with per-enclave epochs, a reliable channel
with retries and backoff, fault injection, desired-state replay after
enclave restarts, and telemetry-driven control loops.  See
``docs/CONTROL.md``.
"""

from .agent import EnclaveAgent, agent_address
from .channel import (ChannelConfig, ChannelStats, ControlEndpoint,
                      Outcome, PendingSend)
from .faults import FaultInjector, schedule_restart
from .messages import (Ack, ConfigMessage, ControlError,
                       ControlMessage, Envelope, GLOBAL_ARRAY,
                       GLOBAL_KEYED, GLOBAL_RECORDS, GLOBAL_SCALAR,
                       Hello, InstallFunction, InstallRule, Nack,
                       RemoveFunction, ReplaceFunction, RuleSpec,
                       STALE_EPOCH, StatsReport, UpdateGlobals,
                       UpdateRules)
from .plane import (ControlLoop, ControlPlane, DesiredState,
                    FunctionSpec)
from .transport import InprocTransport, SimTransport, Transport

__all__ = [
    "Ack", "ChannelConfig", "ChannelStats", "ConfigMessage",
    "ControlEndpoint", "ControlError", "ControlLoop",
    "ControlMessage", "ControlPlane", "DesiredState", "EnclaveAgent",
    "Envelope", "FaultInjector", "FunctionSpec", "GLOBAL_ARRAY",
    "GLOBAL_KEYED", "GLOBAL_RECORDS", "GLOBAL_SCALAR", "Hello",
    "InprocTransport", "InstallFunction", "InstallRule", "Nack",
    "Outcome", "PendingSend", "RemoveFunction", "ReplaceFunction",
    "RuleSpec",
    "STALE_EPOCH", "SimTransport", "StatsReport", "Transport",
    "UpdateGlobals", "UpdateRules", "agent_address",
    "schedule_restart",
]

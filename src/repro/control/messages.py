"""Typed control-plane messages exchanged between controller and enclaves.

The paper's controller "programs stages and enclaves" over the network
(Section 3.2); this module is the wire protocol for that traffic.  Every
configuration-bearing message carries the *epoch* of the per-enclave
desired state it was computed from — a monotonically increasing version
number the controller bumps on every configuration change for that
host.  Enclave agents reject any configuration message whose epoch is
lower than the last one they applied (``Nack`` with reason
``stale-epoch``), which makes reordered or replayed installs fail
deterministically instead of silently rolling a host backwards.

Messages travel inside an :class:`Envelope` added by the channel layer
(:mod:`repro.control.channel`): ``(src, dst, session, seq)``.  The
session number identifies one incarnation of a sender→receiver stream;
it is bumped on reconnect/restart so that retransmits from a dead
incarnation are discarded.  Payloads are plain Python objects — the
simulated network is in-process, so "serialization" is nominal, but
every payload is a frozen dataclass to keep the protocol explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple


class ControlError(Exception):
    """A control-plane operation failed."""


#: Nack reason used for deterministic stale-epoch rejection.
STALE_EPOCH = "stale-epoch"


@dataclass(frozen=True)
class ControlMessage:
    """Base class for all control-plane payloads."""


@dataclass(frozen=True)
class ConfigMessage(ControlMessage):
    """Base for configuration-bearing (epoch-checked) messages."""

    host: str
    epoch: int


@dataclass(frozen=True)
class InstallFunction(ConfigMessage):
    """Install an action function at the enclave.

    Re-delivery after a partition or replay after an enclave restart
    must converge, so agents treat an install of an already-present
    function as a state-preserving replace — the message is idempotent.
    """

    name: str = ""
    source_fn: object = None
    kwargs: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ReplaceFunction(ConfigMessage):
    """Hot-swap an installed function's program (Section 3.4.3)."""

    name: str = ""
    source_fn: object = None
    kwargs: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class RemoveFunction(ConfigMessage):
    """Uninstall a function from the enclave.

    Used by rollbacks that must retire a function installed by an
    abandoned wave.  Removing an absent function is a no-op, so
    retransmits and replays converge.  The sender is responsible for
    retiring the function's rules first (a wholesale
    :class:`UpdateRules` without them) — an enclave refuses to drop a
    function that live rules still reference.
    """

    name: str = ""


@dataclass(frozen=True)
class RuleSpec:
    """One desired match-action rule (the controller's view)."""

    pattern: str
    function: str
    table_id: int = 0
    priority: int = 0
    next_table: Optional[int] = None


@dataclass(frozen=True)
class InstallRule(ConfigMessage):
    """Append one match-action rule; the Ack carries the rule id."""

    rule: RuleSpec = None  # type: ignore[assignment]


@dataclass(frozen=True)
class UpdateRules(ConfigMessage):
    """Replace the enclave's entire rule set with ``rules``.

    Used for bulk updates and for desired-state replay after an
    enclave restart; applying it twice yields the same tables.
    """

    rules: Tuple[RuleSpec, ...] = ()


#: ``kind`` values understood by :class:`UpdateGlobals`.
GLOBAL_SCALAR = "scalar"
GLOBAL_ARRAY = "array"
GLOBAL_RECORDS = "records"
GLOBAL_KEYED = "keyed"


@dataclass(frozen=True)
class UpdateGlobals(ConfigMessage):
    """Set one global of one installed function.

    ``kind`` selects the enclave API used (``set_global`` /
    ``set_global_array`` / ``set_global_records`` /
    ``set_global_keyed``); ``key`` is only meaningful for keyed
    arrays.  Last-writer-wins per ``(function, name, kind, key)``.
    """

    function: str = ""
    name: str = ""
    kind: str = GLOBAL_SCALAR
    key: Optional[tuple] = None
    values: object = None


@dataclass(frozen=True)
class Hello(ControlMessage):
    """Agent → controller: I (re)connected; replay my desired state.

    ``applied_epoch`` is what the agent currently has (0 after a
    restart that lost soft state), so the controller can log how far
    back the host fell.
    """

    host: str = ""
    applied_epoch: int = 0


@dataclass(frozen=True)
class StatsReport(ControlMessage):
    """Agent → controller telemetry push (periodic, best-effort).

    ``stats`` is the enclave's per-function counter summary;
    ``telemetry`` carries named observation feeds (e.g.
    ``flow_sizes`` samples for PIAS threshold recomputation,
    ``path_capacity`` rows for WCMP re-weighting); ``registry``
    carries the host's metric-registry snapshot
    (:meth:`repro.telemetry.registry.MetricRegistry.snapshot`) when
    the host runs with telemetry enabled — empty otherwise.
    ``health`` carries agent-local health signals (e.g. enclave fault
    counters, app-level probes) consumed by rollout health gates
    (:mod:`repro.fleet.health`); empty when no health source is set.
    """

    host: str = ""
    at_ns: int = 0
    applied_epoch: int = 0
    stats: Mapping[str, Mapping[str, int]] = field(default_factory=dict)
    telemetry: Mapping[str, object] = field(default_factory=dict)
    registry: Mapping[str, object] = field(default_factory=dict)
    health: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Ack(ControlMessage):
    """Receiver → sender: message ``(session, seq)`` was processed.

    ``result`` carries the operation's return value (e.g. the rule id
    of an :class:`InstallRule`, the installed function object).
    """

    session: int = 0
    seq: int = 0
    result: object = None


@dataclass(frozen=True)
class Nack(ControlMessage):
    """Receiver → sender: message ``(session, seq)`` was rejected.

    ``reason`` is a short machine-checkable string (see
    :data:`STALE_EPOCH`); ``error`` optionally carries the exception
    the apply raised, so synchronous (inproc) callers can re-raise it.
    """

    session: int = 0
    seq: int = 0
    reason: str = ""
    error: Optional[BaseException] = None


@dataclass
class Envelope:
    """Channel-layer wrapper around one payload.

    ``seq`` is a per-(sender, session) sequence number for reliable
    messages, or ``-1`` for fire-and-forget traffic (acks, telemetry).
    """

    src: str
    dst: str
    session: int
    seq: int
    payload: ControlMessage

    @property
    def reliable(self) -> bool:
        return self.seq >= 0

    def describe(self) -> str:
        return (f"{type(self.payload).__name__} "
                f"{self.src}->{self.dst} s{self.session}#{self.seq}")

"""Transports that move control envelopes between endpoints.

Two implementations of the same two-method interface
(``register(address, deliver)`` / ``send(envelope)``):

* :class:`InprocTransport` — synchronous, lossless, zero-delay.  This
  is the ``transport="inproc"`` mode of
  :class:`~repro.core.controller.Controller`: every send is delivered
  (and acked) before the call returns, which preserves the original
  direct-call semantics of the controller API exactly.

* :class:`SimTransport` — delivery is an event on the discrete-event
  :class:`~repro.netsim.simulator.Simulator`, after a configurable
  base delay plus uniform jitter, filtered through an optional
  :class:`~repro.control.faults.FaultInjector` (drop / duplicate /
  extra delay / partition).  This is the lossy channel the paper's
  coarse-timescale control loop must survive.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from .faults import FaultInjector
from .messages import ControlError, Envelope

DeliverFn = Callable[[Envelope], None]


class Transport:
    """Address-indexed delivery fabric for control envelopes."""

    #: True when ``send`` delivers (and any ack returns) synchronously.
    synchronous = False

    def __init__(self) -> None:
        self._endpoints: Dict[str, DeliverFn] = {}
        self.sent = 0
        self.delivered = 0

    def register(self, address: str, deliver: DeliverFn) -> None:
        if address in self._endpoints:
            raise ControlError(
                f"address {address!r} already registered")
        self._endpoints[address] = deliver

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def _deliver(self, env: Envelope) -> None:
        deliver = self._endpoints.get(env.dst)
        if deliver is None:
            # Receiver gone (e.g. mid-restart): the message is lost;
            # reliability above us retransmits.
            return
        self.delivered += 1
        deliver(env)

    def send(self, env: Envelope) -> None:
        raise NotImplementedError


class InprocTransport(Transport):
    """Synchronous, perfectly reliable in-process delivery."""

    synchronous = True

    def send(self, env: Envelope) -> None:
        self.sent += 1
        self._deliver(env)


class SimTransport(Transport):
    """Simulator-scheduled delivery with loss, delay and duplication."""

    synchronous = False

    def __init__(self, sim, delay_ns: int = 50_000,
                 jitter_ns: int = 0,
                 faults: Optional[FaultInjector] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__()
        if delay_ns < 0 or jitter_ns < 0:
            raise ControlError("delay/jitter must be non-negative")
        self.sim = sim
        self.delay_ns = delay_ns
        self.jitter_ns = jitter_ns
        self.faults = faults
        self.rng = rng if rng is not None else sim.rng

    def _one_way_delay(self) -> int:
        delay = self.delay_ns
        if self.jitter_ns:
            delay += self.rng.randrange(self.jitter_ns + 1)
        if self.faults is not None:
            delay += self.faults.extra_delay()
        return delay

    def send(self, env: Envelope) -> None:
        self.sent += 1
        copies = 1
        if self.faults is not None:
            copies = self.faults.deliveries(env)
        for _ in range(copies):
            self.sim.schedule(self._one_way_delay(),
                              self._deliver, env)

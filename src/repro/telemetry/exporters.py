"""Exporters: Prometheus text exposition and JSONL dumps.

Two consumers, two formats:

* :func:`prometheus_text` renders the registry in the Prometheus
  text exposition format (``# TYPE`` headers, label sets, cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count`` for
  histograms) — what a scrape endpoint or pushgateway would serve.
* :func:`metric_jsonl_lines` / :func:`span_jsonl_lines` emit one
  JSON object per line, the archival format: replayable, greppable,
  and diffable across runs.
"""

from __future__ import annotations

import json
import re
from typing import List, Optional, Sequence

from .registry import Counter, Gauge, Histogram, MetricRegistry
from .spans import FlightRecorder, Span

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _prom_labels(labels, extra: str = "") -> str:
    parts = [f'{_LABEL_RE.sub("_", k)}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: MetricRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    typed = set()
    for inst in registry.instruments():
        name = _prom_name(inst.name)
        if isinstance(inst, Counter):
            if name not in typed:
                lines.append(f"# TYPE {name} counter")
                typed.add(name)
            lines.append(f"{name}{_prom_labels(inst.labels)} "
                         f"{inst.value}")
        elif isinstance(inst, Gauge):
            if name not in typed:
                lines.append(f"# TYPE {name} gauge")
                typed.add(name)
            lines.append(f"{name}{_prom_labels(inst.labels)} "
                         f"{inst.value}")
        elif isinstance(inst, Histogram):
            if name not in typed:
                lines.append(f"# TYPE {name} histogram")
                typed.add(name)
            cumulative = 0
            for bound, count in inst.nonzero_buckets():
                cumulative += count
                le = 'le="%d"' % bound
                lines.append(
                    f"{name}_bucket{_prom_labels(inst.labels, le)} "
                    f"{cumulative}")
            le_inf = 'le="+Inf"'
            lines.append(
                f"{name}_bucket{_prom_labels(inst.labels, le_inf)} "
                f"{inst.count}")
            lines.append(f"{name}_sum{_prom_labels(inst.labels)} "
                         f"{inst.total}")
            lines.append(f"{name}_count{_prom_labels(inst.labels)} "
                         f"{inst.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def metric_jsonl_lines(registry: MetricRegistry) -> List[str]:
    """One JSON object per instrument."""
    lines: List[str] = []
    for inst in registry.instruments():
        record = {"name": inst.name, "labels": dict(inst.labels)}
        if isinstance(inst, Counter):
            record["type"] = "counter"
            record["value"] = inst.value
        elif isinstance(inst, Gauge):
            record["type"] = "gauge"
            record["value"] = inst.value
        else:
            record["type"] = "histogram"
            record.update(count=inst.count, total=inst.total,
                          min=inst.vmin, max=inst.vmax,
                          mean=inst.mean,
                          p50=inst.quantile(0.50),
                          p95=inst.quantile(0.95),
                          p99=inst.quantile(0.99),
                          buckets=inst.nonzero_buckets())
        lines.append(json.dumps(record, sort_keys=True))
    return lines


def span_jsonl_lines(spans: Sequence[Span]) -> List[str]:
    """One JSON object per span."""
    return [json.dumps({"type": "span", **span.as_dict()},
                       sort_keys=True) for span in spans]


def jsonl_dump(registry: Optional[MetricRegistry] = None,
               recorder: Optional[FlightRecorder] = None) -> str:
    """Full JSONL dump: metrics first, then spans (oldest first)."""
    lines: List[str] = []
    if registry is not None:
        lines.extend(metric_jsonl_lines(registry))
    if recorder is not None:
        lines.extend(span_jsonl_lines(recorder.spans()))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str, registry: Optional[MetricRegistry] = None,
                recorder: Optional[FlightRecorder] = None) -> int:
    """Write the JSONL dump to ``path``; returns the line count."""
    body = jsonl_dump(registry, recorder)
    with open(path, "w") as handle:
        handle.write(body)
    return body.count("\n")

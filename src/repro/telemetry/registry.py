"""Metrics registry: counters, gauges, and log-bucketed histograms.

The measurement substrate for the whole stack.  Three design rules,
all driven by the data path:

1. **Hot-path cheap.**  An instrument is a tiny object bound once (at
   component construction) and mutated with one method call per event;
   there is no name lookup, no lock, and no allocation on the record
   path.  Histograms bucket by ``int.bit_length()`` — one C-level call
   — instead of a bisect over bucket bounds.
2. **True no-op when disabled.**  A disabled :class:`MetricRegistry`
   hands out shared null instruments whose mutators are empty
   methods, so instrumented code needs no ``if telemetry:`` guards
   and pays only a no-op call.  Nothing is ever stored.
3. **Exact where it matters.**  Histograms keep exact ``count``/
   ``total``/``min``/``max`` alongside the bucketed distribution, so
   means are exact and only quantiles are approximate (bounded by the
   power-of-two bucket width).

Instruments are identified by name plus a small set of labels (e.g.
``counter("enclave_lookups_total", enclave="h1.enclave")``), mirroring
the Prometheus data model the exporter emits.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Label sets are canonicalized to sorted tuples so the same labels in
#: any keyword order resolve to the same instrument.
LabelKey = Tuple[Tuple[str, str], ...]

#: 64-bit values have bit_length() in [0, 64]; one extra bucket for
#: zero/negative observations.
_N_BUCKETS = 65


def nearest_rank(values, pct: float) -> float:
    """Nearest-rank percentile of ``values``; 0.0 for an empty sample.

    The canonical definition: the smallest value v such that at least
    ``pct`` percent of the sample is <= v, i.e. the
    ``ceil(pct/100 * n)``-th smallest (1-indexed).  ``pct <= 0``
    returns the minimum, ``pct >= 100`` the maximum — no off-by-one
    at either boundary, at any sample size.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if pct <= 0:
        return float(ordered[0])
    rank = math.ceil(pct / 100.0 * len(ordered))
    return float(ordered[min(rank, len(ordered)) - 1])


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({_qualified(self.name, self.labels)}={self.value})"


class Gauge:
    """A value that goes up and down (backlog, epoch, clock)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n

    def dec(self, n: int = 1) -> None:
        self.value -= n

    def __repr__(self) -> str:
        return f"Gauge({_qualified(self.name, self.labels)}={self.value})"


class Histogram:
    """A log2-bucketed distribution with exact count/total/min/max.

    Bucket ``i`` (``1 <= i <= 64``) holds observations ``v`` with
    ``v.bit_length() == i``, i.e. ``2**(i-1) <= v < 2**i``; bucket 0
    holds ``v <= 0``.  The bucket index is one ``bit_length()`` call,
    cheap enough for per-packet observation.  Quantiles come from the
    cumulative bucket counts and are therefore upper bounds accurate
    to one power of two — fine for latency/ops distributions spanning
    decades.
    """

    __slots__ = ("name", "labels", "bucket_counts", "count", "total",
                 "vmin", "vmax")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.bucket_counts: List[int] = [0] * _N_BUCKETS
        self.count = 0
        self.total = 0
        self.vmin: Optional[int] = None
        self.vmax: Optional[int] = None

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        self.bucket_counts[value.bit_length() if value > 0 else 0] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]): the upper bound of
        the bucket where the cumulative count crosses ``q * count``."""
        if self.count == 0:
            return 0.0
        if q <= 0:
            return float(self.vmin if self.vmin is not None else 0)
        target = math.ceil(q * self.count)
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            cumulative += n
            if cumulative >= target:
                if i == 0:
                    return 0.0
                # Clamp the top bucket's bound to the observed max.
                bound = (1 << i) - 1
                return float(min(bound, self.vmax))
        return float(self.vmax)

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        """``(upper_bound, count)`` pairs for the occupied buckets."""
        out = []
        for i, n in enumerate(self.bucket_counts):
            if n:
                out.append((0 if i == 0 else (1 << i) - 1, n))
        return out

    def __repr__(self) -> str:
        return (f"Histogram({_qualified(self.name, self.labels)}: "
                f"n={self.count} mean={self.mean:.1f})")


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0

    def set(self, value: int) -> None:
        pass

    def inc(self, n: int = 1) -> None:
        pass

    def dec(self, n: int = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0
    total = 0
    mean = 0.0
    vmin = None
    vmax = None

    def observe(self, value: int) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        return []


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _qualified(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class RegistryError(Exception):
    """An instrument was re-registered with a different type."""


class MetricRegistry:
    """Owns every instrument of one telemetry domain.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call registers the instrument, later calls with the same name and
    labels return the same object — components bind instruments once
    at construction and mutate them directly on the hot path.
    Re-registering a name as a different instrument kind is an error.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, LabelKey], object] = {}
        self._kinds: Dict[str, type] = {}

    # -- instrument factories ------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    _NULLS = {Counter: NULL_COUNTER, Gauge: NULL_GAUGE,
              Histogram: NULL_HISTOGRAM}

    def _get(self, kind: type, name: str,
             labels: Mapping[str, object]):
        if not self.enabled:
            return self._NULLS[kind]
        known = self._kinds.get(name)
        if known is not None and known is not kind:
            raise RegistryError(
                f"metric {name!r} already registered as "
                f"{known.__name__}, not {kind.__name__}")
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = kind(name, key[1])
            self._instruments[key] = instrument
            self._kinds[name] = kind
        return instrument

    # -- introspection --------------------------------------------------

    def instruments(self) -> List[object]:
        """Every live instrument, sorted by (name, labels)."""
        return [self._instruments[k]
                for k in sorted(self._instruments)]

    def find(self, name: str) -> List[object]:
        """All instruments with ``name`` across label sets."""
        return [inst for (n, _), inst
                in sorted(self._instruments.items()) if n == name]

    def total(self, name: str) -> int:
        """Sum of a counter/gauge value (or histogram count) across
        every label set of ``name``."""
        out = 0
        for inst in self.find(name):
            out += inst.count if isinstance(inst, Histogram) \
                else inst.value
        return out

    def snapshot(self) -> Dict[str, object]:
        """A plain-data dump, JSON-serializable, for export and for
        shipping inside a ``StatsReport``."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, int] = {}
        histograms: Dict[str, Dict[str, object]] = {}
        for (name, labels), inst in sorted(self._instruments.items()):
            qual = _qualified(name, labels)
            if isinstance(inst, Counter):
                counters[qual] = inst.value
            elif isinstance(inst, Gauge):
                gauges[qual] = inst.value
            else:
                histograms[qual] = {
                    "count": inst.count,
                    "total": inst.total,
                    "min": inst.vmin,
                    "max": inst.vmax,
                    "mean": inst.mean,
                    "p50": inst.quantile(0.50),
                    "p95": inst.quantile(0.95),
                    "buckets": inst.nonzero_buckets(),
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def reset(self) -> None:
        """Drop every instrument (a fresh run over the same
        registry)."""
        self._instruments.clear()
        self._kinds.clear()


def labels_of(instrument) -> Dict[str, str]:
    """The instrument's labels as a plain dict (empty for nulls)."""
    return dict(getattr(instrument, "labels", ()) or ())


def qualified_name(instrument) -> str:
    return _qualified(instrument.name, instrument.labels)

"""Span-based tracing for the message data path.

A :class:`Span` is one timed step of handling a message — stage
classification, the enclave match-action lookup, one interpreter
execution, a StatsReport push.  Spans nest: the :class:`Tracer`
keeps an active-span stack, so a span opened inside another span's
``with`` block records that span as its parent and inherits its
``trace_id``.  A message's full journey is then one *trace*: the
set of spans sharing a ``trace_id``, linked by ``parent_id``.

Finished spans land in a bounded :class:`FlightRecorder` — a ring
buffer that keeps the most recent N spans and counts what it drops,
so tracing a long run costs bounded memory (the same reasoning as
the reservoir in :mod:`repro.core.accounting`).

Ids are drawn from plain counters, not randomness, so traces are
deterministic under the simulator's seeded runs.  Durations use
``time.perf_counter_ns`` by default because the simulator clock does
not advance while a packet is being processed; pass ``clock=`` to
measure in a different timebase.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple


class Span:
    """One timed, attributed step; ends when its ``with`` block exits.

    ``packet_id`` and ``flow_id`` are first-class correlation tags
    rather than ordinary attrs: per-packet tooling (the latency
    decomposer, trace joins) reads them as plain fields instead of
    digging through the attrs dict.  They are set at span creation
    (``tracer.span(name, packet_id=...)``) or later via :meth:`tag`.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name",
                 "start_ns", "end_ns", "attrs", "packet_id",
                 "flow_id", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, trace_id: int,
                 span_id: int, parent_id: Optional[int],
                 start_ns: int, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.packet_id = attrs.pop("packet_id", None)
        self.flow_id = attrs.pop("flow_id", None)
        self.attrs = attrs

    def set(self, **attrs: object) -> "Span":
        """Attach result attributes (hit table, ops executed, ...)."""
        self.attrs.update(attrs)
        return self

    def tag(self, packet_id=None, flow_id=None) -> "Span":
        """Set the correlation ids after the span was opened (e.g.
        once the packet a message maps to is known)."""
        if packet_id is not None:
            self.packet_id = packet_id
        if flow_id is not None:
            self.flow_id = flow_id
        return self

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._end(self)

    def as_dict(self) -> Dict[str, object]:
        out = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
        }
        if self.packet_id is not None:
            out["packet_id"] = self.packet_id
        if self.flow_id is not None:
            out["flow_id"] = self.flow_id
        return out

    def __repr__(self) -> str:
        return (f"Span({self.name} trace={self.trace_id} "
                f"span={self.span_id} parent={self.parent_id} "
                f"dur={self.duration_ns}ns)")


class _NullSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()
    name = ""
    trace_id = span_id = -1
    parent_id = None
    packet_id = flow_id = None
    start_ns = end_ns = 0
    duration_ns = 0
    attrs: Dict[str, object] = {}

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def tag(self, packet_id=None, flow_id=None) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class FlightRecorder:
    """Bounded ring of the most recently finished spans."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be > 0")
        self.capacity = capacity
        self._ring: Deque[Span] = deque(maxlen=capacity)
        self.recorded = 0

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._ring)

    def add(self, span: Span) -> None:
        self._ring.append(span)
        self.recorded += 1

    def spans(self) -> List[Span]:
        """Retained spans, oldest first."""
        return list(self._ring)

    def traces(self) -> Dict[int, List[Span]]:
        """Retained spans grouped by trace, each trace oldest-first."""
        out: Dict[int, List[Span]] = {}
        for span in self._ring:
            out.setdefault(span.trace_id, []).append(span)
        return out

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0


class Tracer:
    """Creates spans and maintains the active-span (nesting) stack.

    Not re-entrant across threads — the whole stack is single-threaded
    discrete-event code, so one context stack suffices.
    """

    def __init__(self, recorder: Optional[FlightRecorder] = None,
                 enabled: bool = True,
                 clock: Callable[[], int] = time.perf_counter_ns
                 ) -> None:
        self.enabled = enabled
        self.recorder = recorder
        self.clock = clock
        self._stack: List[Span] = []
        self._next_trace = 1
        self._next_span = 1

    def span(self, name: str, **attrs: object):
        """Open a span; use as ``with tracer.span("enclave.process"):``.

        The span becomes the active parent for any span opened before
        its ``with`` block exits.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(self, name, trace_id, self._next_span, parent_id,
                    self.clock(), attrs)
        self._next_span += 1
        self._stack.append(span)
        return span

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def _end(self, span: Span) -> None:
        span.end_ns = self.clock()
        # Unwind to (and past) the span being ended; an exception may
        # have skipped inner __exit__ calls, so close those too.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end_ns is None:
                top.end_ns = span.end_ns
                if self.recorder is not None:
                    self.recorder.add(top)
        if self.recorder is not None:
            self.recorder.add(span)


def traces_containing(spans: Sequence[Span],
                      names: Sequence[str]) -> List[int]:
    """Trace ids whose span-name set covers all of ``names``.

    The data-path acceptance check: a trace holding
    ``stage.classify``, ``enclave.lookup`` and ``interpreter.execute``
    is one message followed end to end.
    """
    required = set(names)
    seen: Dict[int, set] = {}
    for span in spans:
        seen.setdefault(span.trace_id, set()).add(span.name)
    return [trace_id for trace_id, present in seen.items()
            if required <= present]


def spans_for_packet(spans: Sequence[Span],
                     packet_id: object) -> List[Span]:
    """Spans tagged with one packet id, oldest first — the packet's
    wall-clock processing story across components."""
    return [span for span in spans if span.packet_id == packet_id]


def format_trace(spans: Sequence[Span]) -> str:
    """Render one trace as an indented tree (for CLI summaries)."""
    by_parent: Dict[Optional[int], List[Span]] = {}
    for span in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        by_parent.setdefault(span.parent_id, []).append(span)
    span_ids = {s.span_id for s in spans}
    lines: List[str] = []

    def walk(parent_id: Optional[int], depth: int) -> None:
        for span in by_parent.get(parent_id, ()):
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            lines.append(f"{'  ' * depth}{span.name} "
                         f"[{span.duration_ns} ns]"
                         + (f" {attrs}" if attrs else ""))
            walk(span.span_id, depth + 1)

    # Roots: spans with no parent, or whose parent fell out of the ring.
    walk(None, 0)
    for span in by_parent:
        if span is not None and span not in span_ids:
            walk(span, 0)
    return "\n".join(lines)

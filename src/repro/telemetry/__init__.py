"""Unified telemetry: metrics registry, data-path spans, exporters.

One :class:`Telemetry` object bundles the three pieces every
instrumented component needs:

* ``registry`` — a :class:`~repro.telemetry.registry.MetricRegistry`
  of counters/gauges/log-bucketed histograms,
* ``tracer`` — a :class:`~repro.telemetry.spans.Tracer` whose
  finished spans land in
* ``recorder`` — a bounded
  :class:`~repro.telemetry.spans.FlightRecorder`.

Components take ``telemetry=None`` and fall back to
:data:`NULL_TELEMETRY`, whose registry hands out no-op instruments
and whose tracer hands out a no-op span — instrumentation then costs
one empty method call, nothing more (see
``tests/lang/test_telemetry_overhead.py`` for the enforced bound).

Usage::

    tel = Telemetry()
    enclave = Enclave("h1.enclave", telemetry=tel)
    ...
    print(prometheus_text(tel.registry))
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from .registry import (Counter, Gauge, Histogram, MetricRegistry,
                       NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM,
                       RegistryError, nearest_rank)
from .spans import (FlightRecorder, NULL_SPAN, Span, Tracer,
                    format_trace, spans_for_packet,
                    traces_containing)
from .exporters import (jsonl_dump, metric_jsonl_lines,
                        prometheus_text, span_jsonl_lines,
                        write_jsonl)

__all__ = [
    "Telemetry", "NULL_TELEMETRY",
    "MetricRegistry", "Counter", "Gauge", "Histogram",
    "RegistryError", "nearest_rank",
    "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM", "NULL_SPAN",
    "Tracer", "Span", "FlightRecorder",
    "traces_containing", "format_trace", "spans_for_packet",
    "prometheus_text", "metric_jsonl_lines", "span_jsonl_lines",
    "jsonl_dump", "write_jsonl",
]


class Telemetry:
    """Registry + tracer + flight recorder for one run.

    ``latency`` optionally carries a
    :class:`repro.latency.LatencyCollector`: a sink for *simulated-
    time* per-packet events (stack emit, rate-limiter queueing, port
    dwell, host receive) that the latency-decomposition subsystem
    joins into per-packet delay breakdowns.  It stays ``None`` unless
    a run opts in, so instrumented components guard with one
    ``is not None`` check and pay nothing otherwise.
    """

    def __init__(self, enabled: bool = True,
                 recorder_capacity: int = 4096,
                 clock: Optional[Callable[[], int]] = None,
                 latency=None) -> None:
        self.enabled = enabled
        self.registry = MetricRegistry(enabled=enabled)
        self.recorder = FlightRecorder(recorder_capacity)
        self.tracer = Tracer(self.recorder, enabled=enabled,
                             clock=clock or time.perf_counter_ns)
        self.latency = latency if enabled else None

    def reset(self) -> None:
        self.registry.reset()
        self.recorder.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"Telemetry({state}, "
                f"{len(self.registry.instruments())} instruments, "
                f"{self.recorder.recorded} spans)")


#: Shared disabled bundle; ``component(telemetry=None)`` binds to this.
NULL_TELEMETRY = Telemetry(enabled=False, recorder_capacity=1)

"""Packets and header constants.

A :class:`Packet` carries the union of the header fields the simulator
needs (Ethernet/802.1q, IPv4, TCP) plus the Eden annotations — the
class/metadata classifications attached by stages — and the
action-function-writable fields of the default packet schema
(``priority``, ``path_id``, ``drop``, ``to_controller``, ``queue_id``,
``charge``, ``ecn``).  Attribute names match the schema exactly, so the
enclave reads and writes packets with plain ``getattr``/``setattr``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

PROTO_TCP = 6
PROTO_UDP = 17

#: Bytes of header per packet (Ethernet + IPv4 + TCP, no options).
HEADER_BYTES = 14 + 20 + 20
#: Maximum segment size (payload bytes per full packet).
MSS = 1460
#: Maximum transmission unit (payload + IP/TCP headers).
MTU = MSS + HEADER_BYTES

FLAG_SYN = 0x1
FLAG_ACK = 0x2
FLAG_FIN = 0x4
FLAG_RST = 0x8

_packet_ids = itertools.count(1)


def reset_packet_ids() -> None:
    """Restart the process-global packet-id counter at 1.

    Packet ids only exist to make captures readable; they are the one
    piece of packet state not derived from a run's seed.  Determinism
    tests that digest on-the-wire bytes call this before each run so
    two same-seed runs in one process produce identical frames.
    """
    global _packet_ids
    _packet_ids = itertools.count(1)


class Packet:
    """One network packet.

    ``size`` is the on-wire size in bytes (headers included) — it backs
    the ``ipv4.total_length`` mapping of the packet schema.  ``charge``
    is the number of bytes a rate limiter should charge for this packet
    (0 means "use ``size``"); Pulsar's action function overrides it for
    READ requests.
    """

    __slots__ = (
        "packet_id", "src_ip", "dst_ip", "src_port", "dst_port",
        "proto", "size", "payload_len", "seq", "ack", "flags",
        "priority", "path_id", "drop", "to_controller", "queue_id",
        "charge", "ecn", "tenant", "classifications", "metadata",
        "created_at", "flow_id", "hop_count", "sack",
    )

    def __init__(self, src_ip: int, dst_ip: int, src_port: int,
                 dst_port: int, proto: int = PROTO_TCP,
                 payload_len: int = 0, seq: int = 0, ack: int = 0,
                 flags: int = 0, tenant: int = 0,
                 created_at: int = 0) -> None:
        self.packet_id = next(_packet_ids)
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.proto = proto
        self.payload_len = payload_len
        self.size = payload_len + HEADER_BYTES
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.priority = 0
        self.path_id = 0
        self.drop = 0
        self.to_controller = 0
        self.queue_id = 0
        self.charge = 0
        self.ecn = 0
        self.tenant = tenant
        self.classifications: List = []
        self.metadata: Dict[str, object] = {}
        self.created_at = created_at
        self.flow_id: Optional[Tuple] = None
        self.hop_count = 0
        #: SACK blocks: up to three (start, end) received-out-of-order
        #: ranges piggybacked on ACKs.
        self.sack: Tuple[Tuple[int, int], ...] = ()

    @property
    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        return (self.src_ip, self.src_port, self.dst_ip,
                self.dst_port, self.proto)

    @property
    def reverse_five_tuple(self) -> Tuple[int, int, int, int, int]:
        return (self.dst_ip, self.dst_port, self.src_ip,
                self.src_port, self.proto)

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def charge_bytes(self) -> int:
        """Bytes a rate limiter should account for this packet."""
        return self.charge if self.charge > 0 else self.size

    def __repr__(self) -> str:
        flags = "".join(name for bit, name in
                        ((FLAG_SYN, "S"), (FLAG_ACK, "A"),
                         (FLAG_FIN, "F"), (FLAG_RST, "R"))
                        if self.flags & bit) or "-"
        return (f"Packet#{self.packet_id}({self.src_ip}:{self.src_port}"
                f"->{self.dst_ip}:{self.dst_port} {flags} "
                f"seq={self.seq} ack={self.ack} len={self.payload_len} "
                f"prio={self.priority} path={self.path_id})")


def ip_of(host_index: int) -> int:
    """A stable fake IPv4 address for host number ``host_index``."""
    return (10 << 24) | host_index

"""Deterministic discrete-event simulator core.

All simulated time is integer nanoseconds.  Events scheduled for the
same instant fire in scheduling order (a monotonically increasing
sequence number breaks ties), which makes every run bit-for-bit
reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, List, Optional

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

KBPS = 1_000
MBPS = 1_000_000
GBPS = 1_000_000_000


class SimulationError(Exception):
    """The simulation reached an inconsistent state."""


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "_owner")

    def __init__(self, time: int, seq: int,
                 callback: Callable, args: tuple,
                 owner: "Optional[Simulator]" = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._owner = owner

    def cancel(self) -> None:
        # The owner's live-event counter must move exactly once per
        # event: repeated cancels and cancels after the event fired
        # (owner already detached) are no-ops.
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._live -= 1
            self._owner = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event loop with an integer-nanosecond clock.

    A single :class:`random.Random` seeded at construction is shared by
    every component that needs randomness (ECMP hashing salt, workload
    generation, the enclave's ``rand`` builtin), so a run is fully
    determined by its seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: int = 0
        self.rng = random.Random(seed)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._live = 0
        self.events_processed = 0
        # Bound lazily (bind_telemetry) to avoid importing telemetry
        # nulls here; run() checks for None instead.
        self._m_events = None
        self._g_now = None
        #: Per-packet latency event sink
        #: (:class:`repro.latency.LatencyCollector`); None keeps the
        #: data-path instrumentation in :mod:`repro.netsim.link` and
        #: :mod:`repro.netsim.host` on a one-comparison no-op path.
        self.latency = None

    def bind_telemetry(self, telemetry, **labels) -> None:
        """Mirror the event counter and clock into a
        :class:`repro.telemetry.MetricRegistry` (batched per run() so
        the event loop itself stays uninstrumented).  ``labels`` lets
        a sharded run keep one ``sim_events_total`` series per shard."""
        if telemetry is None or not telemetry.enabled:
            return
        self._m_events = telemetry.registry.counter("sim_events_total",
                                                    **labels)
        self._g_now = telemetry.registry.gauge("sim_now_ns", **labels)
        latency = getattr(telemetry, "latency", None)
        if latency is not None:
            self.latency = latency

    def schedule(self, delay_ns: int, callback: Callable,
                 *args) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule {delay_ns} ns in the past")
        event = Event(self.now + delay_ns, next(self._seq),
                      callback, args, owner=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def at(self, time_ns: int, callback: Callable, *args) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time_ns - self.now, callback, *args)

    def run(self, until_ns: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``until_ns`` passes, or
        ``max_events`` fire.  Returns the number of events processed."""
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            event = self._heap[0]
            if until_ns is not None and event.time > until_ns:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event time went backwards")
            self.now = event.time
            self._live -= 1
            event._owner = None
            event.callback(*event.args)
            processed += 1
        if until_ns is not None and self.now < until_ns:
            self.now = until_ns
        self.events_processed += processed
        if self._m_events is not None:
            self._m_events.inc(processed)
            self._g_now.set(self.now)
        return processed

    @property
    def pending(self) -> int:
        """Number of live (not yet fired, not cancelled) events.

        O(1): a counter maintained by schedule/cancel/run instead of a
        heap scan — the sharded barrier loop polls this per window.
        """
        return self._live

    def next_event_time(self) -> Optional[int]:
        """Earliest live event time, or None when the heap is drained.

        Cancelled events at the front are popped lazily, so the peek
        is amortized O(1).
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def clock(self) -> int:
        """Clock callable handed to enclaves (CLOCK opcode source)."""
        return self.now

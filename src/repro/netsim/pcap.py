"""pcap capture of simulated traffic.

A :class:`PcapWriter` serializes packets with
:mod:`repro.netsim.wire` and writes a standard little-endian pcap file
(LINKTYPE_ETHERNET), so a simulation run can be inspected in
Wireshark/tcpdump.  :class:`PortTap` attaches a writer to a
:class:`~repro.netsim.link.Port` and records everything the port
transmits, stamped with simulated time.

Example::

    tap = PortTap(sim, net.switches["tor"].port_to("h1"),
                  "run.pcap")
    sim.run(until_ns=...)
    tap.close()
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Union

from .link import Port
from .packet import Packet
from .simulator import Simulator
from .wire import encode

PCAP_MAGIC = 0xA1B2C3D4        # microsecond timestamps
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
GLOBAL_HEADER = struct.Struct("<IHHiIII")
RECORD_HEADER = struct.Struct("<IIII")
DEFAULT_SNAPLEN = 65535


class PcapWriter:
    """Writes packets to a pcap file (or any binary stream)."""

    def __init__(self, destination: Union[str, BinaryIO],
                 snaplen: int = DEFAULT_SNAPLEN) -> None:
        if isinstance(destination, str):
            self._stream: BinaryIO = open(destination, "wb")
            self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False
        self.snaplen = snaplen
        self.packets_written = 0
        self._stream.write(GLOBAL_HEADER.pack(
            PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1],
            0, 0, snaplen, LINKTYPE_ETHERNET))

    def write(self, packet: Packet, timestamp_ns: int) -> None:
        frame = encode(packet)
        captured = frame[:self.snaplen]
        seconds, remainder_ns = divmod(timestamp_ns, 1_000_000_000)
        self._stream.write(RECORD_HEADER.pack(
            seconds, remainder_ns // 1000, len(captured),
            len(frame)))
        self._stream.write(captured)
        self.packets_written += 1

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PortTap:
    """Mirrors every packet a port transmits into a pcap file."""

    def __init__(self, sim: Simulator, port: Port,
                 destination: Union[str, BinaryIO],
                 snaplen: int = DEFAULT_SNAPLEN) -> None:
        self.sim = sim
        self.port = port
        self.writer = PcapWriter(destination, snaplen=snaplen)
        self._original_enqueue = port.enqueue
        port.enqueue = self._tapped_enqueue  # type: ignore

    def _tapped_enqueue(self, packet: Packet) -> bool:
        accepted = self._original_enqueue(packet)
        if accepted:
            self.writer.write(packet, self.sim.now)
        return accepted

    def detach(self) -> None:
        """Stop capturing (restores the port's enqueue)."""
        self.port.enqueue = self._original_enqueue  # type: ignore

    def close(self) -> None:
        self.detach()
        self.writer.close()


def read_pcap(path: str):
    """Parse a pcap file back into ``(timestamp_ns, Packet)`` pairs
    (for tests and offline analysis; assumes frames written by
    :class:`PcapWriter`)."""
    from .wire import decode

    out = []
    with open(path, "rb") as stream:
        header = stream.read(GLOBAL_HEADER.size)
        (magic, _major, _minor, _tz, _sig, _snaplen,
         linktype) = GLOBAL_HEADER.unpack(header)
        if magic != PCAP_MAGIC:
            raise ValueError(f"bad pcap magic {magic:#x}")
        if linktype != LINKTYPE_ETHERNET:
            raise ValueError(f"unsupported linktype {linktype}")
        while True:
            record = stream.read(RECORD_HEADER.size)
            if len(record) < RECORD_HEADER.size:
                break
            seconds, micros, caplen, _origlen = \
                RECORD_HEADER.unpack(record)
            frame = stream.read(caplen)
            timestamp_ns = seconds * 1_000_000_000 + micros * 1000
            out.append((timestamp_ns, decode(frame)))
    return out

"""Discrete-event datacenter network simulator (the Eden substrate)."""

from .host import Host
from .link import DEFAULT_PROP_DELAY_NS, NUM_PRIORITIES, Port, duplex_connect
from .packet import (FLAG_ACK, FLAG_FIN, FLAG_RST, FLAG_SYN,
                     HEADER_BYTES, MSS, MTU, Packet, PROTO_TCP,
                     PROTO_UDP, ip_of)
from .routing import (as_graph, install_l3_routes, install_path_labels,
                      provision_labeled_paths, simple_paths)
from .simulator import (Event, GBPS, KBPS, MBPS, MS, NS, SEC,
                        SimulationError, Simulator, US)
from .packet import reset_packet_ids
from .switchdev import Device, Switch, flow_hash, stable_salt
from .topology import (HostSpec, LinkSpec, Network, PATH_FAST,
                       PATH_SLOW, SwitchSpec, TopologyError,
                       TopologySpec, asymmetric_two_path,
                       fat_tree_spec, star, star_spec)
from .wire import packet_digest
from .pcap import PcapWriter, PortTap, read_pcap
from .sharded import (BoundaryPort, ShardPlan, ShardedSimulator,
                      ShardingError, run_multiprocessing, star_sharded)
from .wire import WireFormatError, decode as wire_decode, encode as wire_encode, ipv4_checksum
from .tracing import (FlowRecord, FlowTracker, SeriesStats,
                      ThroughputMeter, mean, percentile)

__all__ = [
    "DEFAULT_PROP_DELAY_NS", "Device", "Event", "FLAG_ACK", "FLAG_FIN",
    "FLAG_RST", "FLAG_SYN", "FlowRecord", "FlowTracker", "GBPS",
    "HEADER_BYTES", "Host", "KBPS", "MBPS", "MS", "MSS", "MTU",
    "Network", "NS", "NUM_PRIORITIES", "PATH_FAST", "PATH_SLOW",
    "Packet", "Port", "PROTO_TCP", "PROTO_UDP", "SEC", "SeriesStats",
    "SimulationError", "Simulator", "Switch", "ThroughputMeter",
    "TopologyError", "US", "as_graph", "asymmetric_two_path",
    "duplex_connect", "flow_hash", "install_l3_routes",
    "install_path_labels", "ip_of", "mean", "percentile",
    "provision_labeled_paths", "simple_paths", "star",
    "PcapWriter", "PortTap", "read_pcap",
    "BoundaryPort", "ShardPlan", "ShardedSimulator", "ShardingError",
    "run_multiprocessing", "star_sharded",
    "HostSpec", "LinkSpec", "SwitchSpec", "TopologySpec",
    "fat_tree_spec", "star_spec", "stable_salt", "reset_packet_ids",
    "packet_digest",
    "WireFormatError", "wire_decode", "wire_encode", "ipv4_checksum",
]

"""Network devices: the common base class and commodity switches.

Eden assumes only commodity network support (Section 3.5): priority
queuing (802.1q PCP, implemented in :mod:`repro.netsim.link`) and
label-based source routing — end hosts put a path label in the packet
(VLAN tag in the prototype) and switches forward by label, as in
SPAIN/MPLS.  Switches here implement exactly that: a label forwarding
table installed by the controller, with destination-based routing plus
flow-hash ECMP as the default when no label is present.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .link import Port
from .packet import Packet
from .simulator import Simulator


class Device:
    """Anything with ports: a switch or an end host."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: List[Port] = []
        self._port_by_peer: Dict[str, Port] = {}

    def attach_port(self, port: Port, peer: "Device") -> None:
        self.ports.append(port)
        self._port_by_peer[peer.name] = port

    def port_to(self, peer_name: str) -> Port:
        try:
            return self._port_by_peer[peer_name]
        except KeyError:
            raise KeyError(
                f"{self.name} has no port to {peer_name!r}; neighbors: "
                f"{sorted(self._port_by_peer)}") from None

    @property
    def neighbors(self) -> List[str]:
        return sorted(self._port_by_peer)

    def receive(self, packet: Packet, from_port: Port) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


def stable_salt(name: str, seed: int = 0) -> int:
    """A deterministic 32-bit ECMP salt derived from a device name.

    Spec-built topologies (:class:`repro.netsim.topology.TopologySpec`)
    use this instead of drawing from ``sim.rng`` so the salt does not
    depend on device construction order — a prerequisite for the
    sharded simulator, where each shard constructs only its own
    partition yet every replica of a switch must hash flows the same
    way.
    """
    h = (0x811C9DC5 ^ (seed & 0xFFFFFFFF)) & 0xFFFFFFFF
    for byte in name.encode():
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFF
        h ^= h >> 13
    return h


def flow_hash(five_tuple: Tuple[int, int, int, int, int],
              salt: int) -> int:
    """Deterministic 32-bit mix of a five-tuple (ECMP hashing)."""
    h = salt & 0xFFFFFFFF
    for value in five_tuple:
        h ^= value & 0xFFFFFFFF
        h = (h * 0x01000193) & 0xFFFFFFFF
        h ^= h >> 15
    return h


class Switch(Device):
    """An output-queued switch with label and L3 forwarding.

    Forwarding decision, in order:

    1. **Label**: if the packet carries a non-zero ``path_id`` and the
       label table has an entry for it, forward to that neighbor
       (source routing; entries are installed by the controller).
    2. **L3 + ECMP**: look up ``dst_ip`` in the route table; if several
       next hops are listed, pick one by hashing the five-tuple
       (per-flow ECMP, the datacenter default the paper's Section 2.1.1
       starts from).

    Packets with no matching entry are counted and dropped.
    """

    def __init__(self, sim: Simulator, name: str,
                 ecmp_salt: Optional[int] = None) -> None:
        super().__init__(sim, name)
        self.label_table: Dict[int, str] = {}
        self.route_table: Dict[int, List[str]] = {}
        self.ecmp_salt = (ecmp_salt if ecmp_salt is not None
                          else sim.rng.getrandbits(32))
        self.rx_packets = 0
        self.no_route_drops = 0

    # -- controller-facing configuration -------------------------------

    def install_label(self, label: int, next_hop: str) -> None:
        if label == 0:
            raise ValueError("label 0 is reserved for 'no label'")
        self.label_table[label] = next_hop

    def remove_label(self, label: int) -> None:
        self.label_table.pop(label, None)

    def install_route(self, dst_ip: int,
                      next_hops: List[str]) -> None:
        if not next_hops:
            raise ValueError("route needs at least one next hop")
        self.route_table[dst_ip] = list(next_hops)

    # -- data path -------------------------------------------------------

    def receive(self, packet: Packet, from_port: Port) -> None:
        self.rx_packets += 1
        port = self._forwarding_port(packet)
        if port is None:
            self.no_route_drops += 1
            return
        port.enqueue(packet)

    def _forwarding_port(self, packet: Packet) -> Optional[Port]:
        if packet.path_id:
            next_hop = self.label_table.get(packet.path_id)
            if next_hop is not None:
                return self.port_to(next_hop)
        next_hops = self.route_table.get(packet.dst_ip)
        if not next_hops:
            return None
        if len(next_hops) == 1:
            choice = next_hops[0]
        else:
            index = flow_hash(packet.five_tuple,
                              self.ecmp_salt) % len(next_hops)
            choice = next_hops[index]
        return self.port_to(choice)

"""Measurement: flow-completion times, throughput, and summaries.

The paper's evaluation reports average and 95th-percentile flow
completion times bucketed by flow size (Fig 9), aggregate throughput
(Figs 10 and 11), and relative CPU overheads (Fig 12).  This module
collects the raw samples and computes those summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..telemetry.registry import nearest_rank
from .simulator import SEC


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile; 0 for an empty sample.

    Delegates to :func:`repro.telemetry.registry.nearest_rank`: the
    ``ceil(pct/100 * n)``-th smallest value (1-indexed), so ``pct=0``
    is the minimum, ``pct=100`` the maximum, and small samples don't
    round past the intended rank (the old ``round(pct/100 * (n-1))``
    index put p95 of two samples at the *minimum*).
    """
    return nearest_rank(values, pct)


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class FlowRecord:
    """One completed request/flow/message."""

    flow_id: object
    size_bytes: int
    started_at: int
    completed_at: int
    kind: str = "flow"

    @property
    def fct_ns(self) -> int:
        return self.completed_at - self.started_at

    @property
    def fct_us(self) -> float:
        return self.fct_ns / 1_000.0


class FlowTracker:
    """Collects :class:`FlowRecord` samples and summarizes them."""

    def __init__(self) -> None:
        self.records: List[FlowRecord] = []

    def record(self, flow_id: object, size_bytes: int,
               started_at: int, completed_at: int,
               kind: str = "flow") -> FlowRecord:
        rec = FlowRecord(flow_id=flow_id, size_bytes=size_bytes,
                         started_at=started_at,
                         completed_at=completed_at, kind=kind)
        self.records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self.records)

    def filtered(self, min_size: int = 0,
                 max_size: Optional[int] = None,
                 kind: Optional[str] = None) -> List[FlowRecord]:
        out = []
        for rec in self.records:
            if rec.size_bytes < min_size:
                continue
            if max_size is not None and rec.size_bytes >= max_size:
                continue
            if kind is not None and rec.kind != kind:
                continue
            out.append(rec)
        return out

    def fct_summary_us(self, min_size: int = 0,
                       max_size: Optional[int] = None,
                       kind: Optional[str] = None
                       ) -> Tuple[float, float, int]:
        """(mean, 95th percentile, count) of FCT in microseconds."""
        fcts = [r.fct_us for r in self.filtered(min_size, max_size,
                                                kind)]
        return mean(fcts), percentile(fcts, 95.0), len(fcts)


class ThroughputMeter:
    """Accumulates delivered bytes to report goodput.

    Individual ``(time, bytes)`` samples are retained so throughput
    can be computed over an arbitrary window (e.g. excluding warmup).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.bytes_total = 0
        self.samples: List[Tuple[int, int]] = []
        self.first_at: Optional[int] = None
        self.last_at: Optional[int] = None

    def add(self, nbytes: int, now_ns: int) -> None:
        if self.first_at is None:
            self.first_at = now_ns
        self.last_at = now_ns
        self.bytes_total += nbytes
        self.samples.append((now_ns, nbytes))

    def bytes_in_window(self, start_ns: int, end_ns: int) -> int:
        return sum(b for t, b in self.samples
                   if start_ns <= t <= end_ns)

    def mbps(self, start_ns: Optional[int] = None,
             end_ns: Optional[int] = None) -> float:
        """Average goodput in Mbit/s over the observed (or given)
        window."""
        start = start_ns if start_ns is not None else self.first_at
        end = end_ns if end_ns is not None else self.last_at
        if start is None or end is None or end <= start:
            return 0.0
        window_bytes = self.bytes_in_window(start, end)
        return window_bytes * 8.0 * SEC / (end - start) / 1e6

    def mbytes_per_s(self, start_ns: Optional[int] = None,
                     end_ns: Optional[int] = None) -> float:
        return self.mbps(start_ns, end_ns) / 8.0


@dataclass
class SeriesStats:
    """Mean and a (normal-approximation) 95% confidence half-width."""

    label: str
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def ci95(self) -> float:
        n = len(self.values)
        if n < 2:
            return 0.0
        mu = self.mean
        var = sum((v - mu) ** 2 for v in self.values) / (n - 1)
        return 1.96 * (var / n) ** 0.5

    def __str__(self) -> str:
        return f"{self.label}: {self.mean:.1f} ± {self.ci95:.1f}"

"""Topology construction.

:class:`Network` owns the devices and links of one simulated
datacenter fabric, and the canned topologies used by the paper's
evaluation are built here:

* :func:`star` — n hosts behind one switch (the software testbed of
  Section 4.3: five machines on an Arista 7050QX); used for the flow
  scheduling (Fig 9), storage QoS (Fig 11) and overhead (Fig 12)
  experiments.
* :func:`asymmetric_two_path` — two hosts joined by a 10 Gbps and a
  1 Gbps path (Figure 1 / the programmable-NIC testbed of Section 5.2);
  used for the ECMP/WCMP experiment (Fig 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .host import Host
from .link import DEFAULT_PROP_DELAY_NS, Port, duplex_connect
from .packet import ip_of
from .simulator import GBPS, Simulator
from .switchdev import Device, Switch, stable_salt


class TopologyError(Exception):
    """The topology request was inconsistent."""


class Network:
    """A container of hosts, switches, and the links between them."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: List[Tuple[str, str, int]] = []
        self._next_host_index = 1

    # -- construction -----------------------------------------------------

    def add_host(self, name: str,
                 ip: Optional[int] = None) -> Host:
        if name in self.hosts or name in self.switches:
            raise TopologyError(f"duplicate device name {name!r}")
        if ip is None:
            ip = ip_of(self._next_host_index)
        self._next_host_index += 1
        host = Host(self.sim, name, ip)
        self.hosts[name] = host
        return host

    def add_switch(self, name: str,
                   ecmp_salt: Optional[int] = None) -> Switch:
        if name in self.hosts or name in self.switches:
            raise TopologyError(f"duplicate device name {name!r}")
        switch = Switch(self.sim, name, ecmp_salt=ecmp_salt)
        self.switches[name] = switch
        return switch

    def device(self, name: str) -> Device:
        if name in self.hosts:
            return self.hosts[name]
        if name in self.switches:
            return self.switches[name]
        raise TopologyError(f"no device {name!r}")

    def connect(self, a: str, b: str, rate_bps: int,
                prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
                queue_capacity_bytes: int = 300_000,
                ecn_threshold_bytes: Optional[int] = None
                ) -> Tuple[Port, Port]:
        ports = duplex_connect(
            self.sim, self.device(a), self.device(b), rate_bps,
            prop_delay_ns=prop_delay_ns,
            queue_capacity_bytes=queue_capacity_bytes,
            ecn_threshold_bytes=ecn_threshold_bytes)
        self.links.append((a, b, rate_bps))
        return ports

    # -- failure injection ----------------------------------------------

    def fail_link(self, a: str, b: str) -> int:
        """Cut the a<->b link in both directions; returns packets
        dropped from the two queues."""
        dropped = self.device(a).port_to(b).fail()
        dropped += self.device(b).port_to(a).fail()
        return dropped

    def repair_link(self, a: str, b: str) -> None:
        self.device(a).port_to(b).repair()
        self.device(b).port_to(a).repair()

    # -- queries ----------------------------------------------------------

    def host_ip(self, name: str) -> int:
        return self.hosts[name].ip

    def adjacency(self) -> Dict[str, List[Tuple[str, int]]]:
        """Neighbor lists with link rates (for route computation)."""
        adj: Dict[str, List[Tuple[str, int]]] = {}
        for a, b, rate in self.links:
            adj.setdefault(a, []).append((b, rate))
            adj.setdefault(b, []).append((a, rate))
        return adj


def star(sim: Simulator, n_hosts: int,
         host_rate_bps: int = 10 * GBPS,
         switch_name: str = "tor",
         queue_capacity_bytes: int = 300_000,
         prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
         host_rates: Optional[Dict[str, int]] = None) -> Network:
    """n hosts (named h1..hn) behind one top-of-rack switch.

    ``host_rates`` optionally overrides the link rate of individual
    hosts (Fig 11's storage server sits behind a 1 Gbps link).
    """
    if n_hosts < 2:
        raise TopologyError("a star needs at least two hosts")
    net = Network(sim)
    tor = net.add_switch(switch_name)
    for i in range(1, n_hosts + 1):
        name = f"h{i}"
        host = net.add_host(name)
        rate = (host_rates or {}).get(name, host_rate_bps)
        net.connect(name, switch_name, rate,
                    prop_delay_ns=prop_delay_ns,
                    queue_capacity_bytes=queue_capacity_bytes)
        tor.install_route(host.ip, [name])
    return net


#: Path labels used by the two-path topology.
PATH_FAST = 1
PATH_SLOW = 2


def asymmetric_two_path(sim: Simulator,
                        fast_bps: int = 10 * GBPS,
                        slow_bps: int = 1 * GBPS,
                        prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
                        queue_capacity_bytes: int = 300_000) -> Network:
    """Figure 1 / Section 5.2: h1 and h2 joined by two disjoint paths.

    h1 -- sfast -- h2 at ``fast_bps`` and h1 -- sslow -- h2 at
    ``slow_bps``.  Hosts have one NIC port per path (the testbed's
    dual-port NICs); path labels :data:`PATH_FAST`/:data:`PATH_SLOW`
    select between them, and the hosts' ``path_port_map`` must be set
    accordingly (see :func:`repro.netsim.routing.setup_two_path_hosts`).
    """
    net = Network(sim)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    sfast = net.add_switch("sfast")
    sslow = net.add_switch("sslow")
    net.connect("h1", "sfast", fast_bps, prop_delay_ns=prop_delay_ns,
                queue_capacity_bytes=queue_capacity_bytes)
    net.connect("sfast", "h2", fast_bps, prop_delay_ns=prop_delay_ns,
                queue_capacity_bytes=queue_capacity_bytes)
    net.connect("h1", "sslow", slow_bps, prop_delay_ns=prop_delay_ns,
                queue_capacity_bytes=queue_capacity_bytes)
    net.connect("sslow", "h2", slow_bps, prop_delay_ns=prop_delay_ns,
                queue_capacity_bytes=queue_capacity_bytes)
    for switch in (sfast, sslow):
        switch.install_route(h1.ip, ["h1"])
        switch.install_route(h2.ip, ["h2"])
    return net


# ---------------------------------------------------------------------------
# Declarative topology specs
# ---------------------------------------------------------------------------
#
# A :class:`TopologySpec` is a plain-data (picklable) description of a
# fabric: every device, link, ECMP salt and route, with no simulator
# references.  The single-heap path materializes it with
# :meth:`TopologySpec.build`; the sharded simulator
# (:mod:`repro.netsim.sharded`) builds one *partition* of it per shard
# — which is why everything a device needs (in particular the ECMP
# salt, normally drawn from ``sim.rng`` in construction order) must be
# pinned in the spec itself.


@dataclass(frozen=True)
class HostSpec:
    name: str
    ip: int


@dataclass(frozen=True)
class SwitchSpec:
    name: str
    ecmp_salt: int


@dataclass(frozen=True)
class LinkSpec:
    a: str
    b: str
    rate_bps: int
    prop_delay_ns: int = DEFAULT_PROP_DELAY_NS
    queue_capacity_bytes: int = 300_000
    ecn_threshold_bytes: Optional[int] = None


@dataclass
class TopologySpec:
    """A serializable fabric description (devices, links, routes).

    ``routes`` maps a switch name to ``{dst_ip: (next_hop, ...)}``;
    multiple next hops mean per-flow ECMP, hashed with the switch's
    pinned salt.
    """

    hosts: Tuple[HostSpec, ...] = ()
    switches: Tuple[SwitchSpec, ...] = ()
    links: Tuple[LinkSpec, ...] = ()
    routes: Dict[str, Dict[int, Tuple[str, ...]]] = \
        field(default_factory=dict)

    def host_ip(self, name: str) -> int:
        for h in self.hosts:
            if h.name == name:
                return h.ip
        raise TopologyError(f"no host {name!r} in spec")

    def device_names(self) -> List[str]:
        return ([h.name for h in self.hosts] +
                [s.name for s in self.switches])

    def neighbors(self, name: str) -> List[str]:
        out = []
        for link in self.links:
            if link.a == name:
                out.append(link.b)
            elif link.b == name:
                out.append(link.a)
        return out

    def build(self, sim: Simulator) -> Network:
        """Materialize the whole spec onto one simulator heap."""
        net = Network(sim)
        for h in self.hosts:
            net.add_host(h.name, ip=h.ip)
        for s in self.switches:
            net.add_switch(s.name, ecmp_salt=s.ecmp_salt)
        for link in self.links:
            net.connect(link.a, link.b, link.rate_bps,
                        prop_delay_ns=link.prop_delay_ns,
                        queue_capacity_bytes=link.queue_capacity_bytes,
                        ecn_threshold_bytes=link.ecn_threshold_bytes)
        for switch_name, table in self.routes.items():
            switch = net.switches[switch_name]
            for dst_ip, next_hops in table.items():
                switch.install_route(dst_ip, list(next_hops))
        return net


def star_spec(n_hosts: int,
              host_rate_bps: int = 10 * GBPS,
              switch_name: str = "tor",
              queue_capacity_bytes: int = 300_000,
              prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
              host_rates: Optional[Dict[str, int]] = None,
              salt_seed: int = 0) -> TopologySpec:
    """The spec equivalent of :func:`star` (hosts h1..hn behind one
    ToR), with the ECMP salt pinned by name instead of drawn from the
    simulator RNG."""
    if n_hosts < 2:
        raise TopologyError("a star needs at least two hosts")
    hosts = tuple(HostSpec(f"h{i}", ip_of(i))
                  for i in range(1, n_hosts + 1))
    links = tuple(
        LinkSpec(h.name, switch_name,
                 (host_rates or {}).get(h.name, host_rate_bps),
                 prop_delay_ns=prop_delay_ns,
                 queue_capacity_bytes=queue_capacity_bytes)
        for h in hosts)
    routes = {switch_name: {h.ip: (h.name,) for h in hosts}}
    return TopologySpec(
        hosts=hosts,
        switches=(SwitchSpec(switch_name,
                             stable_salt(switch_name, salt_seed)),),
        links=links, routes=routes)


def fat_tree_spec(k: int = 4,
                  host_rate_bps: int = 10 * GBPS,
                  fabric_rate_bps: int = 40 * GBPS,
                  host_prop_ns: int = DEFAULT_PROP_DELAY_NS,
                  fabric_prop_ns: int = 2_000,
                  core_prop_ns: int = 10_000,
                  queue_capacity_bytes: int = 300_000,
                  salt_seed: int = 0
                  ) -> Tuple[TopologySpec, Dict[str, int]]:
    """A k-ary fat-tree (k pods, k^3/4 hosts) with up/down routing.

    Returns ``(spec, group_of)`` where ``group_of`` maps each device
    name to its pod index — the natural host-group partitioning for
    the sharded simulator — with the core switches mapped to ``-1``
    (they sit on the cut and belong to the coordinator shard).
    ``core_prop_ns`` is the aggregation<->core propagation delay: with
    pod-granularity sharding those are the only cross-shard links, so
    it doubles as the conservative lookahead window.
    """
    if k < 2 or k % 2:
        raise TopologyError("fat-tree arity k must be even and >= 2")
    half = k // 2
    hosts: List[HostSpec] = []
    switches: List[SwitchSpec] = []
    links: List[LinkSpec] = []
    routes: Dict[str, Dict[int, Tuple[str, ...]]] = {}
    group_of: Dict[str, int] = {}

    def _sw(name: str, group: int) -> str:
        switches.append(SwitchSpec(name, stable_salt(name, salt_seed)))
        routes[name] = {}
        group_of[name] = group
        return name

    host_index = 1
    host_pod: List[List[HostSpec]] = []
    host_edge: Dict[str, str] = {}
    for p in range(k):
        pod_hosts: List[HostSpec] = []
        for e in range(half):
            edge = _sw(f"e{p}_{e}", p)
            for i in range(half):
                h = HostSpec(f"h{p}_{e}_{i}", ip_of(host_index))
                host_index += 1
                hosts.append(h)
                pod_hosts.append(h)
                group_of[h.name] = p
                host_edge[h.name] = edge
                links.append(LinkSpec(h.name, edge, host_rate_bps,
                                      prop_delay_ns=host_prop_ns,
                                      queue_capacity_bytes=
                                      queue_capacity_bytes))
        for a in range(half):
            agg = _sw(f"a{p}_{a}", p)
            for e in range(half):
                links.append(LinkSpec(f"e{p}_{e}", agg,
                                      fabric_rate_bps,
                                      prop_delay_ns=fabric_prop_ns,
                                      queue_capacity_bytes=
                                      queue_capacity_bytes))
        host_pod.append(pod_hosts)
    for a in range(half):
        for c in range(half):
            core = _sw(f"c{a}_{c}", -1)
            for p in range(k):
                links.append(LinkSpec(f"a{p}_{a}", core,
                                      fabric_rate_bps,
                                      prop_delay_ns=core_prop_ns,
                                      queue_capacity_bytes=
                                      queue_capacity_bytes))

    all_hosts = list(hosts)
    for p in range(k):
        pod_host_names = {h.name for h in host_pod[p]}
        aggs = tuple(f"a{p}_{a}" for a in range(half))
        for e in range(half):
            edge = f"e{p}_{e}"
            table = routes[edge]
            for h in all_hosts:
                if host_edge[h.name] == edge:
                    table[h.ip] = (h.name,)
                else:
                    # Same-pod (via agg) and inter-pod traffic both go
                    # up; aggs bounce same-pod flows straight back down.
                    table[h.ip] = aggs
        for a in range(half):
            agg = f"a{p}_{a}"
            ups = tuple(f"c{a}_{c}" for c in range(half))
            table = routes[agg]
            for h in all_hosts:
                if h.name in pod_host_names:
                    table[h.ip] = (host_edge[h.name],)
                else:
                    table[h.ip] = ups
    for a in range(half):
        for c in range(half):
            core = f"c{a}_{c}"
            table = routes[core]
            for p in range(k):
                for h in host_pod[p]:
                    table[h.ip] = (f"a{p}_{a}",)

    return TopologySpec(hosts=tuple(hosts), switches=tuple(switches),
                        links=tuple(links),
                        routes=routes), group_of

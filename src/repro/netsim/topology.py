"""Topology construction.

:class:`Network` owns the devices and links of one simulated
datacenter fabric, and the canned topologies used by the paper's
evaluation are built here:

* :func:`star` — n hosts behind one switch (the software testbed of
  Section 4.3: five machines on an Arista 7050QX); used for the flow
  scheduling (Fig 9), storage QoS (Fig 11) and overhead (Fig 12)
  experiments.
* :func:`asymmetric_two_path` — two hosts joined by a 10 Gbps and a
  1 Gbps path (Figure 1 / the programmable-NIC testbed of Section 5.2);
  used for the ECMP/WCMP experiment (Fig 10).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .host import Host
from .link import DEFAULT_PROP_DELAY_NS, Port, duplex_connect
from .packet import ip_of
from .simulator import GBPS, Simulator
from .switchdev import Device, Switch


class TopologyError(Exception):
    """The topology request was inconsistent."""


class Network:
    """A container of hosts, switches, and the links between them."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: List[Tuple[str, str, int]] = []
        self._next_host_index = 1

    # -- construction -----------------------------------------------------

    def add_host(self, name: str,
                 ip: Optional[int] = None) -> Host:
        if name in self.hosts or name in self.switches:
            raise TopologyError(f"duplicate device name {name!r}")
        if ip is None:
            ip = ip_of(self._next_host_index)
        self._next_host_index += 1
        host = Host(self.sim, name, ip)
        self.hosts[name] = host
        return host

    def add_switch(self, name: str) -> Switch:
        if name in self.hosts or name in self.switches:
            raise TopologyError(f"duplicate device name {name!r}")
        switch = Switch(self.sim, name)
        self.switches[name] = switch
        return switch

    def device(self, name: str) -> Device:
        if name in self.hosts:
            return self.hosts[name]
        if name in self.switches:
            return self.switches[name]
        raise TopologyError(f"no device {name!r}")

    def connect(self, a: str, b: str, rate_bps: int,
                prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
                queue_capacity_bytes: int = 300_000,
                ecn_threshold_bytes: Optional[int] = None
                ) -> Tuple[Port, Port]:
        ports = duplex_connect(
            self.sim, self.device(a), self.device(b), rate_bps,
            prop_delay_ns=prop_delay_ns,
            queue_capacity_bytes=queue_capacity_bytes,
            ecn_threshold_bytes=ecn_threshold_bytes)
        self.links.append((a, b, rate_bps))
        return ports

    # -- failure injection ----------------------------------------------

    def fail_link(self, a: str, b: str) -> int:
        """Cut the a<->b link in both directions; returns packets
        dropped from the two queues."""
        dropped = self.device(a).port_to(b).fail()
        dropped += self.device(b).port_to(a).fail()
        return dropped

    def repair_link(self, a: str, b: str) -> None:
        self.device(a).port_to(b).repair()
        self.device(b).port_to(a).repair()

    # -- queries ----------------------------------------------------------

    def host_ip(self, name: str) -> int:
        return self.hosts[name].ip

    def adjacency(self) -> Dict[str, List[Tuple[str, int]]]:
        """Neighbor lists with link rates (for route computation)."""
        adj: Dict[str, List[Tuple[str, int]]] = {}
        for a, b, rate in self.links:
            adj.setdefault(a, []).append((b, rate))
            adj.setdefault(b, []).append((a, rate))
        return adj


def star(sim: Simulator, n_hosts: int,
         host_rate_bps: int = 10 * GBPS,
         switch_name: str = "tor",
         queue_capacity_bytes: int = 300_000,
         prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
         host_rates: Optional[Dict[str, int]] = None) -> Network:
    """n hosts (named h1..hn) behind one top-of-rack switch.

    ``host_rates`` optionally overrides the link rate of individual
    hosts (Fig 11's storage server sits behind a 1 Gbps link).
    """
    if n_hosts < 2:
        raise TopologyError("a star needs at least two hosts")
    net = Network(sim)
    tor = net.add_switch(switch_name)
    for i in range(1, n_hosts + 1):
        name = f"h{i}"
        host = net.add_host(name)
        rate = (host_rates or {}).get(name, host_rate_bps)
        net.connect(name, switch_name, rate,
                    prop_delay_ns=prop_delay_ns,
                    queue_capacity_bytes=queue_capacity_bytes)
        tor.install_route(host.ip, [name])
    return net


#: Path labels used by the two-path topology.
PATH_FAST = 1
PATH_SLOW = 2


def asymmetric_two_path(sim: Simulator,
                        fast_bps: int = 10 * GBPS,
                        slow_bps: int = 1 * GBPS,
                        prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
                        queue_capacity_bytes: int = 300_000) -> Network:
    """Figure 1 / Section 5.2: h1 and h2 joined by two disjoint paths.

    h1 -- sfast -- h2 at ``fast_bps`` and h1 -- sslow -- h2 at
    ``slow_bps``.  Hosts have one NIC port per path (the testbed's
    dual-port NICs); path labels :data:`PATH_FAST`/:data:`PATH_SLOW`
    select between them, and the hosts' ``path_port_map`` must be set
    accordingly (see :func:`repro.netsim.routing.setup_two_path_hosts`).
    """
    net = Network(sim)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    sfast = net.add_switch("sfast")
    sslow = net.add_switch("sslow")
    net.connect("h1", "sfast", fast_bps, prop_delay_ns=prop_delay_ns,
                queue_capacity_bytes=queue_capacity_bytes)
    net.connect("sfast", "h2", fast_bps, prop_delay_ns=prop_delay_ns,
                queue_capacity_bytes=queue_capacity_bytes)
    net.connect("h1", "sslow", slow_bps, prop_delay_ns=prop_delay_ns,
                queue_capacity_bytes=queue_capacity_bytes)
    net.connect("sslow", "h2", slow_bps, prop_delay_ns=prop_delay_ns,
                queue_capacity_bytes=queue_capacity_bytes)
    for switch in (sfast, sslow):
        switch.install_route(h1.ip, ["h1"])
        switch.install_route(h2.ip, ["h2"])
    return net

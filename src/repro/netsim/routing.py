"""Route and path-label computation (the controller's network view).

Section 3.5: "label-based forwarding and the corresponding control
protocol is the primary functionality Eden requires of the underlying
network."  The Eden controller uses this module to compute L3 routes
(with ECMP next-hop sets), enumerate the disjoint/simple paths between
host pairs, and install the label forwarding state that makes source
routing work.  Path enumeration and shortest-path computation use
networkx.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .simulator import GBPS
from .topology import Network


def as_graph(network: Network) -> "nx.Graph":
    """The topology as a networkx graph with ``rate`` edge attributes."""
    graph = nx.Graph()
    for name in network.hosts:
        graph.add_node(name, kind="host")
    for name in network.switches:
        graph.add_node(name, kind="switch")
    for a, b, rate in network.links:
        graph.add_edge(a, b, rate=rate)
    return graph


def install_l3_routes(network: Network) -> None:
    """Install destination routes with ECMP next-hop sets.

    For every switch and every host, the route's next hops are all
    neighbors that lie on *some* shortest path to the host — the
    standard ECMP configuration the paper's load-balancing discussion
    starts from.
    """
    graph = as_graph(network)
    for switch_name, switch in network.switches.items():
        lengths = nx.single_source_shortest_path_length(graph,
                                                        switch_name)
        for host_name, host in network.hosts.items():
            if host_name == switch_name:
                continue
            if host_name not in lengths:
                continue
            dist = lengths[host_name]
            next_hops = []
            for neighbor in graph.neighbors(switch_name):
                if neighbor == host_name and dist == 1:
                    next_hops.append(neighbor)
                    continue
                try:
                    n_dist = nx.shortest_path_length(graph, neighbor,
                                                     host_name)
                except nx.NetworkXNoPath:
                    continue
                if n_dist == dist - 1 and \
                        graph.nodes[neighbor]["kind"] == "switch":
                    next_hops.append(neighbor)
            if next_hops:
                switch.install_route(host.ip, sorted(next_hops))


def simple_paths(network: Network, src_host: str, dst_host: str,
                 cutoff: Optional[int] = None
                 ) -> List[Tuple[List[str], int]]:
    """All simple paths between two hosts with bottleneck capacity.

    Returns ``(node_list, bottleneck_bps)`` tuples, sorted by
    decreasing bottleneck capacity then length — the controller input
    for WCMP weight computation.
    """
    graph = as_graph(network)
    results: List[Tuple[List[str], int]] = []
    for path in nx.all_simple_paths(graph, src_host, dst_host,
                                    cutoff=cutoff):
        if any(graph.nodes[n]["kind"] == "host"
               for n in path[1:-1]):
            continue  # hosts do not forward
        bottleneck = min(graph.edges[path[i], path[i + 1]]["rate"]
                         for i in range(len(path) - 1))
        results.append((path, bottleneck))
    results.sort(key=lambda item: (-item[1], len(item[0])))
    return results


def install_path_labels(network: Network, label: int,
                        path: Sequence[str]) -> None:
    """Install ``label -> next hop`` entries along a path's switches."""
    for i, node in enumerate(path[:-1]):
        if node in network.switches:
            network.switches[node].install_label(label, path[i + 1])


def provision_labeled_paths(network: Network, src_host: str,
                            dst_host: str,
                            first_label: int = 1,
                            cutoff: Optional[int] = None
                            ) -> List[Tuple[int, List[str], int]]:
    """Enumerate paths, assign labels, and install forwarding state.

    Returns ``(label, path, bottleneck_bps)`` rows.  Also fills in the
    source host's ``path_port_map`` so the stack emits each label on
    the right NIC port.
    """
    rows: List[Tuple[int, List[str], int]] = []
    label = first_label
    src = network.hosts[src_host]
    for path, bottleneck in simple_paths(network, src_host, dst_host,
                                         cutoff=cutoff):
        install_path_labels(network, label, path)
        if src.stack is not None and len(path) >= 2:
            src.stack.path_port_map[label] = path[1]
        rows.append((label, list(path), bottleneck))
        label += 1
    return rows

"""End hosts.

A :class:`Host` is a :class:`~repro.netsim.switchdev.Device` with an IP
address and a bound :class:`~repro.stack.netstack.HostStack` (set by
the stack's constructor).  The host itself only moves packets between
its NIC ports and the stack; all protocol and Eden processing lives in
the stack.
"""

from __future__ import annotations

from typing import Optional

from .link import Port
from .packet import Packet
from .simulator import Simulator
from .switchdev import Device


class Host(Device):
    """An end host with one or more NIC ports."""

    def __init__(self, sim: Simulator, name: str, ip: int) -> None:
        super().__init__(sim, name)
        self.ip = ip
        self.stack = None
        #: The enclave's control agent (repro.control), when the host
        #: is managed over the control-plane channel.
        self.control_agent = None
        self.rx_packets = 0
        self._m_rx = None

    def bind_telemetry(self, telemetry) -> None:
        """Mirror the host's receive counter into a telemetry
        registry (labeled by host name)."""
        if telemetry is None or not telemetry.enabled:
            return
        self._m_rx = telemetry.registry.counter(
            "host_rx_packets_total", host=self.name)

    def bind_stack(self, stack) -> None:
        if self.stack is not None:
            raise RuntimeError(f"host {self.name} already has a stack")
        self.stack = stack

    def bind_control_agent(self, agent) -> None:
        if self.control_agent is not None:
            raise RuntimeError(
                f"host {self.name} already has a control agent")
        self.control_agent = agent

    def receive(self, packet: Packet, from_port: Port) -> None:
        self.rx_packets += 1
        if self._m_rx is not None:
            self._m_rx.inc()
        lat = self.sim.latency
        if lat is not None:
            # End of the packet's journey for latency decomposition:
            # arrival at the destination NIC.
            lat.host_received(packet, self.sim.now, self.name)
        if self.stack is not None:
            self.stack.handle_rx(packet, from_port)

"""Output ports and links: strict-priority queues + serialization.

Every device-to-device connection is a pair of unidirectional
:class:`Port` objects.  A port owns eight strict-priority FIFO queues
(802.1q priority code points 0-7, higher PCP served first — the
commodity "network priorities" support Eden assumes, Section 3.5), a
byte-capacity tail-drop limit, an optional ECN marking threshold, and
the attached link's rate and propagation delay.

Transmission is serialized: while a packet is on the wire the port is
busy; when it goes idle the highest-priority head-of-line packet is
transmitted next.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, TYPE_CHECKING

from .packet import Packet
from .simulator import SEC, Simulator

if TYPE_CHECKING:
    from .switchdev import Device

NUM_PRIORITIES = 8
DEFAULT_QUEUE_CAPACITY = 300_000      # bytes, shared across priorities
DEFAULT_PROP_DELAY_NS = 1_000         # 1 us per hop


class PortStats:
    __slots__ = ("tx_packets", "tx_bytes", "drops", "drop_bytes",
                 "ecn_marks", "busy_ns", "failed_drops")

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.drops = 0
        self.drop_bytes = 0
        self.ecn_marks = 0
        self.busy_ns = 0
        self.failed_drops = 0


class Port:
    """One unidirectional output port plus the link it drives."""

    def __init__(self, sim: Simulator, name: str, rate_bps: int,
                 prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
                 queue_capacity_bytes: int = DEFAULT_QUEUE_CAPACITY,
                 ecn_threshold_bytes: Optional[int] = None) -> None:
        if rate_bps <= 0:
            raise ValueError(f"port {name}: rate must be positive")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.queue_capacity_bytes = queue_capacity_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.peer: Optional["Device"] = None
        self._queues: List[Deque[Packet]] = [
            deque() for _ in range(NUM_PRIORITIES)]
        self._queued_bytes = 0
        self._busy = False
        self.failed = False
        self.stats = PortStats()

    # -- failure injection -------------------------------------------------

    def fail(self) -> int:
        """Take the link down: queued and future packets are lost.

        Returns the number of packets dropped from the queue.  In-
        flight packets (already serialized onto the wire) still
        arrive, like a real fiber cut at the transmitter.
        """
        self.failed = True
        dropped = 0
        lat = self.sim.latency
        for queue in self._queues:
            while queue:
                packet = queue.popleft()
                self._queued_bytes -= packet.size
                self.stats.failed_drops += 1
                if lat is not None:
                    lat.packet_dropped(packet.packet_id)
                dropped += 1
        return dropped

    def repair(self) -> None:
        """Bring the link back up."""
        self.failed = False

    def connect(self, peer: "Device") -> None:
        self.peer = peer

    # -- enqueue/dequeue ---------------------------------------------------

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet for transmission; False means tail-dropped."""
        if self.peer is None:
            raise RuntimeError(f"port {self.name} is not connected")
        # Dwell-time instrumentation (repro.latency): sim.latency is
        # None unless a run bound a LatencyCollector, so the disabled
        # path costs one attribute load + comparison per packet.
        lat = self.sim.latency
        if self.failed:
            self.stats.failed_drops += 1
            if lat is not None:
                lat.packet_dropped(packet.packet_id)
            return False
        if self._queued_bytes + packet.size > \
                self.queue_capacity_bytes:
            self.stats.drops += 1
            self.stats.drop_bytes += packet.size
            if lat is not None:
                lat.packet_dropped(packet.packet_id)
            return False
        if self.ecn_threshold_bytes is not None and \
                self._queued_bytes >= self.ecn_threshold_bytes:
            packet.ecn = 1
            self.stats.ecn_marks += 1
        prio = min(max(packet.priority, 0), NUM_PRIORITIES - 1)
        self._queues[prio].append(packet)
        self._queued_bytes += packet.size
        if lat is not None:
            lat.port_enqueued(packet.packet_id, self.sim.now)
        if not self._busy:
            self._transmit_next()
        return True

    def _transmit_next(self) -> None:
        packet = None
        for prio in range(NUM_PRIORITIES - 1, -1, -1):
            if self._queues[prio]:
                packet = self._queues[prio].popleft()
                break
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self._queued_bytes -= packet.size
        tx_ns = packet.size * 8 * SEC // self.rate_bps
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size
        self.stats.busy_ns += tx_ns
        lat = self.sim.latency
        if lat is not None:
            lat.port_tx_start(packet.packet_id, self.sim.now, tx_ns,
                              self.prop_delay_ns)
        self._schedule_delivery(packet, tx_ns)
        self.sim.schedule(tx_ns, self._tx_done)

    def _schedule_delivery(self, packet: Packet, tx_ns: int) -> None:
        """Hook: hand ``packet`` to the peer after serialization plus
        propagation.  :class:`repro.netsim.sharded.BoundaryPort`
        overrides this to route cross-shard packets through a mailbox
        at transmission end instead of touching the remote device."""
        self.sim.schedule(tx_ns + self.prop_delay_ns,
                          self._deliver, packet)

    def _tx_done(self) -> None:
        self._transmit_next()

    def _deliver(self, packet: Packet) -> None:
        packet.hop_count += 1
        self.peer.receive(packet, self)

    # -- introspection -----------------------------------------------------

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` the link spent transmitting."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.stats.busy_ns / elapsed_ns)

    def __repr__(self) -> str:
        return (f"Port({self.name}, {self.rate_bps / 1e9:g} Gbps, "
                f"queued={self._queued_bytes}B)")


def duplex_connect(sim: Simulator, a: "Device", b: "Device",
                   rate_bps: int,
                   prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
                   queue_capacity_bytes: int = DEFAULT_QUEUE_CAPACITY,
                   ecn_threshold_bytes: Optional[int] = None
                   ) -> "tuple[Port, Port]":
    """Create the two directed ports of a full-duplex link a<->b and
    attach them to the devices."""
    a_to_b = Port(sim, f"{a.name}->{b.name}", rate_bps, prop_delay_ns,
                  queue_capacity_bytes, ecn_threshold_bytes)
    b_to_a = Port(sim, f"{b.name}->{a.name}", rate_bps, prop_delay_ns,
                  queue_capacity_bytes, ecn_threshold_bytes)
    a_to_b.connect(b)
    b_to_a.connect(a)
    a.attach_port(a_to_b, b)
    b.attach_port(b_to_a, a)
    return a_to_b, b_to_a

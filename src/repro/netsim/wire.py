"""On-the-wire packet encoding: Ethernet + 802.1q + IPv4 + TCP.

The packet-schema annotations of paper Figure 8 map state variables to
concrete header fields (``priority`` -> the 802.1q priority code
point, ``size`` -> the IPv4 TotalLength, ``path_id`` -> the VLAN id
used as the source-routing label of Section 3.5).  This module makes
that mapping real: it serializes a simulator :class:`Packet` to the
byte layout a NIC would emit and parses it back, so the header-map
claims are checkable (see ``tests/netsim/test_wire.py``).

Layout (all integers big-endian):

* Ethernet: dst MAC (6) | src MAC (6) | TPID 0x8100 (2)
* 802.1q tag: PCP(3 bits) DEI(1) VLAN id(12)  | EtherType 0x0800 (2)
* IPv4 (20 bytes, no options): version/IHL, DSCP/ECN, total length,
  id, flags/fragment, TTL, protocol, checksum, src, dst
* TCP (20 bytes, no real options): ports, seq, ack, data offset,
  flags, window, checksum, urgent
* SACK blocks are carried after the TCP header as a simple
  count-prefixed list (a simulator simplification of the TCP options
  encoding; real stacks fit at most 3-4 blocks).
"""

from __future__ import annotations

import copy
import hashlib
import struct
from typing import List, Tuple

from .packet import (FLAG_ACK, FLAG_FIN, FLAG_RST, FLAG_SYN,
                     HEADER_BYTES, Packet)

ETHERTYPE_VLAN = 0x8100
ETHERTYPE_IPV4 = 0x0800
ETH_HEADER = struct.Struct("!6s6sH")
VLAN_TAG = struct.Struct("!HH")
IPV4_HEADER = struct.Struct("!BBHHHBBHII")
TCP_HEADER = struct.Struct("!HHIIBBHHH")
SACK_COUNT = struct.Struct("!B")
SACK_BLOCK = struct.Struct("!QQ")

#: TCP flag bits on the wire (subset).
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_ACK = 0x10

_SIM_TO_WIRE_FLAGS = ((FLAG_FIN, TCP_FIN), (FLAG_SYN, TCP_SYN),
                      (FLAG_RST, TCP_RST), (FLAG_ACK, TCP_ACK))


class WireFormatError(Exception):
    """The byte string is not a well-formed simulator frame."""


def ipv4_checksum(header: bytes) -> int:
    """RFC 791 ones'-complement header checksum."""
    if len(header) % 2:
        header += b"\x00"
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _mac_of(ip: int) -> bytes:
    """A deterministic fake MAC derived from an IP address."""
    return b"\x02\x00" + struct.pack("!I", ip & 0xFFFFFFFF)


def encode(packet: Packet) -> bytes:
    """Serialize a packet (headers + zeroed payload bytes)."""
    pcp = min(max(packet.priority, 0), 7)
    vlan_id = packet.path_id & 0x0FFF
    tci = (pcp << 13) | vlan_id
    eth = ETH_HEADER.pack(_mac_of(packet.dst_ip),
                          _mac_of(packet.src_ip), ETHERTYPE_VLAN)
    vlan = VLAN_TAG.pack(tci, ETHERTYPE_IPV4)

    total_length = 20 + 20 + packet.payload_len
    dscp_ecn = (packet.ecn & 0x3)
    ip_wo_checksum = IPV4_HEADER.pack(
        0x45, dscp_ecn, total_length, packet.packet_id & 0xFFFF,
        0, 64, packet.proto & 0xFF, 0,
        packet.src_ip & 0xFFFFFFFF, packet.dst_ip & 0xFFFFFFFF)
    checksum = ipv4_checksum(ip_wo_checksum)
    ip = IPV4_HEADER.pack(
        0x45, dscp_ecn, total_length, packet.packet_id & 0xFFFF,
        0, 64, packet.proto & 0xFF, checksum,
        packet.src_ip & 0xFFFFFFFF, packet.dst_ip & 0xFFFFFFFF)

    wire_flags = 0
    for sim_bit, wire_bit in _SIM_TO_WIRE_FLAGS:
        if packet.flags & sim_bit:
            wire_flags |= wire_bit
    tcp = TCP_HEADER.pack(
        packet.src_port & 0xFFFF, packet.dst_port & 0xFFFF,
        packet.seq & 0xFFFFFFFF, packet.ack & 0xFFFFFFFF,
        5 << 4, wire_flags, 0xFFFF, 0, 0)

    sack_blocks = tuple(packet.sack)[:255]
    sack = SACK_COUNT.pack(len(sack_blocks))
    for start, end in sack_blocks:
        sack += SACK_BLOCK.pack(start & (2**64 - 1),
                                end & (2**64 - 1))

    payload = bytes(packet.payload_len)
    return eth + vlan + ip + tcp + sack + payload


def decode(frame: bytes) -> Packet:
    """Parse a frame produced by :func:`encode`."""
    offset = 0
    try:
        _, _, ethertype = ETH_HEADER.unpack_from(frame, offset)
        offset += ETH_HEADER.size
        if ethertype != ETHERTYPE_VLAN:
            raise WireFormatError(
                f"expected a VLAN tag, got ethertype {ethertype:#x}")
        tci, inner_type = VLAN_TAG.unpack_from(frame, offset)
        offset += VLAN_TAG.size
        if inner_type != ETHERTYPE_IPV4:
            raise WireFormatError(
                f"expected IPv4, got ethertype {inner_type:#x}")

        (ver_ihl, dscp_ecn, total_length, _ident, _frag, _ttl, proto,
         checksum, src_ip, dst_ip) = IPV4_HEADER.unpack_from(frame,
                                                             offset)
        if ver_ihl != 0x45:
            raise WireFormatError(
                f"unsupported IPv4 version/IHL {ver_ihl:#x}")
        header_bytes = frame[offset:offset + 20]
        zeroed = header_bytes[:10] + b"\x00\x00" + header_bytes[12:]
        if ipv4_checksum(zeroed) != checksum:
            raise WireFormatError("IPv4 checksum mismatch")
        offset += IPV4_HEADER.size

        (src_port, dst_port, seq, ack, _off, wire_flags, _win,
         _cksum, _urg) = TCP_HEADER.unpack_from(frame, offset)
        offset += TCP_HEADER.size

        (n_sack,) = SACK_COUNT.unpack_from(frame, offset)
        offset += SACK_COUNT.size
        sack: List[Tuple[int, int]] = []
        for _ in range(n_sack):
            start, end = SACK_BLOCK.unpack_from(frame, offset)
            offset += SACK_BLOCK.size
            sack.append((start, end))
    except struct.error as exc:
        raise WireFormatError(f"truncated frame: {exc}") from exc

    payload_len = total_length - 40
    if payload_len < 0:
        raise WireFormatError(
            f"IPv4 total length {total_length} below header size")
    if len(frame) - offset < payload_len:
        raise WireFormatError("frame shorter than IPv4 total length")

    sim_flags = 0
    for sim_bit, wire_bit in _SIM_TO_WIRE_FLAGS:
        if wire_flags & wire_bit:
            sim_flags |= sim_bit

    packet = Packet(src_ip=src_ip, dst_ip=dst_ip, src_port=src_port,
                    dst_port=dst_port, proto=proto,
                    payload_len=payload_len, seq=seq, ack=ack,
                    flags=sim_flags)
    packet.priority = tci >> 13
    packet.path_id = tci & 0x0FFF
    packet.ecn = dscp_ecn & 0x3
    packet.sack = tuple(sack)
    return packet


def packet_digest(packet: Packet) -> str:
    """A content digest of a packet's on-the-wire bytes.

    The process-global ``packet_id`` (the IPv4 identification field)
    is zeroed before encoding, so the digest depends only on seed-
    derived state — two packets with the same headers hash the same
    regardless of how many packets any earlier run allocated.  Used by
    the shard-vs-single-heap equivalence harness, where the two runs
    construct packets in different orders.
    """
    clone = copy.copy(packet)
    clone.packet_id = 0
    return hashlib.sha256(encode(clone)).hexdigest()[:16]


def header_roundtrip_fields() -> Tuple[str, ...]:
    """Packet attributes preserved by encode/decode — exactly the
    header-mapped fields of the default packet schema plus the TCP
    essentials."""
    return ("src_ip", "dst_ip", "src_port", "dst_port", "proto",
            "payload_len", "size", "seq", "ack", "flags", "priority",
            "path_id", "ecn", "sack")

"""Sharded simulation: conservative-lookahead parallel event loops.

One :class:`~repro.netsim.simulator.Simulator` heap serializes every
host, link and switch, which caps fig9/fig10-style scenarios at tens
of hosts.  This module partitions a topology into *shards* — groups of
hosts plus their access links and any switch wholly inside a group —
each with its own event heap and clock.  Switches on the cut (reached
from more than one group, e.g. a fat-tree's core) belong to the
coordinator shard (id 0).

Synchronization is classic conservative lookahead: all shards run the
same window ``[W, W + window_ns]`` and then hit a barrier.  A packet
crossing the cut is *not* delivered directly; at transmission end the
sending :class:`BoundaryPort` drops it into its shard's outbox stamped
with its arrival time (``emit + prop_delay``).  Because the window
never exceeds the minimum cross-shard propagation delay (the natural
lookahead), every message produced in window *i* arrives strictly
after the barrier, so scheduling it into the destination shard before
window *i+1* can never violate causality.

Determinism: at each barrier the collected messages are sorted by
``(arrival_ns, tx_start_ns, src_shard, seq)`` before being scheduled,
so results are reproducible regardless of drain interleaving, and the
``tx_start_ns`` component makes cross-shard arrival ties resolve in
the same order the single-heap simulator would have scheduled them
(its tie-break is schedule order, i.e. transmission-start order).
Residual ambiguity only remains when two transmissions *start* at the
same nanosecond — see docs/SHARDING.md.

Two backends share this machinery:

* **sequential** (default): one process, shards stepped round-robin.
  Bit-for-bit comparable against the single heap; this is what the
  equivalence harness (`tests/netsim/test_shard_equivalence.py`) runs.
* **multiprocessing** (:func:`run_multiprocessing`): one OS process
  per shard (fork start method), mailbox batches pickled over pipes at
  each barrier — true parallelism for scale runs.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .host import Host
from .link import (DEFAULT_PROP_DELAY_NS, DEFAULT_QUEUE_CAPACITY, Port,
                   duplex_connect)
from .packet import Packet
from .simulator import GBPS, MS, Simulator
from .switchdev import Device, Switch
from .topology import LinkSpec, TopologySpec, star_spec

#: Shard id of the coordinator (owns every cut switch).
COORDINATOR = 0


class ShardingError(Exception):
    """The shard plan or window is inconsistent with the topology."""


class ShardSim(Simulator):
    """A per-shard event heap; identical semantics, plus an id."""

    def __init__(self, shard_id: int, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.shard_id = shard_id


class RemoteStub:
    """Stands in for a device owned by another shard.

    It exists so a :class:`BoundaryPort` has a named peer for wiring
    (``attach_port`` and ``port_to`` key on peer names); it must never
    see a packet — cross-shard traffic goes through the mailbox.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def receive(self, packet, from_port) -> None:
        raise ShardingError(
            f"packet delivered directly to remote stub {self.name!r}; "
            f"cross-shard traffic must go through the mailbox")

    def __repr__(self) -> str:
        return f"RemoteStub({self.name})"


#: A mailbox message:
#: (arrival_ns, tx_start_ns, src_shard, seq, src_name, dst_name, packet)
Handoff = Tuple[int, int, int, int, str, str, Packet]


class BoundaryPort(Port):
    """A port whose peer lives in another shard.

    Queueing and serialization happen normally on the local heap; at
    transmission end the packet is stamped with its arrival time
    (``now + prop_delay``) and handed to the shard outbox instead of
    being delivered.  ``tx_start_ns`` rides along purely as the
    deterministic tie-break (see module docstring).
    """

    def __init__(self, sim: Simulator, name: str, rate_bps: int,
                 prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
                 queue_capacity_bytes: int = DEFAULT_QUEUE_CAPACITY,
                 ecn_threshold_bytes: Optional[int] = None, *,
                 handoff: Callable[[int, int, str, str, Packet], None],
                 src_name: str, dst_name: str) -> None:
        super().__init__(sim, name, rate_bps, prop_delay_ns,
                         queue_capacity_bytes, ecn_threshold_bytes)
        self._handoff = handoff
        self._src_name = src_name
        self._dst_name = dst_name

    def _schedule_delivery(self, packet: Packet, tx_ns: int) -> None:
        self.sim.schedule(tx_ns, self._emit, packet, self.sim.now)

    def _emit(self, packet: Packet, tx_start_ns: int) -> None:
        packet.hop_count += 1  # mirrors Port._deliver
        self._handoff(self.sim.now + self.prop_delay_ns, tx_start_ns,
                      self._src_name, self._dst_name, packet)


@dataclass
class ShardPlan:
    """Assignment of every device to a shard.

    Shard 0 is the coordinator; host groups map to shards ``1..n``.
    ``owner`` must cover every device in the spec.
    """

    n_shards: int
    owner: Dict[str, int]

    @classmethod
    def from_groups(cls, group_of: Dict[str, int],
                    n_group_shards: int) -> "ShardPlan":
        """Build a plan from a device->group map.

        Groups (``>= 0``) are folded round-robin onto shards
        ``1..n_group_shards``; devices in group ``-1`` (the cut) go to
        the coordinator.
        """
        if n_group_shards < 1:
            raise ShardingError("need at least one host-group shard")
        groups = sorted({g for g in group_of.values() if g >= 0})
        shard_of_group = {g: 1 + (i % n_group_shards)
                          for i, g in enumerate(groups)}
        owner = {name: (COORDINATOR if g < 0 else shard_of_group[g])
                 for name, g in group_of.items()}
        return cls(n_shards=n_group_shards + 1, owner=owner)

    def validate(self, spec: TopologySpec) -> None:
        missing = [n for n in spec.device_names() if n not in self.owner]
        if missing:
            raise ShardingError(
                f"shard plan misses devices: {missing[:5]}")
        bad = [n for n, s in self.owner.items()
               if not 0 <= s < self.n_shards]
        if bad:
            raise ShardingError(f"shard id out of range for {bad[:5]}")

    def lookahead_ns(self, spec: TopologySpec) -> Optional[int]:
        """Minimum propagation delay across cut links — the natural
        conservative window.  None when nothing crosses the cut."""
        cut = [link.prop_delay_ns for link in spec.links
               if self.owner[link.a] != self.owner[link.b]]
        return min(cut) if cut else None


class ShardPartition:
    """One shard's slice of the topology: its own heap, its owned
    devices, intra-shard links built whole, boundary ports for links
    whose far end is remote, and an outbox of pending handoffs."""

    def __init__(self, spec: TopologySpec, plan: ShardPlan,
                 shard_id: int, seed: int = 0) -> None:
        self.shard_id = shard_id
        self.sim = ShardSim(shard_id,
                            seed=(seed * 1_000_003 + shard_id)
                            & 0xFFFFFFFF)
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.devices: Dict[str, Device] = {}
        self.outbox: List[Handoff] = []
        self._seq = itertools.count()
        owner = plan.owner
        for h in spec.hosts:
            if owner[h.name] == shard_id:
                host = Host(self.sim, h.name, h.ip)
                self.hosts[h.name] = self.devices[h.name] = host
        for s in spec.switches:
            if owner[s.name] == shard_id:
                switch = Switch(self.sim, s.name,
                                ecmp_salt=s.ecmp_salt)
                self.switches[s.name] = self.devices[s.name] = switch
        for link in spec.links:
            mine_a = owner[link.a] == shard_id
            mine_b = owner[link.b] == shard_id
            if mine_a and mine_b:
                duplex_connect(
                    self.sim, self.devices[link.a],
                    self.devices[link.b], link.rate_bps,
                    prop_delay_ns=link.prop_delay_ns,
                    queue_capacity_bytes=link.queue_capacity_bytes,
                    ecn_threshold_bytes=link.ecn_threshold_bytes)
            elif mine_a:
                self._attach_boundary(link, link.a, link.b)
            elif mine_b:
                self._attach_boundary(link, link.b, link.a)
        for switch_name, table in spec.routes.items():
            if owner.get(switch_name) == shard_id:
                switch = self.switches[switch_name]
                for dst_ip, next_hops in table.items():
                    switch.install_route(dst_ip, list(next_hops))

    def _attach_boundary(self, link: LinkSpec, local: str,
                         remote: str) -> None:
        port = BoundaryPort(
            self.sim, f"{local}->{remote}", link.rate_bps,
            link.prop_delay_ns, link.queue_capacity_bytes,
            link.ecn_threshold_bytes, handoff=self._enqueue_handoff,
            src_name=local, dst_name=remote)
        stub = RemoteStub(remote)
        port.connect(stub)
        self.devices[local].attach_port(port, stub)

    def _enqueue_handoff(self, arrival_ns: int, tx_start_ns: int,
                         src_name: str, dst_name: str,
                         packet: Packet) -> None:
        self.outbox.append((arrival_ns, tx_start_ns, self.shard_id,
                            next(self._seq), src_name, dst_name,
                            packet))

    def take_outbox(self) -> List[Handoff]:
        out, self.outbox = self.outbox, []
        return out

    def deliver(self, message: Handoff) -> None:
        """Schedule one inbound handoff onto this shard's heap."""
        arrival_ns, _, _, _, src_name, dst_name, packet = message
        device = self.devices[dst_name]
        # The reverse direction of the same duplex link, when present,
        # stands in for the remote sending port (receivers that look
        # at from_port only use it for identity/debugging).
        from_port = device._port_by_peer.get(src_name)
        self.sim.at(arrival_ns, device.receive, packet, from_port)


def _sort_handoffs(messages: List[Handoff]) -> List[Handoff]:
    messages.sort(key=lambda m: m[:4])
    return messages


class ConservativeWindowLoop:
    """Generic conservative-lookahead driver over per-shard heaps.

    The packet path has :class:`ShardedSimulator`; other cross-shard
    traffic (e.g. the fleet control fabric,
    :mod:`repro.fleet.shardfleet`) reuses the same synchronization
    protocol through two callbacks:

    ``drain()``
        called at every window barrier; must move all queued
        cross-shard messages into their destination shard's heap
        (scheduling them at their arrival time, which the lookahead
        guarantees is ``>=`` the barrier time) and return how many it
        moved.
    ``pending_time()``
        earliest queued cross-shard arrival, or ``None``; lets the
        loop jump idle gaps without stranding an undelivered message.

    Correctness condition, exactly as for the packet path: every
    cross-shard message must arrive at least ``window_ns`` after it
    was sent, so nothing emitted inside a window can be needed by
    another shard within the same window.
    """

    def __init__(self, sims: List[Simulator], window_ns: int,
                 drain, pending_time=None) -> None:
        if window_ns <= 0:
            raise ShardingError("window must be positive")
        self.sims = sims
        self.window_ns = window_ns
        self.drain = drain
        self.pending_time = pending_time
        self.now = 0
        self.windows = 0
        self.handoffs = 0

    def _next_event_time(self) -> Optional[int]:
        t_min: Optional[int] = None
        for sim in self.sims:
            t = sim.next_event_time()
            if t is not None and (t_min is None or t < t_min):
                t_min = t
        if self.pending_time is not None:
            t = self.pending_time()
            if t is not None and (t_min is None or t < t_min):
                t_min = t
        return t_min

    def run(self, until_ns: Optional[int] = None) -> int:
        """Drive all shards to quiescence (or ``until_ns``)."""
        processed = 0
        while True:
            # Top-of-window drain: messages queued *between* run()
            # calls (setup code, orchestrator kicks) must land in
            # their heaps before any shard runs past their arrival.
            self.handoffs += self.drain()
            t_min = self._next_event_time()
            if t_min is None:
                break
            if until_ns is not None and t_min > until_ns:
                break
            w_end = max(self.now, t_min) + self.window_ns
            if until_ns is not None and w_end > until_ns:
                w_end = until_ns
            for sim in self.sims:
                processed += sim.run(until_ns=w_end)
            self.now = w_end
            self.handoffs += self.drain()
            self.windows += 1
            if until_ns is not None and w_end >= until_ns:
                break
        if until_ns is not None:
            for sim in self.sims:
                if sim.now < until_ns:
                    sim.run(until_ns=until_ns)
            if self.now < until_ns:
                self.now = until_ns
        elif self.sims:
            self.now = max(s.now for s in self.sims)
        return processed


class ShardedSimulator:
    """Drop-in runner for a sharded topology (sequential backend).

    Builds one :class:`ShardPartition` per shard and steps them
    round-robin through conservative windows.  The merged ``hosts`` /
    ``switches`` / ``device()`` views and ``host_ip`` mirror
    :class:`~repro.netsim.topology.Network` closely enough that
    experiment code can swap one in; each device schedules on its own
    shard's heap via ``device.sim``.
    """

    def __init__(self, spec: TopologySpec, plan: ShardPlan,
                 seed: int = 0,
                 window_ns: Optional[int] = None) -> None:
        plan.validate(spec)
        self.spec = spec
        self.plan = plan
        self.seed = seed
        lookahead = plan.lookahead_ns(spec)
        if window_ns is None:
            # No cut at all means shards are independent; any window
            # works, so pick something coarse.
            window_ns = lookahead if lookahead is not None else MS
        if window_ns <= 0:
            raise ShardingError("window must be positive")
        if lookahead is not None and window_ns > lookahead:
            raise ShardingError(
                f"window {window_ns} ns exceeds the conservative "
                f"lookahead {lookahead} ns (min cut-link propagation)")
        self.window_ns = window_ns
        self.partitions = [ShardPartition(spec, plan, sid, seed)
                           for sid in range(plan.n_shards)]
        self.now = 0
        self.windows = 0
        self.handoffs = 0
        self._h_barrier = None
        self._m_handoffs = None
        self._g_windows = None

    # -- Network-compatible views ---------------------------------------

    @property
    def hosts(self) -> Dict[str, Host]:
        merged: Dict[str, Host] = {}
        for part in self.partitions:
            merged.update(part.hosts)
        return merged

    @property
    def switches(self) -> Dict[str, Switch]:
        merged: Dict[str, Switch] = {}
        for part in self.partitions:
            merged.update(part.switches)
        return merged

    def device(self, name: str) -> Device:
        part = self.partitions[self.plan.owner[name]]
        return part.devices[name]

    def host_ip(self, name: str) -> int:
        return self.spec.host_ip(name)

    @property
    def events_processed(self) -> int:
        return sum(p.sim.events_processed for p in self.partitions)

    @property
    def pending(self) -> int:
        return (sum(p.sim.pending for p in self.partitions) +
                sum(len(p.outbox) for p in self.partitions))

    def bind_telemetry(self, telemetry) -> None:
        """Per-shard ``sim_events_total``/``sim_now_ns`` series plus a
        barrier-drain wall-time histogram and handoff counter."""
        if telemetry is None or not telemetry.enabled:
            return
        for part in self.partitions:
            part.sim.bind_telemetry(telemetry,
                                    shard=str(part.shard_id))
        registry = telemetry.registry
        self._h_barrier = registry.histogram("shard_barrier_wait_ns")
        self._m_handoffs = registry.counter("shard_handoffs_total")
        self._g_windows = registry.gauge("shard_windows_total")

    # -- the conservative window loop -----------------------------------

    def _next_event_time(self) -> Optional[int]:
        t_min: Optional[int] = None
        for part in self.partitions:
            t = part.sim.next_event_time()
            if t is not None and (t_min is None or t < t_min):
                t_min = t
        return t_min

    def _drain_mailboxes(self) -> int:
        messages: List[Handoff] = []
        for part in self.partitions:
            if part.outbox:
                messages.extend(part.take_outbox())
        if not messages:
            return 0
        _sort_handoffs(messages)
        owner = self.plan.owner
        for message in messages:
            self.partitions[owner[message[5]]].deliver(message)
        return len(messages)

    def run(self, until_ns: Optional[int] = None) -> int:
        """Run every shard to quiescence (or ``until_ns``), windowed
        at the conservative lookahead.  Returns events processed."""
        processed = 0
        while True:
            t_min = self._next_event_time()
            if t_min is None:
                break
            if until_ns is not None and t_min > until_ns:
                break
            # Jump idle gaps: nothing can happen before t_min, and no
            # emission before t_min can arrive before t_min + window.
            w_end = max(self.now, t_min) + self.window_ns
            if until_ns is not None and w_end > until_ns:
                w_end = until_ns
            for part in self.partitions:
                processed += part.sim.run(until_ns=w_end)
            self.now = w_end
            barrier_t0 = time.perf_counter_ns()
            moved = self._drain_mailboxes()
            if self._h_barrier is not None:
                self._h_barrier.observe(
                    time.perf_counter_ns() - barrier_t0)
                if moved:
                    self._m_handoffs.inc(moved)
            self.handoffs += moved
            self.windows += 1
            if until_ns is not None and w_end >= until_ns:
                break
        if until_ns is not None:
            for part in self.partitions:
                if part.sim.now < until_ns:
                    part.sim.run(until_ns=until_ns)
            if self.now < until_ns:
                self.now = until_ns
        elif self.partitions:
            self.now = max(p.sim.now for p in self.partitions)
        if self._g_windows is not None:
            self._g_windows.set(self.windows)
        return processed


def star_sharded(n_hosts: int, n_shards: int,
                 host_rate_bps: int = 10 * GBPS,
                 seed: int = 0,
                 queue_capacity_bytes: int = 300_000,
                 prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
                 host_rates: Optional[Dict[str, int]] = None,
                 window_ns: Optional[int] = None) -> ShardedSimulator:
    """A sharded star: hosts round-robin over ``n_shards`` host
    shards, the ToR on the coordinator (it sits on every cut)."""
    spec = star_spec(n_hosts, host_rate_bps=host_rate_bps,
                     queue_capacity_bytes=queue_capacity_bytes,
                     prop_delay_ns=prop_delay_ns,
                     host_rates=host_rates, salt_seed=seed)
    group_of = {f"h{i}": (i - 1) % n_shards
                for i in range(1, n_hosts + 1)}
    group_of["tor"] = -1
    plan = ShardPlan.from_groups(group_of, n_shards)
    return ShardedSimulator(spec, plan, seed=seed, window_ns=window_ns)


# ---------------------------------------------------------------------------
# Multiprocessing backend
# ---------------------------------------------------------------------------
#
# One OS process per shard.  The parent runs the same window loop as
# the sequential backend but ships mailbox batches over pipes; workers
# build their partition locally (fork inherits the spec/plan/scenario
# without pickling), so only Handoff batches and final results cross
# process boundaries.  Message ordering is identical to the
# sequential backend: the parent sorts each barrier's batch with the
# same (arrival, tx_start, src_shard, seq) key before routing.


def _mp_worker(conn, spec: TopologySpec, plan: ShardPlan,
               shard_id: int, seed: int, scenario) -> None:
    partition = ShardPartition(spec, plan, shard_id, seed)
    scenario.setup(partition)
    conn.send(("ready", partition.sim.next_event_time()))
    while True:
        message = conn.recv()
        op = message[0]
        if op == "step":
            _, w_end, inbound = message
            for handoff in inbound:
                partition.deliver(handoff)
            processed = partition.sim.run(until_ns=w_end)
            conn.send(("done", partition.sim.next_event_time(),
                       processed, partition.take_outbox()))
        elif op == "flush":
            partition.sim.run(until_ns=message[1])
            conn.send(("flushed",))
        elif op == "finish":
            conn.send(("result", scenario.collect(partition),
                       partition.sim.events_processed))
            conn.close()
            return


@dataclass
class MpRunResult:
    results: Dict[int, object]      # shard id -> scenario.collect()
    events_processed: int
    windows: int
    run_wall_s: float               # window loop only (post-build)


def run_multiprocessing(spec: TopologySpec, plan: ShardPlan, scenario,
                        seed: int = 0,
                        until_ns: Optional[int] = None,
                        window_ns: Optional[int] = None
                        ) -> MpRunResult:
    """Run ``scenario`` over ``spec``/``plan`` with one process per
    shard.

    ``scenario`` must expose ``setup(partition)`` (attach workloads
    and sinks for the shard's own devices) and ``collect(partition)``
    (return a picklable result).  Requires the ``fork`` start method.
    """
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - platform dependent
        raise ShardingError(
            "multiprocessing backend needs the fork start method"
        ) from exc
    plan.validate(spec)
    lookahead = plan.lookahead_ns(spec)
    if window_ns is None:
        window_ns = lookahead if lookahead is not None else MS
    if lookahead is not None and window_ns > lookahead:
        raise ShardingError(
            f"window {window_ns} ns exceeds lookahead {lookahead} ns")

    conns = []
    procs = []
    for sid in range(plan.n_shards):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_mp_worker,
                           args=(child_conn, spec, plan, sid, seed,
                                 scenario),
                           daemon=True)
        proc.start()
        child_conn.close()
        conns.append(parent_conn)
        procs.append(proc)

    try:
        next_times: List[Optional[int]] = []
        for conn in conns:
            tag, t = conn.recv()
            assert tag == "ready"
            next_times.append(t)

        t_wall0 = time.perf_counter()
        now = 0
        windows = 0
        events = 0
        pending: List[Handoff] = []
        owner = plan.owner
        while True:
            candidates = [t for t in next_times if t is not None]
            candidates += [m[0] for m in pending]
            if not candidates:
                break
            t_min = min(candidates)
            if until_ns is not None and t_min > until_ns:
                break
            w_end = max(now, t_min) + window_ns
            if until_ns is not None and w_end > until_ns:
                w_end = until_ns
            _sort_handoffs(pending)
            inbound: Dict[int, List[Handoff]] = {}
            for message in pending:
                inbound.setdefault(owner[message[5]],
                                   []).append(message)
            pending = []
            for sid, conn in enumerate(conns):
                conn.send(("step", w_end, inbound.get(sid, [])))
            for sid, conn in enumerate(conns):
                tag, t_next, processed, outbox = conn.recv()
                assert tag == "done"
                next_times[sid] = t_next
                events += processed
                pending.extend(outbox)
            now = w_end
            windows += 1
            if until_ns is not None and w_end >= until_ns:
                break
        if until_ns is not None:
            for conn in conns:
                conn.send(("flush", until_ns))
            for conn in conns:
                assert conn.recv()[0] == "flushed"
        run_wall_s = time.perf_counter() - t_wall0

        results: Dict[int, object] = {}
        for sid, conn in enumerate(conns):
            conn.send(("finish",))
            tag, collected, _total = conn.recv()
            assert tag == "result"
            results[sid] = collected
        return MpRunResult(results=results, events_processed=events,
                           windows=windows, run_wall_s=run_wall_s)
    finally:
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hang safety net
                proc.terminate()

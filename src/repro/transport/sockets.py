"""The Eden-extended socket interface.

Section 4.2: "we have extended the socket interface to implement an
additional send primitive that accepts class and metadata information".
:class:`MessageSocket` is that primitive: it wraps a TCP connection and
a stage, classifies each message the application sends through the
stage's installed rule-sets, and attaches the resulting class names and
metadata to the message so every packet carries them to the enclave.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from ..core.stage import Classification, Stage
from .tcp import MessageRecord, TcpConnection


class MessageSocket:
    """A stage-aware socket: ``send`` == the paper's extended send."""

    def __init__(self, connection: TcpConnection,
                 stage: Optional[Stage] = None) -> None:
        self.connection = connection
        self.stage = stage
        self.messages_sent = 0

    def send(self, nbytes: int,
             attrs: Optional[Mapping[str, object]] = None,
             on_complete: Optional[Callable[[MessageRecord, int],
                                            None]] = None
             ) -> MessageRecord:
        """Send one application message of ``nbytes``.

        ``attrs`` carries the stage-specific attributes of the message
        (e.g. ``msg_type``/``key`` for memcached); the stage's
        classification rules decide which of them, plus a fresh message
        id, travel with the packets.  With no stage bound, the send
        degrades to a plain (unclassified) message — the enclave will
        fall back to its own flow-granularity classification.
        """
        classifications = []
        metadata: Dict[str, object] = {}
        if self.stage is not None:
            send_attrs = dict(attrs or {})
            send_attrs.setdefault("msg_size", nbytes)
            classifications = self.stage.classify(send_attrs)
            for cls in classifications:
                metadata.update(cls.metadata)
        self.messages_sent += 1
        return self.connection.message_send(
            nbytes, classifications=classifications,
            metadata=metadata, on_complete=on_complete)

    def close(self) -> None:
        self.connection.close()

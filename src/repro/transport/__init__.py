"""Transport layer: TCP with message boundaries and the socket API."""

from .sockets import MessageSocket
from .tcp import (ACK_PRIORITY, DUPACK_THRESHOLD, INITIAL_CWND_MSS,
                  MessageRecord, MIN_RTO_NS, TcpConnection, TcpStats)

__all__ = [
    "ACK_PRIORITY", "DUPACK_THRESHOLD", "INITIAL_CWND_MSS",
    "MIN_RTO_NS", "MessageRecord", "MessageSocket", "TcpConnection",
    "TcpStats",
]

"""A NewReno-style TCP for the simulator.

Deliberately simplified but dynamically faithful where the paper's
results depend on it:

* slow start / congestion avoidance with an initial window of 10 MSS;
* duplicate-ACK fast retransmit and NewReno fast recovery — this is
  what makes per-packet multi-path spraying (Figure 10) lose throughput
  to reordering, exactly the effect the paper observes ("throughput is
  lower than the full 11Gbps ... due to in-network reordering of
  packets [29]");
* SACK with RFC 6675-style loss detection, DSACK-driven reordering
  tolerance (the duplicate-ACK threshold adapts like Linux's
  ``tp->reordering``), and a tail loss probe, so heavy multipath
  reordering degrades throughput without collapsing it;
* retransmission timeouts with exponential backoff and SACK-aware
  go-back-N;
* message boundaries: applications send *messages* (Section 4.2's
  extended socket send), the sender records the sequence range of each
  message together with its Eden classifications, and every outgoing
  segment carries the classifications of the message it belongs to.

No receive-window modeling and no delayed ACKs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.stage import Classification
from ..netsim.packet import (FLAG_ACK, FLAG_FIN, FLAG_SYN, MSS, Packet,
                             PROTO_TCP)
from ..netsim.simulator import MS, Simulator

INITIAL_CWND_MSS = 10
DUPACK_THRESHOLD = 3
#: Reordering-tolerance cap: like Linux's ``tp->reordering``, the
#: duplicate-ACK threshold adapts upward when ACKs reveal reordering
#: rather than loss, up to this many segments.
MAX_DUPACK_THRESHOLD = 8
MIN_RTO_NS = 2 * MS
INITIAL_RTO_NS = 2 * MS
MAX_RTO_NS = 200 * MS
ACK_PRIORITY = 7


@dataclass
class MessageRecord:
    """One application message inside the send buffer."""

    start_seq: int
    end_seq: int
    classifications: Tuple[Classification, ...]
    metadata: Dict[str, object]
    enqueued_at: int
    on_complete: Optional[Callable[["MessageRecord", int], None]] = None
    completed: bool = False


@dataclass
class TcpStats:
    segments_sent: int = 0
    bytes_sent: int = 0
    retransmits: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    dupacks_received: int = 0
    acks_received: int = 0
    bytes_delivered: int = 0


class TcpConnection:
    """One endpoint of a TCP connection.

    Created either actively through
    :meth:`repro.stack.netstack.HostStack.connect` or passively when a
    SYN arrives on a listening port.  Applications interact through
    :meth:`message_send`, :attr:`on_data`, and :meth:`close`.
    """

    # Connection states.
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"
    DONE = "done"

    def __init__(self, sim: Simulator, stack, local_ip: int,
                 local_port: int, remote_ip: int, remote_port: int,
                 tenant: int = 0) -> None:
        self.sim = sim
        self.stack = stack
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.tenant = tenant
        self.state = self.CLOSED
        self.stats = TcpStats()

        # Sender state.  Sequence space: SYN consumes seq 0; data
        # starts at 1; FIN consumes one sequence number after the data.
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = INITIAL_CWND_MSS * MSS
        self.ssthresh = 1 << 30
        self.dupacks = 0
        self.dup_thresh = DUPACK_THRESHOLD
        self.adaptive_reordering = True
        self.recover = 0
        self.in_fast_recovery = False
        self._send_buffer_end = 1       # next free sequence number
        self._messages: List[MessageRecord] = []
        self._message_starts: List[int] = []
        self._first_incomplete = 0
        self._fin_queued = False
        self._fin_seq: Optional[int] = None
        self._send_times: Dict[int, int] = {}
        self._retransmitted: set = set()
        # SACK scoreboard: merged (start, end) ranges the receiver
        # reported holding above the cumulative ACK, plus the segments
        # already retransmitted in the current recovery episode.
        self._sacked: List[Tuple[int, int]] = []
        self._rtx_this_recovery: set = set()
        self.srtt: Optional[int] = None
        self.rttvar = 0
        #: Per-connection RTO floor; raise it for connections shaped
        #: by token buckets well below line rate (shaping delay must
        #: not look like loss).
        self.min_rto_ns = MIN_RTO_NS
        self.rto = INITIAL_RTO_NS
        self._rto_event = None
        # Tail loss probe (RFC 8985-flavored): retransmit the highest
        # outstanding segment after ~2 RTTs of ACK silence so a lost
        # window tail is detected at RTT rather than RTO timescales.
        self._pto_event = None
        self._pto_backoff = 1
        self._last_data_seq: Optional[int] = None

        # DCTCP (optional): ECN-fraction-proportional window
        # reduction.  Enabled with :meth:`enable_dctcp`; requires
        # switch ports configured with an ECN marking threshold.
        self.dctcp_enabled = False
        self.dctcp_alpha = 0.0
        self.dctcp_g = 1 / 16
        self._dctcp_acked = 0
        self._dctcp_marked = 0
        self._dctcp_window_end = 0

        # Receiver state.
        self.rcv_nxt = 0
        self._ooo: List[Tuple[int, int]] = []   # sorted disjoint ranges
        self._peer_fin_seq: Optional[int] = None
        #: Pending DSACK block: a duplicate segment to report on the
        #: next ACK (RFC 2883) so the sender can detect spurious
        #: retransmissions caused by reordering.
        self._pending_dsack: Optional[Tuple[int, int]] = None
        #: ECN mark seen on the data packet being acknowledged, to be
        #: echoed on the next ACK (DCTCP's per-packet echo).
        self._ecn_echo_pending = False

        # Application callbacks.
        self.on_data: Optional[Callable[["TcpConnection", int],
                                        None]] = None
        self.on_established: Optional[Callable[["TcpConnection"],
                                               None]] = None
        self.on_close: Optional[Callable[["TcpConnection"], None]] = None

        self.opened_at = sim.now
        self.established_at: Optional[int] = None
        self.closed_at: Optional[int] = None

    # -- identifiers -------------------------------------------------------

    @property
    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        return (self.local_ip, self.local_port, self.remote_ip,
                self.remote_port, PROTO_TCP)

    def __repr__(self) -> str:
        return (f"TcpConnection({self.local_ip}:{self.local_port}->"
                f"{self.remote_ip}:{self.remote_port} {self.state} "
                f"cwnd={self.cwnd})")

    # -- application interface ---------------------------------------------

    def connect(self) -> None:
        """Actively open: send SYN."""
        if self.state is not self.CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = self.SYN_SENT
        self.snd_nxt = 0
        self._emit(seq=0, payload=0, flags=FLAG_SYN)
        self.snd_nxt = 1
        self._arm_rto()

    def message_send(self, nbytes: int,
                     classifications: Sequence[Classification] = (),
                     metadata: Optional[Dict[str, object]] = None,
                     on_complete: Optional[Callable] = None) -> \
            MessageRecord:
        """Queue one application message of ``nbytes`` for delivery.

        This is the extended send primitive of Section 4.2: the message
        carries class and metadata information which each of its
        packets will present to the enclave.  ``on_complete(record,
        now_ns)`` fires when the whole message has been cumulatively
        acknowledged.
        """
        if nbytes <= 0:
            raise ValueError("messages must have at least one byte")
        if self._fin_queued:
            raise RuntimeError("cannot send after close()")
        record = MessageRecord(
            start_seq=self._send_buffer_end,
            end_seq=self._send_buffer_end + nbytes,
            classifications=tuple(classifications),
            metadata=dict(metadata or {}),
            enqueued_at=self.sim.now,
            on_complete=on_complete)
        self._messages.append(record)
        self._message_starts.append(record.start_seq)
        self._send_buffer_end += nbytes
        if self.state is self.ESTABLISHED:
            self._try_send()
        elif self.state is self.CLOSED:
            self.connect()
        return record

    def enable_dctcp(self, g: float = 1 / 16) -> None:
        """Switch this connection's congestion response to DCTCP.

        The receiver echoes ECN marks on its ACKs; the sender keeps a
        moving estimate ``alpha`` of the marked fraction and cuts the
        window by ``alpha/2`` once per window with marks — mild,
        proportional backoff instead of Reno's halving.
        """
        self.dctcp_enabled = True
        self.dctcp_g = g

    def close(self) -> None:
        """Half-close after all queued data is sent."""
        if self._fin_queued:
            return
        self._fin_queued = True
        self._fin_seq = self._send_buffer_end
        self._send_buffer_end += 1
        if self.state is self.ESTABLISHED:
            self._try_send()

    # -- segment arrival -----------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Process one inbound segment addressed to this connection."""
        if packet.flags & FLAG_SYN:
            self._handle_syn(packet)
            return
        if packet.flags & FLAG_ACK:
            self._handle_ack(packet)
        if packet.payload_len > 0 or packet.flags & FLAG_FIN:
            self._handle_data(packet)

    def _handle_syn(self, packet: Packet) -> None:
        if packet.flags & FLAG_ACK:
            # SYN-ACK for our active open.
            if self.state is self.SYN_SENT:
                self.state = self.ESTABLISHED
                self.established_at = self.sim.now
                self.snd_una = 1
                self.rcv_nxt = 1
                self._cancel_rto()
                self._send_ack()
                if self.on_established:
                    self.on_established(self)
                self._try_send()
        else:
            # Passive open: reply SYN-ACK (stack created us on demand).
            if self.state in (self.CLOSED, self.SYN_RECEIVED):
                self.state = self.SYN_RECEIVED
                self.rcv_nxt = 1
                self._emit(seq=0, payload=0, flags=FLAG_SYN | FLAG_ACK,
                           ack=self.rcv_nxt)
                self.snd_nxt = 1

    # .. sender side ..........................................................

    def _handle_ack(self, packet: Packet) -> None:
        if self.state is self.SYN_RECEIVED:
            self.state = self.ESTABLISHED
            self.established_at = self.sim.now
            self.snd_una = max(self.snd_una, 1)
            if self.on_established:
                self.on_established(self)
        ack = packet.ack
        self.stats.acks_received += 1
        if packet.sack:
            first_start, first_end = packet.sack[0]
            if first_end <= ack and self.adaptive_reordering:
                # DSACK: our retransmission was spurious — the
                # original had merely been reordered.  Tolerate more.
                self.dup_thresh = min(MAX_DUPACK_THRESHOLD,
                                      self.dup_thresh + 2)
            self._merge_sack(packet.sack)
        if ack > self.snd_una:
            if self.dctcp_enabled:
                self._process_ecn_echo(packet, ack - self.snd_una)
            self._pto_backoff = 1
            self._handle_new_ack(ack)
        elif ack == self.snd_una and self._outstanding() > 0:
            self.stats.dupacks_received += 1
            self.dupacks += 1
            if self.in_fast_recovery:
                # Window inflation during recovery; fill further holes
                # the SACK scoreboard exposes.
                self.cwnd += MSS
                self._sack_retransmit()
            elif self.dupacks >= self.dup_thresh or \
                    self._sacked_bytes() >= self.dup_thresh * MSS:
                # Classic trigger, or the RFC 6675 one: enough bytes
                # SACKed means loss even with few duplicate ACKs.
                self._enter_fast_recovery()
        if self._outstanding() > 0:
            self._arm_pto()
        self._maybe_finish()

    def _process_ecn_echo(self, packet: Packet,
                          newly_acked: int) -> None:
        """DCTCP sender side: account the echoed mark and apply the
        once-per-window proportional reduction."""
        self._dctcp_acked += newly_acked
        if packet.ecn:
            self._dctcp_marked += newly_acked
        if packet.ack < self._dctcp_window_end:
            return
        # One observation window completed.
        if self._dctcp_acked > 0:
            fraction = self._dctcp_marked / self._dctcp_acked
            self.dctcp_alpha = ((1 - self.dctcp_g) *
                                self.dctcp_alpha +
                                self.dctcp_g * fraction)
            if self._dctcp_marked > 0:
                self.cwnd = max(
                    2 * MSS,
                    int(self.cwnd * (1 - self.dctcp_alpha / 2)))
                self.ssthresh = self.cwnd
        self._dctcp_acked = 0
        self._dctcp_marked = 0
        self._dctcp_window_end = self.snd_nxt

    def _handle_new_ack(self, ack: int) -> None:
        newly_acked = ack - self.snd_una
        self._sample_rtt(ack)
        self.snd_una = ack
        if self.adaptive_reordering and self.dupacks > 0 and \
                not self.in_fast_recovery:
            # The hole filled by itself: that was reordering, not
            # loss.  Raise the tolerance (Linux-style).
            self.dup_thresh = min(MAX_DUPACK_THRESHOLD,
                                  max(self.dup_thresh,
                                      self.dupacks + 1))
        self.dupacks = 0
        if self.in_fast_recovery:
            if ack >= self.recover:
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
                self._rtx_this_recovery.clear()
            else:
                # Partial ACK: SACK-based recovery retransmits the
                # remaining holes as the window allows.
                self.cwnd = max(MSS,
                                self.cwnd - newly_acked + MSS)
                self._sack_retransmit()
        else:
            if self.cwnd < self.ssthresh:
                self.cwnd += min(newly_acked, MSS)
            else:
                self.cwnd += max(1, MSS * MSS // self.cwnd)
        for seq in [s for s in self._send_times if s < ack]:
            del self._send_times[seq]
        self._retransmitted = {s for s in self._retransmitted
                               if s >= ack}
        self._sacked = [(s, e) for s, e in self._sacked if e > ack]
        self._complete_messages(ack)
        if self._outstanding() > 0:
            self._arm_rto()
        else:
            self._cancel_rto()
        self._try_send()

    def _enter_fast_recovery(self) -> None:
        self.stats.fast_retransmits += 1
        flight = self._outstanding()
        self.ssthresh = max(flight // 2, 2 * MSS)
        self.recover = self.snd_nxt
        self.in_fast_recovery = True
        self.cwnd = self.ssthresh + self.dup_thresh * MSS
        self._rtx_this_recovery.clear()
        self._retransmit_one(self.snd_una)
        self._rtx_this_recovery.add(self.snd_una)
        self._sack_retransmit()

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.state is self.DONE or self._outstanding() == 0:
            return
        self.stats.timeouts += 1
        flight = self._outstanding()
        self.ssthresh = max(flight // 2, 2 * MSS)
        self.cwnd = MSS
        self.in_fast_recovery = False
        self.dupacks = 0
        self.rto = min(self.rto * 2, MAX_RTO_NS)
        # Rewind and retransmit from the hole; the SACK scoreboard is
        # kept (the simulated receiver never reneges) so already
        # received data is not resent.
        self._rtx_this_recovery.clear()
        self.snd_nxt = self.snd_una
        if self.snd_una == 0 and self.state is self.SYN_SENT:
            self._emit(seq=0, payload=0, flags=FLAG_SYN)
            self.snd_nxt = 1
        else:
            self._try_send(mark_retransmit=True)
        self._arm_rto()

    def _try_send(self, mark_retransmit: bool = False) -> None:
        if self.state is not self.ESTABLISHED and \
                self.state is not self.FIN_WAIT:
            return
        while True:
            in_flight = self.snd_nxt - self.snd_una
            if in_flight >= self.cwnd:
                break
            segment = self._next_segment()
            if segment is None:
                break
            seq, length, is_fin = segment
            span = length + (1 if is_fin else 0)
            if self._sacked and \
                    self._is_sacked(seq, seq + span):
                # The receiver already holds this segment (resend
                # after an RTO rewind): skip over it.
                self.snd_nxt = seq + span
                continue
            first_time = seq not in self._send_times
            if first_time:
                self._send_times[seq] = self.sim.now
            else:
                self._retransmitted.add(seq)
            if mark_retransmit or not first_time:
                self.stats.retransmits += 1
            flags = FLAG_ACK | (FLAG_FIN if is_fin else 0)
            self._emit(seq=seq, payload=length, flags=flags,
                       ack=self.rcv_nxt)
            self.snd_nxt = seq + length + (1 if is_fin else 0)
            if length > 0:
                self._last_data_seq = seq
            self.stats.segments_sent += 1
            self.stats.bytes_sent += length
            if self._rto_event is None:
                self._arm_rto()
            self._arm_pto()
            if is_fin:
                if self.state is self.ESTABLISHED:
                    self.state = self.FIN_WAIT
                break

    def _next_segment(self) -> Optional[Tuple[int, int, bool]]:
        """(seq, payload_len, is_fin) of the next segment, or None.

        Segments never span message boundaries, so each packet belongs
        to exactly one message and inherits its classifications.
        """
        seq = self.snd_nxt
        if self._fin_seq is not None and seq == self._fin_seq:
            return (seq, 0, True)
        record = self._message_for(seq)
        if record is None:
            return None
        length = min(MSS, record.end_seq - seq)
        return (seq, length, False)

    def _message_for(self, seq: int) -> Optional[MessageRecord]:
        if not self._messages:
            return None
        idx = bisect.bisect_right(self._message_starts, seq) - 1
        if idx < 0:
            return None
        record = self._messages[idx]
        if seq >= record.end_seq:
            return None
        return record

    def _outstanding(self) -> int:
        return self.snd_nxt - self.snd_una

    def _complete_messages(self, ack: int) -> None:
        while self._first_incomplete < len(self._messages):
            record = self._messages[self._first_incomplete]
            if record.end_seq > ack:
                break
            record.completed = True
            self._first_incomplete += 1
            if record.on_complete:
                record.on_complete(record, self.sim.now)
        # Trim fully acknowledged messages so long-running flows do
        # not accumulate unbounded send-buffer metadata.
        if self._first_incomplete > 4096:
            del self._messages[:self._first_incomplete]
            del self._message_starts[:self._first_incomplete]
            self._first_incomplete = 0

    def _sample_rtt(self, ack: int) -> None:
        candidates = [s for s in self._send_times if s < ack]
        if not candidates:
            return
        seq = max(candidates)
        if seq in self._retransmitted:
            return  # Karn's algorithm
        sample = self.sim.now - self._send_times[seq]
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample // 2
        else:
            err = abs(sample - self.srtt)
            self.rttvar = (3 * self.rttvar + err) // 4
            self.srtt = (7 * self.srtt + sample) // 8
        self.rto = max(self.min_rto_ns, self.srtt + 4 * self.rttvar)

    # .. SACK scoreboard ...................................................

    def _merge_sack(self, blocks) -> None:
        merged = list(self._sacked)
        for s, e in blocks:
            if e > self.snd_una:
                merged.append((max(s, self.snd_una), e))
        merged.sort()
        out: List[Tuple[int, int]] = []
        for s, e in merged:
            if out and s <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], e))
            else:
                out.append((s, e))
        self._sacked = out

    def _is_sacked(self, start: int, end: int) -> bool:
        for s, e in self._sacked:
            if s <= start and end <= e:
                return True
            if s > start:
                break
        return False

    def _sacked_bytes(self) -> int:
        total = 0
        for s, e in self._sacked:
            lo = max(s, self.snd_una)
            hi = min(e, self.snd_nxt)
            if hi > lo:
                total += hi - lo
        return total

    def _pipe(self) -> int:
        """In-flight estimate: outstanding minus SACKed bytes."""
        return self._outstanding() - self._sacked_bytes()

    def _segment_at(self, seq: int):
        """(payload_len, is_fin) of the segment starting at ``seq``."""
        record = self._message_for(seq)
        if record is not None:
            return (min(MSS, record.end_seq - seq), False)
        if self._fin_seq is not None and seq == self._fin_seq:
            return (0, True)
        return None

    def _sack_retransmit(self) -> None:
        """SACK-based loss recovery: retransmit the holes below
        ``recover`` that the scoreboard exposes, as the window
        allows, then send new data with any remaining budget."""
        if not self.in_fast_recovery:
            return
        budget = self.cwnd - self._pipe()
        # RFC 6675-style IsLost: a hole counts as lost only once
        # enough data above it has been SACKed; otherwise it may just
        # be reordered and still in flight.
        high_sacked = max((e for _, e in self._sacked), default=0)
        lost_below = high_sacked - (self.dup_thresh - 1) * MSS
        seq = self.snd_una
        limit = min(self.recover, self.snd_nxt, lost_below)
        while budget > 0 and seq < limit:
            segment = self._segment_at(seq)
            if segment is None:
                break
            length, is_fin = segment
            span = length + (1 if is_fin else 0)
            if span <= 0:
                break
            if seq not in self._rtx_this_recovery and \
                    not self._is_sacked(seq, seq + span):
                self._rtx_this_recovery.add(seq)
                self._retransmit_segment(seq, length, is_fin)
                budget -= max(length, 1)
            seq += span
        if budget > 0:
            self._try_send()

    def _retransmit_segment(self, seq: int, length: int,
                            is_fin: bool) -> None:
        self._retransmitted.add(seq)
        self.stats.retransmits += 1
        flags = FLAG_ACK | (FLAG_FIN if is_fin else 0)
        self._emit(seq=seq, payload=length, flags=flags,
                   ack=self.rcv_nxt)

    def _retransmit_one(self, seq: int) -> None:
        record = self._message_for(seq)
        if record is not None:
            length = min(MSS, record.end_seq - seq)
            is_fin = False
        elif self._fin_seq is not None and seq == self._fin_seq:
            length, is_fin = 0, True
        else:
            return
        self._retransmitted.add(seq)
        self.stats.retransmits += 1
        flags = FLAG_ACK | (FLAG_FIN if is_fin else 0)
        self._emit(seq=seq, payload=length, flags=flags,
                   ack=self.rcv_nxt)

    # .. receiver side ..........................................................

    def _handle_data(self, packet: Packet) -> None:
        if packet.ecn:
            self._ecn_echo_pending = True
        start = packet.seq
        end = packet.seq + packet.payload_len
        if packet.flags & FLAG_FIN:
            self._peer_fin_seq = end
            end += 1
        advanced = False
        if start <= self.rcv_nxt < end:
            self.rcv_nxt = end
            advanced = True
            self._drain_ooo()
        elif start > self.rcv_nxt:
            if any(s <= start and end <= e for s, e in self._ooo):
                self._pending_dsack = (start, end)  # duplicate
            else:
                self._stash_ooo(start, end)
        else:
            # Entirely below rcv_nxt: a duplicate — report via DSACK.
            self._pending_dsack = (start, end)
        self._send_ack()
        if advanced:
            delivered = self.rcv_nxt - 1  # exclude SYN
            if self._peer_fin_seq is not None and \
                    self.rcv_nxt > self._peer_fin_seq:
                delivered -= 1
            self.stats.bytes_delivered = delivered
            if self.on_data and packet.payload_len > 0:
                self.on_data(self, delivered)
            if self._peer_fin_seq is not None and \
                    self.rcv_nxt >= self._peer_fin_seq + 1 and \
                    self.state is self.ESTABLISHED:
                self.state = self.CLOSE_WAIT
        self._maybe_finish()

    def _stash_ooo(self, start: int, end: int) -> None:
        self._ooo.append((start, end))
        self._ooo.sort()
        merged: List[Tuple[int, int]] = []
        for s, e in self._ooo:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self._ooo = merged

    def _drain_ooo(self) -> None:
        changed = True
        while changed:
            changed = False
            for s, e in list(self._ooo):
                if s <= self.rcv_nxt < e:
                    self.rcv_nxt = e
                    self._ooo.remove((s, e))
                    changed = True
                elif e <= self.rcv_nxt:
                    self._ooo.remove((s, e))
                    changed = True

    def _maybe_finish(self) -> None:
        if self.state is self.DONE:
            return
        sent_all = (self._fin_seq is not None and
                    self.snd_una >= self._fin_seq + 1)
        got_fin = (self._peer_fin_seq is not None and
                   self.rcv_nxt >= self._peer_fin_seq + 1)
        # A connection is done when our FIN is acked and, if the peer
        # initiated data, we saw its FIN; for one-sided flows the
        # receiving end finishes on FIN receipt alone.
        if sent_all and (got_fin or self._peer_fin_seq is None):
            self._finish()
        elif got_fin and self._fin_seq is None and \
                self._outstanding() == 0 and not self._messages:
            self._finish()

    def _finish(self) -> None:
        self.state = self.DONE
        self.closed_at = self.sim.now
        self._cancel_rto()
        if self.on_close:
            self.on_close(self)
        self.stack.connection_done(self)

    # -- emission -------------------------------------------------------------

    def _send_ack(self) -> None:
        # Real TCP fits 3-4 SACK blocks per option; the simulator
        # reports the whole out-of-order set so the sender scoreboard
        # is exact (RFC 2018's intent without option-space limits).
        # A pending DSACK block leads, per RFC 2883.
        sack = tuple(self._ooo)
        if self._pending_dsack is not None:
            sack = (self._pending_dsack,) + sack
            self._pending_dsack = None
        ecn_echo = self._ecn_echo_pending
        self._ecn_echo_pending = False
        self._emit(seq=self.snd_nxt, payload=0, flags=FLAG_ACK,
                   ack=self.rcv_nxt, priority=ACK_PRIORITY,
                   sack=sack, ecn_echo=ecn_echo)

    def _emit(self, seq: int, payload: int, flags: int, ack: int = 0,
              priority: Optional[int] = None,
              sack: Tuple[Tuple[int, int], ...] = (),
              ecn_echo: bool = False) -> None:
        packet = Packet(src_ip=self.local_ip, dst_ip=self.remote_ip,
                        src_port=self.local_port,
                        dst_port=self.remote_port,
                        proto=PROTO_TCP, payload_len=payload, seq=seq,
                        ack=ack, flags=flags, tenant=self.tenant,
                        created_at=self.sim.now)
        packet.flow_id = self.five_tuple
        packet.sack = sack
        if ecn_echo:
            packet.ecn = 1
        if priority is not None:
            packet.priority = priority
        if payload > 0:
            record = self._message_for(seq)
            if record is not None:
                packet.classifications = list(record.classifications)
                packet.metadata = dict(record.metadata)
        self.stack.send_packet(packet,
                               pure_ack=(payload == 0 and
                                         flags == FLAG_ACK))

    # -- timers -------------------------------------------------------------

    def _arm_rto(self) -> None:
        self._cancel_rto()
        self._rto_event = self.sim.schedule(self.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        self._cancel_pto()

    def _pto_delay(self) -> int:
        if self.srtt is not None:
            base = max(2 * self.srtt, 100_000)  # >= 2 RTTs, >= 100 us
        else:
            base = 3 * 1_000_000  # 3 ms before any RTT sample
        return min(base * self._pto_backoff, self.rto)

    def _arm_pto(self) -> None:
        self._cancel_pto()
        if self._outstanding() <= 0:
            return
        self._pto_event = self.sim.schedule(self._pto_delay(),
                                            self._on_pto)

    def _cancel_pto(self) -> None:
        if self._pto_event is not None:
            self._pto_event.cancel()
            self._pto_event = None

    def _on_pto(self) -> None:
        """Tail loss probe: ACK silence while data is outstanding —
        retransmit the highest data segment to elicit a SACK."""
        self._pto_event = None
        if self.state is self.DONE or self._outstanding() == 0:
            return
        probe_seq = self._last_data_seq
        if probe_seq is None or probe_seq < self.snd_una:
            probe_seq = self.snd_una
        segment = self._segment_at(probe_seq)
        if segment is not None:
            length, is_fin = segment
            self._retransmit_segment(probe_seq, length, is_fin)
        self._pto_backoff = min(self._pto_backoff * 2, 8)
        self._arm_pto()

"""Enclave state management and the concurrency model.

Section 3.4.4: "The authoritative state is maintained in the enclave,
and the annotations determine the concurrency model for the action
functions."  This module holds that authoritative state —

* :class:`GlobalStore` — per-action-function global scalars and arrays,
  written by the controller (e.g. PIAS priority thresholds, WCMP path
  matrices, Pulsar queue maps);
* :class:`MessageStore` — per-message state created lazily on the first
  packet of a message and garbage-collected when the message ends;

— and derives the admissible concurrency level of a program from which
state scopes it writes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..lang import ast_nodes as T
from ..lang.annotations import AccessLevel, FieldKind, Schema
from ..lang.bytecode import wrap64


class ConcurrencyLevel(enum.Enum):
    """How many invocations of a program the enclave may run at once.

    Derived from the declared write sets (Section 3.4.4):

    * ``PARALLEL`` — the program writes only packet state: any number of
      packets may be processed concurrently.
    * ``PER_MESSAGE`` — the program writes message state: at most one
      packet *per message* concurrently.
    * ``SERIAL`` — the program writes global state: one invocation at a
      time.
    """

    PARALLEL = "parallel"
    PER_MESSAGE = "per-message"
    SERIAL = "serial"


def concurrency_of(prog: T.ProgramAST) -> ConcurrencyLevel:
    """Derive the concurrency level from a program's write statements."""
    writes_message = False
    writes_global = False
    for fn in prog.functions:
        for stmt in T.walk_stmts(fn.body):
            scope: Optional[str] = None
            if isinstance(stmt, (T.AssignState, T.AssignArray)):
                scope = stmt.scope
            if scope == "message":
                writes_message = True
            elif scope == "global":
                writes_global = True
    if writes_global:
        return ConcurrencyLevel.SERIAL
    if writes_message:
        return ConcurrencyLevel.PER_MESSAGE
    return ConcurrencyLevel.PARALLEL


class StateError(Exception):
    """A state operation violated the schema or store invariants."""


ArrayValue = List[int]
ScalarOrArray = Union[int, ArrayValue]


class GlobalStore:
    """Authoritative global state of one action function.

    Scalars are plain ints.  Array fields hold either a flat list (for
    :attr:`FieldKind.ARRAY`) or a flattened record list (stride x
    elements, for :attr:`FieldKind.RECORD_ARRAY`).  Array fields may
    also be *keyed*: a dict of key -> array, resolved per packet by the
    field's ``binder`` — this is how WCMP's ``pathMatrix[src, dst]`` is
    expressed.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._scalars: Dict[str, int] = {}
        self._arrays: Dict[str, ArrayValue] = {}
        self._keyed: Dict[str, Dict[tuple, ArrayValue]] = {}
        for f in schema.fields:
            if f.is_array:
                self._arrays[f.name] = []
            else:
                self._scalars[f.name] = f.default

    # -- controller-facing writes ----------------------------------------

    def set_scalar(self, name: str, value: int) -> None:
        f = self.schema.field_named(name)
        if f.is_array:
            raise StateError(f"{name} is an array; use set_array")
        self._scalars[name] = wrap64(value)

    def set_array(self, name: str,
                  values: Sequence[int]) -> None:
        f = self.schema.field_named(name)
        if not f.is_array:
            raise StateError(f"{name} is a scalar; use set_scalar")
        flat = [wrap64(v) for v in values]
        if len(flat) % f.stride:
            raise StateError(
                f"{name}: {len(flat)} values is not a multiple of "
                f"stride {f.stride}")
        self._arrays[name] = flat

    def set_records(self, name: str,
                    records: Iterable[Sequence[int]]) -> None:
        """Set a record array from per-element tuples."""
        f = self.schema.field_named(name)
        if f.kind is not FieldKind.RECORD_ARRAY:
            raise StateError(f"{name} is not a record array")
        flat: List[int] = []
        for rec in records:
            if len(rec) != f.stride:
                raise StateError(
                    f"{name}: record {rec!r} has {len(rec)} members, "
                    f"expected {f.stride}")
            flat.extend(wrap64(v) for v in rec)
        self._arrays[name] = flat

    def set_keyed_array(self, name: str, key: tuple,
                        values: Sequence[int]) -> None:
        """Set one key's slice of a keyed array (see class docstring)."""
        f = self.schema.field_named(name)
        if not f.is_array:
            raise StateError(f"{name} is a scalar")
        flat = [wrap64(v) for v in values]
        if len(flat) % f.stride:
            raise StateError(
                f"{name}: {len(flat)} values is not a multiple of "
                f"stride {f.stride}")
        self._keyed.setdefault(name, {})[key] = flat

    # -- runtime reads/writes ----------------------------------------------

    def scalar(self, name: str) -> int:
        return self._scalars[name]

    def array(self, name: str) -> ArrayValue:
        return self._arrays[name]

    def keyed_array(self, name: str, key: tuple) -> ArrayValue:
        keyed = self._keyed.get(name)
        if keyed is None or key not in keyed:
            return []
        return keyed[key]

    def commit_scalar(self, name: str, value: int) -> None:
        self._scalars[name] = wrap64(value)

    def commit_array(self, name: str, values: List[int]) -> None:
        self._arrays[name] = list(values)

    def snapshot(self) -> Dict[str, ScalarOrArray]:
        """A read-only copy of all state (for the controller's queries)."""
        out: Dict[str, ScalarOrArray] = dict(self._scalars)
        for name, arr in self._arrays.items():
            out[name] = list(arr)
        return out


@dataclass
class MessageEntry:
    """State of one message for one action function."""

    values: Dict[str, int]
    created_at: int = 0
    last_used_at: int = 0
    packets: int = 0


class MessageStore:
    """Per-message state of one action function.

    Entries are created lazily when the first packet of a message
    arrives (seeded from schema defaults, overlaid with any metadata the
    stage attached whose names match message fields) and expired either
    explicitly (message end) or by idle timeout.
    """

    def __init__(self, schema: Schema,
                 idle_timeout_ns: int = 10_000_000_000) -> None:
        self.schema = schema
        self.idle_timeout_ns = idle_timeout_ns
        self._entries: Dict[object, MessageEntry] = {}
        self.created_total = 0
        self.expired_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def lookup(self, key: object, now_ns: int,
               metadata: Optional[Dict[str, int]] = None
               ) -> Tuple[MessageEntry, bool]:
        """Return (entry, is_new) for the message ``key``."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.last_used_at = now_ns
            entry.packets += 1
            return entry, False
        values = {f.name: f.default for f in self.schema.fields
                  if not f.is_array}
        if metadata:
            for name, value in metadata.items():
                if self.schema.has_field(name) and \
                        not self.schema.field_named(name).is_array:
                    values[name] = wrap64(int(value))
        entry = MessageEntry(values=values, created_at=now_ns,
                             last_used_at=now_ns, packets=1)
        self._entries[key] = entry
        self.created_total += 1
        return entry, True

    def commit(self, key: object, values: Dict[str, int]) -> None:
        entry = self._entries.get(key)
        if entry is None:
            raise StateError(f"no message entry for {key!r}")
        entry.values.update(values)

    def end_message(self, key: object) -> None:
        """Explicit message termination (e.g. flow FIN)."""
        if self._entries.pop(key, None) is not None:
            self.expired_total += 1

    def field_values(self, name: str) -> List[int]:
        """Current value of ``name`` across all live messages.

        Telemetry hook: e.g. the control plane samples the PIAS
        function's per-message ``size`` field to rebuild the
        flow-size distribution the threshold computation needs.
        """
        if not self.schema.has_field(name):
            raise StateError(
                f"message schema has no field {name!r}")
        return [entry.values[name]
                for entry in self._entries.values()]

    def expire_idle(self, now_ns: int) -> int:
        """Drop entries idle longer than the timeout; returns count."""
        stale = [k for k, e in self._entries.items()
                 if now_ns - e.last_used_at > self.idle_timeout_ns]
        for k in stale:
            del self._entries[k]
        self.expired_total += len(stale)
        return len(stale)

"""Eden stages: application-level classification of network traffic.

Section 3.3: a *stage* is any application, library or service that is
Eden-compliant.  A stage classifies the messages it generates using
*classification rules* ``<classifier> -> [class_name, {meta-data}]``,
organized into *rule-sets* such that a message matches at most one rule
per rule-set.  Class names are fully qualified as
``stage.rule-set.class_name`` and travel, along with the selected
metadata, down the host stack to the enclave.

The controller programs stages through the Stage API of Table 3:
``getStageInfo`` (S0), ``createStageRule`` (S1), ``removeStageRule``
(S2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..telemetry import NULL_TELEMETRY, Telemetry

WILDCARD = "*"


class StageError(Exception):
    """A classification rule or lookup was invalid."""


@dataclass(frozen=True)
class Classifier:
    """The match part of a classification rule.

    A mapping from classifier-field name to a required value; fields
    omitted or set to :data:`WILDCARD` match anything.  E.g. the paper's
    ``<GET, "a">`` for memcached is ``{"msg_type": "GET", "key": "a"}``.
    """

    matches: Tuple[Tuple[str, object], ...]

    @classmethod
    def of(cls, **matches: object) -> "Classifier":
        return cls(tuple(sorted(matches.items())))

    def covers(self, attrs: Mapping[str, object]) -> bool:
        for name, expected in self.matches:
            if expected == WILDCARD:
                continue
            if attrs.get(name) != expected:
                return False
        return True

    @property
    def specificity(self) -> int:
        """Number of non-wildcard terms (more specific matches first)."""
        return sum(1 for _, v in self.matches if v != WILDCARD)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.matches)
        return f"<{inner}>"


@dataclass(frozen=True)
class ClassificationRule:
    """One rule: ``<classifier> -> [class_name, {meta-data}]``."""

    rule_id: int
    rule_set: str
    classifier: Classifier
    class_name: str
    metadata_fields: Tuple[str, ...]

    def __str__(self) -> str:
        meta = ", ".join(self.metadata_fields)
        return (f"{self.rule_set}: {self.classifier} -> "
                f"[{self.class_name}, {{{meta}}}]")


@dataclass(frozen=True)
class Classification:
    """The result of classifying one message under one rule-set."""

    class_name: str          # fully qualified: stage.ruleset.class
    metadata: Dict[str, object]

    @property
    def message_id(self) -> Optional[object]:
        return self.metadata.get("msg_id")


@dataclass(frozen=True)
class StageInfo:
    """What ``getStageInfo`` (S0) returns: the stage's classification
    capabilities — which fields it can classify on and which metadata it
    can generate (paper Table 2)."""

    name: str
    classifier_fields: Tuple[str, ...]
    metadata_fields: Tuple[str, ...]


class Stage:
    """An Eden-compliant application or library.

    Subclasses (or instantiations) declare what they *can* do —
    ``classifier_fields`` and ``metadata_fields`` — and the controller
    installs rules deciding what they *should* do.  At send time the
    application calls :meth:`classify` with the attributes of one
    message and attaches the resulting classifications to the data it
    hands to the socket layer.
    """

    def __init__(self, name: str,
                 classifier_fields: Sequence[str],
                 metadata_fields: Sequence[str],
                 telemetry: Optional[Telemetry] = None) -> None:
        self.name = name
        self.classifier_fields = tuple(classifier_fields)
        self.metadata_fields = tuple(metadata_fields)
        self._rules: Dict[int, ClassificationRule] = {}
        self._rule_sets: Dict[str, List[ClassificationRule]] = {}
        self._next_rule_id = itertools.count(1)
        self._next_msg_id = itertools.count(1)
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        self._m_classified = self.telemetry.registry.counter(
            "stage_messages_classified_total", stage=name)
        self._tracing = self.telemetry.enabled

    # -- Stage API (paper Table 3) -----------------------------------------

    def get_stage_info(self) -> StageInfo:
        """S0: report classification abilities to the controller."""
        return StageInfo(name=self.name,
                         classifier_fields=self.classifier_fields,
                         metadata_fields=self.metadata_fields)

    def create_stage_rule(self, rule_set: str, classifier: Classifier,
                          class_name: str,
                          metadata_fields: Sequence[str]) -> int:
        """S1: install a classification rule; returns its rule id."""
        for fname, _ in classifier.matches:
            if fname not in self.classifier_fields:
                raise StageError(
                    f"stage {self.name!r} cannot classify on "
                    f"{fname!r}; available: {self.classifier_fields}")
        for mfield in metadata_fields:
            if mfield not in self.metadata_fields:
                raise StageError(
                    f"stage {self.name!r} cannot generate metadata "
                    f"{mfield!r}; available: {self.metadata_fields}")
        rule_id = next(self._next_rule_id)
        rule = ClassificationRule(
            rule_id=rule_id, rule_set=rule_set, classifier=classifier,
            class_name=class_name,
            metadata_fields=tuple(metadata_fields))
        self._rules[rule_id] = rule
        bucket = self._rule_sets.setdefault(rule_set, [])
        bucket.append(rule)
        # Most-specific-first so "a message matches at most one rule in
        # each rule-set" resolves deterministically.
        bucket.sort(key=lambda r: (-r.classifier.specificity, r.rule_id))
        return rule_id

    def remove_stage_rule(self, rule_set: str, rule_id: int) -> None:
        """S2: remove a previously installed rule."""
        rule = self._rules.pop(rule_id, None)
        if rule is None or rule.rule_set != rule_set:
            raise StageError(
                f"stage {self.name!r}: no rule {rule_id} in rule set "
                f"{rule_set!r}")
        self._rule_sets[rule_set].remove(rule)

    # -- data-path classification ------------------------------------------

    def new_message_id(self) -> int:
        """Allocate a unique message identifier within this stage."""
        return next(self._next_msg_id)

    def classify(self, attrs: Mapping[str, object],
                 msg_id: Optional[int] = None) -> List[Classification]:
        """Classify one message against every installed rule-set.

        ``attrs`` carries both classifier values (e.g. ``msg_type``)
        and metadata values (e.g. ``msg_size``).  A message may belong
        to one class per rule-set (Section 3.3); rule-sets with no
        matching rule contribute nothing.
        """
        if msg_id is None:
            msg_id = self.new_message_id()
        if not self._tracing:
            return self._classify_impl(attrs, msg_id)
        # flow_id here is the message identity — the same
        # ``(stage, msg_id)`` that travels in msg_id metadata — so
        # stage spans join against enclave/packet spans without
        # digging through attrs.
        with self.telemetry.tracer.span("stage.classify",
                                        stage=self.name,
                                        flow_id=(self.name, msg_id)
                                        ) as span:
            results = self._classify_impl(attrs, msg_id)
            span.set(classes=len(results))
        return results

    def _classify_impl(self, attrs: Mapping[str, object],
                       msg_id: Optional[int]) -> List[Classification]:
        if msg_id is None:
            msg_id = self.new_message_id()
        results: List[Classification] = []
        for rule_set in sorted(self._rule_sets):
            for rule in self._rule_sets[rule_set]:
                if not rule.classifier.covers(attrs):
                    continue
                metadata: Dict[str, object] = {}
                for mfield in rule.metadata_fields:
                    if mfield == "msg_id":
                        metadata["msg_id"] = (self.name, msg_id)
                    elif mfield in attrs:
                        metadata[mfield] = attrs[mfield]
                fq_name = f"{self.name}.{rule.rule_set}.{rule.class_name}"
                results.append(Classification(class_name=fq_name,
                                              metadata=metadata))
                break  # at most one rule per rule-set
        self._m_classified.inc()
        return results

    def rules(self) -> List[ClassificationRule]:
        return sorted(self._rules.values(), key=lambda r: r.rule_id)

    def __repr__(self) -> str:
        return (f"Stage({self.name!r}, rules="
                f"{[str(r) for r in self.rules()]})")


def memcached_stage() -> Stage:
    """The memcached stage of paper Table 2: classifies on
    ``<msg_type, key>`` and generates ``{msg_id, msg_type, key,
    msg_size}``."""
    return Stage("memcached",
                 classifier_fields=("msg_type", "key"),
                 metadata_fields=("msg_id", "msg_type", "key",
                                  "msg_size"))


def http_stage() -> Stage:
    """The HTTP-library stage of paper Table 2."""
    return Stage("http",
                 classifier_fields=("msg_type", "url"),
                 metadata_fields=("msg_id", "msg_type", "url",
                                  "msg_size"))


def storage_stage() -> Stage:
    """A storage-service stage (Pulsar case study): classifies on the
    IO operation type and exposes operation size and tenant."""
    return Stage("storage",
                 classifier_fields=("op_type", "tenant"),
                 metadata_fields=("msg_id", "op_type", "msg_size",
                                  "tenant"))

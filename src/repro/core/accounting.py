"""CPU accounting for the Eden data path (paper Figure 12).

The paper decomposes Eden's CPU overhead into three components measured
against a vanilla TCP stack: *API* (passing metadata information to the
enclave), *enclave* (classification matching plus state preparation and
commit), and *interpreter* (executing the action function bytecode).

:class:`CpuAccounting` collects per-packet wall-clock samples for each
bucket.  Totals and counts are exact; per-bucket *samples* are bounded
by reservoir sampling (Algorithm R) so a long sweep holds a uniform
random subset of fixed size instead of one entry per packet —
percentiles stay unbiased while memory stays O(reservoir).  When a
:class:`~repro.telemetry.registry.MetricRegistry` is attached, every
sample is mirrored into a log-bucketed ``cpu_ns{component=...}``
histogram so accounting shows up in telemetry snapshots and exports.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional

from ..telemetry.registry import (MetricRegistry, NULL_HISTOGRAM,
                                  nearest_rank)

BUCKETS = ("api", "enclave", "interpreter", "native")

#: Default per-bucket reservoir size: enough for stable tail
#: percentiles (p95 rank error < 1% at this size) at fixed memory.
RESERVOIR_SIZE = 4096


class Reservoir:
    """Uniform fixed-size sample of a stream (Vitter's Algorithm R)."""

    __slots__ = ("capacity", "seen", "values", "_rng")

    def __init__(self, capacity: int,
                 rng: Optional[random.Random] = None) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be > 0")
        self.capacity = capacity
        self.seen = 0
        self.values: List[int] = []
        self._rng = rng if rng is not None else random.Random(0)

    def add(self, value: int) -> None:
        self.seen += 1
        if len(self.values) < self.capacity:
            self.values.append(value)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self.values[slot] = value

    def clear(self) -> None:
        self.seen = 0
        self.values.clear()


class CpuAccounting:
    """Accumulates per-packet processing-time samples per component."""

    def __init__(self, enabled: bool = True,
                 registry: Optional[MetricRegistry] = None,
                 reservoir_size: int = RESERVOIR_SIZE,
                 rng: Optional[random.Random] = None) -> None:
        self.enabled = enabled
        # Exact aggregates (never sampled) ...
        self._totals: Dict[str, int] = {b: 0 for b in BUCKETS}
        self._counts: Dict[str, int] = {b: 0 for b in BUCKETS}
        # ... a bounded uniform sample per bucket for percentiles ...
        seeded = rng if rng is not None else random.Random(0)
        self._reservoirs: Dict[str, Reservoir] = {
            b: Reservoir(reservoir_size, seeded) for b in BUCKETS}
        # ... and an optional telemetry mirror.
        self.registry = registry
        if registry is not None:
            self._hists = {b: registry.histogram("cpu_ns", component=b)
                           for b in BUCKETS}
        else:
            self._hists = {b: NULL_HISTOGRAM for b in BUCKETS}

    def record(self, bucket: str, elapsed_ns: int) -> None:
        if not self.enabled:
            return
        self._totals[bucket] += elapsed_ns
        self._counts[bucket] += 1
        self._reservoirs[bucket].add(elapsed_ns)
        self._hists[bucket].observe(elapsed_ns)

    def now(self) -> int:
        return time.perf_counter_ns() if self.enabled else 0

    @property
    def samples(self) -> Dict[str, List[int]]:
        """Per-bucket retained samples (a bounded reservoir, not the
        full stream — use :meth:`totals`/:meth:`counts` for exact
        aggregates)."""
        return {b: list(r.values) for b, r in self._reservoirs.items()}

    def totals(self) -> Dict[str, int]:
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def mean_ns(self, bucket: str) -> float:
        count = self._counts[bucket]
        return self._totals[bucket] / count if count else 0.0

    def percentile_ns(self, bucket: str, pct: float) -> float:
        return nearest_rank(self._reservoirs[bucket].values, pct)

    def reset(self) -> None:
        for bucket in BUCKETS:
            self._totals[bucket] = 0
            self._counts[bucket] = 0
            self._reservoirs[bucket].clear()

"""CPU accounting for the Eden data path (paper Figure 12).

The paper decomposes Eden's CPU overhead into three components measured
against a vanilla TCP stack: *API* (passing metadata information to the
enclave), *enclave* (classification matching plus state preparation and
commit), and *interpreter* (executing the action function bytecode).

:class:`CpuAccounting` collects per-packet wall-clock samples for each
bucket; consumers compute averages/percentiles relative to a baseline.
"""

from __future__ import annotations

import time
from typing import Dict, List


BUCKETS = ("api", "enclave", "interpreter", "native")


class CpuAccounting:
    """Accumulates per-packet processing-time samples per component."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.samples: Dict[str, List[int]] = {b: [] for b in BUCKETS}

    def record(self, bucket: str, elapsed_ns: int) -> None:
        if self.enabled:
            self.samples[bucket].append(elapsed_ns)

    def now(self) -> int:
        return time.perf_counter_ns() if self.enabled else 0

    def totals(self) -> Dict[str, int]:
        return {b: sum(v) for b, v in self.samples.items()}

    def counts(self) -> Dict[str, int]:
        return {b: len(v) for b, v in self.samples.items()}

    def mean_ns(self, bucket: str) -> float:
        values = self.samples[bucket]
        return sum(values) / len(values) if values else 0.0

    def percentile_ns(self, bucket: str, pct: float) -> float:
        values = sorted(self.samples[bucket])
        if not values:
            return 0.0
        rank = min(len(values) - 1,
                   max(0, int(round(pct / 100.0 * (len(values) - 1)))))
        return float(values[rank])

    def reset(self) -> None:
        for bucket in self.samples:
            self.samples[bucket].clear()

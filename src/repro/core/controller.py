"""The logically centralized Eden controller.

Section 3.2: a network function is conceptually a control-plane part —
anything needing global visibility or coarse timescales — plus a
data-plane part executed by stages and enclaves.  The controller hosts
the former and programs the latter through the Stage API (Table 3) and
the enclave API.

This module provides:

* a registry of the stages and enclaves at every end host, with
  API passthroughs so network-function deployments address them by
  host id;
* the control-plane computations used by the paper's case studies —
  WCMP path weights from topology (Section 2.1.1), PIAS priority
  thresholds from the flow-size distribution (Section 2.1.3), and
  Pulsar's tenant queue map (Section 2.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, Iterable, List, Sequence, Tuple, Union)

from .enclave import Enclave, InstalledFunction
from .stage import Classifier, Stage, StageInfo


class ControllerError(Exception):
    """A controller operation referenced an unknown host/stage/enclave."""


@dataclass(frozen=True)
class PathWeight:
    """One weighted path between a source-destination pair.

    ``weight`` is an integer share out of the row's total (the paper's
    probability, scaled); ``path_id`` is the source-routing label the
    end host puts in the packet (VLAN tag in the prototype,
    Section 3.5).
    """

    path_id: int
    weight: int


class Controller:
    """Coordination point with global visibility."""

    def __init__(self, name: str = "controller") -> None:
        self.name = name
        self._enclaves: Dict[str, Enclave] = {}
        self._stages: Dict[Tuple[str, str], Stage] = {}

    # -- registry ----------------------------------------------------------

    def register_enclave(self, host: str, enclave: Enclave) -> None:
        if host in self._enclaves:
            raise ControllerError(
                f"host {host!r} already has an enclave")
        self._enclaves[host] = enclave

    def register_stage(self, host: str, stage: Stage) -> None:
        key = (host, stage.name)
        if key in self._stages:
            raise ControllerError(
                f"stage {stage.name!r} already registered at {host!r}")
        self._stages[key] = stage

    def enclave(self, host: str) -> Enclave:
        try:
            return self._enclaves[host]
        except KeyError:
            raise ControllerError(
                f"no enclave registered for host {host!r}") from None

    def stage(self, host: str, stage_name: str) -> Stage:
        try:
            return self._stages[(host, stage_name)]
        except KeyError:
            raise ControllerError(
                f"no stage {stage_name!r} at host {host!r}") from None

    def hosts(self) -> List[str]:
        return sorted(self._enclaves)

    def stages_at(self, host: str) -> List[str]:
        return sorted(name for (h, name) in self._stages if h == host)

    # -- Stage API passthrough (paper Table 3) ------------------------------

    def get_stage_info(self, host: str, stage_name: str) -> StageInfo:
        return self.stage(host, stage_name).get_stage_info()

    def create_stage_rule(self, host: str, stage_name: str,
                          rule_set: str, classifier: Classifier,
                          class_name: str,
                          metadata_fields: Sequence[str]) -> int:
        return self.stage(host, stage_name).create_stage_rule(
            rule_set, classifier, class_name, metadata_fields)

    def remove_stage_rule(self, host: str, stage_name: str,
                          rule_set: str, rule_id: int) -> None:
        self.stage(host, stage_name).remove_stage_rule(rule_set, rule_id)

    # -- enclave API passthrough -------------------------------------------

    def install_function(self, hosts: Union[str, Iterable[str]],
                         source_fn, **kwargs) -> List[InstalledFunction]:
        """Install an action function at one or many hosts."""
        installed = []
        for host in self._host_list(hosts):
            installed.append(
                self.enclave(host).install_function(source_fn, **kwargs))
        return installed

    def install_rule(self, hosts: Union[str, Iterable[str]],
                     pattern: str, function: str,
                     **kwargs) -> List[int]:
        return [self.enclave(h).install_rule(pattern, function, **kwargs)
                for h in self._host_list(hosts)]

    def set_global(self, hosts: Union[str, Iterable[str]],
                   function: str, name: str, value: int) -> None:
        for host in self._host_list(hosts):
            self.enclave(host).set_global(function, name, value)

    def set_global_records(self, hosts: Union[str, Iterable[str]],
                           function: str, name: str,
                           records: Sequence[Sequence[int]]) -> None:
        for host in self._host_list(hosts):
            self.enclave(host).set_global_records(function, name,
                                                  records)

    def set_global_keyed(self, hosts: Union[str, Iterable[str]],
                         function: str, name: str, key: tuple,
                         values: Sequence[int]) -> None:
        for host in self._host_list(hosts):
            self.enclave(host).set_global_keyed(function, name, key,
                                                values)

    def collect_stats(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Monitoring sweep: per-host, per-function counters.

        The network-side analog of the "statistics gathering
        capabilities" the paper notes switches already expose
        (Section 3.5) — here the controller polls its enclaves.
        """
        return {host: enclave.stats_summary()
                for host, enclave in self._enclaves.items()}

    def replace_function(self, hosts: Union[str, Iterable[str]],
                         name: str, source_fn, **kwargs) -> None:
        """Hot-swap a function's program at one or many hosts,
        preserving data-plane state (Section 3.4.3's dynamic
        updates)."""
        for host in self._host_list(hosts):
            self.enclave(host).replace_function(name, source_fn,
                                                **kwargs)

    def _host_list(self, hosts: Union[str, Iterable[str]]) -> List[str]:
        if isinstance(hosts, str):
            if hosts == "*":
                return self.hosts()
            return [hosts]
        return list(hosts)

    # -- control-plane computations ------------------------------------------

    @staticmethod
    def wcmp_weights(path_capacities: Sequence[Tuple[int, float]],
                     scale: int = 1000) -> List[PathWeight]:
        """Compute WCMP weights from per-path bottleneck capacities.

        ``path_capacities`` is a list of ``(path_id, capacity)``; the
        returned integer weights are proportional to capacity and sum
        to ``scale`` (give or take rounding, corrected on the largest
        entry).  With equal capacities this degenerates to ECMP.
        """
        if not path_capacities:
            raise ControllerError("no paths given")
        total = float(sum(c for _, c in path_capacities))
        if total <= 0:
            raise ControllerError("path capacities must be positive")
        weights = [PathWeight(pid, int(round(scale * c / total)))
                   for pid, c in path_capacities]
        drift = scale - sum(w.weight for w in weights)
        if drift:
            largest = max(range(len(weights)),
                          key=lambda i: weights[i].weight)
            weights[largest] = PathWeight(
                weights[largest].path_id,
                weights[largest].weight + drift)
        return weights

    @staticmethod
    def pias_thresholds(flow_sizes: Sequence[int],
                        num_priorities: int = 3,
                        max_priority: int = 7) -> List[Tuple[int, int]]:
        """Compute PIAS demotion thresholds from observed flow sizes.

        Returns ``(size_limit, priority)`` rows, highest priority
        first, splitting the flow-size distribution into
        ``num_priorities`` equal-probability bands ("these thresholds
        need to be calculated periodically based on the datacenter's
        overall traffic load", Section 2.1.3).  The last band is
        unbounded (represented by a huge limit) at the lowest of the
        chosen priorities.
        """
        if num_priorities < 2:
            raise ControllerError("need at least two priority levels")
        if not flow_sizes:
            raise ControllerError("no flow-size samples")
        ordered = sorted(flow_sizes)
        rows: List[Tuple[int, int]] = []
        for band in range(num_priorities - 1):
            quantile = (band + 1) / num_priorities
            idx = min(len(ordered) - 1,
                      int(quantile * len(ordered)))
            rows.append((ordered[idx],
                         max_priority - band))
        rows.append((1 << 62, max_priority - (num_priorities - 1)))
        # Make limits strictly non-decreasing.
        for i in range(1, len(rows)):
            if rows[i][0] < rows[i - 1][0]:
                rows[i] = (rows[i - 1][0], rows[i][1])
        return rows

    @staticmethod
    def tenant_queue_map(tenants: Sequence[str],
                         base_queue: int = 1) -> Dict[str, int]:
        """Assign each tenant a rate-limited queue id (Pulsar's
        ``queueMap``)."""
        return {tenant: base_queue + i
                for i, tenant in enumerate(sorted(tenants))}

"""The logically centralized Eden controller.

Section 3.2: a network function is conceptually a control-plane part —
anything needing global visibility or coarse timescales — plus a
data-plane part executed by stages and enclaves.  The controller hosts
the former and programs the latter through the Stage API (Table 3) and
the enclave API.

Since the control-plane channel landed (:mod:`repro.control`), the
enclave API here is a thin facade over that channel: every mutating
call becomes a typed control message, versioned with the target
enclave's epoch, and travels through the reliable channel to the
host's :class:`~repro.control.agent.EnclaveAgent`.

* ``transport="inproc"`` (the default) uses a synchronous, lossless
  in-process transport: each call is delivered, applied and acked
  before it returns, results come back synchronously, and apply
  errors re-raise in the caller — the original direct-call semantics,
  preserved exactly.
* ``transport="sim"`` (with a :class:`~repro.netsim.simulator.
  Simulator`) schedules delivery as simulator events with configurable
  delay, jitter and injected faults; mutating calls return
  :class:`~repro.control.channel.PendingSend` handles that complete as
  acks arrive.

This module also keeps the control-plane computations used by the
paper's case studies — WCMP path weights from topology
(Section 2.1.1), PIAS priority thresholds from the flow-size
distribution (Section 2.1.3), and Pulsar's tenant queue map
(Section 2.1.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (Dict, Iterable, List, Optional, Sequence, Tuple,
                    Union)

from ..control import (ChannelConfig, ControlPlane, EnclaveAgent,
                       FaultInjector, InprocTransport, SimTransport,
                       Transport)
from ..control.channel import PendingSend
from .enclave import Enclave, InstalledFunction
from .stage import Classifier, Stage, StageInfo


class ControllerError(Exception):
    """A controller operation referenced an unknown host/stage/enclave
    or was otherwise invalid."""


@dataclass(frozen=True)
class PathWeight:
    """One weighted path between a source-destination pair.

    ``weight`` is an integer share out of the row's total (the paper's
    probability, scaled); ``path_id`` is the source-routing label the
    end host puts in the packet (VLAN tag in the prototype,
    Section 3.5).
    """

    path_id: int
    weight: int


class Controller:
    """Coordination point with global visibility."""

    def __init__(self, name: str = "controller",
                 transport: Union[str, Transport] = "inproc",
                 sim=None,
                 channel_config: Optional[ChannelConfig] = None,
                 faults: Optional[FaultInjector] = None,
                 telemetry=None) -> None:
        self.name = name
        self.telemetry = telemetry
        self._enclaves: Dict[str, Enclave] = {}
        self._stages: Dict[Tuple[str, str], Stage] = {}
        self._agents: Dict[str, EnclaveAgent] = {}
        self.sim = sim
        if isinstance(transport, Transport):
            self.transport = transport
        elif transport == "inproc":
            self.transport = InprocTransport()
        elif transport == "sim":
            if sim is None:
                raise ControllerError(
                    "transport='sim' needs a Simulator instance")
            self.transport = SimTransport(sim, faults=faults)
        else:
            raise ControllerError(
                f"unknown transport {transport!r}; use 'inproc', "
                f"'sim', or a Transport instance")
        self._scheduler = sim if not self.transport.synchronous \
            else None
        self._rng = sim.rng if sim is not None else random.Random(0)
        self._channel_config = channel_config
        self.plane = ControlPlane(self.transport,
                                  scheduler=self._scheduler,
                                  rng=self._rng,
                                  config=channel_config,
                                  address=f"{name}",
                                  telemetry=telemetry)

    @property
    def synchronous(self) -> bool:
        """True when enclave-API calls complete before returning."""
        return self.transport.synchronous

    # -- registry ----------------------------------------------------------

    def register_enclave(self, host: str, enclave: Enclave) -> None:
        if host in self._enclaves:
            raise ControllerError(
                f"host {host!r} already has an enclave")
        self._enclaves[host] = enclave
        agent = EnclaveAgent(host, enclave, self.transport,
                             scheduler=self._scheduler,
                             rng=self._rng,
                             config=self._channel_config,
                             controller_address=self.plane.address,
                             telemetry=self.telemetry)
        self._agents[host] = agent
        self.plane.attach(host, agent.address)

    def register_stage(self, host: str, stage: Stage) -> None:
        key = (host, stage.name)
        if key in self._stages:
            raise ControllerError(
                f"stage {stage.name!r} already registered at {host!r}")
        self._stages[key] = stage

    def enclave(self, host: str) -> Enclave:
        try:
            return self._enclaves[host]
        except KeyError:
            raise ControllerError(
                f"no enclave registered for host {host!r}") from None

    def agent(self, host: str) -> EnclaveAgent:
        try:
            return self._agents[host]
        except KeyError:
            raise ControllerError(
                f"no agent for host {host!r}") from None

    def stage(self, host: str, stage_name: str) -> Stage:
        try:
            return self._stages[(host, stage_name)]
        except KeyError:
            raise ControllerError(
                f"no stage {stage_name!r} at host {host!r}") from None

    def hosts(self) -> List[str]:
        return sorted(self._enclaves)

    def stages_at(self, host: str) -> List[str]:
        return sorted(name for (h, name) in self._stages if h == host)

    # -- Stage API passthrough (paper Table 3) ------------------------------

    def get_stage_info(self, host: str, stage_name: str) -> StageInfo:
        return self.stage(host, stage_name).get_stage_info()

    def create_stage_rule(self, host: str, stage_name: str,
                          rule_set: str, classifier: Classifier,
                          class_name: str,
                          metadata_fields: Sequence[str]) -> int:
        return self.stage(host, stage_name).create_stage_rule(
            rule_set, classifier, class_name, metadata_fields)

    def remove_stage_rule(self, host: str, stage_name: str,
                          rule_set: str, rule_id: int) -> None:
        self.stage(host, stage_name).remove_stage_rule(rule_set, rule_id)

    # -- enclave API (routed through the control channel) -------------------

    def _finish(self, pending: PendingSend):
        """Resolve one channel send in synchronous (inproc) mode."""
        if not self.synchronous:
            return pending
        if pending.nacked:
            if pending.error is not None:
                raise pending.error
            raise ControllerError(
                f"control message rejected: {pending.reason}")
        return pending.result

    def install_function(self, hosts: Union[str, Iterable[str]],
                         source_fn, **kwargs) -> List:
        """Install an action function at one or many hosts.

        Synchronous mode returns the installed
        :class:`InstalledFunction` objects; over an asynchronous
        transport it returns the in-flight ``PendingSend`` handles.
        """
        name = kwargs.pop("name", None) or \
            getattr(source_fn, "__name__", "action")
        out = []
        for host in self._host_list(hosts):
            self.enclave(host)  # unknown hosts fail fast
            out.append(self._finish(self.plane.install_function(
                host, name, source_fn, **kwargs)))
        return out

    def install_rule(self, hosts: Union[str, Iterable[str]],
                     pattern: str, function: str,
                     **kwargs) -> List:
        """Install a match-action rule; returns rule ids (sync mode)."""
        out = []
        for host in self._host_list(hosts):
            self.enclave(host)
            out.append(self._finish(self.plane.install_rule(
                host, pattern, function, **kwargs)))
        return out

    def set_global(self, hosts: Union[str, Iterable[str]],
                   function: str, name: str, value: int) -> Optional[
                       List[PendingSend]]:
        return self._fan_out_globals(
            hosts, lambda host: self.plane.set_global(
                host, function, name, value))

    def set_global_records(self, hosts: Union[str, Iterable[str]],
                           function: str, name: str,
                           records: Sequence[Sequence[int]]
                           ) -> Optional[List[PendingSend]]:
        return self._fan_out_globals(
            hosts, lambda host: self.plane.set_global_records(
                host, function, name, records))

    def set_global_keyed(self, hosts: Union[str, Iterable[str]],
                         function: str, name: str, key: tuple,
                         values: Sequence[int]
                         ) -> Optional[List[PendingSend]]:
        return self._fan_out_globals(
            hosts, lambda host: self.plane.set_global_keyed(
                host, function, name, key, values))

    def _fan_out_globals(self, hosts, submit) -> Optional[
            List[PendingSend]]:
        pendings = []
        for host in self._host_list(hosts):
            self.enclave(host)
            pendings.append(self._finish(submit(host)))
        return None if self.synchronous else pendings

    def collect_stats(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Monitoring sweep: per-host, per-function counters.

        The network-side analog of the "statistics gathering
        capabilities" the paper notes switches already expose
        (Section 3.5) — here the controller polls its registry
        directly; the pushed-telemetry path lives on
        :attr:`plane` (``StatsReport``).
        """
        return {host: enclave.stats_summary()
                for host, enclave in self._enclaves.items()}

    def replace_function(self, hosts: Union[str, Iterable[str]],
                         name: str, source_fn,
                         **kwargs) -> Optional[List[PendingSend]]:
        """Hot-swap a function's program at one or many hosts,
        preserving data-plane state (Section 3.4.3's dynamic
        updates).

        Raises :class:`ControllerError` when ``name`` was never
        installed at one of the hosts.
        """
        targets = self._host_list(hosts)
        for host in targets:
            if name not in self.enclave(host).functions():
                raise ControllerError(
                    f"cannot replace function {name!r} at host "
                    f"{host!r}: it was never installed")
        pendings = [self._finish(self.plane.replace_function(
            host, name, source_fn, **kwargs)) for host in targets]
        return None if self.synchronous else pendings

    def _host_list(self, hosts: Union[str, Iterable[str]]) -> List[str]:
        if isinstance(hosts, str):
            if hosts == "*":
                return self.hosts()
            return [hosts]
        return list(hosts)

    # -- control-plane computations ------------------------------------------

    @staticmethod
    def wcmp_weights(path_capacities: Sequence[Tuple[int, float]],
                     scale: int = 1000) -> List[PathWeight]:
        """Compute WCMP weights from per-path bottleneck capacities.

        ``path_capacities`` is a list of ``(path_id, capacity)``; the
        returned integer weights are proportional to capacity and sum
        to ``scale`` (give or take rounding, corrected on the largest
        entry).  With equal capacities this degenerates to ECMP.
        """
        if not path_capacities:
            raise ControllerError("no paths given")
        total = float(sum(c for _, c in path_capacities))
        if total <= 0:
            raise ControllerError("path capacities must be positive")
        weights = [PathWeight(pid, int(round(scale * c / total)))
                   for pid, c in path_capacities]
        drift = scale - sum(w.weight for w in weights)
        if drift:
            largest = max(range(len(weights)),
                          key=lambda i: weights[i].weight)
            weights[largest] = PathWeight(
                weights[largest].path_id,
                weights[largest].weight + drift)
        return weights

    @staticmethod
    def pias_thresholds(flow_sizes: Sequence[int],
                        num_priorities: int = 3,
                        max_priority: int = 7) -> List[Tuple[int, int]]:
        """Compute PIAS demotion thresholds from observed flow sizes.

        Returns ``(size_limit, priority)`` rows, highest priority
        first, splitting the flow-size distribution into
        ``num_priorities`` equal-probability bands ("these thresholds
        need to be calculated periodically based on the datacenter's
        overall traffic load", Section 2.1.3).  The last band is
        unbounded (represented by a huge limit) at the lowest of the
        chosen priorities.
        """
        if num_priorities < 2:
            raise ControllerError("need at least two priority levels")
        if not flow_sizes:
            raise ControllerError("no flow-size samples")
        ordered = sorted(flow_sizes)
        rows: List[Tuple[int, int]] = []
        for band in range(num_priorities - 1):
            quantile = (band + 1) / num_priorities
            idx = min(len(ordered) - 1,
                      int(quantile * len(ordered)))
            rows.append((ordered[idx],
                         max_priority - band))
        rows.append((1 << 62, max_priority - (num_priorities - 1)))
        # Make limits strictly non-decreasing.
        for i in range(1, len(rows)):
            if rows[i][0] < rows[i - 1][0]:
                rows[i] = (rows[i - 1][0], rows[i][1])
        return rows

    @staticmethod
    def tenant_queue_map(tenants: Sequence[str],
                         base_queue: int = 1) -> Dict[str, int]:
        """Assign each tenant a rate-limited queue id (Pulsar's
        ``queueMap``)."""
        return {tenant: base_queue + i
                for i, tenant in enumerate(sorted(tenants))}

"""The Eden enclave: a programmable data plane at the end host.

Section 3.4: the enclave resides along the end-host network stack
(in the OS or on a programmable NIC) and comprises (1) match-action
tables that, based on a packet's *class*, determine an *action
function* to apply, and (2) a runtime that executes those functions.

Unlike OpenFlow, matching is on class names assigned by stages (or by
the enclave's own five-tuple classifier), and the action is a real
program — compiled to bytecode and interpreted — that can read and
modify packet, message and global state under the declared access
annotations.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..lang import ast_nodes as T
from ..lang import backends as lang_backends
from ..lang.annotations import (DEFAULT_PACKET_SCHEMA,
                                Field, Schema)
from ..lang.bytecode import Program
from ..lang.compiler import compile_action
from ..lang.interpreter import (ExecResult, Interpreter,
                                InterpreterFault)
from ..lang.native import NativeFunction
from ..lang.verifier import verify
from ..telemetry import NULL_TELEMETRY, Telemetry
from .accounting import CpuAccounting
from .stage import Classification, Stage
from .state import (ConcurrencyLevel, GlobalStore, MessageStore,
                    StateError, concurrency_of)


class EnclaveError(Exception):
    """A controller request to the enclave was invalid."""


class ConcurrencyViolation(EnclaveError):
    """The enclave's concurrency model would be violated."""


class UnknownIdError(EnclaveError, KeyError):
    """A rule or table id named in an enclave API call does not exist.

    Subclasses both :class:`EnclaveError` (so existing controller
    error handling keeps working) and :class:`KeyError` (it is a
    failed id lookup); the message always names the missing id.
    """

    def __str__(self) -> str:
        # KeyError.__str__ reprs its argument; keep the message plain.
        return self.args[0] if self.args else ""


class ConcurrencyGuard:
    """Enforces the admissible parallelism of Section 3.4.4.

    ``PARALLEL`` functions admit any number of in-flight invocations;
    ``PER_MESSAGE`` at most one per message key; ``SERIAL`` one total.
    The simulator is single-threaded, so in normal operation acquire and
    release bracket each invocation without contention — but the guard
    is real, and the test suite exercises it with overlapping holds.
    """

    def __init__(self, level: ConcurrencyLevel) -> None:
        self.level = level
        self._in_flight_total = 0
        self._in_flight_msgs: Dict[object, int] = {}

    def acquire(self, msg_key: object) -> None:
        if self.level is ConcurrencyLevel.SERIAL and \
                self._in_flight_total > 0:
            raise ConcurrencyViolation(
                f"function writes global state: only one invocation "
                f"may run at a time (message {msg_key!r} must wait)")
        if self.level is ConcurrencyLevel.PER_MESSAGE and \
                self._in_flight_msgs.get(msg_key, 0) > 0:
            raise ConcurrencyViolation(
                f"function writes message state: message {msg_key!r} "
                f"already has an invocation in flight")
        self._in_flight_total += 1
        self._in_flight_msgs[msg_key] = \
            self._in_flight_msgs.get(msg_key, 0) + 1

    def release(self, msg_key: object) -> None:
        held = self._in_flight_msgs.get(msg_key, 0)
        if held <= 0:
            raise ConcurrencyViolation(
                f"release without matching acquire for message "
                f"{msg_key!r}")
        self._in_flight_total -= 1
        if held == 1:
            del self._in_flight_msgs[msg_key]
        else:
            self._in_flight_msgs[msg_key] = held - 1


@dataclass
class FunctionStats:
    invocations: int = 0
    faults: int = 0
    ops_executed: int = 0
    max_stack_bytes: int = 0
    max_heap_bytes: int = 0


class InstalledFunction:
    """An action function installed in an enclave.

    ``backend`` selects how invocations execute: ``"interpreter"``
    runs on the enclave's shared :class:`Interpreter` with whatever
    dispatch it was configured with, while any name from the
    :mod:`repro.lang.backends` registry (``tree``, ``fast``,
    ``pycodegen``, ``native``) pins this function to that execution
    backend regardless of the interpreter default.  The authoritative
    message/global state lives here.
    """

    def __init__(self, name: str, source_fn: Union[Callable, str],
                 packet_schema: Schema,
                 message_schema: Optional[Schema],
                 global_schema: Optional[Schema],
                 backend: str,
                 interpreter: Interpreter,
                 rng: random.Random,
                 clock: Callable[[], int],
                 optimize_tail_calls: bool = True,
                 commit_packet_writes: bool = True) -> None:
        if backend == "interpreter" or backend == "native":
            self._exec_backend = None
        else:
            try:
                self._exec_backend = lang_backends.get(backend)
            except KeyError:
                raise EnclaveError(
                    f"unknown backend {backend!r}; use 'interpreter' "
                    f"or one of the registered execution backends: "
                    f"{', '.join(lang_backends.names())}") from None
        if message_schema is not None and \
                any(f.is_array for f in message_schema.fields):
            raise EnclaveError(
                "message schemas must contain only scalar fields")
        self.name = name
        self.backend = backend
        # False implements the paper's "baseline EDEN" configuration
        # (Section 5.1): classification and the data-plane function
        # run, but the interpreter's packet outputs are ignored before
        # transmission.
        self.commit_packet_writes = commit_packet_writes
        self.packet_schema = packet_schema
        self.message_schema = message_schema
        self.global_schema = global_schema
        self.prog_ast, self.program = compile_action(
            source_fn, packet_schema=packet_schema,
            message_schema=message_schema, global_schema=global_schema,
            name=name, optimize_tail_calls=optimize_tail_calls)
        verify(self.program,
               max_operand_stack=interpreter.max_operand_stack)
        self.concurrency = concurrency_of(self.prog_ast)
        self.guard = ConcurrencyGuard(self.concurrency)
        self.interpreter = interpreter
        self.native = NativeFunction(self.prog_ast, self.program,
                                     rng=rng, clock=clock)
        self.global_store = (GlobalStore(global_schema)
                             if global_schema is not None else None)
        self.message_store = (MessageStore(message_schema)
                              if message_schema is not None else None)
        self.stats = FunctionStats()
        self._build_hot_path()

    def _build_hot_path(self) -> None:
        """Precompute the per-packet state prep and commit plans.

        The enclave data path used to re-decide, per packet and per
        field-table slot, which scope a value comes from and whether it
        is writable.  All of that is known at install time, so we bind
        one reader closure per slot and split the writable slots by
        scope for the commit loop.  Readers dereference
        ``self.global_store`` at call time (not at build time) so
        :meth:`Enclave.replace_function` can carry stores over after
        construction.
        """
        readers: List[Callable] = []
        for ref in self.program.field_table:
            if ref.scope == "packet":
                f = self.packet_schema.field_named(ref.name)
                if f.binder is not None:
                    readers.append(
                        lambda pkt, msg, _b=f.binder: int(_b(pkt, None)))
                else:
                    readers.append(
                        lambda pkt, msg, _n=ref.name, _d=f.default:
                        int(getattr(pkt, _n, _d)))
            elif ref.scope == "message":
                readers.append(
                    lambda pkt, msg, _n=ref.name: msg.values[_n])
            else:
                f = self.global_schema.field_named(ref.name)
                if f.binder is not None:
                    readers.append(
                        lambda pkt, msg, _b=f.binder, _fn=self:
                        int(_b(pkt, _fn.global_store)))
                else:
                    readers.append(
                        lambda pkt, msg, _n=ref.name, _fn=self:
                        _fn.global_store.scalar(_n))
        self._field_readers = readers

        array_readers: List[Callable] = []
        for aref in self.program.array_table:
            if aref.scope != "global":
                def _bad_scope(pkt, _s=aref.scope):
                    raise EnclaveError(
                        f"array state is only supported at global "
                        f"scope, not {_s!r}")
                array_readers.append(_bad_scope)
                continue
            f = self.global_schema.field_named(aref.name)
            if f.binder is not None:
                array_readers.append(
                    lambda pkt, _b=f.binder, _fn=self:
                    list(_b(pkt, _fn.global_store)))
            else:
                array_readers.append(
                    lambda pkt, _n=aref.name, _fn=self:
                    _fn.global_store.array(_n))
        self._array_readers = array_readers

        # Preallocated per-packet buffers; both backends copy their
        # inputs before mutating, so reuse across invocations is safe.
        self._field_buf: List[int] = [0] * len(readers)
        self._array_buf: List[Sequence[int]] = [()] * len(array_readers)

        packet_writes: List[Tuple[int, str]] = []
        message_writes: List[Tuple[int, str]] = []
        global_writes: List[Tuple[int, str]] = []
        for i, ref in enumerate(self.program.field_table):
            if not ref.writable:
                continue
            if ref.scope == "packet":
                packet_writes.append((i, ref.name))
            elif ref.scope == "message":
                message_writes.append((i, ref.name))
            else:
                global_writes.append((i, ref.name))
        self._packet_writes = packet_writes
        self._message_writes = message_writes
        self._global_writes = global_writes
        self._array_writes = [
            (i, aref.name)
            for i, aref in enumerate(self.program.array_table)
            if aref.writable and aref.scope == "global"]
        # Lazily built backend batch executor (see Enclave._run_group);
        # replace_function swaps in a fresh InstalledFunction and
        # invalidates the old program's backend caches, so a stale
        # runner never outlives its program.
        self._batch_runner = None

    def execute(self, fields: Sequence[int],
                arrays: Sequence[Sequence[int]]) -> ExecResult:
        if self.backend == "native":
            return self.native.execute(fields, arrays)
        if self._exec_backend is not None:
            return self._exec_backend.execute(
                self.interpreter, self.program, fields, arrays)
        return self.interpreter.execute(self.program, fields, arrays)


@dataclass(frozen=True)
class MatchRule:
    """One match-action entry: a class-name pattern and an action.

    Patterns are exact class names or prefix wildcards such as
    ``memcached.r1.*`` (``*`` alone matches everything).
    ``next_table`` optionally chains processing to another table after
    the action runs (Section 3.4.2: an action can send the packet "to a
    specific match-action table").
    """

    rule_id: int
    pattern: str
    function: str
    priority: int = 0
    next_table: Optional[int] = None

    def matches(self, class_name: str) -> bool:
        if self.pattern == "*":
            return True
        if self.pattern.endswith(".*"):
            return class_name.startswith(self.pattern[:-1])
        return class_name == self.pattern


#: Lookup results memoized per class-name tuple; bounded so a hostile
#: stage churning class names cannot grow the cache without limit.
_LOOKUP_CACHE_LIMIT = 1024
_MISS = object()


class MatchActionTable:
    """An ordered set of :class:`MatchRule`, highest priority first.

    Lookups are memoized per class-name tuple — packets of one flow
    carry the same classes, so the per-packet cost collapses to one
    dict probe.  ``add``/``remove`` invalidate the cache.
    """

    def __init__(self, table_id: int) -> None:
        self.table_id = table_id
        self._rules: List[MatchRule] = []
        self._lookup_cache: Dict[Tuple[str, ...],
                                 Optional[Tuple[MatchRule, str]]] = {}

    def add(self, rule: MatchRule) -> None:
        self._rules.append(rule)
        self._rules.sort(key=lambda r: (-r.priority, r.rule_id))
        self._lookup_cache.clear()

    def remove(self, rule_id: int) -> None:
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.rule_id != rule_id]
        if len(self._rules) == before:
            raise UnknownIdError(
                f"table {self.table_id}: no rule with id {rule_id} "
                f"(known: {sorted(r.rule_id for r in self._rules)})")
        self._lookup_cache.clear()

    def _scan(self, class_names: Sequence[str]
              ) -> Optional[Tuple[MatchRule, str]]:
        """The un-memoized rule scan behind :meth:`lookup`."""
        for rule in self._rules:
            for cname in class_names:
                if rule.matches(cname):
                    return (rule, cname)
        return None

    def lookup(self, class_names: Sequence[str]
               ) -> Optional[Tuple[MatchRule, str]]:
        """First rule (by priority) matching any of the packet's
        classes; returns (rule, matched class name)."""
        key = tuple(class_names)
        hit = self._lookup_cache.get(key, _MISS)
        if hit is not _MISS:
            return hit
        found = self._scan(key)
        if len(self._lookup_cache) >= _LOOKUP_CACHE_LIMIT:
            self._lookup_cache.clear()
        self._lookup_cache[key] = found
        return found

    def lookup_batch(self, keys: Sequence[Tuple[str, ...]]
                     ) -> List[Optional[Tuple[MatchRule, str]]]:
        """Memoized lookup of many class-name key tuples in one pass.

        Semantically identical to ``[self.lookup(k) for k in keys]``
        (same memo cache, same eviction), but written as the batch
        data path's single vectorized pass: a rule-homogeneous batch
        costs one dict probe per packet and at most one rule scan.
        """
        cache = self._lookup_cache
        out: List[Optional[Tuple[MatchRule, str]]] = []
        for key in keys:
            hit = cache.get(key, _MISS)
            if hit is _MISS:
                hit = self._scan(key)
                if len(cache) >= _LOOKUP_CACHE_LIMIT:
                    cache.clear()
                cache[key] = hit
            out.append(hit)
        return out

    def rules(self) -> List[MatchRule]:
        return list(self._rules)


@dataclass
class ProcessResult:
    """Outcome of enclave processing for one packet.

    ``error`` is only ever set by :meth:`Enclave.process_batch`: where
    the scalar path raises :class:`ConcurrencyViolation` out of
    :meth:`Enclave.process_packet`, the batch path isolates the
    violation to the offending packet (the rest of the batch still
    processes) and parks the exception here.
    """

    executed: List[str]                 # action functions run, in order
    matched_classes: List[str]
    drop: bool = False
    to_controller: bool = False
    faults: int = 0
    interpreter_ops: int = 0            # bytecode ops across actions
    error: Optional[BaseException] = None


#: Placements supported by the prototype (Section 4.3): a Windows
#: network-filter-driver enclave and a Netronome programmable-NIC
#: enclave.  The per-packet base cost models where the enclave sits.
PLACEMENT_OS = "os"
PLACEMENT_NIC = "nic"
_PLACEMENT_BASE_COST_NS = {PLACEMENT_OS: 500, PLACEMENT_NIC: 120}

#: Class name of the enclave's own flow-granularity classification
#: (appended to every packet; paper Table 2, last row).
_FLOW_CLASS = "enclave.flows.default"

#: Guard key used for the once-per-group acquisition of PARALLEL and
#: SERIAL concurrency guards in the batch path; a unique object so it
#: can never collide with a real message key.
_BATCH_GUARD_KEY = object()

#: Cached in InstalledFunction._batch_runner when the function's
#: execution backend answered make_batch_runner() with None (the
#: scalar path is already optimal), so the batch path asks only once.
_NO_BATCH_RUNNER = object()


class Enclave:
    """The per-host Eden enclave.

    The controller programs it through the *enclave API*: installing
    action functions (:meth:`install_function`), match-action rules
    (:meth:`install_rule`), and global state
    (:meth:`set_global`/:meth:`set_global_array`/...).  The host network
    stack drives the data path through :meth:`process_packet`.
    """

    MAX_TABLE_HOPS = 8

    def __init__(self, name: str = "enclave",
                 placement: str = PLACEMENT_OS,
                 packet_schema: Schema = DEFAULT_PACKET_SCHEMA,
                 rng: Optional[random.Random] = None,
                 clock: Optional[Callable[[], int]] = None,
                 accounting: Optional[CpuAccounting] = None,
                 interpreter: Optional[Interpreter] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        if placement not in _PLACEMENT_BASE_COST_NS:
            raise EnclaveError(f"unknown placement {placement!r}")
        self.name = name
        self.placement = placement
        self.per_packet_base_cost_ns = _PLACEMENT_BASE_COST_NS[placement]
        self.packet_schema = packet_schema
        self.rng = rng if rng is not None else random.Random(1)
        self.clock = clock if clock is not None else (lambda: 0)
        self.accounting = accounting or CpuAccounting(enabled=False)
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        self.interpreter = interpreter or Interpreter(
            rng=self.rng, clock=self.clock, telemetry=telemetry)
        if telemetry is not None and \
                getattr(self.interpreter, "telemetry", None) is None:
            self.interpreter.bind_telemetry(telemetry)
        self._functions: Dict[str, InstalledFunction] = {}
        self._tables: Dict[int, MatchActionTable] = {
            0: MatchActionTable(0)}
        self._next_rule_id = itertools.count(1)
        self.packets_processed = 0
        self.packets_dropped = 0
        # Instruments are bound once here; in the NULL_TELEMETRY case
        # they are shared no-ops, so the data path below needs no
        # enabled checks for counters (spans gate on _tracing because
        # they allocate).
        registry = self.telemetry.registry
        self._m_packets = registry.counter("enclave_packets_total",
                                           enclave=name)
        self._m_drops = registry.counter("enclave_drops_total",
                                         enclave=name)
        self._m_faults = registry.counter("enclave_faults_total",
                                          enclave=name)
        self._m_lookups = registry.counter("enclave_lookups_total",
                                           enclave=name)
        self._m_lookup_hits = registry.counter(
            "enclave_lookup_hits_total", enclave=name)
        self._m_invocations = registry.counter(
            "enclave_invocations_total", enclave=name)
        self._h_packet_ops = registry.histogram(
            "enclave_packet_ops", enclave=name)
        self._h_batch_size = registry.histogram(
            "enclave_batch_size", enclave=name)
        self._tracing = self.telemetry.enabled
        # The enclave is itself a stage that classifies at the
        # granularity of flows (last row of paper Table 2).
        self.flow_stage = Stage(
            "enclave",
            classifier_fields=("src_ip", "src_port", "dst_ip",
                               "dst_port", "proto"),
            metadata_fields=("msg_id",),
            telemetry=telemetry)

    # -- enclave API: functions ---------------------------------------------

    def install_function(self, source_fn: Union[Callable, str],
                         name: Optional[str] = None,
                         message_schema: Optional[Schema] = None,
                         global_schema: Optional[Schema] = None,
                         backend: str = "interpreter",
                         optimize_tail_calls: bool = True,
                         commit_packet_writes: bool = True
                         ) -> InstalledFunction:
        """Compile, verify, and install an action function."""
        installed = InstalledFunction(
            name=name or getattr(source_fn, "__name__", "action"),
            source_fn=source_fn,
            packet_schema=self.packet_schema,
            message_schema=message_schema,
            global_schema=global_schema,
            backend=backend,
            interpreter=self.interpreter,
            rng=self.rng,
            clock=self.clock,
            optimize_tail_calls=optimize_tail_calls,
            commit_packet_writes=commit_packet_writes)
        if installed.name in self._functions:
            raise EnclaveError(
                f"function {installed.name!r} already installed")
        self._functions[installed.name] = installed
        return installed

    def clear(self) -> None:
        """Factory-reset the data plane (models an enclave restart).

        Installed functions, tables, rules and counters — all soft
        state — are lost; the control plane is expected to replay the
        desired state afterwards (:mod:`repro.control`).  Rule ids
        keep counting up so ids are never reused across restarts.
        """
        self._functions = {}
        self._tables = {0: MatchActionTable(0)}
        self.packets_processed = 0
        self.packets_dropped = 0

    def remove_function(self, name: str) -> None:
        if name not in self._functions:
            raise EnclaveError(f"no function {name!r}")
        for table in self._tables.values():
            for rule in table.rules():
                if rule.function == name:
                    raise EnclaveError(
                        f"function {name!r} still referenced by rule "
                        f"{rule.rule_id} in table {table.table_id}")
        removed = self._functions.pop(name)
        # Drop every backend's compiled artifact for the removed
        # program so no cache (fast handler lists, generated code,
        # native closures) can outlive the function that owned it.
        removed._batch_runner = None
        lang_backends.invalidate(removed.program)

    def function(self, name: str) -> InstalledFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise EnclaveError(f"no function {name!r}") from None

    def functions(self) -> List[str]:
        return sorted(self._functions)

    # -- enclave API: tables and rules -----------------------------------

    def create_table(self, table_id: int) -> MatchActionTable:
        if table_id in self._tables:
            raise EnclaveError(f"table {table_id} already exists")
        table = MatchActionTable(table_id)
        self._tables[table_id] = table
        return table

    def delete_table(self, table_id: int) -> None:
        if table_id == 0:
            raise EnclaveError("table 0 cannot be deleted")
        if table_id not in self._tables:
            raise UnknownIdError(
                f"no table with id {table_id} "
                f"(known: {sorted(self._tables)})")
        del self._tables[table_id]

    def table(self, table_id: int) -> MatchActionTable:
        try:
            return self._tables[table_id]
        except KeyError:
            raise UnknownIdError(
                f"no table with id {table_id} "
                f"(known: {sorted(self._tables)})") from None

    def install_rule(self, pattern: str, function: str,
                     table_id: int = 0, priority: int = 0,
                     next_table: Optional[int] = None) -> int:
        """Install ``<match on class name> -> f(pkt, ...)`` (Table 4)."""
        if function not in self._functions:
            raise EnclaveError(
                f"cannot install rule for unknown function "
                f"{function!r}")
        if next_table is not None and next_table not in self._tables:
            raise EnclaveError(f"next table {next_table} does not exist")
        rule_id = next(self._next_rule_id)
        self.table(table_id).add(MatchRule(
            rule_id=rule_id, pattern=pattern, function=function,
            priority=priority, next_table=next_table))
        return rule_id

    def remove_rule(self, rule_id: int, table_id: int = 0) -> None:
        self.table(table_id).remove(rule_id)

    # -- enclave API: global state ------------------------------------------

    def _global_store(self, function: str) -> GlobalStore:
        store = self.function(function).global_store
        if store is None:
            raise EnclaveError(
                f"function {function!r} has no global schema")
        return store

    def set_global(self, function: str, name: str, value: int) -> None:
        self._global_store(function).set_scalar(name, value)

    def set_global_array(self, function: str, name: str,
                         values: Sequence[int]) -> None:
        self._global_store(function).set_array(name, values)

    def set_global_records(self, function: str, name: str,
                           records: Iterable[Sequence[int]]) -> None:
        self._global_store(function).set_records(name, records)

    def set_global_keyed(self, function: str, name: str, key: tuple,
                         values: Sequence[int]) -> None:
        self._global_store(function).set_keyed_array(name, key, values)

    def query_global(self, function: str) -> Dict[str, object]:
        return self._global_store(function).snapshot()

    # -- data path -------------------------------------------------------

    def process_packet(self, packet,
                       classifications: Sequence[Classification] = (),
                       now_ns: Optional[int] = None) -> ProcessResult:
        """Run the packet through the match-action pipeline.

        ``packet`` is any object exposing the packet-schema fields as
        attributes.  ``classifications`` carries the class/metadata
        annotations the packet's message received from stages; the
        enclave always appends its own flow-granularity classification
        so functions that need no application support still apply
        (e.g. PIAS over unmodified applications).
        """
        if not self._tracing:
            return self._process_packet_impl(packet, classifications,
                                             now_ns)
        with self.telemetry.tracer.span(
                "enclave.process", enclave=self.name,
                packet_id=getattr(packet, "packet_id", None),
                flow_id=getattr(packet, "five_tuple", None)) as span:
            result = self._process_packet_impl(packet, classifications,
                                               now_ns)
            span.set(executed=len(result.executed), drop=result.drop)
        return result

    def _process_packet_impl(self, packet,
                             classifications: Sequence[Classification],
                             now_ns: Optional[int]) -> ProcessResult:
        now = now_ns if now_ns is not None else self.clock()
        t0 = self.accounting.now()
        flow_cls = self._flow_classification(packet)
        all_cls = (list(classifications) +
                   self._enclave_stage_classifications(packet) +
                   [flow_cls])
        class_names = [c.class_name for c in all_cls]
        metadata: Dict[str, object] = {}
        msg_id: Optional[object] = None
        for cls in classifications:
            metadata.update(cls.metadata)
            if msg_id is None and cls.message_id is not None:
                msg_id = cls.message_id
        if msg_id is None:
            msg_id = flow_cls.message_id

        result = ProcessResult(executed=[], matched_classes=[])
        table_id = 0
        hops = 0
        while table_id is not None and hops < self.MAX_TABLE_HOPS:
            hops += 1
            if self._tracing:
                with self.telemetry.tracer.span(
                        "enclave.lookup", enclave=self.name,
                        table=table_id,
                        packet_id=getattr(packet, "packet_id", None)
                        ) as lspan:
                    hit = self._tables[table_id].lookup(class_names)
                    lspan.set(hit=hit is not None)
            else:
                hit = self._tables[table_id].lookup(class_names)
            self._m_lookups.inc()
            if hit is None:
                break
            self._m_lookup_hits.inc()
            rule, matched = hit
            result.matched_classes.append(matched)
            fn = self._functions[rule.function]
            self.accounting.record("enclave",
                                   self.accounting.now() - t0)
            self._invoke(fn, packet, msg_id, metadata, now, result)
            t0 = self.accounting.now()
            table_id = rule.next_table
        self.accounting.record("enclave", self.accounting.now() - t0)

        self.packets_processed += 1
        self._m_packets.inc()
        self._h_packet_ops.observe(result.interpreter_ops)
        result.drop = bool(getattr(packet, "drop", 0))
        result.to_controller = bool(getattr(packet, "to_controller", 0))
        if result.drop:
            self.packets_dropped += 1
            self._m_drops.inc()
        return result

    def process_batch(self, packets_with_cls: Sequence[Tuple],
                      now_ns: Optional[int] = None
                      ) -> List[ProcessResult]:
        """Process a batch of ``(packet, classifications)`` pairs.

        Section 6: "action functions ... can be extended to allow for
        computation over a batch of packets.  If the batch contains
        packets from multiple messages, the enclave will have to
        pre-process it and split it into messages."

        Batching is an *optimization, never a semantic*: per-packet
        results, packet writes, message/global state and function
        stats are identical to calling :meth:`process_packet` on the
        same packets in the same order (the batch differential harness
        in ``tests/lang/test_differential.py`` enforces this).  The
        batch is grouped by the rule matched in table 0 via one
        memoized :meth:`MatchActionTable.lookup_batch` pass; each
        group then executes back-to-back so the reader closures,
        concurrency-guard acquisition and interpreter dispatch context
        are set up once per group instead of once per packet.  Groups
        run in first-arrival order with packet order preserved inside
        each group; a batch that mixes rules can therefore consume the
        shared enclave RNG in a different interleaving than strict
        arrival order — invisible unless two different functions both
        call ``rand``.

        The one divergence from the scalar path is deliberate: a
        packet whose invocation would raise
        :class:`ConcurrencyViolation` gets a :class:`ProcessResult`
        with ``error`` set while the rest of the batch still
        processes.  Results are returned in the original order.
        """
        entries = list(packets_with_cls)
        if not entries:
            return []
        now = now_ns if now_ns is not None else self.clock()
        if not self._tracing:
            return self._process_batch_impl(entries, now)
        with self.telemetry.tracer.span("enclave.process_batch",
                                        enclave=self.name) as span:
            results = self._process_batch_impl(entries, now)
            span.set(size=len(entries),
                     drops=sum(1 for r in results if r.drop))
        return results

    def _process_batch_impl(self, entries: List[Tuple],
                            now: int) -> List[ProcessResult]:
        self._h_batch_size.observe(len(entries))
        table0 = self._tables[0]
        stage_rules = bool(self.flow_stage._rule_sets)

        # One lookup key per packet, exactly the class-name tuple the
        # scalar path builds.  When the enclave's own stage has no
        # rules the key depends only on the classification list, so a
        # batch reusing one list object (the common TX case) computes
        # it once — entries keep the lists alive, making id() stable.
        keys: List[Tuple[str, ...]] = []
        if stage_rules:
            for packet, cls in entries:
                names = [c.class_name for c in cls]
                names += [c.class_name for c in
                          self._enclave_stage_classifications(packet)]
                names.append(_FLOW_CLASS)
                keys.append(tuple(names))
        else:
            key_of_list: Dict[int, Tuple[str, ...]] = {}
            for packet, cls in entries:
                key = key_of_list.get(id(cls))
                if key is None:
                    key = tuple([c.class_name for c in cls]
                                + [_FLOW_CLASS])
                    key_of_list[id(cls)] = key
                keys.append(key)

        hits = table0.lookup_batch(keys)

        # Group packet indexes by matched rule, first-arrival order.
        results: List[Optional[ProcessResult]] = [None] * len(entries)
        scalar_done = [False] * len(entries)
        groups: Dict[int, List[int]] = {}
        group_rule: Dict[int, MatchRule] = {}
        order: List[int] = []
        misses = 0
        for i, hit in enumerate(hits):
            if hit is None:
                misses += 1
                results[i] = ProcessResult(executed=[],
                                           matched_classes=[])
                continue
            rule = hit[0]
            bucket = groups.get(rule.rule_id)
            if bucket is None:
                groups[rule.rule_id] = bucket = []
                group_rule[rule.rule_id] = rule
                order.append(rule.rule_id)
            bucket.append(i)
        if misses:
            self._m_lookups.inc(misses)

        for rule_id in order:
            self._run_group(group_rule[rule_id], groups[rule_id],
                            entries, hits, results, scalar_done, now)

        # Finalize in arrival order, mirroring the scalar epilogue.
        # Counters are summed locally and added once — same final
        # values, one bump per batch instead of per packet.
        processed = 0
        drops = 0
        observe_ops = self._h_packet_ops.observe
        for i, (packet, _cls) in enumerate(entries):
            result = results[i]
            if scalar_done[i] or result.error is not None:
                continue
            processed += 1
            observe_ops(result.interpreter_ops)
            if getattr(packet, "drop", 0):
                result.drop = True
                drops += 1
            if getattr(packet, "to_controller", 0):
                result.to_controller = True
        self.packets_processed += processed
        self._m_packets.inc(processed)
        if drops:
            self.packets_dropped += drops
            self._m_drops.inc(drops)
        return results  # type: ignore[return-value]

    def _batch_msg_id(self, packet, classifications) -> object:
        """The message id the scalar path would derive for a packet."""
        for cls in classifications:
            msg_id = cls.message_id
            if msg_id is not None:
                return msg_id
        return ("enclave", (getattr(packet, "src_ip", 0),
                            getattr(packet, "src_port", 0),
                            getattr(packet, "dst_ip", 0),
                            getattr(packet, "dst_port", 0),
                            getattr(packet, "proto", 0)))

    def _run_group(self, rule: MatchRule, indexes: List[int],
                   entries: List[Tuple], hits: List,
                   results: List[Optional[ProcessResult]],
                   scalar_done: List[bool], now: int) -> None:
        """Execute one rule-homogeneous group of a batch."""
        fn = self._functions[rule.function]

        if rule.next_table is not None:
            # Chained pipelines stay on the scalar per-packet loop:
            # hops after the first are data-dependent and don't group.
            for i in indexes:
                packet, cls = entries[i]
                try:
                    results[i] = self._process_packet_impl(packet, cls,
                                                           now)
                    scalar_done[i] = True
                except ConcurrencyViolation as violation:
                    results[i] = ProcessResult(
                        executed=[], matched_classes=[hits[i][1]],
                        error=violation)
            return

        self._m_lookups.inc(len(indexes))
        self._m_lookup_hits.inc(len(indexes))

        store = fn.message_store
        level = fn.concurrency
        need_msg = (store is not None
                    or level is not ConcurrencyLevel.PARALLEL)
        msg_id_of: Dict[int, object] = {}
        if need_msg:
            for i in indexes:
                packet, cls = entries[i]
                msg_id_of[i] = self._batch_msg_id(packet, cls)

        # Concurrency-guard acquisition once per group (PARALLEL and
        # SERIAL guards ignore the key) or once per distinct message
        # (PER_MESSAGE).  Equivalent to the scalar per-packet bracket
        # on the single-threaded data path: the guard state after the
        # group equals the state before it, and an externally held
        # guard rejects exactly the packets the scalar path would.
        guard = fn.guard
        held: List[object] = []
        group_error: Optional[ConcurrencyViolation] = None
        error_of_msg: Dict[object, ConcurrencyViolation] = {}
        if level is ConcurrencyLevel.PER_MESSAGE:
            acquired = set()
            for i in indexes:
                msg_id = msg_id_of[i]
                if msg_id in acquired or msg_id in error_of_msg:
                    continue
                try:
                    guard.acquire(msg_id)
                    held.append(msg_id)
                    acquired.add(msg_id)
                except ConcurrencyViolation as violation:
                    error_of_msg[msg_id] = violation
        else:
            try:
                guard.acquire(_BATCH_GUARD_KEY)
                held.append(_BATCH_GUARD_KEY)
            except ConcurrencyViolation as violation:
                group_error = violation

        # Execution context built once per group: the function's
        # backend supplies a batch runner when it can hoist per-call
        # setup (fast's BatchRunner, pycodegen's CodegenRunner), else
        # the scalar execute (tree, native, or instrumented
        # interpreters, which must keep their per-invocation spans).
        runner = None
        if fn.backend != "native" and \
                self.interpreter.telemetry is None:
            runner = fn._batch_runner
            if runner is None:
                backend_obj = (fn._exec_backend
                               if fn._exec_backend is not None
                               else self.interpreter._backend)
                runner = backend_obj.make_batch_runner(
                    self.interpreter, fn.program)
                fn._batch_runner = (runner if runner is not None
                                    else _NO_BATCH_RUNNER)
            elif runner is _NO_BATCH_RUNNER:
                runner = None

        acct = self.accounting
        acct_on = acct.enabled
        fn_stats = fn.stats
        fn_name = fn.name
        readers = fn._field_readers
        array_readers = fn._array_readers
        fields = fn._field_buf
        arrays = fn._array_buf
        execute = runner.run if runner is not None else fn.execute
        exec_bucket = ("native" if fn.backend == "native"
                       else "interpreter")
        # The commit plan, unpacked once per group; per-packet this
        # mirrors Enclave._commit exactly.
        packet_writes = (fn._packet_writes
                         if fn.commit_packet_writes else ())
        message_writes = (fn._message_writes
                          if store is not None else ())
        global_writes = fn._global_writes
        array_writes = fn._array_writes
        global_store = fn.global_store
        # FunctionStats accumulated locally, folded in once per group —
        # same final values as the scalar per-packet updates.
        invocations = 0
        faults = 0
        ops_total = 0
        max_stack = fn_stats.max_stack_bytes
        max_heap = fn_stats.max_heap_bytes
        try:
            for i in indexes:
                packet, cls = entries[i]
                matched = hits[i][1]
                if group_error is not None:
                    results[i] = ProcessResult(
                        executed=[], matched_classes=[matched],
                        error=group_error)
                    continue
                if error_of_msg:
                    violation = error_of_msg.get(msg_id_of[i])
                    if violation is not None:
                        results[i] = ProcessResult(
                            executed=[], matched_classes=[matched],
                            error=violation)
                        continue

                t0 = acct.now() if acct_on else 0
                msg_entry = None
                msg_id = None
                if need_msg:
                    msg_id = msg_id_of[i]
                if store is not None:
                    metadata: Dict[str, object] = {}
                    for c in cls:
                        metadata.update(c.metadata)
                    int_metadata = {
                        k: v for k, v in metadata.items()
                        if isinstance(v, int)
                        and not isinstance(v, bool)}
                    msg_entry, _ = store.lookup(msg_id, now,
                                                int_metadata)
                for j, read in enumerate(readers):
                    fields[j] = read(packet, msg_entry)
                for j, read_array in enumerate(array_readers):
                    arrays[j] = read_array(packet)
                if acct_on:
                    acct.record("enclave", acct.now() - t0)
                    t1 = acct.now()
                try:
                    exec_result = execute(fields, arrays)
                except InterpreterFault:
                    # Section 3.4.3: the faulty invocation terminates
                    # alone; the packet is forwarded unmodified.
                    faults += 1
                    results[i] = ProcessResult(
                        executed=[], matched_classes=[matched],
                        faults=1)
                    if acct_on:
                        acct.record(exec_bucket, acct.now() - t1)
                    continue
                if acct_on:
                    acct.record(exec_bucket, acct.now() - t1)
                    t2 = acct.now()
                out = exec_result.fields
                for j, name in packet_writes:
                    setattr(packet, name, out[j])
                if message_writes:
                    store.commit(msg_id,
                                 {name: out[j]
                                  for j, name in message_writes})
                for j, name in global_writes:
                    global_store.commit_scalar(name, out[j])
                for j, name in array_writes:
                    global_store.commit_array(name,
                                              exec_result.arrays[j])
                invocations += 1
                stats = exec_result.stats
                ops = stats.ops_executed
                ops_total += ops
                if stats.stack_bytes > max_stack:
                    max_stack = stats.stack_bytes
                if stats.heap_bytes > max_heap:
                    max_heap = stats.heap_bytes
                results[i] = ProcessResult(
                    executed=[fn_name], matched_classes=[matched],
                    interpreter_ops=ops)
                if acct_on:
                    acct.record("enclave", acct.now() - t2)
        finally:
            fn_stats.invocations += invocations
            fn_stats.faults += faults
            fn_stats.ops_executed += ops_total
            fn_stats.max_stack_bytes = max_stack
            fn_stats.max_heap_bytes = max_heap
            if invocations:
                self._m_invocations.inc(invocations)
            if faults:
                self._m_faults.inc(faults)
            for key in held:
                guard.release(key)

    def replace_function(self, name: str, source_fn,
                         backend: Optional[str] = None,
                         optimize_tail_calls: bool = True) -> \
            InstalledFunction:
        """Hot-swap an action function's program, keeping its state.

        This is the dynamic update the interpreter design buys
        (Section 3.4.3: functions "can be updated dynamically by the
        controller without affecting forwarding performance"): the new
        source is compiled and verified off the data path, then
        swapped in atomically; the authoritative message and global
        stores — and the match-action rules referencing the function —
        survive the swap.  The new program must use the same schemas.
        """
        old = self.function(name)
        replacement = InstalledFunction(
            name=name, source_fn=source_fn,
            packet_schema=old.packet_schema,
            message_schema=old.message_schema,
            global_schema=old.global_schema,
            backend=backend if backend is not None else old.backend,
            interpreter=self.interpreter,
            rng=self.rng, clock=self.clock,
            optimize_tail_calls=optimize_tail_calls,
            commit_packet_writes=old.commit_packet_writes)
        # Carry the authoritative state over.
        replacement.global_store = old.global_store
        replacement.message_store = old.message_store
        self._functions[name] = replacement
        # Explicitly invalidate every backend cache keyed on the old
        # program: the swap already unlinks it from the data path, but
        # a controller (or test) holding the old Program must never be
        # able to run a stale compiled handler again.
        old._batch_runner = None
        lang_backends.invalidate(old.program)
        return replacement

    def query_rules(self, table_id: int = 0) -> List[MatchRule]:
        """Enclave API: the rules of one match-action table."""
        return self.table(table_id).rules()

    def query_tables(self) -> List[int]:
        """Enclave API: the ids of all match-action tables."""
        return sorted(self._tables)

    def stats_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-function counters for controller monitoring."""
        out: Dict[str, Dict[str, int]] = {}
        for name, fn in self._functions.items():
            out[name] = {
                "invocations": fn.stats.invocations,
                "faults": fn.stats.faults,
                "ops_executed": fn.stats.ops_executed,
                "max_stack_bytes": fn.stats.max_stack_bytes,
                "max_heap_bytes": fn.stats.max_heap_bytes,
                "messages_tracked": (len(fn.message_store)
                                     if fn.message_store is not None
                                     else 0),
            }
        return out

    def end_message(self, function: str, msg_key: object) -> None:
        """Notify the enclave that a message ended (e.g. flow FIN)."""
        store = self.function(function).message_store
        if store is not None:
            store.end_message(msg_key)

    def expire_idle_messages(self, now_ns: int) -> int:
        total = 0
        for fn in self._functions.values():
            if fn.message_store is not None:
                total += fn.message_store.expire_idle(now_ns)
        return total

    # -- internals ------------------------------------------------------

    def _flow_classification(self, packet) -> Classification:
        flow_key = (getattr(packet, "src_ip", 0),
                    getattr(packet, "src_port", 0),
                    getattr(packet, "dst_ip", 0),
                    getattr(packet, "dst_port", 0),
                    getattr(packet, "proto", 0))
        return Classification(class_name="enclave.flows.default",
                              metadata={"msg_id": ("enclave", flow_key)})

    def _enclave_stage_classifications(
            self, packet) -> List[Classification]:
        """Run the enclave's own stage rules over the packet headers.

        Paper Table 2, last row: the enclave classifies on
        ``<src_ip, src_port, dst_ip, dst_port, proto>`` — "when
        classification is done at the granularity of TCP flows, each
        transport connection is a message", so the message id is the
        five-tuple.  The controller installs rules with
        :meth:`install_flow_rule`.
        """
        if not self.flow_stage._rule_sets:
            return []
        attrs = {
            "src_ip": getattr(packet, "src_ip", 0),
            "src_port": getattr(packet, "src_port", 0),
            "dst_ip": getattr(packet, "dst_ip", 0),
            "dst_port": getattr(packet, "dst_port", 0),
            "proto": getattr(packet, "proto", 0),
        }
        flow_key = (attrs["src_ip"], attrs["src_port"],
                    attrs["dst_ip"], attrs["dst_port"],
                    attrs["proto"])
        results = self.flow_stage.classify(attrs, msg_id=flow_key)
        # Flow identity must be the five-tuple, not a per-call id.
        return [Classification(class_name=c.class_name,
                               metadata={**c.metadata,
                                         "msg_id": ("enclave",
                                                    flow_key)})
                for c in results]

    def install_flow_rule(self, rule_set: str, classifier,
                          class_name: str) -> int:
        """Controller API: a header classification rule at the
        enclave's own stage (Table 2, last row)."""
        return self.flow_stage.create_stage_rule(
            rule_set, classifier, class_name, ["msg_id"])

    def _invoke(self, fn: InstalledFunction, packet, msg_id: object,
                metadata: Mapping[str, object], now_ns: int,
                result: ProcessResult) -> None:
        t0 = self.accounting.now()
        fn.guard.acquire(msg_id)
        try:
            msg_entry = None
            if fn.message_store is not None:
                int_metadata = {
                    k: v for k, v in metadata.items()
                    if isinstance(v, int) and not isinstance(v, bool)}
                msg_entry, _ = fn.message_store.lookup(
                    msg_id, now_ns, int_metadata)

            # Preallocated buffers + one precomputed reader per slot
            # (see InstalledFunction._build_hot_path); both backends
            # copy these inputs before mutating them.
            fields = fn._field_buf
            for i, read in enumerate(fn._field_readers):
                fields[i] = read(packet, msg_entry)
            arrays = fn._array_buf
            for i, read_array in enumerate(fn._array_readers):
                arrays[i] = read_array(packet)
            self.accounting.record("enclave",
                                   self.accounting.now() - t0)

            t1 = self.accounting.now()
            try:
                exec_result = fn.execute(fields, arrays)
            except InterpreterFault:
                # Section 3.4.3: a faulty function terminates its own
                # execution without affecting the rest of the system —
                # the packet is forwarded unmodified.
                fn.stats.faults += 1
                result.faults += 1
                self._m_faults.inc()
                self.accounting.record(
                    "native" if fn.backend == "native"
                    else "interpreter",
                    self.accounting.now() - t1)
                return
            self.accounting.record(
                "native" if fn.backend == "native"
                else "interpreter",
                self.accounting.now() - t1)

            t2 = self.accounting.now()
            self._commit(fn, packet, msg_id, exec_result)
            fn.stats.invocations += 1
            self._m_invocations.inc()
            stats = exec_result.stats
            fn.stats.ops_executed += stats.ops_executed
            fn.stats.max_stack_bytes = max(fn.stats.max_stack_bytes,
                                           stats.stack_bytes)
            fn.stats.max_heap_bytes = max(fn.stats.max_heap_bytes,
                                          stats.heap_bytes)
            result.interpreter_ops += stats.ops_executed
            result.executed.append(fn.name)
            self.accounting.record("enclave",
                                   self.accounting.now() - t2)
        finally:
            fn.guard.release(msg_id)

    def _commit(self, fn: InstalledFunction, packet, msg_id: object,
                exec_result: ExecResult) -> None:
        out = exec_result.fields
        if fn.commit_packet_writes:
            for i, name in fn._packet_writes:
                setattr(packet, name, out[i])
        if fn._message_writes and fn.message_store is not None:
            fn.message_store.commit(
                msg_id, {name: out[i]
                         for i, name in fn._message_writes})
        for i, name in fn._global_writes:
            fn.global_store.commit_scalar(name, out[i])
        for i, name in fn._array_writes:
            fn.global_store.commit_array(name, exec_result.arrays[i])

"""Action-function composition (paper Section 6).

"Network functions, however, can interact in arbitrary ways, hence,
it is an open question to define the semantics of function
composition.  One option is to impose a hierarchy ... or apply
priorities to functions which define the execution order."

:class:`FunctionChain` realizes that option on top of the enclave's
table chaining: each composed function gets its own match-action
table, wired with ``next_table`` links in the declared order, so every
packet traverses the functions as a fixed pipeline (e.g. a scheduling
function assigning priorities followed by a load-balancing function
picking paths).  Composition conflicts — two functions writing the
same packet field — are detected at deployment time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..lang.annotations import Schema
from .controller import Controller
from .enclave import EnclaveError


class CompositionError(Exception):
    """The requested chain is inconsistent."""


@dataclass
class ChainLink:
    """One stage of a function pipeline."""

    source_fn: Callable
    name: Optional[str] = None
    pattern: str = "*"
    message_schema: Optional[Schema] = None
    global_schema: Optional[Schema] = None
    backend: str = "interpreter"

    @property
    def function_name(self) -> str:
        return self.name or getattr(self.source_fn, "__name__",
                                    "action")


class FunctionChain:
    """Deploys an ordered pipeline of action functions at enclaves.

    The head link's rules live in table 0; each further link gets a
    table allocated from ``first_table`` upward, wired via
    ``next_table``.  A packet whose classes miss a link's pattern
    ends its walk at that table (OpenFlow semantics), so chains that
    must see all traffic should use the ``"*"`` pattern per link and
    do their own class dispatch inside the function.
    """

    def __init__(self, controller: Controller,
                 links: Sequence[ChainLink],
                 first_table: int = 10) -> None:
        if not links:
            raise CompositionError("a chain needs at least one link")
        names = [link.function_name for link in links]
        if len(names) != len(set(names)):
            raise CompositionError(
                f"duplicate function names in chain: {names}")
        self.controller = controller
        self.links = list(links)
        self.first_table = first_table
        self._check_write_conflicts()

    def _check_write_conflicts(self) -> None:
        """Two links writing the same packet field is almost always a
        composition bug (the later silently wins); reject it."""
        from ..lang import ast_nodes as T
        from ..lang.dsl import lower

        writers: Dict[str, str] = {}
        for link in self.links:
            prog = lower(link.source_fn,
                         packet_schema=_packet_schema(),
                         message_schema=link.message_schema,
                         global_schema=link.global_schema)
            for fn in prog.functions:
                for stmt in T.walk_stmts(fn.body):
                    if isinstance(stmt, T.AssignState) and \
                            stmt.scope == "packet":
                        prior = writers.get(stmt.name)
                        if prior is not None and \
                                prior != link.function_name:
                            raise CompositionError(
                                f"both {prior!r} and "
                                f"{link.function_name!r} write "
                                f"packet.{stmt.name}; order the "
                                f"chain explicitly or drop one")
                        writers[stmt.name] = link.function_name

    def deploy(self, host: str) -> List[int]:
        """Install tables, functions and rules at one host's enclave.

        The chain head lives in table 0 (so it sees every packet);
        each subsequent link gets its own table, linked with
        ``next_table``.  Returns the table ids, in execution order.
        """
        enclave = self.controller.enclave(host)
        table_ids = [0] + [self.first_table + i
                           for i in range(len(self.links) - 1)]
        for table_id in table_ids[1:]:
            if table_id not in enclave.query_tables():
                enclave.create_table(table_id)
        for i, link in enumerate(self.links):
            if link.function_name not in enclave.functions():
                enclave.install_function(
                    link.source_fn, name=link.function_name,
                    message_schema=link.message_schema,
                    global_schema=link.global_schema,
                    backend=link.backend)
            next_table = (table_ids[i + 1]
                          if i + 1 < len(table_ids) else None)
            enclave.install_rule(link.pattern, link.function_name,
                                 table_id=table_ids[i],
                                 next_table=next_table)
        return table_ids


def _packet_schema():
    from ..lang.annotations import DEFAULT_PACKET_SCHEMA
    return DEFAULT_PACKET_SCHEMA

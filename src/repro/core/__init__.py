"""Eden core: controller, stages, and enclaves (paper Section 3)."""

from .composition import ChainLink, CompositionError, FunctionChain

from .accounting import CpuAccounting
from .controller import Controller, ControllerError, PathWeight
from .enclave import (ConcurrencyGuard, ConcurrencyViolation, Enclave,
                      EnclaveError, InstalledFunction, MatchActionTable,
                      MatchRule, PLACEMENT_NIC, PLACEMENT_OS,
                      ProcessResult)
from .stage import (Classification, ClassificationRule, Classifier,
                    Stage, StageError, StageInfo, WILDCARD,
                    http_stage, memcached_stage, storage_stage)
from .state import (ConcurrencyLevel, GlobalStore, MessageStore,
                    StateError, concurrency_of)

__all__ = [
    "ChainLink", "Classification", "ClassificationRule", "Classifier",
    "ConcurrencyGuard", "ConcurrencyLevel", "ConcurrencyViolation",
    "CompositionError", "Controller", "ControllerError",
    "CpuAccounting", "Enclave", "FunctionChain",
    "EnclaveError", "GlobalStore", "InstalledFunction",
    "MatchActionTable", "MatchRule", "MessageStore", "PLACEMENT_NIC",
    "PLACEMENT_OS", "PathWeight", "ProcessResult", "Stage",
    "StageError", "StageInfo", "StateError", "WILDCARD",
    "concurrency_of", "http_stage", "memcached_stage", "storage_stage",
]

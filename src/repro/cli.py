"""Command-line front end: ``python -m repro <experiment> [options]``.

Runs any of the paper-reproduction experiments without writing code:

    python -m repro table1
    python -m repro fig9  --duration-ms 120 --seed 1
    python -m repro fig10 --duration-ms 100
    python -m repro fig11 --duration-ms 200
    python -m repro fig12 --duration-ms 20
    python -m repro micro --packets 300
    python -m repro bench-smoke
    python -m repro control-demo --enclaves 8 --loss 0.1
    python -m repro telemetry-report --duration-ms 100
    python -m repro fleet-demo --attackers 8
    python -m repro fleet-bench --smoke
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args) -> int:
    from .functions.library import format_table, run_demos, table1
    print(format_table())
    results = run_demos(backend=args.backend)
    failed = [name for name, ok in results.items() if not ok]
    print(f"\n{len(results) - len(failed)}/{len(results)} demos "
          f"passed ({args.backend}).")
    if failed:
        print("FAILED:", ", ".join(failed))
        return 1
    return 0


def _cmd_fig9(args) -> int:
    from .experiments import fig9
    results = fig9.run_all(seed=args.seed,
                           duration_ms=args.duration_ms,
                           shards=args.shards)
    print(fig9.format_results(results))
    return 0


def _cmd_fig10(args) -> int:
    from .experiments import fig10
    results = fig10.run_all(seed=args.seed,
                            duration_ms=args.duration_ms)
    print(fig10.format_results(results))
    return 0


def _cmd_fig11(args) -> int:
    from .experiments import fig11
    results = fig11.run_all(seed=args.seed,
                            duration_ms=args.duration_ms)
    print(fig11.format_results(results))
    return 0


def _cmd_fig12(args) -> int:
    from .experiments import fig12
    result = fig12.run_overheads(seed=args.seed,
                                 duration_ms=args.duration_ms)
    print(fig12.format_result(result))
    return 0


def _cmd_micro(args) -> int:
    from .experiments import micro
    results = micro.run_micro(packets=args.packets)
    print(micro.format_results(results))
    return 0


def _cmd_bench_smoke(args) -> int:
    """Fast dispatch-speed regression gate (runs in a few seconds).

    Compares ns/op of both interpreter dispatch modes against the
    checked-in baseline and fails when either regresses by more than
    2x — catching accidental de-optimization of the hot path without
    the full pytest-benchmark run.
    """
    import json
    import os

    from .experiments import micro

    if args.baseline is None:
        if args.scale:
            args.baseline = "benchmarks/sim_scale_baseline.json"
        elif args.batch:
            args.baseline = "benchmarks/interp_batch_baseline.json"
        elif args.codegen:
            args.baseline = "benchmarks/interp_codegen_baseline.json"
        else:
            args.baseline = "benchmarks/interp_baseline.json"
    if args.scale:
        return _bench_smoke_scale(args)
    if args.batch:
        return _bench_smoke_batch(args)
    if args.codegen:
        return _bench_smoke_codegen(args)

    results = micro.run_dispatch_micro(invocations=args.invocations)
    print(micro.format_dispatch_results(results))

    if args.update_baseline:
        baseline = {r.name: {"ops_per_invoke": r.ops_per_invoke,
                             "tree_ns_per_op": round(r.tree_ns_per_op, 1),
                             "fast_ns_per_op": round(r.fast_ns_per_op, 1)}
                    for r in results}
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"wrote baseline {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with "
              f"--update-baseline to create one")
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)

    status = 0
    for res in results:
        ref = baseline.get(res.name)
        if ref is None:
            print(f"FAIL {res.name}: not in baseline "
                  f"{args.baseline}")
            status = 1
            continue
        if res.ops_per_invoke != ref["ops_per_invoke"]:
            print(f"FAIL {res.name}: ops/invocation changed "
                  f"{ref['ops_per_invoke']} -> {res.ops_per_invoke} "
                  f"(program or accounting drifted; re-baseline if "
                  f"intended)")
            status = 1
            continue
        for mode in ("tree", "fast"):
            now = getattr(res, f"{mode}_ns_per_op")
            ref_ns = ref[f"{mode}_ns_per_op"]
            if now > args.threshold * ref_ns:
                print(f"FAIL {res.name} [{mode}]: {now:.1f} ns/op is "
                      f">{args.threshold}x the baseline "
                      f"{ref_ns:.1f} ns/op")
                status = 1
    if status == 0:
        print(f"bench-smoke OK (within {args.threshold}x of "
              f"{args.baseline})")
    return status


def _bench_smoke_codegen(args) -> int:
    """Pycodegen-backend regression gate.

    Two checks: generated code must stay at least ``--min-speedup``x
    faster per op than the tree-walk baseline ns/op recorded in
    ``benchmarks/interp_baseline.json`` (the tentpole claim of the
    codegen backend), and its absolute ns/op must stay within
    ``--threshold``x of the checked-in codegen baseline.
    """
    import json
    import os

    from .experiments import micro

    results = micro.run_dispatch_micro(invocations=args.invocations)
    print(micro.format_dispatch_results(results))

    if args.update_baseline:
        baseline = {
            r.name: {"ops_per_invoke": r.ops_per_invoke,
                     "codegen_ns_per_op":
                         round(r.codegen_ns_per_op, 1)}
            for r in results}
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"wrote baseline {args.baseline}")
        return 0

    status = 0
    interp_path = "benchmarks/interp_baseline.json"
    interp_baseline = {}
    if os.path.exists(interp_path):
        with open(interp_path) as handle:
            interp_baseline = json.load(handle)
    for res in results:
        ref = interp_baseline.get(res.name)
        if ref is None:
            print(f"FAIL {res.name}: not in {interp_path}")
            status = 1
            continue
        gain = ref["tree_ns_per_op"] / res.codegen_ns_per_op
        if gain < args.min_speedup:
            print(f"FAIL {res.name}: codegen "
                  f"{res.codegen_ns_per_op:.1f} ns/op is only "
                  f"{gain:.2f}x the interpreter baseline "
                  f"{ref['tree_ns_per_op']:.1f} ns/op "
                  f"(need {args.min_speedup}x)")
            status = 1

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with "
              f"--update-baseline to create one")
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    for res in results:
        ref = baseline.get(res.name)
        if ref is None:
            print(f"FAIL {res.name}: not in baseline {args.baseline}")
            status = 1
            continue
        if res.ops_per_invoke != ref["ops_per_invoke"]:
            print(f"FAIL {res.name}: ops/invocation changed "
                  f"{ref['ops_per_invoke']} -> {res.ops_per_invoke} "
                  f"(program or accounting drifted; re-baseline if "
                  f"intended)")
            status = 1
            continue
        ref_ns = ref["codegen_ns_per_op"]
        if res.codegen_ns_per_op > args.threshold * ref_ns:
            print(f"FAIL {res.name} [pycodegen]: "
                  f"{res.codegen_ns_per_op:.1f} ns/op is "
                  f">{args.threshold}x the baseline "
                  f"{ref_ns:.1f} ns/op")
            status = 1
    if status == 0:
        print(f"bench-smoke --codegen OK (>= {args.min_speedup}x "
              f"over tree baseline, within {args.threshold}x of "
              f"{args.baseline})")
    return status


def _bench_smoke_batch(args) -> int:
    """Batched-data-path regression gate.

    Two checks: the batched path must stay at least
    ``--min-speedup``x faster than the scalar path on
    rule-homogeneous traffic (the tentpole claim of the batched
    execution work), and its absolute ns/packet must stay within
    ``--threshold``x of the checked-in batch baseline.
    """
    import json
    import os

    from .experiments import micro

    results = micro.run_batch_micro(packets=args.packets,
                                    batch_size=args.batch_size)
    print(micro.format_batch_results(results))

    if args.update_baseline:
        baseline = {
            r.name: {
                "batch_size": r.batch_size,
                "scalar_ns_per_packet":
                    round(r.scalar_ns_per_packet, 1),
                "batch_ns_per_packet": round(r.batch_ns_per_packet, 1),
                "speedup": round(r.speedup, 2)}
            for r in results}
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"wrote baseline {args.baseline}")
        return 0

    status = 0
    for res in results:
        if res.speedup < args.min_speedup:
            print(f"FAIL {res.name}: batch speedup {res.speedup:.2f}x "
                  f"< required {args.min_speedup}x")
            status = 1

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with "
              f"--update-baseline to create one")
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    for res in results:
        ref = baseline.get(res.name)
        if ref is None:
            print(f"FAIL {res.name}: not in baseline {args.baseline}")
            status = 1
            continue
        ref_ns = ref["batch_ns_per_packet"]
        if res.batch_ns_per_packet > args.threshold * ref_ns:
            print(f"FAIL {res.name}: {res.batch_ns_per_packet:.1f} "
                  f"ns/pkt is >{args.threshold}x the baseline "
                  f"{ref_ns:.1f} ns/pkt")
            status = 1
    if status == 0:
        print(f"bench-smoke --batch OK (>= {args.min_speedup}x over "
              f"scalar; within {args.threshold}x of {args.baseline})")
    return status


def _bench_smoke_scale(args) -> int:
    """Sharded-simulator scale gate (the fat-tree benchmark).

    Three checks: the per-host receive digests must agree between the
    single-heap and sharded backends (hard equivalence, any scale);
    sharded-sequential events/second must stay within ``--threshold``x
    of the checked-in baseline; and — when this machine has enough
    cores to make parallelism meaningful — the multiprocessing backend
    must reach ``--min-speedup``x the single-heap event rate.
    """
    import json
    import os

    from .experiments import scale

    cores = os.cpu_count() or 1
    run_mp = args.force_mp or cores >= 4
    result = scale.run_scale(k=args.scale_k,
                             n_shards=args.scale_shards,
                             packets_per_host=args.scale_packets,
                             seed=args.seed, run_mp=run_mp)
    print(scale.format_scale(result))

    status = 0
    if not result.digests_match:
        print("FAIL scale: sharded receive digests diverge from the "
              "single heap")
        status = 1
    if result.mp_digests_match is False:
        print("FAIL scale: multiprocessing receive digests diverge "
              "from the sequential sharded run")
        status = 1

    if args.update_baseline:
        if status:
            return status
        baseline = {"fat_tree": {
            "k": result.k, "n_shards": result.n_shards,
            "packets_per_host": args.scale_packets,
            "events_sharded": result.events_sharded,
            "events_per_sec_sharded": round(result.eps_sharded, 1)}}
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"wrote baseline {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with "
              f"--update-baseline to create one")
        return 1
    with open(args.baseline) as handle:
        ref = json.load(handle)["fat_tree"]
    if (result.k, result.n_shards) != (ref["k"], ref["n_shards"]) or \
            args.scale_packets != ref["packets_per_host"]:
        print(f"FAIL scale: config (k={result.k}, "
              f"shards={result.n_shards}, "
              f"packets={args.scale_packets}) does not match baseline "
              f"(re-baseline if intended)")
        status = 1
    elif result.events_sharded != ref["events_sharded"]:
        print(f"FAIL scale: event count drifted "
              f"{ref['events_sharded']} -> {result.events_sharded} "
              f"(simulation behavior changed; re-baseline if intended)")
        status = 1
    else:
        floor = ref["events_per_sec_sharded"] / args.threshold
        if result.eps_sharded < floor:
            print(f"FAIL scale: sharded {result.eps_sharded:.0f} ev/s "
                  f"is <1/{args.threshold}x the baseline "
                  f"{ref['events_per_sec_sharded']:.0f} ev/s")
            status = 1

    if run_mp:
        speedup = result.eps_mp / max(result.eps_single, 1e-9)
        if speedup < args.min_speedup:
            print(f"FAIL scale: mp speedup {speedup:.2f}x < required "
                  f"{args.min_speedup}x over the single heap")
            status = 1
    else:
        print(f"note: {cores} core(s) < 4 — multiprocessing speedup "
              f"check skipped (use --force-mp to run it anyway)")

    if status == 0:
        print(f"bench-smoke --scale OK (digests match; within "
              f"{args.threshold}x of {args.baseline})")
    return status


def _cmd_mine_superinstructions(args) -> int:
    """Regenerate ``src/repro/lang/mined_patterns.py`` from the corpus.

    Mines every fusable bytecode window across the function library,
    the checked-in differential corpus (``tests/lang/corpus/``) and
    the seeded fuzz programs of ``tests/lang/program_gen``, ranks op
    sequences by frequency, and writes the table that fastdispatch's
    fusion pass compiles into superinstructions.  ``--check`` verifies
    the checked-in table is up to date instead of rewriting it.
    """
    import os
    import sys

    from .lang import compile_ast
    from .lang import mining

    programs = mining.library_programs()
    n_lib = len(programs)
    n_corpus = n_fuzz = 0
    tests_dir = os.path.abspath(args.tests_dir)
    if os.path.isdir(tests_dir):
        sys.path.insert(0, tests_dir)
        try:
            import program_gen as pg
            corpus_dir = os.path.join(tests_dir, "corpus")
            if os.path.isdir(corpus_dir):
                for fname in sorted(os.listdir(corpus_dir)):
                    if not fname.endswith(".py"):
                        continue
                    with open(os.path.join(corpus_dir, fname)) as fh:
                        source = fh.read()
                    programs.append(
                        compile_ast(pg.lower_source(source)))
                    n_corpus += 1
            for profile in pg.PROFILES:
                for seed in range(args.seeds):
                    source = pg.generate_program(seed,
                                                 profile=profile)
                    programs.append(
                        compile_ast(pg.lower_source(source)))
                    n_fuzz += 1
            profiles = ", ".join(pg.PROFILES)
        finally:
            sys.path.remove(tests_dir)
    else:
        profiles = "none"
        print(f"note: {args.tests_dir} not found — mining the "
              f"function library only")
    counter = mining.mine_programs(programs, max_len=args.max_len)
    ranked = mining.rank(counter, top=args.top)
    provenance = (f"Corpus: {n_lib} library demos, {n_corpus} corpus "
                  f"files, {n_fuzz} fuzz seeds\n"
                  f"(profiles: {profiles});\n"
                  f"{sum(counter.values())} fusable windows, "
                  f"{len(counter)} distinct sequences, "
                  f"top {len(ranked)} kept.")
    text = mining.render_module(ranked, provenance)
    if args.check:
        try:
            with open(args.out) as fh:
                current = fh.read()
        except OSError:
            current = None
        if current != text:
            print(f"STALE {args.out}: re-run `python -m repro "
                  f"mine-superinstructions`")
            return 1
        print(f"{args.out} is up to date ({len(ranked)} patterns)")
        return 0
    with open(args.out, "w") as fh:
        fh.write(text)
    print(provenance)
    print(f"wrote {args.out}")
    return 0


def _cmd_control_demo(args) -> int:
    """Lossy control-channel convergence scenario (repro.control).

    Runs PIAS + WCMP under injected control-message loss plus one
    enclave restart, and fails unless every enclave converged to the
    controller's desired state and the stale-epoch install was
    rejected.
    """
    from .experiments import control_demo
    num_hosts = args.enclaves if args.enclaves is not None \
        else args.hosts
    result = control_demo.run_scenario(
        seed=args.seed, loss=args.loss,
        duration_ms=args.duration_ms, num_hosts=num_hosts)
    print(control_demo.format_result(result))
    return 0 if result.converged else 1


def _cmd_telemetry_report(args) -> int:
    """Run the control-demo scenario with telemetry enabled and print
    a metrics/span report in JSONL and Prometheus text formats.

    Fails (exit 1) unless the run produced the acceptance signals: a
    non-empty registry snapshot with enclave lookups, interpreter ops
    and channel retransmits, and at least one complete
    stage -> enclave -> interpreter span chain.
    """
    from .experiments import control_demo
    from .telemetry import Telemetry
    from .telemetry.exporters import (metric_jsonl_lines,
                                      prometheus_text,
                                      span_jsonl_lines)
    from .telemetry.spans import format_trace, traces_containing

    tel = Telemetry(enabled=True, recorder_capacity=args.max_spans)
    result = control_demo.run_scenario(
        seed=args.seed, loss=args.loss,
        duration_ms=args.duration_ms, num_hosts=args.hosts,
        telemetry=tel)

    registry = tel.registry
    spans = tel.recorder.spans()
    chain = ("stage.classify", "enclave.lookup", "interpreter.execute")
    chains = traces_containing(spans, chain)

    print("# ==== prometheus ====")
    print(prometheus_text(registry))
    print("# ==== jsonl ====")
    if args.jsonl_spans:
        shown = spans
    else:
        # Keep the dump small: metrics plus the spans of one complete
        # chain (enough to show the full trace tree in JSONL form).
        keep = chains[0] if chains else None
        shown = [s for s in spans if s.trace_id == keep] if keep else []
    for line in metric_jsonl_lines(registry):
        print(line)
    for line in span_jsonl_lines(shown):
        print(line)
    print("# ==== summary ====")
    lookups = registry.total("enclave_lookups_total")
    retrans = registry.total("channel_retransmits_total")
    interp_ops = registry.total("interp_ops_per_invocation")
    print(f"enclave lookups:      {lookups}")
    print(f"interpreter runs:     {interp_ops}")
    print(f"channel retransmits:  {retrans}")
    print(f"spans recorded:       {tel.recorder.recorded} "
          f"({tel.recorder.dropped} dropped)")
    print(f"complete chains:      {len(chains)} "
          f"(stage.classify -> enclave.lookup -> interpreter.execute)")
    if chains:
        print("\nexample trace:")
        print(format_trace(
            [s for s in spans if s.trace_id == chains[0]]))
    print(f"\nconverged: {'yes' if result.converged else 'NO'}")

    ok = (result.converged and chains and lookups > 0 and
          interp_ops > 0 and retrans > 0)
    return 0 if ok else 1


def _cmd_latency_breakdown(args) -> int:
    """Per-packet latency decomposition vs offered load (the
    repro.latency figure; see docs/LATENCY.md)."""
    from .experiments import latency_breakdown
    loads = tuple(float(v) for v in args.loads.split(","))
    points = latency_breakdown.run_breakdown(
        loads=loads, policy=args.policy, variant=args.variant,
        seed=args.seed, duration_ms=args.duration_ms,
        shards=args.shards)
    print(latency_breakdown.format_breakdown(
        points, policy=args.policy, variant=args.variant,
        shards=args.shards))
    return 0


def _cmd_latency_serve(args) -> int:
    """Long-running latency decomposition service.

    Runs the Figure 9 flow-scheduling workload (with Pulsar-limited
    background senders) while streaming per-packet latency
    decompositions over HTTP: ``/snapshot``, ``/prometheus``,
    ``/packets/<flow>`` and a chunked ``/stream`` of window
    summaries.  ``--once`` exits after one scenario pass instead of
    serving until interrupted; ``--smoke`` additionally verifies the
    serve contract (every segment class present and exercised,
    residual within budget, endpoints live) and fails on violation.
    """
    from .latency.scenario import LatencyScenario, ServeConfig
    from .netsim.simulator import MS

    config = ServeConfig(
        policy=args.policy, variant=args.variant, seed=args.seed,
        duration_ms=args.duration_ms, step_ms=args.step_ms,
        load=args.load, shards=args.shards,
        background_rate_bps=(args.background_rate_mbps * 1_000_000
                             if args.background_rate_mbps else None),
        window_ms=args.window_ms, host=args.host, port=args.port,
        pace_s=0.0 if args.once else args.pace_ms / 1e3)
    scenario = LatencyScenario(config)
    server = scenario.make_server().start()
    print(f"latency-serve: {config.policy}/{config.variant} "
          f"{'sharded x' + str(config.shards) if config.shards else ''}"
          f" {config.duration_ms} ms simulated, "
          f"window {config.window_ms} ms")
    print(f"serving on {server.url}  "
          f"(endpoints: /snapshot /prometheus /packets/<flow> "
          f"/stream)")
    status = 0
    try:
        scenario.run(progress=lambda s: print(
            f"\r  t={s.workload.now_ns // MS:5d} ms  "
            f"packets={s.collector.completed}", end="", flush=True))
        print()
        result = scenario.finish()
        server.finish()
        print(result.row())
        for cls, stats in scenario.store.segment_summary().items():
            print(f"  {cls:22s} mean {stats['mean_ns'] / 1e3:10.2f} us"
                  f"  p99 {stats['p99_ns'] / 1e3:10.2f} us")
        if args.smoke:
            status = _latency_smoke(scenario, server)
        if not args.once:
            print("scenario complete; still serving "
                  "(Ctrl-C to stop)...")
            import time as _time
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        print("\ninterrupted")
    finally:
        server.stop()
    return status


def _latency_smoke(scenario, server) -> int:
    """The --smoke contract: in-process segment checks plus one live
    probe of every HTTP endpoint."""
    import json
    from urllib.request import urlopen

    failures = scenario.smoke_failures()
    try:
        with urlopen(f"{server.url}/snapshot", timeout=10) as resp:
            snap = json.loads(resp.read())
        for cls in scenario.store.segment_summary():
            if cls not in snap["segments"]:
                failures.append(
                    f"/snapshot missing segment class {cls!r}")
        with urlopen(f"{server.url}/prometheus", timeout=10) as resp:
            prom = resp.read().decode()
        if "latency_segment_ns" not in prom:
            failures.append("/prometheus missing latency_segment_ns")
        with urlopen(f"{server.url}/stream", timeout=10) as resp:
            streamed = [json.loads(line)
                        for line in resp.read().splitlines() if line]
        if not streamed:
            failures.append("/stream produced no window summaries")
    except OSError as exc:
        failures.append(f"HTTP probe failed: {exc}")
    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}")
        return 1
    print(f"latency-serve smoke OK ({scenario.collector.completed} "
          f"packets, {len(streamed)} streamed windows, residual "
          f"within budget)")
    return 0


def _cmd_fleet_demo(args) -> int:
    """Staged DDoS-mitigation rollout (repro.fleet).

    A fleet of compromised hosts floods a victim; the controller
    stages a canary-first rollout of the composed spoof-guard +
    per-source-rate-limit function across the attacker enclaves over
    a lossy control channel.  Prints the wave-by-wave goodput
    recovery figure; fails unless the rollout converged, the recovery
    was monotonic, and final goodput dominates the under-attack
    baseline.
    """
    from .experiments import fleet_demo
    result = fleet_demo.run_demo(
        seed=args.seed, attackers=args.attackers, loss=args.loss,
        attack_rate_mbps=args.attack_rate_mbps)
    print(fleet_demo.format_result(result))
    ok = (result.converged and result.recovery_monotonic and
          result.recovered)
    if not ok:
        print("fleet-demo FAILED: "
              f"converged={result.converged} "
              f"monotonic={result.recovery_monotonic} "
              f"recovered={result.recovered}")
    return 0 if ok else 1


def _cmd_fleet_bench(args) -> int:
    """Fleet-convergence benchmark on the sharded control fabric.

    Rolls the DDoS-mitigation program across fleets of 64-1024
    enclaves under control-message loss, duplication and a concurrent
    enclave restart, reporting time-to-last-Ack and time-to-converged
    per fleet size plus events/second of the sharded backend.  With
    ``--smoke`` the (sim-time, hence deterministic) convergence times
    are gated against the checked-in baseline; ``--update-baseline``
    rewrites it.
    """
    from .fleet import bench

    sizes = tuple(int(v) for v in args.sizes.split(","))
    result = bench.run_convergence_sweep(
        sizes=sizes, n_shards=args.shards, loss=args.loss,
        dup_prob=args.dup, seed=args.seed, restarts=args.restarts)
    print(bench.format_convergence(result))

    if args.update_baseline:
        bench.save_baseline(result, args.baseline)
        print(f"wrote baseline {args.baseline}")
        return 0

    if not args.smoke:
        return 0 if all(p.converged for p in result.points) else 1

    baseline = bench.load_baseline(args.baseline)
    if baseline is None:
        print(f"no baseline at {args.baseline}; run with "
              f"--update-baseline to create one")
        return 1
    failures = bench.check_against_baseline(
        result, baseline, threshold=args.threshold)
    for failure in failures:
        print(f"FAIL {failure}")
    if not failures:
        print(f"fleet-bench smoke OK (within {args.threshold}x of "
              f"{args.baseline}; stale-epoch fencing exercised)")
    return 1 if failures else 0


def _cmd_report(args) -> int:
    """Regenerate the full evaluation into one markdown report."""
    from .experiments import fig9, fig10, fig11, fig12, micro
    from .functions.library import format_table, run_demos

    sections = []

    def add(title, body):
        sections.append(f"## {title}\n\n```\n{body}\n```\n")
        print(f"[done] {title}")

    print("regenerating the full evaluation "
          f"(seed {args.seed}; this takes several minutes)...")
    demos = run_demos()
    add("Table 1 — coverage",
        format_table() + f"\n\n{sum(demos.values())}/{len(demos)} "
        f"demos passed")
    add("Section 5.4 — interpreter micro",
        micro.format_results(micro.run_micro()))
    add("Figure 12 — CPU overheads",
        fig12.format_result(fig12.run_overheads(seed=args.seed)))
    add("Figure 11 — Pulsar storage QoS",
        fig11.format_results(fig11.run_all(seed=args.seed)))
    add("Figure 10 — ECMP vs WCMP",
        fig10.format_results(fig10.run_all(seed=args.seed)))
    add("Figure 9 — flow scheduling",
        fig9.format_results(fig9.run_all(seed=args.seed)))

    body = ("# Eden reproduction report\n\n"
            f"Seed {args.seed}. Regenerate with "
            f"`python -m repro report --seed {args.seed}`.\n\n" +
            "\n".join(sections))
    with open(args.out, "w") as handle:
        handle.write(body)
    print(f"\nwrote {args.out}")
    return 0


_COMMANDS = {
    "table1": (_cmd_table1, "Table 1 coverage matrix + demos"),
    "fig9": (_cmd_fig9, "flow scheduling FCTs"),
    "fig10": (_cmd_fig10, "ECMP vs WCMP throughput"),
    "fig11": (_cmd_fig11, "Pulsar storage QoS"),
    "fig12": (_cmd_fig12, "Eden CPU overheads"),
    "micro": (_cmd_micro, "interpreter microbenchmarks"),
    "bench-smoke": (_cmd_bench_smoke,
                    "dispatch-speed regression gate vs baseline JSON"),
    "mine-superinstructions": (
        _cmd_mine_superinstructions,
        "regenerate the mined fastdispatch fusion table"),
    "control-demo": (_cmd_control_demo,
                     "lossy control-channel PIAS/WCMP convergence"),
    "telemetry-report": (_cmd_telemetry_report,
                         "control-demo with metrics + span tracing"),
    "latency-breakdown": (_cmd_latency_breakdown,
                          "per-packet latency decomposition vs load"),
    "latency-serve": (_cmd_latency_serve,
                      "live latency decomposition service over HTTP"),
    "fleet-demo": (_cmd_fleet_demo,
                   "staged DDoS-mitigation rollout across a fleet"),
    "fleet-bench": (_cmd_fleet_bench,
                    "fleet-convergence benchmark vs fleet size"),
    "report": (_cmd_report, "run everything, write a markdown report"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'Enabling End-host "
                    "Network Functions' (SIGCOMM 2015).")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, (_, help_text) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=1)
        if name in ("fig9", "fig10", "fig11", "fig12"):
            default = {"fig9": 120, "fig10": 100, "fig11": 200,
                       "fig12": 20}[name]
            p.add_argument("--duration-ms", type=int,
                           default=default,
                           help="simulated milliseconds per run")
        if name == "fig9":
            p.add_argument("--shards", type=int, default=0,
                           help="run on the sharded simulator with "
                                "this many host shards (0: single "
                                "event heap)")
        if name == "micro":
            p.add_argument("--packets", type=int, default=300)
        if name == "table1":
            from .lang import backends as lang_backends
            p.add_argument("--backend", default="interpreter",
                           choices=("interpreter",)
                           + tuple(lang_backends.names()))
        if name == "bench-smoke":
            p.add_argument("--baseline", default=None,
                           help="baseline JSON path (default: "
                                "benchmarks/interp_baseline.json, or "
                                "benchmarks/interp_batch_baseline.json "
                                "with --batch)")
            p.add_argument("--invocations", type=int, default=800)
            p.add_argument("--threshold", type=float, default=2.0,
                           help="fail when ns/op exceeds this "
                                "multiple of the baseline")
            p.add_argument("--update-baseline", action="store_true",
                           help="rewrite the baseline instead of "
                                "checking against it")
            p.add_argument("--batch", action="store_true",
                           help="gate the batched data path instead "
                                "of interpreter dispatch")
            p.add_argument("--codegen", action="store_true",
                           help="gate the pycodegen backend: "
                                ">= --min-speedup x over the tree "
                                "baseline plus a codegen baseline "
                                "check")
            p.add_argument("--batch-size", type=int, default=64,
                           help="packets per enclave batch (--batch)")
            p.add_argument("--packets", type=int, default=4096,
                           help="packets per timed run (--batch)")
            p.add_argument("--min-speedup", type=float, default=2.0,
                           help="required batch-over-scalar (--batch) "
                                "or mp-over-single-heap (--scale) "
                                "speedup")
            p.add_argument("--scale", action="store_true",
                           help="gate the sharded simulator on the "
                                "fat-tree scale benchmark instead")
            p.add_argument("--scale-k", type=int, default=8,
                           help="fat-tree arity (--scale; k=8 gives "
                                "128 hosts)")
            p.add_argument("--scale-shards", type=int, default=4,
                           help="host-group shards (--scale; the "
                                "coordinator shard is extra)")
            p.add_argument("--scale-packets", type=int, default=40,
                           help="packets per host (--scale)")
            p.add_argument("--force-mp", action="store_true",
                           help="run the multiprocessing speedup "
                                "check even on <4 cores (--scale)")
        if name == "mine-superinstructions":
            p.add_argument("--tests-dir", default="tests/lang",
                           help="directory holding program_gen.py and "
                                "corpus/ (skipped when absent)")
            p.add_argument("--seeds", type=int, default=240,
                           help="fuzz seeds to mine (matches the "
                                "differential harness)")
            p.add_argument("--top", type=int, default=64,
                           help="patterns to keep in the table")
            p.add_argument("--max-len", type=int, default=3,
                           help="longest window to mine")
            p.add_argument("--out",
                           default="src/repro/lang/mined_patterns.py",
                           help="generated module path")
            p.add_argument("--check", action="store_true",
                           help="fail if the checked-in table is "
                                "stale instead of rewriting it")
        if name in ("control-demo", "telemetry-report"):
            default_ms = 400 if name == "control-demo" else 100
            p.add_argument("--loss", type=float, default=0.10,
                           help="control-message drop probability")
            p.add_argument("--duration-ms", type=int,
                           default=default_ms,
                           help="simulated milliseconds (lossy window)")
            p.add_argument("--hosts", type=int, default=3,
                           help="number of managed enclaves")
        if name == "control-demo":
            p.add_argument("--enclaves", type=int, default=None,
                           help="number of managed enclaves "
                                "(fleet-style alias for --hosts; "
                                "wins when both are given)")
        if name == "telemetry-report":
            p.add_argument("--max-spans", type=int, default=65536,
                           help="flight-recorder capacity")
            p.add_argument("--jsonl-spans", action="store_true",
                           help="dump every recorded span as JSONL "
                                "(default: one complete chain)")
        if name in ("latency-breakdown", "latency-serve"):
            p.add_argument("--policy", default="pias",
                           choices=("baseline", "pias", "sff"))
            p.add_argument("--variant", default="eden",
                           choices=("native", "eden"))
            p.add_argument("--duration-ms", type=int, default=120,
                           help="simulated milliseconds per run")
            p.add_argument("--shards", type=int, default=0,
                           help="run on the sharded simulator with "
                                "this many host shards (0: single "
                                "event heap)")
        if name == "latency-breakdown":
            p.add_argument("--loads", default="0.3,0.5,0.7,0.9",
                           help="comma-separated offered loads")
        if name == "latency-serve":
            p.add_argument("--load", type=float, default=0.7,
                           help="offered load on the worker link")
            p.add_argument("--step-ms", type=int, default=10,
                           help="simulated milliseconds per slice "
                                "between HTTP serving opportunities")
            p.add_argument("--window-ms", type=int, default=10,
                           help="tumbling-window width for /stream "
                                "summaries")
            p.add_argument("--background-rate-mbps", type=int,
                           default=2000,
                           help="aggregate Pulsar rate for the "
                                "background tenant (0: no rate "
                                "limiting)")
            p.add_argument("--host", default="127.0.0.1")
            p.add_argument("--port", type=int, default=0,
                           help="listen port (0: OS-assigned)")
            p.add_argument("--pace-ms", type=float, default=50.0,
                           help="wall-clock milliseconds to sleep "
                                "between slices when serving live")
            p.add_argument("--once", action="store_true",
                           help="run one scenario pass and exit "
                                "instead of serving until Ctrl-C")
            p.add_argument("--smoke", action="store_true",
                           help="verify the serve contract (segment "
                                "classes, residual budget, live "
                                "endpoints); nonzero exit on failure")
        if name == "fleet-demo":
            p.add_argument("--attackers", type=int, default=8,
                           help="compromised hosts in the fleet")
            p.add_argument("--loss", type=float, default=0.10,
                           help="control-message drop probability")
            p.add_argument("--attack-rate-mbps", type=int,
                           default=None,
                           help="per-attacker UDP offered load "
                                "(default: 150)")
        if name == "fleet-bench":
            p.add_argument("--sizes", default="64,256,1024",
                           help="comma-separated fleet sizes")
            p.add_argument("--shards", type=int, default=8,
                           help="host shards of the control fabric "
                                "(the controller shard is extra)")
            p.add_argument("--loss", type=float, default=0.20,
                           help="control-message drop probability")
            p.add_argument("--dup", type=float, default=0.05,
                           help="control-message duplication "
                                "probability")
            p.add_argument("--restarts", type=int, default=1,
                           help="concurrent enclave restarts during "
                                "the second wave")
            p.add_argument("--baseline",
                           default="benchmarks/fleet_baseline.json",
                           help="baseline JSON path")
            p.add_argument("--threshold", type=float, default=2.0,
                           help="fail when sim-time convergence "
                                "exceeds this multiple of baseline")
            p.add_argument("--smoke", action="store_true",
                           help="gate against the baseline (nonzero "
                                "exit on regression)")
            p.add_argument("--update-baseline", action="store_true",
                           help="rewrite the baseline instead of "
                                "checking against it")
        if name == "report":
            p.add_argument("--out", default="report.md",
                           help="output markdown path")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler, _ = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())

"""Eden: enabling end-host network functions (SIGCOMM 2015) — a
complete Python reproduction.

Subpackages:

* :mod:`repro.lang` — the action-function DSL, compiler, bytecode
  interpreter, static verifier, and native backend;
* :mod:`repro.core` — the Eden architecture: controller, stages, and
  enclaves with match-action tables and state management;
* :mod:`repro.netsim` — the deterministic discrete-event datacenter
  network simulator (the substrate replacing the paper's testbed);
* :mod:`repro.transport` — a SACK TCP with message boundaries and the
  paper's extended socket send;
* :mod:`repro.stack` — the end-host network stack with the enclave on
  its data path and token-bucket rate limiters;
* :mod:`repro.functions` — the paper's network functions written in
  the DSL, plus Table 1 as executable data;
* :mod:`repro.apps` — Eden-compliant applications and workload
  generators;
* :mod:`repro.experiments` — runners that regenerate Figures 9-12.
"""

__version__ = "1.0.0"

from . import apps, core, experiments, functions, lang, netsim, stack
from . import transport

__all__ = ["apps", "core", "experiments", "functions", "lang",
           "netsim", "stack", "transport", "__version__"]

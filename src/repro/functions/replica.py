"""Replica selection and load balancing with header rewriting.

Two functions from paper Table 1's load-balancing / replica-selection
rows, both exploiting the DSL's ability to modify header fields
(Section 3.4.2):

* :func:`ananta_nat_action` — Ananta-style client-side NAT: TCP
  connections opened to a virtual IP are pinned (per flow, via a
  writable global bucket table) to one of a pool of real replicas;
  return traffic is rewritten back to the VIP so the client transport
  never notices.
* :func:`mcrouter_select_action` — mcrouter-style key-based replica
  selection: the stage exposes each request's key hash as message
  metadata and the function deterministically maps it to a replica
  (Section 2.1.1: mcrouter "routes memcached requests based on their
  key").
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.controller import Controller
from ..lang.annotations import (AccessLevel, Field, FieldKind, Lifetime,
                                schema)

NAT_FUNCTION_NAME = "ananta_nat"
MCROUTER_FUNCTION_NAME = "mcrouter_select"

NAT_GLOBAL_SCHEMA = schema(
    "AnantaGlobal", Lifetime.GLOBAL, [
        Field("vip", AccessLevel.READ_ONLY),
        Field("replicas", AccessLevel.READ_ONLY, FieldKind.ARRAY),
        # Per-flow chosen replica (1-based; 0 = unchosen), in
        # symmetric hash buckets so both directions agree.
        Field("nat_state", AccessLevel.READ_WRITE, FieldKind.ARRAY),
    ])

MCROUTER_MESSAGE_SCHEMA = schema(
    "McrouterMessage", Lifetime.MESSAGE, [
        Field("key_hash", AccessLevel.READ_ONLY, default=0),
    ])

MCROUTER_GLOBAL_SCHEMA = schema(
    "McrouterGlobal", Lifetime.GLOBAL, [
        Field("replicas", AccessLevel.READ_ONLY, FieldKind.ARRAY),
    ])

SINBAD_FUNCTION_NAME = "sinbad_select"

SINBAD_GLOBAL_SCHEMA = schema(
    "SinbadGlobal", Lifetime.GLOBAL, [
        Field("replicas", AccessLevel.READ_ONLY, FieldKind.ARRAY),
        # Controller-maintained load estimate per replica (e.g. bytes
        # outstanding), refreshed periodically.
        Field("replica_load", AccessLevel.READ_ONLY, FieldKind.ARRAY),
    ])


def ananta_nat_action(packet, _global):
    """Client-side VIP -> replica NAT, stable per flow."""
    n = len(_global.nat_state)
    m = len(_global.replicas)
    if n == 0 or m == 0:
        return 0
    if packet.dst_ip == _global.vip:
        # Outbound: the flow's bucket mixes (client, vip, ports).
        mix = (packet.src_ip ^ _global.vip) * 2654435761 + \
              (packet.src_port ^ packet.dst_port) * 40503
        idx = mix % n
        choice = _global.nat_state[idx]
        if choice == 0:
            choice = 1 + rand(m)
            _global.nat_state[idx] = choice
        packet.dst_ip = _global.replicas[choice - 1]
    else:
        # Inbound from a replica: the packet carries (replica,
        # client); the bucket is recovered from (client, vip, ports)
        # so it matches the outbound direction.
        mix = (packet.dst_ip ^ _global.vip) * 2654435761 + \
              (packet.src_port ^ packet.dst_port) * 40503
        idx = mix % n
        choice = _global.nat_state[idx]
        if choice != 0 and \
                packet.src_ip == _global.replicas[choice - 1]:
            packet.src_ip = _global.vip
    return 0


def mcrouter_select_action(packet, msg, _global):
    """Key-based replica selection: requests for the same key always
    go to the same replica."""
    m = len(_global.replicas)
    if m == 0:
        return 0
    packet.dst_ip = _global.replicas[msg.key_hash % m]
    return 0


def sinbad_select_action(packet, msg, _global):
    """SINBAD-style endpoint flexibility: steer a write to the
    currently least-loaded replica (Section 2.1.1: SINBAD "maximizes
    performance by choosing endpoints for write operations")."""
    m = len(_global.replicas)
    if m == 0:
        return 0
    best = 0
    for i in range(m):
        if _global.replica_load[i] < _global.replica_load[best]:
            best = i
    packet.dst_ip = _global.replicas[best]
    return 0


class AnantaDeployment:
    """Deploys VIP load balancing at client hosts.

    Requires receive-path enclave processing
    (``HostStack(process_rx=True)``) so replica responses are rewritten
    back to the VIP before TCP demultiplexing.
    """

    def __init__(self, controller: Controller, buckets: int = 1024,
                 backend: str = "interpreter") -> None:
        self.controller = controller
        self.buckets = buckets
        self.backend = backend

    def install(self, host: str, vip: int,
                replicas: Sequence[int]) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.controller.install_function(
            host, ananta_nat_action, name=NAT_FUNCTION_NAME,
            global_schema=NAT_GLOBAL_SCHEMA, backend=self.backend)
        enclave = self.controller.enclave(host)
        enclave.set_global(NAT_FUNCTION_NAME, "vip", vip)
        enclave.set_global_array(NAT_FUNCTION_NAME, "replicas",
                                 list(replicas))
        enclave.set_global_array(NAT_FUNCTION_NAME, "nat_state",
                                 [0] * self.buckets)
        self.controller.install_rule(host, "*", NAT_FUNCTION_NAME)

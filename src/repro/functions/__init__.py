"""The paper's network functions, written in the Eden DSL."""

from .firewall import (FIREWALL_FUNCTION_NAME, FIREWALL_GLOBAL_SCHEMA,
                       FirewallDeployment, PORT_KNOCK_FUNCTION_NAME,
                       PORT_KNOCK_GLOBAL_SCHEMA, PortKnockDeployment,
                       port_knock_action, stateful_firewall_action)
from .library import (DemoPacket, DemoSpec, Table1Entry, format_table,
                      run_demos, table1)
from .pias import (FlowSchedulingDeployment, PIAS_FUNCTION_NAME,
                   PIAS_GLOBAL_SCHEMA, PIAS_MESSAGE_SCHEMA,
                   SFF_FUNCTION_NAME, SFF_GLOBAL_SCHEMA,
                   SFF_MESSAGE_SCHEMA, pias_action, sff_action)
from .pulsar import (PULSAR_GLOBAL_SCHEMA, PULSAR_MESSAGE_SCHEMA,
                     PulsarDeployment, pulsar_action)
from .qos import (CENTRALIZED_CC_MESSAGE_SCHEMA, NETWORK_QOS_GLOBAL_SCHEMA,
                  QJUMP_GLOBAL_SCHEMA, QJUMP_MESSAGE_SCHEMA,
                  QjumpDeployment, centralized_cc_action,
                  network_qos_action, qjump_action)
from .replica import (AnantaDeployment, MCROUTER_GLOBAL_SCHEMA,
                      MCROUTER_MESSAGE_SCHEMA, NAT_GLOBAL_SCHEMA,
                      SINBAD_GLOBAL_SCHEMA, ananta_nat_action,
                      mcrouter_select_action, sinbad_select_action)
from .wcmp import (WCMP_GLOBAL_SCHEMA, WCMP_MESSAGE_SCHEMA,
                   WcmpDeployment, message_wcmp_action, wcmp_action)

__all__ = [
    "AnantaDeployment", "DemoPacket", "DemoSpec",
    "FirewallDeployment", "FlowSchedulingDeployment",
    "PortKnockDeployment", "PulsarDeployment", "QjumpDeployment",
    "Table1Entry", "WcmpDeployment", "ananta_nat_action",
    "centralized_cc_action", "format_table", "mcrouter_select_action",
    "message_wcmp_action", "network_qos_action", "pias_action",
    "port_knock_action", "pulsar_action", "qjump_action", "run_demos",
    "sff_action", "sinbad_select_action", "stateful_firewall_action",
    "table1", "wcmp_action",
]

"""Datacenter flow scheduling: PIAS and SFF (Sections 2.1.3, 5.1).

* :func:`pias_action` is the paper's Figure 7 program verbatim
  (modulo Python syntax): track each message's cumulative size and
  demote its packets through the priority thresholds; messages that
  request a low-priority class directly (``msg.priority < 1``) are
  respected.
* :func:`sff_action` is shortest-flow-first: the application declares
  the flow size up front (via stage metadata), so the priority is
  assigned once at message start rather than learned by demotion.

:class:`FlowSchedulingDeployment` wires either function into enclaves
and pushes the controller-computed thresholds.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.controller import Controller
from ..lang.annotations import (AccessLevel, Field, FieldKind, Lifetime,
                                schema)

PIAS_FUNCTION_NAME = "pias"
SFF_FUNCTION_NAME = "sff"

#: msgTable entry: cumulative size plus the app-requested priority
#: (Figure 7's ``msg.Size`` and ``msg.Priority``; background flows can
#: specify a low priority class).
PIAS_MESSAGE_SCHEMA = schema(
    "PiasMessage", Lifetime.MESSAGE, [
        Field("size", AccessLevel.READ_WRITE, default=0),
        Field("priority", AccessLevel.READ_ONLY, default=7),
    ])

#: ``priorityThresholds`` (Figure 4): (message size limit, priority)
#: rows, highest priority first.
PIAS_GLOBAL_SCHEMA = schema(
    "PiasGlobal", Lifetime.GLOBAL, [
        Field("priorities", AccessLevel.READ_ONLY,
              FieldKind.RECORD_ARRAY,
              record_fields=("message_size_limit", "priority")),
    ])

#: SFF message state: the declared flow size (from app metadata, named
#: ``msg_size`` so stage metadata seeds it) and the priority assigned
#: at message start (-1 = unassigned).
SFF_MESSAGE_SCHEMA = schema(
    "SffMessage", Lifetime.MESSAGE, [
        Field("msg_size", AccessLevel.READ_ONLY, default=0),
        Field("assigned", AccessLevel.READ_WRITE, default=-1),
    ])

SFF_GLOBAL_SCHEMA = PIAS_GLOBAL_SCHEMA


def pias_action(packet, msg, _global):
    """Paper Figure 7: priority selection by cumulative message size."""
    msg_size = msg.size + packet.size
    msg.size = msg_size

    def search(index):
        if index >= len(_global.priorities):
            return 0
        elif msg_size <= _global.priorities[index].message_size_limit:
            return _global.priorities[index].priority
        else:
            return search(index + 1)

    desired = msg.priority
    if desired < 1:
        packet.priority = desired
    else:
        packet.priority = search(0)


def sff_action(packet, msg, _global):
    """Shortest flow first: assign priority once from the declared
    flow size (Section 5.1: SFF "requires applications to provide the
    flow size to the Eden enclave")."""
    def search(index, size):
        if index >= len(_global.priorities):
            return 0
        elif size <= _global.priorities[index].message_size_limit:
            return _global.priorities[index].priority
        else:
            return search(index + 1, size)

    if msg.assigned < 0:
        msg.assigned = search(0, msg.msg_size)
    packet.priority = msg.assigned


class FlowSchedulingDeployment:
    """Installs PIAS or SFF plus thresholds at a set of hosts."""

    def __init__(self, controller: Controller, policy: str = "pias",
                 backend: str = "interpreter",
                 class_pattern: str = "*") -> None:
        if policy not in ("pias", "sff"):
            raise ValueError("policy must be 'pias' or 'sff'")
        self.controller = controller
        self.policy = policy
        self.backend = backend
        self.class_pattern = class_pattern

    @property
    def function_name(self) -> str:
        return (PIAS_FUNCTION_NAME if self.policy == "pias"
                else SFF_FUNCTION_NAME)

    def install(self, hosts,
                thresholds: Sequence[Tuple[int, int]]) -> None:
        """Install the policy and push ``(size_limit, priority)``
        thresholds (from :meth:`Controller.pias_thresholds`)."""
        if self.policy == "pias":
            self.controller.install_function(
                hosts, pias_action, name=PIAS_FUNCTION_NAME,
                message_schema=PIAS_MESSAGE_SCHEMA,
                global_schema=PIAS_GLOBAL_SCHEMA, backend=self.backend)
        else:
            self.controller.install_function(
                hosts, sff_action, name=SFF_FUNCTION_NAME,
                message_schema=SFF_MESSAGE_SCHEMA,
                global_schema=SFF_GLOBAL_SCHEMA, backend=self.backend)
        self.controller.set_global_records(
            hosts, self.function_name, "priorities", thresholds)
        self.controller.install_rule(hosts, self.class_pattern,
                                     self.function_name)

    def update_thresholds(self, hosts,
                          thresholds: Sequence[Tuple[int, int]]
                          ) -> None:
        """Periodic controller update (Section 2.1.3: thresholds are
        recalculated based on the overall traffic load)."""
        self.controller.set_global_records(
            hosts, self.function_name, "priorities", thresholds)

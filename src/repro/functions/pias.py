"""Datacenter flow scheduling: PIAS and SFF (Sections 2.1.3, 5.1).

* :func:`pias_action` is the paper's Figure 7 program verbatim
  (modulo Python syntax): track each message's cumulative size and
  demote its packets through the priority thresholds; messages that
  request a low-priority class directly (``msg.priority < 1``) are
  respected.
* :func:`sff_action` is shortest-flow-first: the application declares
  the flow size up front (via stage metadata), so the priority is
  assigned once at message start rather than learned by demotion.

:class:`FlowSchedulingDeployment` wires either function into enclaves
and pushes the controller-computed thresholds.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.controller import Controller
from ..lang.annotations import (AccessLevel, Field, FieldKind, Lifetime,
                                schema)

PIAS_FUNCTION_NAME = "pias"
SFF_FUNCTION_NAME = "sff"

#: msgTable entry: cumulative size plus the app-requested priority
#: (Figure 7's ``msg.Size`` and ``msg.Priority``; background flows can
#: specify a low priority class).
PIAS_MESSAGE_SCHEMA = schema(
    "PiasMessage", Lifetime.MESSAGE, [
        Field("size", AccessLevel.READ_WRITE, default=0),
        Field("priority", AccessLevel.READ_ONLY, default=7),
    ])

#: ``priorityThresholds`` (Figure 4): (message size limit, priority)
#: rows, highest priority first.
PIAS_GLOBAL_SCHEMA = schema(
    "PiasGlobal", Lifetime.GLOBAL, [
        Field("priorities", AccessLevel.READ_ONLY,
              FieldKind.RECORD_ARRAY,
              record_fields=("message_size_limit", "priority")),
    ])

#: SFF message state: the declared flow size (from app metadata, named
#: ``msg_size`` so stage metadata seeds it) and the priority assigned
#: at message start (-1 = unassigned).
SFF_MESSAGE_SCHEMA = schema(
    "SffMessage", Lifetime.MESSAGE, [
        Field("msg_size", AccessLevel.READ_ONLY, default=0),
        Field("assigned", AccessLevel.READ_WRITE, default=-1),
    ])

SFF_GLOBAL_SCHEMA = PIAS_GLOBAL_SCHEMA


def pias_action(packet, msg, _global):
    """Paper Figure 7: priority selection by cumulative message size."""
    msg_size = msg.size + packet.size
    msg.size = msg_size

    def search(index):
        if index >= len(_global.priorities):
            return 0
        elif msg_size <= _global.priorities[index].message_size_limit:
            return _global.priorities[index].priority
        else:
            return search(index + 1)

    desired = msg.priority
    if desired < 1:
        packet.priority = desired
    else:
        packet.priority = search(0)


def sff_action(packet, msg, _global):
    """Shortest flow first: assign priority once from the declared
    flow size (Section 5.1: SFF "requires applications to provide the
    flow size to the Eden enclave")."""
    def search(index, size):
        if index >= len(_global.priorities):
            return 0
        elif size <= _global.priorities[index].message_size_limit:
            return _global.priorities[index].priority
        else:
            return search(index + 1, size)

    if msg.assigned < 0:
        msg.assigned = search(0, msg.msg_size)
    packet.priority = msg.assigned


class FlowSchedulingDeployment:
    """Installs PIAS or SFF plus thresholds at a set of hosts."""

    def __init__(self, controller: Controller, policy: str = "pias",
                 backend: str = "interpreter",
                 class_pattern: str = "*") -> None:
        if policy not in ("pias", "sff"):
            raise ValueError("policy must be 'pias' or 'sff'")
        self.controller = controller
        self.policy = policy
        self.backend = backend
        self.class_pattern = class_pattern

    @property
    def function_name(self) -> str:
        return (PIAS_FUNCTION_NAME if self.policy == "pias"
                else SFF_FUNCTION_NAME)

    def install(self, hosts,
                thresholds: Sequence[Tuple[int, int]]) -> None:
        """Install the policy and push ``(size_limit, priority)``
        thresholds (from :meth:`Controller.pias_thresholds`)."""
        if self.policy == "pias":
            self.controller.install_function(
                hosts, pias_action, name=PIAS_FUNCTION_NAME,
                message_schema=PIAS_MESSAGE_SCHEMA,
                global_schema=PIAS_GLOBAL_SCHEMA, backend=self.backend)
        else:
            self.controller.install_function(
                hosts, sff_action, name=SFF_FUNCTION_NAME,
                message_schema=SFF_MESSAGE_SCHEMA,
                global_schema=SFF_GLOBAL_SCHEMA, backend=self.backend)
        self.controller.set_global_records(
            hosts, self.function_name, "priorities", thresholds)
        self.controller.install_rule(hosts, self.class_pattern,
                                     self.function_name)

    def update_thresholds(self, hosts,
                          thresholds: Sequence[Tuple[int, int]]
                          ) -> None:
        """Periodic controller update (Section 2.1.3: thresholds are
        recalculated based on the overall traffic load)."""
        self.controller.set_global_records(
            hosts, self.function_name, "priorities", thresholds)


# -- telemetry-driven control loop (repro.control) -------------------------

def pias_flow_size_source(enclave,
                          function_name: str = PIAS_FUNCTION_NAME
                          ) -> Callable[[], Tuple[int, ...]]:
    """Telemetry source: the cumulative sizes of live messages.

    Wired into an :class:`~repro.control.agent.EnclaveAgent` as the
    ``flow_sizes`` feed, it samples the PIAS function's per-message
    ``size`` field — the enclave-side observations the controller
    needs to recompute the threshold quantiles.
    """
    def sample() -> Tuple[int, ...]:
        try:
            store = enclave.function(function_name).message_store
        except Exception:
            return ()  # mid-restart: function not replayed yet
        if store is None:
            return ()
        return tuple(s for s in store.field_values("size") if s > 0)
    return sample


class PiasThresholdLoop:
    """Closes the paper's PIAS control loop over the channel.

    Section 2.1.3: demotion thresholds "need to be calculated
    periodically based on the datacenter's overall traffic load".
    Each ``StatsReport``'s ``flow_sizes`` feed lands in a sliding
    sample window; whenever the recomputed quantile thresholds differ
    from the last rollout, the loop pushes ``set_global_records`` to
    every managed host — a new epoch per host, delivered reliably
    even over a lossy channel.
    """

    def __init__(self, plane, hosts: Optional[Sequence[str]] = None,
                 function_name: str = PIAS_FUNCTION_NAME,
                 num_priorities: int = 3, max_priority: int = 7,
                 min_samples: int = 8, window: int = 512) -> None:
        self.plane = plane
        self.hosts = list(hosts) if hosts is not None else None
        self.function_name = function_name
        self.num_priorities = num_priorities
        self.max_priority = max_priority
        self.min_samples = min_samples
        self._samples: deque = deque(maxlen=window)
        self.current: Optional[List[Tuple[int, int]]] = None
        self.updates_pushed = 0

    def _targets(self) -> Sequence[str]:
        return self.hosts if self.hosts is not None \
            else self.plane.hosts()

    def on_report(self, host: str, report) -> None:
        self._samples.extend(report.telemetry.get("flow_sizes") or ())
        if len(self._samples) < self.min_samples:
            return
        rows = Controller.pias_thresholds(
            list(self._samples), num_priorities=self.num_priorities,
            max_priority=self.max_priority)
        if rows == self.current:
            return
        self.current = rows
        self.updates_pushed += 1
        for target in self._targets():
            self.plane.set_global_records(
                target, self.function_name, "priorities", rows)

"""Pulsar's rate control (paper Section 2.1.2, Figure 3).

The data-plane function charges a packet by the size of the IO
operation it belongs to when that operation is a READ (a small request
packet stands for a large server-side and reverse-path cost), and by
the packet's own size otherwise, then steers it to the rate-limited
queue of the packet's tenant — giving aggregate tenant-level
guarantees rather than per-VM ones.

The tenant ``queueMap`` is a flat global array indexed by tenant id;
the queues themselves are token buckets in the host stack
(:mod:`repro.stack.ratelimiter`) configured by the deployment.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..core.controller import Controller
from ..lang.annotations import (AccessLevel, Field, FieldKind, Lifetime,
                                schema)

FUNCTION_NAME = "pulsar"

#: Message state: whether the IO is a READ and the operation size,
#: both seeded from stage metadata (``op_read`` / ``msg_size``).
PULSAR_MESSAGE_SCHEMA = schema(
    "PulsarMessage", Lifetime.MESSAGE, [
        Field("op_read", AccessLevel.READ_ONLY, default=0),
        Field("msg_size", AccessLevel.READ_ONLY, default=0),
    ])

#: ``queueMap``: tenant id -> rate-limited queue id (0 = unlimited).
PULSAR_GLOBAL_SCHEMA = schema(
    "PulsarGlobal", Lifetime.GLOBAL, [
        Field("queue_map", AccessLevel.READ_ONLY, FieldKind.ARRAY),
    ])


def pulsar_action(packet, msg, _global):
    """fun Pulsar(packet) — paper Figure 3."""
    if msg.op_read == 1:
        # READ: policing is based on the operation size.
        packet.charge = msg.msg_size
    else:
        # Otherwise policing is based on the packet size.
        packet.charge = packet.size
    tenant = packet.tenant
    if tenant >= 0 and tenant < len(_global.queue_map):
        packet.queue_id = _global.queue_map[tenant]


class PulsarDeployment:
    """Installs Pulsar rate control at a set of sender hosts.

    For each host: install the action function and rule, push the
    tenant->queue map, and configure the corresponding token-bucket
    queues in the host's stack.
    """

    def __init__(self, controller: Controller,
                 backend: str = "interpreter",
                 class_pattern: str = "*") -> None:
        self.controller = controller
        self.backend = backend
        self.class_pattern = class_pattern

    def install(self, host: str, stack,
                tenant_rates_bps: Mapping[int, int],
                burst_bytes: int = 150_000) -> Dict[int, int]:
        """Deploy at one host; returns the tenant -> queue id map."""
        self.controller.install_function(
            host, pulsar_action, name=FUNCTION_NAME,
            message_schema=PULSAR_MESSAGE_SCHEMA,
            global_schema=PULSAR_GLOBAL_SCHEMA, backend=self.backend)
        self.controller.install_rule(host, self.class_pattern,
                                     FUNCTION_NAME)
        queue_map = self.configure_rates(host, stack, tenant_rates_bps,
                                         burst_bytes)
        return queue_map

    def configure_rates(self, host: str, stack,
                        tenant_rates_bps: Mapping[int, int],
                        burst_bytes: int = 150_000) -> Dict[int, int]:
        """(Re)configure per-tenant rates; also used for controller
        updates after install."""
        max_tenant = max(tenant_rates_bps) if tenant_rates_bps else 0
        table = [0] * (max_tenant + 1)
        queue_map: Dict[int, int] = {}
        for i, tenant in enumerate(sorted(tenant_rates_bps)):
            queue_id = i + 1
            table[tenant] = queue_id
            queue_map[tenant] = queue_id
            stack.rate_limiters.configure(
                queue_id, tenant_rates_bps[tenant],
                burst_bytes=burst_bytes)
        enclave = self.controller.enclave(host)
        enclave.set_global_array(FUNCTION_NAME, "queue_map", table)
        return queue_map

"""The network-function registry: paper Table 1 as executable data.

Each :class:`Table1Entry` records a function's data-plane requirements
(state, computation, application semantics), whether it needs network
support beyond commodity priorities/labels, and whether Eden supports
it out of the box.  Entries Eden supports carry a :class:`DemoSpec`
that compiles the actual DSL program, seeds its state, runs a canned
packet through an enclave, and checks the observable effect — so the
Table 1 claim "Eden can support many of these functions out of the
box" is machine-checked, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core.enclave import Enclave
from ..core.stage import Classification
from ..lang.annotations import Schema
from . import firewall, pias, pulsar, qos, replica, wcmp


@dataclass
class DemoPacket:
    """A synthetic packet for DemoSpec runs: exposes the packet-schema
    fields as plain attributes, like the simulator's Packet."""

    src_ip: int = 1
    dst_ip: int = 2
    src_port: int = 1111
    dst_port: int = 80
    proto: int = 6
    size: int = 1514
    priority: int = 0
    path_id: int = 0
    drop: int = 0
    to_controller: int = 0
    queue_id: int = 0
    charge: int = 0
    ecn: int = 0
    tenant: int = 0


@dataclass(frozen=True)
class DemoSpec:
    """How to install, feed, and check one function."""

    action: Callable
    function_name: str
    message_schema: Optional[Schema] = None
    global_schema: Optional[Schema] = None
    #: name -> scalar value
    global_scalars: Mapping[str, int] = field(default_factory=dict)
    #: name -> flat array
    global_arrays: Mapping[str, Sequence[int]] = field(
        default_factory=dict)
    #: name -> {key: flat array}
    global_keyed: Mapping[str, Mapping[tuple, Sequence[int]]] = field(
        default_factory=dict)
    #: packet attribute overrides and message metadata per demo packet
    packets: Sequence[Mapping[str, int]] = field(default_factory=list)
    metadata: Mapping[str, int] = field(default_factory=dict)
    #: predicate over the last processed packet
    check: Optional[Callable[[DemoPacket], bool]] = None

    def run(self, backend: str = "interpreter") -> DemoPacket:
        """Install into a fresh enclave, process the demo packets, and
        return the last one (after running ``check``)."""
        enclave = Enclave(f"demo.{self.function_name}")
        enclave.install_function(
            self.action, name=self.function_name,
            message_schema=self.message_schema,
            global_schema=self.global_schema, backend=backend)
        for name, value in self.global_scalars.items():
            enclave.set_global(self.function_name, name, value)
        for name, values in self.global_arrays.items():
            enclave.set_global_array(self.function_name, name,
                                     list(values))
        for name, keyed in self.global_keyed.items():
            for key, values in keyed.items():
                enclave.set_global_keyed(self.function_name, name, key,
                                         list(values))
        enclave.install_rule("*", self.function_name)
        packet = None
        for i, overrides in enumerate(self.packets or [{}]):
            packet = DemoPacket()
            for attr, value in overrides.items():
                setattr(packet, attr, value)
            cls = []
            if self.metadata:
                metadata = dict(self.metadata)
                metadata.setdefault("msg_id", ("demo", 1))
                cls = [Classification(class_name="demo.r1.msg",
                                      metadata=metadata)]
            enclave.process_packet(packet, cls, now_ns=i)
        if self.check is not None and not self.check(packet):
            raise AssertionError(
                f"{self.function_name}: demo check failed on "
                f"{packet!r}")
        return packet


@dataclass(frozen=True)
class Table1Entry:
    """One row of paper Table 1."""

    category: str
    name: str
    data_plane_state: bool
    data_plane_computation: bool
    app_semantics: bool
    app_semantics_approx: bool = False   # the paper's 3* footnote
    network_support: bool = False
    eden_out_of_box: bool = False
    demo: Optional[DemoSpec] = None
    notes: str = ""


def _wcmp_demo() -> DemoSpec:
    return DemoSpec(
        action=wcmp.wcmp_action, function_name="wcmp",
        global_schema=wcmp.WCMP_GLOBAL_SCHEMA,
        global_keyed={"paths": {(1, 2): [1, 900, 2, 100]}},
        packets=[{}],
        check=lambda p: p.path_id in (1, 2))


def _message_wcmp_demo() -> DemoSpec:
    return DemoSpec(
        action=wcmp.message_wcmp_action, function_name="message_wcmp",
        message_schema=wcmp.WCMP_MESSAGE_SCHEMA,
        global_schema=wcmp.WCMP_GLOBAL_SCHEMA,
        global_keyed={"paths": {(1, 2): [1, 500, 2, 500]}},
        packets=[{}, {}, {}],
        metadata={"dummy": 0},
        check=lambda p: p.path_id in (1, 2))


def _ananta_demo() -> DemoSpec:
    return DemoSpec(
        action=replica.ananta_nat_action, function_name="ananta_nat",
        global_schema=replica.NAT_GLOBAL_SCHEMA,
        global_scalars={"vip": 99},
        global_arrays={"replicas": [201, 202, 203],
                       "nat_state": [0] * 64},
        packets=[{"dst_ip": 99}],
        check=lambda p: p.dst_ip in (201, 202, 203))


def _mcrouter_demo() -> DemoSpec:
    return DemoSpec(
        action=replica.mcrouter_select_action,
        function_name="mcrouter_select",
        message_schema=replica.MCROUTER_MESSAGE_SCHEMA,
        global_schema=replica.MCROUTER_GLOBAL_SCHEMA,
        global_arrays={"replicas": [301, 302]},
        metadata={"key_hash": 7},
        packets=[{}],
        check=lambda p: p.dst_ip == 302)


def _sinbad_demo() -> DemoSpec:
    return DemoSpec(
        action=replica.sinbad_select_action,
        function_name="sinbad_select",
        message_schema=replica.MCROUTER_MESSAGE_SCHEMA,
        global_schema=replica.SINBAD_GLOBAL_SCHEMA,
        global_arrays={"replicas": [401, 402, 403],
                       "replica_load": [70, 10, 50]},
        metadata={"key_hash": 0},
        packets=[{}],
        check=lambda p: p.dst_ip == 402)


def _pulsar_demo() -> DemoSpec:
    return DemoSpec(
        action=pulsar.pulsar_action, function_name="pulsar",
        message_schema=pulsar.PULSAR_MESSAGE_SCHEMA,
        global_schema=pulsar.PULSAR_GLOBAL_SCHEMA,
        global_arrays={"queue_map": [0, 5]},
        metadata={"op_read": 1, "msg_size": 65536},
        packets=[{"tenant": 1}],
        check=lambda p: p.queue_id == 5 and p.charge == 65536)


def _network_qos_demo() -> DemoSpec:
    return DemoSpec(
        action=qos.network_qos_action, function_name="network_qos",
        global_schema=qos.NETWORK_QOS_GLOBAL_SCHEMA,
        global_arrays={"queue_map": [3]},
        packets=[{"tenant": 0}],
        check=lambda p: p.queue_id == 3 and p.charge == p.size)


def _pias_demo() -> DemoSpec:
    return DemoSpec(
        action=pias.pias_action, function_name="pias",
        message_schema=pias.PIAS_MESSAGE_SCHEMA,
        global_schema=pias.PIAS_GLOBAL_SCHEMA,
        global_arrays={"priorities": [10_000, 7, 1_000_000, 6,
                                      1 << 40, 5]},
        metadata={"priority": 7},
        packets=[{"size": 1514}] * 8,
        check=lambda p: p.priority == 6)  # 8*1514 > 10 KB


def _sff_demo() -> DemoSpec:
    return DemoSpec(
        action=pias.sff_action, function_name="sff",
        message_schema=pias.SFF_MESSAGE_SCHEMA,
        global_schema=pias.SFF_GLOBAL_SCHEMA,
        global_arrays={"priorities": [10_000, 7, 1_000_000, 6,
                                      1 << 40, 5]},
        metadata={"msg_size": 500_000},
        packets=[{"size": 1514}],
        check=lambda p: p.priority == 6)


def _qjump_demo() -> DemoSpec:
    return DemoSpec(
        action=qos.qjump_action, function_name="qjump",
        message_schema=qos.QJUMP_MESSAGE_SCHEMA,
        global_schema=qos.QJUMP_GLOBAL_SCHEMA,
        global_arrays={"level_priority": [0, 4, 7],
                       "level_queue": [0, 9, 0]},
        metadata={"level": 2},
        packets=[{}],
        check=lambda p: p.priority == 7 and p.queue_id == 0)


def _centralized_cc_demo() -> DemoSpec:
    return DemoSpec(
        action=qos.centralized_cc_action,
        function_name="centralized_cc",
        message_schema=qos.CENTRALIZED_CC_MESSAGE_SCHEMA,
        metadata={"paced_queue": 11},
        packets=[{}],
        check=lambda p: p.queue_id == 11)


def _port_knock_demo() -> DemoSpec:
    return DemoSpec(
        action=firewall.port_knock_action, function_name="port_knock",
        global_schema=firewall.PORT_KNOCK_GLOBAL_SCHEMA,
        global_scalars={"knock1": 7001, "knock2": 7002,
                        "knock3": 7003, "open_port": 22},
        global_arrays={"knock_state": [0] * 64},
        packets=[{"dst_port": 7001}, {"dst_port": 7002},
                 {"dst_port": 7003}, {"dst_port": 22}],
        check=lambda p: p.drop == 0)


def _firewall_demo() -> DemoSpec:
    return DemoSpec(
        action=firewall.stateful_firewall_action,
        function_name="stateful_firewall",
        global_schema=firewall.FIREWALL_GLOBAL_SCHEMA,
        global_scalars={"my_ip": 1, "allow_port": -1},
        global_arrays={"flow_seen": [0] * 64},
        # inbound with no prior outbound flow -> dropped
        packets=[{"src_ip": 5, "dst_ip": 1, "dst_port": 22}],
        check=lambda p: p.drop == 1)


def table1() -> List[Table1Entry]:
    """The rows of paper Table 1, in paper order."""
    return [
        Table1Entry("Load Balancing", "WCMP", True, True, False,
                    app_semantics_approx=False, network_support=False,
                    eden_out_of_box=True, demo=_wcmp_demo()),
        Table1Entry("Load Balancing", "Message-based WCMP", True, True,
                    True, eden_out_of_box=True,
                    demo=_message_wcmp_demo()),
        Table1Entry("Load Balancing", "Ananta", True, True, False,
                    eden_out_of_box=True, demo=_ananta_demo()),
        Table1Entry("Load Balancing", "CONGA", True, True, False,
                    app_semantics_approx=True, network_support=True,
                    eden_out_of_box=False,
                    notes="needs switch-local congestion visibility"),
        Table1Entry("Load Balancing", "Duet", True, True, False,
                    network_support=True, eden_out_of_box=False,
                    notes="needs switch-based VIP offload"),
        Table1Entry("Replica Selection", "mcrouter", True, True, True,
                    eden_out_of_box=True, demo=_mcrouter_demo()),
        Table1Entry("Replica Selection", "SINBAD", True, True, True,
                    eden_out_of_box=True, demo=_sinbad_demo()),
        Table1Entry("Datacenter QoS", "Pulsar", True, True, True,
                    eden_out_of_box=True, demo=_pulsar_demo()),
        Table1Entry("Datacenter QoS", "Storage QoS", True, True, True,
                    eden_out_of_box=True, demo=_network_qos_demo(),
                    notes="IOFlow-style; network_qos as representative"),
        Table1Entry("Datacenter QoS", "Network QoS", True, True, True,
                    eden_out_of_box=True, demo=_network_qos_demo()),
        Table1Entry("Flow scheduling and congestion control", "PIAS",
                    True, True, False, eden_out_of_box=True,
                    demo=_pias_demo()),
        Table1Entry("Flow scheduling and congestion control", "SFF",
                    True, True, True, eden_out_of_box=True,
                    demo=_sff_demo(),
                    notes="shortest flow first (Section 5.1)"),
        Table1Entry("Flow scheduling and congestion control", "QJump",
                    True, True, False, eden_out_of_box=True,
                    demo=_qjump_demo()),
        Table1Entry("Flow scheduling and congestion control",
                    "Centralized congestion control", True, True,
                    False, app_semantics_approx=True,
                    eden_out_of_box=True,
                    demo=_centralized_cc_demo()),
        Table1Entry("Flow scheduling and congestion control",
                    "Explicit rate control (D3, PASE, PDQ)", True,
                    True, True, network_support=True,
                    eden_out_of_box=False,
                    notes="needs explicit per-hop feedback"),
        Table1Entry("Stateful firewall", "IDS (e.g. Snort)", True,
                    True, False, eden_out_of_box=False,
                    notes="needs payload inspection"),
        Table1Entry("Stateful firewall", "Port knocking", True, True,
                    False, eden_out_of_box=True,
                    demo=_port_knock_demo()),
        Table1Entry("Stateful firewall", "Connection tracking", True,
                    True, False, eden_out_of_box=True,
                    demo=_firewall_demo(),
                    notes="extra row: outbound-initiated flows only"),
    ]


def run_demos(backend: str = "interpreter") -> Dict[str, bool]:
    """Run every supported entry's demo; returns name -> passed."""
    results: Dict[str, bool] = {}
    for entry in table1():
        if entry.demo is None:
            continue
        try:
            entry.demo.run(backend=backend)
            results[entry.name] = True
        except Exception:
            results[entry.name] = False
    return results


def format_table(entries: Optional[List[Table1Entry]] = None) -> str:
    """Render the coverage matrix like the paper's Table 1."""
    entries = entries if entries is not None else table1()
    mark = lambda b: "yes" if b else "no"
    lines = [f"{'Function':<42} {'state':>5} {'comp':>5} "
             f"{'app':>5} {'net':>5} {'eden':>5}"]
    for e in entries:
        app = "~yes" if e.app_semantics_approx else mark(
            e.app_semantics)
        lines.append(
            f"{e.name[:42]:<42} {mark(e.data_plane_state):>5} "
            f"{mark(e.data_plane_computation):>5} {app:>5} "
            f"{mark(e.network_support):>5} "
            f"{mark(e.eden_out_of_box):>5}")
    return "\n".join(lines)

"""Other QoS functions from paper Table 1.

* :func:`qjump_action` — QJump [28]: applications declare a latency
  level per message; the function maps the level to an 802.1q priority
  and, for the throughput-hungry levels, to a rate-limited queue.
* :func:`network_qos_action` — tenant-level bandwidth shares
  (Netshare/ElasticSwitch-style): like Pulsar's steering but charging
  pure network bytes, no IO-operation semantics.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.controller import Controller
from ..lang.annotations import (AccessLevel, Field, FieldKind, Lifetime,
                                schema)

QJUMP_FUNCTION_NAME = "qjump"
NETWORK_QOS_FUNCTION_NAME = "network_qos"

QJUMP_MESSAGE_SCHEMA = schema(
    "QjumpMessage", Lifetime.MESSAGE, [
        Field("level", AccessLevel.READ_ONLY, default=0),
    ])

QJUMP_GLOBAL_SCHEMA = schema(
    "QjumpGlobal", Lifetime.GLOBAL, [
        # level -> 802.1q priority
        Field("level_priority", AccessLevel.READ_ONLY, FieldKind.ARRAY),
        # level -> rate-limited queue id (0 = unthrottled)
        Field("level_queue", AccessLevel.READ_ONLY, FieldKind.ARRAY),
    ])

NETWORK_QOS_GLOBAL_SCHEMA = schema(
    "NetworkQosGlobal", Lifetime.GLOBAL, [
        Field("queue_map", AccessLevel.READ_ONLY, FieldKind.ARRAY),
    ])


def qjump_action(packet, msg, _global):
    """Map the message's declared QJump level to priority + throttle."""
    level = msg.level
    if level < 0:
        level = 0
    if level >= len(_global.level_priority):
        level = len(_global.level_priority) - 1
    if level < 0:
        return 0
    packet.priority = _global.level_priority[level]
    packet.queue_id = _global.level_queue[level]
    return 0


CENTRALIZED_CC_FUNCTION_NAME = "centralized_cc"

CENTRALIZED_CC_MESSAGE_SCHEMA = schema(
    "CentralizedCcMessage", Lifetime.MESSAGE, [
        # Controller-allocated pacing queue for this flow (Fastpass
        # style: the centralized arbiter decides when/at what rate
        # each sender transmits; here, which token bucket paces it).
        Field("paced_queue", AccessLevel.READ_ONLY, default=0),
    ])


def centralized_cc_action(packet, msg):
    """Centralized congestion control (Fastpass [48] representative):
    every flow is paced at the rate its controller allocation dictates
    by steering it to the allocated queue."""
    packet.queue_id = msg.paced_queue
    return 0


def network_qos_action(packet, _global):
    """Steer each tenant's traffic to its rate-limited queue."""
    tenant = packet.tenant
    if tenant >= 0 and tenant < len(_global.queue_map):
        packet.queue_id = _global.queue_map[tenant]
    packet.charge = packet.size
    return 0


class QjumpDeployment:
    """Installs QJump levels at a set of hosts."""

    def __init__(self, controller: Controller,
                 backend: str = "interpreter") -> None:
        self.controller = controller
        self.backend = backend

    def install(self, host: str, stack,
                levels: Sequence[Mapping[str, int]]) -> None:
        """``levels[i]`` maps level i to ``{"priority": p,
        "rate_bps": r}`` (omit ``rate_bps`` for unthrottled)."""
        self.controller.install_function(
            host, qjump_action, name=QJUMP_FUNCTION_NAME,
            message_schema=QJUMP_MESSAGE_SCHEMA,
            global_schema=QJUMP_GLOBAL_SCHEMA, backend=self.backend)
        priorities = []
        queues = []
        next_queue = 100
        for level in levels:
            priorities.append(int(level["priority"]))
            rate = level.get("rate_bps")
            if rate:
                stack.rate_limiters.configure(next_queue, int(rate))
                queues.append(next_queue)
                next_queue += 1
            else:
                queues.append(0)
        enclave = self.controller.enclave(host)
        enclave.set_global_array(QJUMP_FUNCTION_NAME, "level_priority",
                                 priorities)
        enclave.set_global_array(QJUMP_FUNCTION_NAME, "level_queue",
                                 queues)
        self.controller.install_rule(host, "*", QJUMP_FUNCTION_NAME)

"""Stateful firewalling: connection tracking and port knocking.

Paper Table 1 lists "stateful firewall" functions as expressible in
Eden out of the box (port knocking, after OpenState [13]) — they need
data-plane state and computation but no application semantics and no
network support.

Both functions keep their state in writable *global* arrays (hash
buckets), which per the concurrency model of Section 3.4.4 serializes
their invocations — exactly the behavior a firewall wants.

* :func:`stateful_firewall_action` handles both directions in one
  program: outbound packets record their flow in a symmetric hash
  bucket; inbound packets are dropped unless their (reverse) flow was
  seen or they target the whitelisted port.
* :func:`port_knock_action` implements the classic knock sequence:
  a source must hit three secret ports in order before the protected
  port opens for it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.controller import Controller
from ..lang.annotations import (AccessLevel, Field, FieldKind, Lifetime,
                                schema)

FIREWALL_FUNCTION_NAME = "stateful_firewall"
PORT_KNOCK_FUNCTION_NAME = "port_knock"

FIREWALL_GLOBAL_SCHEMA = schema(
    "FirewallGlobal", Lifetime.GLOBAL, [
        Field("flow_seen", AccessLevel.READ_WRITE, FieldKind.ARRAY),
        Field("my_ip", AccessLevel.READ_ONLY),
        Field("allow_port", AccessLevel.READ_ONLY, default=-1),
    ])

PORT_KNOCK_GLOBAL_SCHEMA = schema(
    "PortKnockGlobal", Lifetime.GLOBAL, [
        Field("knock_state", AccessLevel.READ_WRITE, FieldKind.ARRAY),
        Field("knock1", AccessLevel.READ_ONLY),
        Field("knock2", AccessLevel.READ_ONLY),
        Field("knock3", AccessLevel.READ_ONLY),
        Field("open_port", AccessLevel.READ_ONLY),
    ])


def stateful_firewall_action(packet, _global):
    """Allow inbound traffic only for flows initiated outbound.

    The bucket index is symmetric in the two endpoints (XOR mixing),
    so a flow and its reverse land in the same bucket.
    """
    n = len(_global.flow_seen)
    if n == 0:
        return 0
    mix = (packet.src_ip ^ packet.dst_ip) * 2654435761 + \
          (packet.src_port ^ packet.dst_port) * 40503
    idx = mix % n
    if packet.dst_ip == _global.my_ip:
        if _global.flow_seen[idx] == 0 and \
                packet.dst_port != _global.allow_port:
            packet.drop = 1
    else:
        _global.flow_seen[idx] = 1
    return 0


def port_knock_action(packet, _global):
    """OpenState-style port knocking: knock1 -> knock2 -> knock3 opens
    ``open_port`` for the knocking source; a wrong knock resets."""
    n = len(_global.knock_state)
    if n == 0:
        return 0
    idx = packet.src_ip % n
    stage = _global.knock_state[idx]
    port = packet.dst_port
    if port == _global.open_port:
        if stage < 3:
            packet.drop = 1
    elif port == _global.knock1:
        if stage < 3:
            _global.knock_state[idx] = 1
    elif port == _global.knock2:
        if stage == 1 or stage == 2:
            # Advance — and stay advanced on duplicate knocks
            # (retransmitted SYNs must not reset the sequence).
            _global.knock_state[idx] = 2
        elif stage < 3:
            _global.knock_state[idx] = 0
    elif port == _global.knock3:
        if stage == 2 or stage == 3:
            _global.knock_state[idx] = 3
        elif stage < 3:
            _global.knock_state[idx] = 0
    else:
        if stage < 3:
            _global.knock_state[idx] = 0
    return 0


class FirewallDeployment:
    """Installs the connection-tracking firewall at a host.

    The enclave must process the receive path too
    (``HostStack(process_rx=True)``) for inbound enforcement.
    """

    def __init__(self, controller: Controller, buckets: int = 1024,
                 backend: str = "interpreter") -> None:
        self.controller = controller
        self.buckets = buckets
        self.backend = backend

    def install(self, host: str, host_ip: int,
                allow_port: int = -1) -> None:
        self.controller.install_function(
            host, stateful_firewall_action,
            name=FIREWALL_FUNCTION_NAME,
            global_schema=FIREWALL_GLOBAL_SCHEMA, backend=self.backend)
        enclave = self.controller.enclave(host)
        enclave.set_global_array(FIREWALL_FUNCTION_NAME, "flow_seen",
                                 [0] * self.buckets)
        enclave.set_global(FIREWALL_FUNCTION_NAME, "my_ip", host_ip)
        enclave.set_global(FIREWALL_FUNCTION_NAME, "allow_port",
                           allow_port)
        self.controller.install_rule(host, "*", FIREWALL_FUNCTION_NAME)


class PortKnockDeployment:
    """Installs port knocking at a host (receive-path enforcement)."""

    def __init__(self, controller: Controller, buckets: int = 1024,
                 backend: str = "interpreter") -> None:
        self.controller = controller
        self.buckets = buckets
        self.backend = backend

    def install(self, host: str, knocks: Sequence[int],
                open_port: int) -> None:
        if len(knocks) != 3:
            raise ValueError("the knock sequence has three ports")
        self.controller.install_function(
            host, port_knock_action, name=PORT_KNOCK_FUNCTION_NAME,
            global_schema=PORT_KNOCK_GLOBAL_SCHEMA,
            backend=self.backend)
        enclave = self.controller.enclave(host)
        enclave.set_global_array(PORT_KNOCK_FUNCTION_NAME,
                                 "knock_state", [0] * self.buckets)
        for i, port in enumerate(knocks, start=1):
            enclave.set_global(PORT_KNOCK_FUNCTION_NAME, f"knock{i}",
                               port)
        enclave.set_global(PORT_KNOCK_FUNCTION_NAME, "open_port",
                           open_port)
        self.controller.install_rule(host, "*",
                                     PORT_KNOCK_FUNCTION_NAME)

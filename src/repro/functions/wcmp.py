"""Weighted-cost multipath load balancing (paper Section 2.1.1, Fig 2).

Three data-plane functions:

* :func:`wcmp_action` — per-packet weighted random path choice, the
  first snippet of Figure 2 (ECMP is the degenerate case of equal
  weights);
* :func:`message_wcmp_action` — the second snippet: all packets of one
  message stick to the path chosen for the message's first packet,
  trading some load balance for no reordering;
* the control-plane side — path enumeration, weight computation and
  label installation — lives in :class:`WcmpDeployment`.

The per-(src, dst) ``pathMatrix`` of the paper is expressed as a keyed
global record array: the enclave binds the row matching the packet's
source and destination at invocation time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.controller import Controller
from ..core.enclave import Enclave
from ..lang.annotations import (AccessLevel, Field, FieldKind, Lifetime,
                                schema)
from ..netsim.routing import provision_labeled_paths
from ..netsim.topology import Network

FUNCTION_NAME = "wcmp"
MESSAGE_FUNCTION_NAME = "message_wcmp"


def _bind_paths(packet, store):
    """Bind the pathMatrix row for this packet's (src, dst) pair."""
    return store.keyed_array("paths", (packet.src_ip, packet.dst_ip))


#: ``pathMatrix:[src, dst] -> {[Path1, Weight1], ...}`` (Figure 2).
WCMP_GLOBAL_SCHEMA = schema(
    "WcmpGlobal", Lifetime.GLOBAL, [
        Field("paths", AccessLevel.READ_ONLY, FieldKind.RECORD_ARRAY,
              record_fields=("path_id", "weight"), binder=_bind_paths),
    ])

#: Message state for message-level WCMP: the cached path label
#: (0 = not chosen yet), the paper's ``cachedPaths[msg]``.
WCMP_MESSAGE_SCHEMA = schema(
    "WcmpMessage", Lifetime.MESSAGE, [
        Field("cached_path", AccessLevel.READ_WRITE, default=0),
    ])


def wcmp_action(packet, _global):
    """fun WCMP(packet): choose a path in a weighted random fashion
    from pathMatrix[p.src, p.dst] (paper Figure 2, first snippet)."""
    n = len(_global.paths)
    if n == 0:
        return 0
    total = 0
    for i in range(n):
        total += _global.paths[i].weight
    if total <= 0:
        return 0
    pick = rand(total)
    acc = 0
    for i in range(n):
        acc += _global.paths[i].weight
        if pick < acc:
            packet.path_id = _global.paths[i].path_id
            return 0
    return 0


def message_wcmp_action(packet, msg, _global):
    """fun messageWCMP(packet): pick once per message, then reuse
    cachedPaths[msg] (paper Figure 2, second snippet)."""
    if msg.cached_path == 0:
        n = len(_global.paths)
        if n == 0:
            return 0
        total = 0
        for i in range(n):
            total += _global.paths[i].weight
        if total <= 0:
            return 0
        pick = rand(total)
        acc = 0
        chosen = 0
        for i in range(n):
            acc += _global.paths[i].weight
            if chosen == 0 and pick < acc:
                chosen = _global.paths[i].path_id
        msg.cached_path = chosen
    packet.path_id = msg.cached_path
    return 0


class WcmpDeployment:
    """Deploys (message-)WCMP between host pairs of a network.

    The controller side: enumerate the simple paths between the pair,
    install label forwarding state at the switches, compute weights
    proportional to bottleneck capacity (or uniform for ECMP), and push
    the pathMatrix rows plus the match-action rule to the sender's
    enclave.
    """

    def __init__(self, controller: Controller, network: Network,
                 granularity: str = "packet",
                 backend: str = "interpreter",
                 class_pattern: str = "*") -> None:
        if granularity not in ("packet", "message"):
            raise ValueError(
                "granularity must be 'packet' or 'message'")
        self.controller = controller
        self.network = network
        self.granularity = granularity
        self.backend = backend
        self.class_pattern = class_pattern
        self._installed_hosts: set = set()

    @property
    def function_name(self) -> str:
        return (FUNCTION_NAME if self.granularity == "packet"
                else MESSAGE_FUNCTION_NAME)

    def _ensure_function(self, host: str) -> None:
        if host in self._installed_hosts:
            return
        if self.granularity == "packet":
            self.controller.install_function(
                host, wcmp_action, name=FUNCTION_NAME,
                global_schema=WCMP_GLOBAL_SCHEMA, backend=self.backend)
        else:
            self.controller.install_function(
                host, message_wcmp_action, name=MESSAGE_FUNCTION_NAME,
                message_schema=WCMP_MESSAGE_SCHEMA,
                global_schema=WCMP_GLOBAL_SCHEMA, backend=self.backend)
        self.controller.install_rule(host, self.class_pattern,
                                     self.function_name)
        self._installed_hosts.add(host)

    def provision_pair(self, src_host: str, dst_host: str,
                       equal_weights: bool = False,
                       first_label: int = 1,
                       weight_scale: int = 1000
                       ) -> List[Tuple[int, List[str], int]]:
        """Set up paths + weights from ``src_host`` to ``dst_host``.

        With ``equal_weights`` the result is per-packet (or
        per-message) ECMP.  Returns the provisioned
        ``(label, path, bottleneck_bps)`` rows.
        """
        self._ensure_function(src_host)
        rows = provision_labeled_paths(self.network, src_host,
                                       dst_host,
                                       first_label=first_label)
        if not rows:
            raise ValueError(
                f"no paths between {src_host} and {dst_host}")
        if equal_weights:
            caps = [(label, 1.0) for label, _, _ in rows]
        else:
            caps = [(label, float(bn)) for label, _, bn in rows]
        weights = Controller.wcmp_weights(caps, scale=weight_scale)
        records = [(w.path_id, w.weight) for w in weights]
        flat: List[int] = []
        for path_id, weight in records:
            flat.extend((path_id, weight))
        src_ip = self.network.host_ip(src_host)
        dst_ip = self.network.host_ip(dst_host)
        self.controller.set_global_keyed(
            src_host, self.function_name, "paths",
            (src_ip, dst_ip), flat)
        return rows


# -- telemetry-driven control loop (repro.control) -------------------------

class WcmpWeightLoop:
    """Re-weights WCMP paths from reported path capacities.

    Section 2.1.1: the controller computes the ``pathMatrix`` weights
    from global knowledge; when hosts report per-path available
    capacity (the ``path_capacity`` telemetry feed — rows of
    ``(path_id, capacity_bps)``), this loop recomputes the weights
    with :meth:`Controller.wcmp_weights` and, when they change,
    pushes the new pathMatrix row to every sender through the control
    channel — one new epoch per host, survives loss and restarts.
    """

    def __init__(self, plane, key: tuple,
                 hosts: Sequence[str],
                 function_name: str = FUNCTION_NAME,
                 scale: int = 1000) -> None:
        self.plane = plane
        self.key = tuple(key)
        self.hosts = list(hosts)
        self.function_name = function_name
        self.scale = scale
        #: last reported capacity per path id (last-writer-wins).
        self._capacity: Dict[int, float] = {}
        self.current: Optional[List[Tuple[int, int]]] = None
        self.updates_pushed = 0

    def on_report(self, host: str, report) -> None:
        rows = report.telemetry.get("path_capacity")
        if not rows:
            return
        for path_id, capacity in rows:
            self._capacity[int(path_id)] = float(capacity)
        caps = sorted(self._capacity.items())
        if not caps or sum(c for _, c in caps) <= 0:
            return
        weights = Controller.wcmp_weights(caps, scale=self.scale)
        records = [(w.path_id, w.weight) for w in weights]
        if records == self.current:
            return
        self.current = records
        self.updates_pushed += 1
        flat: List[int] = []
        for path_id, weight in records:
            flat.extend((path_id, weight))
        for target in self.hosts:
            self.plane.set_global_keyed(
                target, self.function_name, "paths", self.key, flat)

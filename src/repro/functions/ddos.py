"""End-host DDoS mitigation: egress spoof guard + per-source limiter.

The composed function the fleet rollout deploys at *sender* (attacker)
hosts — mitigation at the source, the paper's end-host vantage point,
as motivated by "Network Traffic Control for Multi-homed End-hosts via
SDN" (PAPERS.md).  Two stages chained through match-action tables,
exactly the composition idiom of :mod:`repro.core.composition`:

Table 0 — **spoof guard** (BCP38 at the enclave).  A packet whose
source address is not the host's own is spoofed by definition at the
egress vantage point; drop it before it costs anyone anything.

Table 1 — **per-source rate limit** (Pulsar idiom).  Surviving
traffic aimed at the protected victim is charged its wire size and
steered into a token-bucket queue picked by hashing the source
address over a small queue array — per-source fairness with a bounded
number of queues.  Non-victim traffic is untouched.

Both globals are pushed by the controller; the queues themselves are
host-local token buckets (:mod:`repro.stack.ratelimiter`), provisioned
out-of-band like :class:`~repro.functions.pulsar.PulsarDeployment`
does.
"""

from __future__ import annotations

from typing import Sequence

from ..fleet.program import FleetProgram, PerHost, ProgramBuilder
from ..lang.annotations import (AccessLevel, Field, FieldKind,
                                Lifetime, schema)

SPOOF_GUARD_NAME = "ddos_spoof_guard"
SOURCE_LIMIT_NAME = "ddos_source_limit"

#: Table ids of the two chained stages.
GUARD_TABLE = 0
LIMIT_TABLE = 1

SPOOF_GUARD_GLOBAL_SCHEMA = schema(
    "SpoofGuardGlobal", Lifetime.GLOBAL, [
        Field("my_ip", AccessLevel.READ_ONLY, default=0),
    ])

SOURCE_LIMIT_GLOBAL_SCHEMA = schema(
    "SourceLimitGlobal", Lifetime.GLOBAL, [
        Field("victim_ip", AccessLevel.READ_ONLY, default=0),
        Field("queue_of_source", AccessLevel.READ_ONLY,
              FieldKind.ARRAY),
    ])


def spoof_guard_action(packet, _global):
    """Drop egress packets that claim a source we do not own."""
    if packet.src_ip != _global.my_ip:
        packet.drop = 1


def source_limit_action(packet, _global):
    """Charge victim-bound traffic into a per-source-bucket queue."""
    n = len(_global.queue_of_source)
    if n > 0 and packet.dst_ip == _global.victim_ip:
        packet.charge = packet.size
        packet.queue_id = _global.queue_of_source[packet.src_ip % n]


def mitigation_program(victim_ip: int, host_ip,
                       queue_ids: Sequence[int],
                       class_pattern: str = "*",
                       backend: str = "interpreter") -> FleetProgram:
    """The rollout program installing the composed mitigation.

    ``host_ip`` maps each host name to its own address (resolved per
    host at apply time — the spoof guard's ground truth);
    ``queue_ids`` are the pre-provisioned token-bucket queues sources
    are hashed over.
    """
    builder: ProgramBuilder = FleetProgram.build("ddos-mitigation")
    builder.install_function(
        SPOOF_GUARD_NAME, spoof_guard_action,
        global_schema=SPOOF_GUARD_GLOBAL_SCHEMA, backend=backend)
    builder.set_global(SPOOF_GUARD_NAME, "my_ip",
                       PerHost(host_ip) if callable(host_ip)
                       else host_ip)
    builder.install_function(
        SOURCE_LIMIT_NAME, source_limit_action,
        global_schema=SOURCE_LIMIT_GLOBAL_SCHEMA, backend=backend)
    builder.set_global(SOURCE_LIMIT_NAME, "victim_ip", victim_ip)
    builder.set_global_array(SOURCE_LIMIT_NAME, "queue_of_source",
                             tuple(queue_ids))
    # The chain: every classified packet hits the guard, survivors
    # continue to the limiter (composition via next_table).
    builder.install_rule(class_pattern, SPOOF_GUARD_NAME,
                         table_id=GUARD_TABLE,
                         next_table=LIMIT_TABLE)
    builder.install_rule(class_pattern, SOURCE_LIMIT_NAME,
                         table_id=LIMIT_TABLE)
    return builder.done()

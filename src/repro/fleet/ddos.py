"""DDoS-mitigation scenario: goodput recovers wave by wave.

The headline fleet workload.  A victim host behind a modest access
link serves one legitimate bulk TCP flow while a fleet of compromised
sender hosts blasts it with UDP — most of it source-spoofed.  The
attack saturates the victim's downlink and the legitimate flow's
goodput collapses.  Mitigation is the paper's end-host answer: the
controller stages a rollout of the composed spoof-guard +
per-source-rate-limit function (:mod:`repro.functions.ddos`) across
the *attacker* enclaves — canary first, health-gated, over a lossy
control channel — and the victim's goodput recovers wave by wave as
each tranche of attackers starts policing its own egress.

Everything runs on one seeded simulator: the attack traffic, the TCP
flow, the control channel (with injected loss) and the rollout — so
the recovery figure is bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..apps.workloads import BulkSender, SinkServer
from ..control import ChannelConfig, FaultInjector
from ..core.controller import Controller
from ..core.enclave import Enclave
from ..functions.ddos import mitigation_program
from ..netsim.packet import PROTO_UDP, Packet
from ..netsim.simulator import GBPS, MBPS, MS, Simulator
from ..netsim.topology import star
from ..stack.netstack import HostStack
from ..telemetry import NULL_TELEMETRY, Telemetry
from .health import EpochHealthGate
from .orchestrator import (DONE, FleetOrchestrator, RolloutConfig,
                           TERMINAL)
from .plan import RolloutPlan
from .shardfleet import ShardedFleet  # noqa: F401  (re-export hook)

VICTIM_PORT = 5001


@dataclass
class DdosConfig:
    """Scenario knobs (defaults shape the recovery figure)."""

    seed: int = 1
    attackers: int = 8
    #: Victim's access link; the contended resource.
    victim_link_bps: int = 1 * GBPS
    #: Per-attacker UDP offered load; ``None`` auto-scales so the
    #: fleet sum is ~1.2x the victim link whatever the fleet size.
    #: That ratio is chosen so *each* wave visibly frees capacity —
    #: an attack that swamps the link many times over only recovers
    #: on the final wave, which makes a boring figure.
    attack_rate_bps: Optional[int] = None
    #: Fraction of attack packets with forged sources.
    spoof_fraction: float = 0.5
    #: Per-source token-bucket rate installed by the mitigation.
    mitigated_rate_bps: int = 2 * MBPS
    #: Number of per-source-bucket queues sources are hashed over.
    mitigation_queues: int = 4
    #: Control-channel loss while the rollout runs.
    control_loss: float = 0.10
    #: Attack ramp time before the rollout starts (baseline window).
    baseline_ms: int = 60
    #: Soak window after each confirmed wave (the measurement bin).
    settle_ms: int = 60
    report_interval_ms: int = 5
    #: Cumulative rollout percentages over the attacker fleet.
    percents: tuple = (13, 50, 100)
    horizon_ms: int = 2_000


@dataclass
class WaveGoodput:
    """Victim goodput measured in one wave's soak window."""

    label: str
    #: Attacker hosts mitigated when the window opened.
    mitigated_hosts: int
    start_ns: int
    end_ns: int
    goodput_mbps: float
    attack_mbps: float


@dataclass
class DdosResult:
    config: DdosConfig
    windows: List[WaveGoodput] = field(default_factory=list)
    converged: bool = False
    rollout_summary: dict = field(default_factory=dict)
    spoofed_dropped: int = 0
    attack_packets_sent: int = 0

    @property
    def recovery_monotonic(self) -> bool:
        """Goodput never regresses across waves.

        10% relative plus a 5 Mbps absolute slack: the relative term
        absorbs TCP sawtooth, the absolute term absorbs the noise
        floor when consecutive windows are both saturation-starved
        (a few Mbps either way of zero on a Gbps link).
        """
        series = [w.goodput_mbps for w in self.windows]
        return all(b >= a * 0.9 - 5.0
                   for a, b in zip(series, series[1:]))

    @property
    def recovered(self) -> bool:
        """Final goodput dominates the under-attack baseline."""
        if len(self.windows) < 2:
            return False
        return self.windows[-1].goodput_mbps > \
            max(5.0, 3.0 * self.windows[0].goodput_mbps)


class AttackDriver:
    """One compromised host blasting UDP at the victim.

    Packets alternate between forged sources (drawn from a seeded
    range) and the host's own address, at a steady configured rate.
    Each packet runs the local enclave via the normal TX path — which
    is exactly where the rolled-out mitigation bites.
    """

    def __init__(self, sim: Simulator, stack: HostStack,
                 victim_ip: int, rate_bps: int,
                 spoof_fraction: float, rng: random.Random,
                 payload_len: int = 1400) -> None:
        self.sim = sim
        self.stack = stack
        self.victim_ip = victim_ip
        self.spoof_fraction = spoof_fraction
        self.rng = rng
        self.payload_len = payload_len
        self.packets_sent = 0
        packet_bits = (payload_len + 54) * 8
        self.interval_ns = max(1, int(1e9 * packet_bits / rate_bps))
        self._stopped = False
        sim.schedule(rng.randrange(self.interval_ns + 1),
                     self._send_one)

    def stop(self) -> None:
        self._stopped = True

    def _send_one(self) -> None:
        if self._stopped:
            return
        spoofed = self.rng.random() < self.spoof_fraction
        src_ip = (0x0A00_0000 + self.rng.randrange(1 << 16)
                  if spoofed else self.stack.ip)
        packet = Packet(
            src_ip=src_ip, dst_ip=self.victim_ip,
            src_port=self.rng.randrange(1024, 65535),
            dst_port=VICTIM_PORT, proto=PROTO_UDP,
            payload_len=self.payload_len,
            created_at=self.sim.now)
        self.packets_sent += 1
        self.stack.send_packet(packet)
        self.sim.schedule(self.interval_ns, self._send_one)


def run_ddos(config: Optional[DdosConfig] = None,
             telemetry: Optional[Telemetry] = None) -> DdosResult:
    """Run the scenario end to end; returns the per-wave windows."""
    cfg = config if config is not None else DdosConfig()
    if cfg.attack_rate_bps is None:
        import dataclasses
        cfg = dataclasses.replace(
            cfg, attack_rate_bps=int(1.2 * cfg.victim_link_bps
                                     / cfg.attackers))
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    sim = Simulator(seed=cfg.seed)
    n_hosts = cfg.attackers + 2
    net = star(sim, n_hosts, host_rate_bps=10 * GBPS,
               host_rates={"h1": cfg.victim_link_bps})
    victim_host, legit_host = net.hosts["h1"], net.hosts["h2"]
    attacker_names = [f"h{i}" for i in range(3, n_hosts + 1)]
    victim_ip = net.host_ip("h1")

    faults = FaultInjector(rng=random.Random(cfg.seed * 31 + 7),
                           drop_prob=cfg.control_loss,
                           scheduler=sim)
    controller = Controller(transport="sim", sim=sim, faults=faults,
                            channel_config=ChannelConfig(),
                            telemetry=telemetry)

    # Victim: no enclave, just the sink service — plus a tap counting
    # hostile bytes that make it through its access link.
    victim_stack = HostStack(sim, victim_host,
                             process_pure_acks=False)
    sink = SinkServer(victim_stack, VICTIM_PORT)
    attack_bytes_seen = [0]
    _orig_rx = victim_stack.handle_rx

    def _tapped_rx(packet, from_port):
        if packet.proto == PROTO_UDP and \
                packet.dst_port == VICTIM_PORT:
            attack_bytes_seen[0] += packet.size
        _orig_rx(packet, from_port)

    victim_stack.handle_rx = _tapped_rx

    legit_stack = HostStack(sim, legit_host,
                            process_pure_acks=False)

    # Attackers: real enclaves on the TX path, mitigation queues
    # pre-provisioned host-locally (the PulsarDeployment idiom — the
    # rollout only flips the steering globals).
    attacker_stacks: Dict[str, HostStack] = {}
    drivers: List[AttackDriver] = []
    queue_ids = tuple(range(1, cfg.mitigation_queues + 1))
    for i, name in enumerate(attacker_names):
        enclave = Enclave(f"{name}.enclave", clock=sim.clock,
                          rng=sim.rng)
        controller.register_enclave(name, enclave)
        stack = HostStack(sim, net.hosts[name], enclave=enclave,
                          process_pure_acks=False)
        for qid in queue_ids:
            stack.rate_limiters.configure(
                qid, cfg.mitigated_rate_bps, burst_bytes=30_000)
        attacker_stacks[name] = stack
        drivers.append(AttackDriver(
            sim, stack, victim_ip, cfg.attack_rate_bps,
            cfg.spoof_fraction,
            random.Random(cfg.seed * 1009 + i)))
        controller.agent(name).start_reporting(
            cfg.report_interval_ms * MS)

    # Legitimate traffic: one long bulk TCP flow into the victim.
    sender = BulkSender(sim, legit_stack, victim_ip, VICTIM_PORT)

    plane = controller.plane
    host_ip = {name: net.host_ip(name) for name in attacker_names}
    program = mitigation_program(victim_ip,
                                 lambda h: host_ip[h], queue_ids)
    plan = RolloutPlan.by_percent(attacker_names,
                                  percents=cfg.percents)
    orch = FleetOrchestrator(
        plane, plan, program, scheduler=sim,
        gate=EpochHealthGate(
            max_report_age_ns=3 * cfg.report_interval_ms * MS,
            require_functions=("ddos_spoof_guard",
                               "ddos_source_limit")),
        config=RolloutConfig(poll_interval_ns=2 * MS,
                             settle_ns=cfg.settle_ms * MS,
                             wave_timeout_ns=1_000 * MS),
        telemetry=telemetry)

    # Measurement: snapshot (goodput, attack) counters at every wave
    # boundary; each soak window becomes one figure bin.  The bin for
    # a confirmed wave opens mid-soak, not at confirmation — TCP
    # needs half a window to climb out of the timeouts the preceding
    # (more congested) regime put it in, and measuring the ramp would
    # charge that recovery transient to the wrong wave.
    marks: List[tuple] = []

    def mark(label: str, mitigated: int) -> None:
        marks.append((label, mitigated, sim.now,
                      sink.bytes_received, attack_bytes_seen[0]))

    def mark_mid_soak(orch_, rec) -> None:
        mitigated = sum(len(w.hosts)
                        for w in orch_.plan.waves[:rec.index + 1])
        sim.schedule(cfg.settle_ms * MS // 2, mark,
                     f"wave {rec.index}", mitigated)

    orch.on_wave_confirmed = mark_mid_soak
    orch.on_wave_start = lambda o, rec: mark(
        f"start {rec.index}",
        sum(len(w.hosts) for w in o.plan.waves[:rec.index]))
    orch.on_rollout_done = lambda o: mark("done", len(attacker_names))

    # Baseline: let the attack saturate the link first; the measured
    # baseline bin starts mid-window (past TCP's slow-start burst).
    sim.schedule(cfg.baseline_ms * MS // 2, mark, "attack", 0)
    sim.run(until_ns=cfg.baseline_ms * MS)
    orch.start()
    horizon = cfg.horizon_ms * MS
    while orch.state not in TERMINAL and sim.now < horizon:
        sim.run(until_ns=min(horizon, sim.now + 20 * MS))
    # Tail: one more settle-sized window after the rollout ends.
    sim.run(until_ns=sim.now + cfg.settle_ms * MS)
    mark("end", len(attacker_names))

    windows: List[WaveGoodput] = []
    # Bins between consecutive marks, keeping the informative ones:
    # the under-attack baseline and each wave's soak window.
    for (label, mitigated, t0, good0, atk0), \
            (_l1, _m1, t1, good1, atk1) in zip(marks, marks[1:]):
        if t1 <= t0:
            continue
        keep = label == "attack" or label.startswith("wave") or \
            label == "done"
        if not keep:
            continue
        dt_s = (t1 - t0) / 1e9
        windows.append(WaveGoodput(
            label=("under attack" if label == "attack" else label),
            mitigated_hosts=mitigated, start_ns=t0, end_ns=t1,
            goodput_mbps=8 * (good1 - good0) / dt_s / 1e6,
            attack_mbps=8 * (atk1 - atk0) / dt_s / 1e6))

    spoof_drops = sum(s.packets_dropped_by_enclave
                      for s in attacker_stacks.values())
    return DdosResult(
        config=cfg, windows=windows,
        converged=orch.state == DONE,
        rollout_summary=orch.summary(),
        spoofed_dropped=spoof_drops,
        attack_packets_sent=sum(d.packets_sent for d in drivers))


def format_ddos(result: DdosResult, width: int = 44) -> str:
    """ASCII recovery figure: victim goodput per rollout wave."""
    lines = [
        "ddos-mitigation: victim goodput vs rollout progress",
        f"  {result.config.attackers} attackers x "
        f"{result.config.attack_rate_bps // MBPS} Mbps "
        f"({result.config.spoof_fraction:.0%} spoofed), victim link "
        f"{result.config.victim_link_bps // MBPS} Mbps, control loss "
        f"{result.config.control_loss:.0%}",
        "",
    ]
    peak = max((w.goodput_mbps for w in result.windows),
               default=1.0) or 1.0
    for w in result.windows:
        bar = "#" * max(1, int(round(width * w.goodput_mbps / peak)))
        lines.append(
            f"  {w.label:<13} [{w.mitigated_hosts:>2} mitigated] "
            f"{w.goodput_mbps:7.1f} Mbps |{bar}")
        lines.append(
            f"  {'':<13} {'':>15}  attack seen {w.attack_mbps:7.1f} "
            f"Mbps")
    lines.append("")
    verdict = "converged" if result.converged else "DID NOT converge"
    monotonic = "yes" if result.recovery_monotonic else "no"
    lines.append(
        f"  rollout {verdict}; spoofed packets dropped at source: "
        f"{result.spoofed_dropped}")
    lines.append(f"  recovery monotonic: {monotonic}")
    return "\n".join(lines)

"""What a rollout installs: an ordered list of control-plane ops.

A :class:`FleetProgram` is the fleet-wide analogue of one host's
desired-state delta — an ordered sequence of operations (install
function, set globals, install rules, ...) applied identically to
every host of a wave through the :class:`~repro.control.plane.
ControlPlane`.  Each ``apply`` bumps the host's epoch per op and
returns the resulting :class:`~repro.control.channel.PendingSend`
handles, which the orchestrator tracks to Ack-completion.

Values may be host-dependent (an attacker-side spoof guard needs each
host's *own* IP): wrap them in :class:`PerHost` and they are resolved
at apply time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence


class ProgramError(Exception):
    """A fleet program was malformed."""


@dataclass(frozen=True)
class PerHost:
    """A program value resolved per host at apply time."""

    fn: Callable[[str], object]

    def resolve(self, host: str) -> object:
        return self.fn(host)


def _resolve(value, host: str):
    if isinstance(value, PerHost):
        return value.resolve(host)
    return value


@dataclass(frozen=True)
class FleetOp:
    """Base class for one control-plane operation."""

    def apply(self, plane, host: str) -> list:
        raise NotImplementedError


@dataclass(frozen=True)
class InstallFunctionOp(FleetOp):
    name: str
    source_fn: object
    kwargs: Mapping[str, object] = field(default_factory=dict)

    def apply(self, plane, host: str) -> list:
        return [plane.install_function(host, self.name,
                                       self.source_fn,
                                       **dict(self.kwargs))]


@dataclass(frozen=True)
class ReplaceFunctionOp(FleetOp):
    name: str
    source_fn: object
    kwargs: Mapping[str, object] = field(default_factory=dict)

    def apply(self, plane, host: str) -> list:
        return [plane.replace_function(host, self.name,
                                       self.source_fn,
                                       **dict(self.kwargs))]


@dataclass(frozen=True)
class RemoveFunctionOp(FleetOp):
    name: str

    def apply(self, plane, host: str) -> list:
        return [plane.remove_function(host, self.name)]


@dataclass(frozen=True)
class InstallRuleOp(FleetOp):
    pattern: str
    function: str
    table_id: int = 0
    priority: int = 0
    next_table: Optional[int] = None

    def apply(self, plane, host: str) -> list:
        return [plane.install_rule(host, self.pattern, self.function,
                                   table_id=self.table_id,
                                   priority=self.priority,
                                   next_table=self.next_table)]


@dataclass(frozen=True)
class SetGlobalOp(FleetOp):
    """Scalar / array / records / keyed global write.

    ``kind`` mirrors :mod:`repro.control.messages` global kinds;
    ``value`` (and ``key``) may be :class:`PerHost`.
    """

    function: str
    name: str
    kind: str = "scalar"
    key: object = None
    value: object = None

    def apply(self, plane, host: str) -> list:
        value = _resolve(self.value, host)
        key = _resolve(self.key, host)
        if self.kind == "scalar":
            return [plane.set_global(host, self.function, self.name,
                                     value)]
        if self.kind == "array":
            return [plane.set_global_array(host, self.function,
                                           self.name, value)]
        if self.kind == "records":
            return [plane.set_global_records(host, self.function,
                                             self.name, value)]
        if self.kind == "keyed":
            return [plane.set_global_keyed(host, self.function,
                                           self.name, key, value)]
        raise ProgramError(f"unknown global kind {self.kind!r}")


class FleetProgram:
    """Ordered ops applied to each host of a wave."""

    def __init__(self, ops: Sequence[FleetOp],
                 name: str = "program") -> None:
        if not ops:
            raise ProgramError("a fleet program needs at least one op")
        self.ops: List[FleetOp] = list(ops)
        self.name = name

    def apply(self, plane, host: str) -> list:
        """Push every op to ``host``; returns all PendingSends."""
        sends: list = []
        for op in self.ops:
            sends.extend(op.apply(plane, host))
        return sends

    def __len__(self) -> int:
        return len(self.ops)

    # -- fluent builders ---------------------------------------------------

    @classmethod
    def build(cls, name: str = "program") -> "ProgramBuilder":
        return ProgramBuilder(name)


class ProgramBuilder:
    """Small fluent helper for composing programs."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._ops: List[FleetOp] = []

    def install_function(self, name: str, source_fn,
                         **kwargs) -> "ProgramBuilder":
        self._ops.append(InstallFunctionOp(name, source_fn,
                                           dict(kwargs)))
        return self

    def replace_function(self, name: str, source_fn,
                         **kwargs) -> "ProgramBuilder":
        self._ops.append(ReplaceFunctionOp(name, source_fn,
                                           dict(kwargs)))
        return self

    def remove_function(self, name: str) -> "ProgramBuilder":
        self._ops.append(RemoveFunctionOp(name))
        return self

    def install_rule(self, pattern: str, function: str,
                     table_id: int = 0, priority: int = 0,
                     next_table: Optional[int] = None,
                     ) -> "ProgramBuilder":
        self._ops.append(InstallRuleOp(pattern, function, table_id,
                                       priority, next_table))
        return self

    def set_global(self, function: str, name: str,
                   value) -> "ProgramBuilder":
        self._ops.append(SetGlobalOp(function, name, "scalar",
                                     None, value))
        return self

    def set_global_array(self, function: str, name: str,
                         values) -> "ProgramBuilder":
        self._ops.append(SetGlobalOp(function, name, "array",
                                     None, values))
        return self

    def set_global_records(self, function: str, name: str,
                           records) -> "ProgramBuilder":
        self._ops.append(SetGlobalOp(function, name, "records",
                                     None, records))
        return self

    def set_global_keyed(self, function: str, name: str, key,
                         values) -> "ProgramBuilder":
        self._ops.append(SetGlobalOp(function, name, "keyed",
                                     key, values))
        return self

    def done(self) -> FleetProgram:
        return FleetProgram(self._ops, name=self.name)

"""Convergence benchmark: time-to-last-Ack vs fleet size.

Rolls the real DDoS-mitigation program (:mod:`repro.functions.ddos`)
across fleets of growing size on the sharded control fabric, under
20% injected loss, duplication, and at least one enclave restart in
the middle of the rollout — then reports, per fleet size, the
simulated time to the last Ack, the time to full health-gated
convergence, and the event throughput of the fabric.

Scale trick: the channel, agent, plane, epoch-fencing and
orchestrator logic under test are byte-for-byte the production path,
but each host's *data plane* is a :class:`LiteEnclave` — a
dictionary-backed stand-in implementing exactly the agent-facing
enclave API without compiling or verifying programs, so 1024 enclaves
construct in milliseconds instead of minutes.  Scenario-fidelity runs
(:mod:`repro.fleet.ddos`) use real enclaves.

Everything is seeded and simulated-time-deterministic, so the smoke
gate (`fleet-bench --smoke`) can compare convergence times against
``benchmarks/fleet_baseline.json`` without wall-clock noise.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..control.faults import schedule_restart
from ..control.messages import InstallFunction
from ..functions.ddos import mitigation_program
from ..netsim.simulator import MS
from .health import EpochHealthGate
from .orchestrator import (DONE, FleetOrchestrator, RolloutConfig,
                           TERMINAL)
from .plan import RolloutPlan
from .shardfleet import ShardedFleet


@dataclass
class _LiteRule:
    rule_id: int
    pattern: str
    function: str
    priority: int = 0
    next_table: Optional[int] = None


class LiteEnclave:
    """Agent-facing enclave API over plain dicts (no compilation).

    Implements every method :class:`~repro.control.agent.
    EnclaveAgent` calls, with the same error behavior for the cases
    the rollout machinery depends on (duplicate installs, removing a
    function with live rules), so the control path cannot tell the
    difference — it just doesn't pay for program verification.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, object] = {}
        self._tables: Dict[int, Dict[int, _LiteRule]] = {0: {}}
        self._globals: Dict[tuple, object] = {}
        self._rule_ids = itertools.count(1)

    # -- functions ---------------------------------------------------------

    def install_function(self, source_fn, name=None, **kwargs):
        name = name or getattr(source_fn, "__name__", "action")
        if name in self._functions:
            raise ValueError(f"function {name!r} already installed")
        self._functions[name] = source_fn
        return source_fn

    def replace_function(self, name, source_fn, **kwargs):
        self._functions[name] = source_fn
        return source_fn

    def remove_function(self, name: str) -> None:
        for rules in self._tables.values():
            for rule in rules.values():
                if rule.function == name:
                    raise ValueError(
                        f"function {name!r} still referenced")
        del self._functions[name]

    def functions(self) -> List[str]:
        return sorted(self._functions)

    # -- tables / rules ----------------------------------------------------

    def create_table(self, table_id: int) -> None:
        if table_id in self._tables:
            raise ValueError(f"table {table_id} already exists")
        self._tables[table_id] = {}

    def query_tables(self) -> List[int]:
        return sorted(self._tables)

    def query_rules(self, table_id: int = 0) -> List[_LiteRule]:
        return list(self._tables[table_id].values())

    def install_rule(self, pattern, function, table_id=0, priority=0,
                     next_table=None) -> int:
        if function not in self._functions:
            raise ValueError(f"unknown function {function!r}")
        rule_id = next(self._rule_ids)
        self._tables[table_id][rule_id] = _LiteRule(
            rule_id, pattern, function, priority, next_table)
        return rule_id

    def remove_rule(self, rule_id: int, table_id: int = 0) -> None:
        del self._tables[table_id][rule_id]

    # -- globals -----------------------------------------------------------

    def set_global(self, function, name, value):
        self._globals[(function, name, None)] = value

    def set_global_array(self, function, name, values):
        self._globals[(function, name, None)] = tuple(values)

    def set_global_records(self, function, name, records):
        self._globals[(function, name, None)] = tuple(
            tuple(r) for r in records)

    def set_global_keyed(self, function, name, key, values):
        self._globals[(function, name, tuple(key))] = tuple(values)

    # -- lifecycle / stats -------------------------------------------------

    def clear(self) -> None:
        self._functions = {}
        self._tables = {0: {}}
        self._globals = {}

    def stats_summary(self) -> Dict[str, Dict[str, int]]:
        return {name: {"invocations": 0, "faults": 0}
                for name in self._functions}


@dataclass
class FleetPoint:
    """One fleet size's convergence measurements."""

    n_hosts: int
    n_shards: int
    waves: int
    converged: bool
    #: Simulated ns from rollout start to the last wave's last Ack.
    time_to_last_ack_ns: int
    #: Simulated ns from rollout start to full health-gated DONE.
    time_to_converged_ns: int
    events: int
    wall_seconds: float
    restarts: int
    replays: int
    stale_nacks: int
    retransmits: int
    windows: int

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def as_dict(self) -> dict:
        return {
            "n_hosts": self.n_hosts, "n_shards": self.n_shards,
            "waves": self.waves, "converged": self.converged,
            "time_to_last_ack_ms":
                self.time_to_last_ack_ns / MS,
            "time_to_converged_ms":
                self.time_to_converged_ns / MS,
            "events": self.events,
            "events_per_second": round(self.events_per_second),
            "restarts": self.restarts, "replays": self.replays,
            "stale_nacks": self.stale_nacks,
            "retransmits": self.retransmits,
            "windows": self.windows,
        }


@dataclass
class ConvergenceResult:
    points: List[FleetPoint] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {str(p.n_hosts): p.as_dict() for p in self.points}


def run_fleet_convergence(
        n_hosts: int, n_shards: int = 8, loss: float = 0.20,
        dup_prob: float = 0.05, seed: int = 1, restarts: int = 1,
        report_interval_ns: int = 20 * MS,
        horizon_ns: int = 10_000 * MS,
        stale_probe: bool = True) -> FleetPoint:
    """Converge one fleet; returns its measurements."""
    fleet = ShardedFleet(
        n_hosts, n_shards, make_enclave=lambda host: LiteEnclave(),
        seed=seed, loss=loss, dup_prob=dup_prob,
        report_interval_ns=report_interval_ns)
    plane = fleet.plane
    sim = fleet.controller_sim
    plan = RolloutPlan.by_percent(fleet.hosts)
    victim_ip = 10_000
    host_ip = {h: i + 1 for i, h in enumerate(fleet.hosts)}
    program = mitigation_program(
        victim_ip, lambda h: host_ip[h], queue_ids=(1, 2, 3, 4))
    orch = FleetOrchestrator(
        plane, plan, program, scheduler=sim,
        gate=EpochHealthGate(
            max_report_age_ns=3 * report_interval_ns),
        config=RolloutConfig(poll_interval_ns=5 * MS,
                             wave_timeout_ns=4_000 * MS))
    orch.start()

    # At least one enclave restarts while its wave is in flight: pick
    # hosts from the *second* wave and restart them shortly after
    # that wave starts, so the wave's sends race the session reset.
    restart_wave = plan.waves[min(1, len(plan.waves) - 1)]
    restarted: List[str] = []
    for i in range(restarts):
        host = restart_wave.hosts[i % len(restart_wave.hosts)]
        if host in restarted:
            continue
        restarted.append(host)

    def arm_restarts(orchestrator, record) -> None:
        if record.index != restart_wave.index:
            return
        for j, host in enumerate(restarted):
            agent = fleet.agents[host]
            agent_sim = fleet.fabric.scheduler_for(agent.address)
            schedule_restart(agent_sim,
                             agent_sim.now + (j + 1) * 10 * MS,
                             agent)

    orch.on_wave_start = arm_restarts

    wall_t0 = time.perf_counter()
    # Chunked run: stop as soon as the rollout reaches a terminal
    # state (reports would otherwise generate events forever).
    chunk = 100 * MS
    while orch.state not in TERMINAL and fleet.fabric.now < horizon_ns:
        fleet.run(until_ns=min(horizon_ns,
                               fleet.fabric.now + chunk))
    stale_nacks = sum(s.stale_nacks
                      for s in orch.host_status.values())
    if stale_probe and restarted:
        # Epoch fencing check under the same loss: re-send a
        # wave-style install at a long-stale epoch to a restarted
        # (fully reconverged) host; the agent must Nack it stale.
        host = restarted[0]
        before = plane.stale_nacks_seen
        plane.endpoint.send(
            plane.agent_addr(host),
            InstallFunction(host=host, epoch=1, name="zombie_wave",
                            source_fn=None))
        deadline = fleet.fabric.now + 2_000 * MS
        while plane.stale_nacks_seen == before and \
                fleet.fabric.now < deadline:
            fleet.run(until_ns=fleet.fabric.now + chunk)
        stale_nacks += plane.stale_nacks_seen - before
    wall = time.perf_counter() - wall_t0

    converged = orch.state == DONE
    return FleetPoint(
        n_hosts=n_hosts, n_shards=n_shards, waves=len(plan),
        converged=converged,
        time_to_last_ack_ns=orch.time_to_last_ack_ns or -1,
        time_to_converged_ns=orch.time_to_converged_ns or -1,
        events=fleet.fabric.events_processed,
        wall_seconds=wall,
        restarts=sum(a.restarts for a in fleet.agents.values()),
        replays=plane.replays,
        stale_nacks=stale_nacks,
        retransmits=plane.endpoint.stats.retransmits,
        windows=fleet.fabric.windows)


def run_convergence_sweep(
        sizes: Sequence[int] = (64, 256, 1024),
        n_shards: int = 8, loss: float = 0.20,
        dup_prob: float = 0.05, seed: int = 1,
        restarts: int = 1) -> ConvergenceResult:
    result = ConvergenceResult()
    for n in sizes:
        result.points.append(run_fleet_convergence(
            n, n_shards=n_shards, loss=loss, dup_prob=dup_prob,
            seed=seed, restarts=restarts))
    return result


def format_convergence(result: ConvergenceResult) -> str:
    lines = [
        "fleet convergence (sharded control fabric, "
        "canary 1/10/40/100 waves)",
        f"{'hosts':>6} {'waves':>5} {'last-ack':>10} "
        f"{'converged':>10} {'events':>9} {'ev/s':>9} "
        f"{'replays':>7} {'stale':>5} {'rexmit':>7} {'ok':>3}",
    ]
    for p in result.points:
        lines.append(
            f"{p.n_hosts:>6} {p.waves:>5} "
            f"{p.time_to_last_ack_ns / MS:>8.1f}ms "
            f"{p.time_to_converged_ns / MS:>8.1f}ms "
            f"{p.events:>9} {p.events_per_second:>9.0f} "
            f"{p.replays:>7} {p.stale_nacks:>5} "
            f"{p.retransmits:>7} "
            f"{'yes' if p.converged else 'NO':>3}")
    return "\n".join(lines)


# -- smoke gate -------------------------------------------------------------

def check_against_baseline(result: ConvergenceResult,
                           baseline: dict,
                           threshold: float = 2.0) -> List[str]:
    """Gate failures (empty list = pass).

    Convergence must hold at every size, and the (seeded,
    sim-time-deterministic) convergence time must stay within
    ``threshold`` x the checked-in baseline.
    """
    failures: List[str] = []
    for point in result.points:
        key = str(point.n_hosts)
        if not point.converged:
            failures.append(f"{key} hosts: rollout did not converge")
            continue
        base = baseline.get(key)
        if base is None:
            failures.append(f"{key} hosts: no baseline entry")
            continue
        base_ms = base["time_to_converged_ms"]
        got_ms = point.time_to_converged_ns / MS
        if got_ms > base_ms * threshold:
            failures.append(
                f"{key} hosts: converged in {got_ms:.1f}ms > "
                f"{threshold:.1f}x baseline {base_ms:.1f}ms")
        if point.stale_nacks < 1:
            failures.append(
                f"{key} hosts: expected at least one stale-epoch "
                f"Nack (fencing probe)")
    return failures


def load_baseline(path: str) -> Optional[dict]:
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def save_baseline(result: ConvergenceResult, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(result.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")

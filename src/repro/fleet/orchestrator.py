"""The staged rollout driver.

:class:`FleetOrchestrator` pushes one :class:`~repro.fleet.program.
FleetProgram` across a fleet, one :class:`~repro.fleet.plan.Wave` at
a time, entirely through the existing control plane:

1. **Install** — at wave start, snapshot each host's desired state
   (the rollback point), then apply the program; every op bumps the
   host's epoch and flows through the reliable channel.
2. **Await Acks** — the wave's ``PendingSend`` handles must all
   resolve.  A send superseded by a session reset (the host restarted
   mid-wave and the plane replayed its desired state) is *not* a
   failure: the replay carries the same target epoch, and convergence
   is judged by :meth:`~repro.control.plane.ControlPlane.in_sync`.
3. **Health-gate** — each host confirms only when the gate
   (:mod:`repro.fleet.health`) returns ``HEALTHY`` from its freshest
   ``StatsReport``.  ``FAIL`` fails the wave immediately.
4. **Advance, pause, or roll back** — a confirmed wave advances
   (after an optional settle window); a failed or timed-out wave
   either pauses the rollout or restores every touched host to its
   snapshot.  Rollback keeps epochs moving *forward* — stragglers
   from the abandoned wave die with their fenced session or are
   Nacked ``stale-epoch``, never applied.

The orchestrator is a pure control-plane client: it owns no sockets
and no threads, just a poll timer on the supplied scheduler, so it
runs identically on the single-heap simulator, the sharded control
fabric, or (with a real scheduler) a wall-clock deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..control.messages import STALE_EPOCH
from ..control.plane import ControlPlane, DesiredState
from ..netsim.simulator import MS
from ..telemetry import NULL_TELEMETRY, Telemetry
from .health import FAIL, HEALTHY, HealthGate, HostHealth
from .plan import RolloutPlan, Wave
from .program import FleetProgram
from .status import (ACKED, CONFIRMED, FAILED, HostStatus, INSTALLING,
                     PENDING, ROLLED_BACK, ROLLING_BACK, RolloutStatus,
                     WAVE_ABANDONED, WAVE_CONFIRMED, WAVE_FAILED,
                     WAVE_RUNNING, WaveRecord)

# Orchestrator states.
IDLE = "idle"
RUNNING = "running"
SETTLING = "settling"
PAUSED = "paused"
ROLLING_BACK_FLEET = "rolling-back"
DONE = "done"
ROLLED_BACK_FLEET = "rolled-back"
ABORTED = "aborted"

TERMINAL = (DONE, ROLLED_BACK_FLEET, ABORTED)

#: ``on_failure`` policies.
ROLLBACK = "rollback"
PAUSE = "pause"


class OrchestratorError(Exception):
    """The orchestrator was driven through an invalid transition."""


@dataclass
class RolloutConfig:
    """Policy knobs for one rollout."""

    #: How often the orchestrator re-evaluates the current wave.
    poll_interval_ns: int = 2 * MS
    #: A wave that has not confirmed within this window fails.
    wave_timeout_ns: int = 2_000 * MS
    #: Soak time after a confirmed wave before the next one starts.
    settle_ns: int = 0
    #: What a failed wave triggers: :data:`ROLLBACK` or :data:`PAUSE`.
    on_failure: str = ROLLBACK
    #: Rollback that has not re-converged within this window aborts.
    rollback_timeout_ns: int = 2_000 * MS


class FleetOrchestrator:
    """Drives one program across one plan, wave by wave."""

    def __init__(self, plane: ControlPlane, plan: RolloutPlan,
                 program: FleetProgram, scheduler,
                 gate: Optional[HealthGate] = None,
                 config: Optional[RolloutConfig] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.plane = plane
        self.plan = plan
        self.program = program
        self.scheduler = scheduler
        self.gate = gate if gate is not None else HealthGate()
        self.config = config if config is not None else RolloutConfig()
        if self.config.on_failure not in (ROLLBACK, PAUSE):
            raise OrchestratorError(
                f"unknown on_failure policy "
                f"{self.config.on_failure!r}")
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        registry = self.telemetry.registry
        self._m_waves_started = registry.counter(
            "fleet_waves_started_total")
        self._m_waves_confirmed = registry.counter(
            "fleet_waves_confirmed_total")
        self._m_wave_failures = registry.counter(
            "fleet_wave_failures_total")
        self._m_rollbacks = registry.counter("fleet_rollbacks_total")
        self._m_hosts_confirmed = registry.counter(
            "fleet_hosts_confirmed_total")
        self._m_current_wave = registry.gauge("fleet_current_wave")
        self._m_wave_duration = registry.histogram(
            "fleet_wave_duration_ns")

        self.state = IDLE
        self.current_wave = -1
        self.started_ns = -1
        self.finished_ns = -1
        self.waves: List[WaveRecord] = [
            WaveRecord(index=w.index, hosts=w.hosts) for w in plan]
        self.host_status: Dict[str, HostStatus] = {
            h: HostStatus(host=h) for h in plan.hosts()}
        self._snapshots: Dict[str, DesiredState] = {}
        self._pendings: Dict[str, list] = {}
        self._counted_nacks: set = set()
        self._settle_until = -1
        self._rollback_started = -1
        self._tick_gen = 0
        self.ticks = 0

        # Optional observers: fn(orchestrator, WaveRecord) for wave
        # events, fn(orchestrator) for rollout-level events.
        self.on_wave_start: Optional[Callable] = None
        self.on_wave_confirmed: Optional[Callable] = None
        self.on_rollout_done: Optional[Callable] = None
        self.on_rollback_start: Optional[Callable] = None
        self.on_rollback_done: Optional[Callable] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def now(self) -> int:
        return self.scheduler.now

    def start(self) -> None:
        """Begin the rollout: canary wave first."""
        if self.state != IDLE:
            raise OrchestratorError(
                f"cannot start from state {self.state!r}")
        self.state = RUNNING
        self.started_ns = self.now
        self._start_wave(0)
        self._arm_tick()

    def pause(self) -> None:
        if self.state not in (RUNNING, SETTLING):
            raise OrchestratorError(
                f"cannot pause from state {self.state!r}")
        self.state = PAUSED

    def resume(self) -> None:
        """Resume a paused rollout; the current wave's timeout
        restarts from now."""
        if self.state != PAUSED:
            raise OrchestratorError(
                f"cannot resume from state {self.state!r}")
        record = self.waves[self.current_wave]
        record.started_ns = self.now
        record.outcome = WAVE_RUNNING
        record.failure_reason = ""
        # Hosts the failed evaluation marked FAILED get a clean slate:
        # the operator resumed because the condition was fixed, so
        # they must be re-judged, not instantly re-fail the wave.
        for host in self.plan.waves[self.current_wave].hosts:
            status = self.host_status[host]
            if status.state == FAILED:
                status.state = INSTALLING
                status.failure_reason = ""
        self.state = RUNNING
        self._arm_tick()

    def rollback(self) -> None:
        """Manually abandon the rollout and restore every touched
        host to its snapshot."""
        if self.state in TERMINAL or self.state == ROLLING_BACK_FLEET:
            raise OrchestratorError(
                f"cannot roll back from state {self.state!r}")
        self._start_rollback("manual")
        self._arm_tick()

    # -- wave machinery ----------------------------------------------------

    def _start_wave(self, index: int) -> None:
        self.current_wave = index
        self._m_current_wave.set(index)
        wave: Wave = self.plan.waves[index]
        record = self.waves[index]
        record.started_ns = self.now
        self._m_waves_started.inc()
        for host in wave.hosts:
            status = self.host_status[host]
            status.wave = index
            status.state = INSTALLING
            status.installed_at_ns = self.now
            self._snapshots[host] = self.plane.snapshot_desired(host)
            self._pendings[host] = self.program.apply(self.plane,
                                                      host)
            status.target_epoch = self.plane.desired(host).epoch
        if self.on_wave_start is not None:
            self.on_wave_start(self, record)

    def _arm_tick(self) -> None:
        self._tick_gen += 1
        self.scheduler.schedule(self.config.poll_interval_ns,
                                self._tick, self._tick_gen)

    def _tick(self, gen: int) -> None:
        if gen != self._tick_gen or self.state in TERMINAL or \
                self.state == PAUSED:
            return  # orphaned timer or nothing to drive
        self.ticks += 1
        if self.state == SETTLING:
            if self.now >= self._settle_until:
                self.state = RUNNING
                self._advance()
        elif self.state == RUNNING:
            self._evaluate_wave()
        elif self.state == ROLLING_BACK_FLEET:
            self._evaluate_rollback()
        if self.state not in TERMINAL and self.state != PAUSED:
            self.scheduler.schedule(self.config.poll_interval_ns,
                                    self._tick, gen)

    def _evaluate_wave(self) -> None:
        record = self.waves[self.current_wave]
        wave = self.plan.waves[self.current_wave]
        all_confirmed = True
        all_acked = True
        for host in wave.hosts:
            status = self.host_status[host]
            if status.state == CONFIRMED:
                continue
            self._scan_pendings(host, status)
            if status.state == FAILED:
                self._fail_wave(record, status.failure_reason)
                return
            pendings = self._pendings.get(host, ())
            if all(p.done for p in pendings):
                if status.state == INSTALLING:
                    status.state = ACKED
                    status.acked_at_ns = self.now
            else:
                all_acked = False
            health = self._host_health(host, status)
            verdict = self.gate.verdict(health)
            if verdict == FAIL:
                status.state = FAILED
                status.failure_reason = "health-gate"
                self._fail_wave(record, f"health gate failed "
                                        f"on {host}")
                return
            if verdict == HEALTHY:
                status.state = CONFIRMED
                status.confirmed_at_ns = self.now
                self._m_hosts_confirmed.inc()
            else:
                all_confirmed = False
        if all_acked and record.acked_ns < 0:
            record.acked_ns = self.now
        if all_confirmed:
            record.confirmed_ns = self.now
            record.outcome = WAVE_CONFIRMED
            self._m_waves_confirmed.inc()
            if record.duration_ns is not None:
                self._m_wave_duration.observe(record.duration_ns)
            if self.on_wave_confirmed is not None:
                self.on_wave_confirmed(self, record)
            if self.config.settle_ns > 0:
                self.state = SETTLING
                self._settle_until = self.now + self.config.settle_ns
            else:
                self._advance()
            return
        if self.now - record.started_ns > self.config.wave_timeout_ns:
            self._fail_wave(record, "wave timeout")

    def _scan_pendings(self, host: str, status: HostStatus) -> None:
        """Classify resolved sends: stale Nacks are counted (the
        fence did its job), any other Nack or retry exhaustion is a
        host failure.  Superseded sends are fine — a session reset
        (restart -> replay) re-sent the same desired state."""
        for p in self._pendings.get(host, ()):
            if id(p) in self._counted_nacks:
                continue
            if p.nacked:
                self._counted_nacks.add(id(p))
                if p.reason == STALE_EPOCH:
                    status.stale_nacks += 1
                else:
                    status.send_failures += 1
                    status.state = FAILED
                    status.failure_reason = (
                        f"nack:{p.reason or 'error'}")
            elif p.failed:
                self._counted_nacks.add(id(p))
                status.send_failures += 1
                status.state = FAILED
                status.failure_reason = "retries-exhausted"

    def _host_health(self, host: str,
                     status: HostStatus) -> HostHealth:
        return HostHealth(
            host=host, now_ns=self.now,
            in_sync=self.plane.in_sync(host),
            target_epoch=status.target_epoch,
            report=self.plane.latest_report.get(host))

    def _advance(self) -> None:
        if self.current_wave + 1 < len(self.plan.waves):
            self._start_wave(self.current_wave + 1)
            return
        self.state = DONE
        self.finished_ns = self.now
        self._m_current_wave.set(len(self.plan.waves))
        if self.on_rollout_done is not None:
            self.on_rollout_done(self)

    def _fail_wave(self, record: WaveRecord, reason: str) -> None:
        record.outcome = WAVE_FAILED
        record.failure_reason = reason
        self._m_wave_failures.inc()
        if self.config.on_failure == PAUSE:
            self.state = PAUSED
            return
        self._start_rollback(reason)

    # -- rollback ----------------------------------------------------------

    def _touched_hosts(self) -> List[str]:
        """Hosts the rollout has already written to (wave order)."""
        out: List[str] = []
        for wave in self.plan.waves[:self.current_wave + 1]:
            out.extend(wave.hosts)
        return out

    def _start_rollback(self, reason: str) -> None:
        self.state = ROLLING_BACK_FLEET
        self._rollback_started = self.now
        self._m_rollbacks.inc()
        for record in self.waves:
            if record.outcome == WAVE_RUNNING and \
                    record.started_ns >= 0:
                record.outcome = WAVE_ABANDONED
                record.failure_reason = record.failure_reason or reason
        for host in self._touched_hosts():
            status = self.host_status[host]
            status.state = ROLLING_BACK
            self._pendings[host] = self.plane.restore_desired(
                host, self._snapshots[host])
            status.target_epoch = self.plane.desired(host).epoch
        if self.on_rollback_start is not None:
            self.on_rollback_start(self)

    def _evaluate_rollback(self) -> None:
        all_back = True
        for host in self._touched_hosts():
            status = self.host_status[host]
            if status.state == ROLLED_BACK:
                continue
            self._scan_pendings(host, status)
            # A send failure during rollback is not terminal for the
            # host — restore keeps being re-driven by replay on
            # reconnect — but it does keep the fleet un-converged.
            if status.state == FAILED:
                status.state = ROLLING_BACK
            if self.plane.in_sync(host):
                status.state = ROLLED_BACK
            else:
                all_back = False
        if all_back:
            self.state = ROLLED_BACK_FLEET
            self.finished_ns = self.now
            if self.on_rollback_done is not None:
                self.on_rollback_done(self)
            return
        if self.now - self._rollback_started > \
                self.config.rollback_timeout_ns:
            self.state = ABORTED
            self.finished_ns = self.now

    # -- views -------------------------------------------------------------

    def status(self) -> RolloutStatus:
        return RolloutStatus(
            state=self.state, current_wave=self.current_wave,
            waves=list(self.waves),
            hosts=[self.host_status[h] for h in self.plan.hosts()])

    @property
    def time_to_last_ack_ns(self) -> Optional[int]:
        """Rollout start -> the final wave's last Ack."""
        if self.started_ns < 0:
            return None
        acked = [w.acked_ns for w in self.waves]
        if any(a < 0 for a in acked):
            return None
        return max(acked) - self.started_ns

    @property
    def time_to_converged_ns(self) -> Optional[int]:
        """Rollout start -> every host confirmed (state DONE)."""
        if self.state != DONE or self.started_ns < 0:
            return None
        return self.finished_ns - self.started_ns

    def summary(self) -> dict:
        counts = self.status().counts()
        return {
            "state": self.state,
            "waves": len(self.plan.waves),
            "current_wave": self.current_wave,
            "hosts": len(self.host_status),
            "host_states": counts,
            "ticks": self.ticks,
            "time_to_last_ack_ns": self.time_to_last_ack_ns,
            "time_to_converged_ns": self.time_to_converged_ns,
            "stale_nacks": sum(s.stale_nacks
                               for s in self.host_status.values()),
            "wave_records": [
                {"index": w.index, "hosts": len(w.hosts),
                 "outcome": w.outcome,
                 "started_ns": w.started_ns,
                 "acked_ns": w.acked_ns,
                 "confirmed_ns": w.confirmed_ns,
                 "failure_reason": w.failure_reason}
                for w in self.waves],
        }

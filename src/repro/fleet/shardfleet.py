"""Sharded control fabric: 1024+ enclaves in one process.

A fleet-scale rollout is control traffic, not packet traffic — so
instead of forcing envelopes through the packet-path
:class:`~repro.netsim.sharded.ShardedSimulator`, this module shards
the *control* world directly: the controller (plane + orchestrator)
lives on shard 0, agents are spread over shards ``1..n``, and every
shard runs its own :class:`~repro.netsim.sharded.ShardSim` heap.  The
shards synchronize with the same conservative-lookahead protocol as
the packet path (:class:`~repro.netsim.sharded.
ConservativeWindowLoop`): the window equals the base one-way control
latency, and since jitter and injected extra delay only ever *add*,
no cross-shard envelope can arrive earlier than one window after it
was sent.

:class:`ShardedControlFabric` is a drop-in
:class:`~repro.control.transport.Transport`, so the plane, agents,
channel retransmit logic, fault injection and epoch fencing are the
*exact same code* that runs on the single-heap
:class:`~repro.control.transport.SimTransport` — only the event
heaps are partitioned.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Dict, List, Optional, Tuple

from ..control.agent import EnclaveAgent, agent_address
from ..control.channel import ChannelConfig
from ..control.faults import FaultInjector
from ..control.messages import Envelope
from ..control.plane import ControlPlane
from ..control.transport import Transport
from ..netsim.sharded import ConservativeWindowLoop, ShardSim
from ..netsim.simulator import MS
from ..telemetry import NULL_TELEMETRY, Telemetry

#: Shard that hosts the controller endpoint.
CONTROLLER_SHARD = 0

#: Queued cross-shard envelope: (arrival_ns, src_shard, seq, env).
#: The tuple prefix is the deterministic delivery order at a barrier,
#: mirroring the packet path's handoff ordering.
_Handoff = Tuple[int, int, int, Envelope]


class FabricError(Exception):
    """The control fabric was misconfigured."""


class ShardedControlFabric(Transport):
    """A sharded :class:`Transport` for controller <-> agent traffic."""

    def __init__(self, n_shards: int, seed: int = 0,
                 delay_ns: int = 50_000, jitter_ns: int = 0,
                 faults: Optional[FaultInjector] = None) -> None:
        super().__init__()
        if n_shards < 1:
            raise FabricError("need at least one agent shard")
        if delay_ns <= 0:
            raise FabricError("control delay must be positive")
        self.delay_ns = delay_ns
        self.jitter_ns = jitter_ns
        self.faults = faults
        # Shard 0 is the controller's; agents live on 1..n_shards.
        self.sims: List[ShardSim] = [
            ShardSim(sid, seed=seed * 7919 + sid)
            for sid in range(n_shards + 1)]
        if faults is not None and faults.scheduler is None:
            # Partition windows arm on the controller shard's clock.
            faults.bind_scheduler(self.sims[CONTROLLER_SHARD])
        # Conservative window: the *base* delay bounds how soon any
        # envelope can cross a shard boundary (jitter/extra only add).
        self._loop = ConservativeWindowLoop(
            self.sims, window_ns=delay_ns, drain=self._drain,
            pending_time=self._pending_time)
        self._owner: Dict[str, int] = {}
        self._mailbox: List[_Handoff] = []
        self._seq = itertools.count()
        self.cross_shard_sends = 0
        self.local_sends = 0

    # -- placement ---------------------------------------------------------

    def place(self, address: str, shard_id: int) -> None:
        """Pin ``address`` to a shard; must precede ``register``."""
        if not 0 <= shard_id < len(self.sims):
            raise FabricError(f"no shard {shard_id}")
        self._owner[address] = shard_id

    def register(self, address: str, deliver) -> None:
        if address not in self._owner:
            # Controller-side endpoints default to shard 0; agents
            # must be placed explicitly before construction.
            self._owner[address] = CONTROLLER_SHARD
        super().register(address, deliver)

    def shard_of(self, address: str) -> int:
        return self._owner[address]

    def scheduler_for(self, address: str) -> ShardSim:
        """The heap an endpoint at ``address`` must schedule on."""
        return self.sims[self._owner[address]]

    # -- transport ---------------------------------------------------------

    def send(self, env: Envelope) -> None:
        self.sent += 1
        src_shard = self._owner.get(env.src, CONTROLLER_SHARD)
        sim = self.sims[src_shard]
        copies = 1
        if self.faults is not None:
            copies = self.faults.deliveries(env)
        for _ in range(copies):
            delay = self.delay_ns
            if self.jitter_ns:
                delay += sim.rng.randrange(self.jitter_ns + 1)
            if self.faults is not None:
                delay += self.faults.extra_delay()
            dst_shard = self._owner.get(env.dst)
            if dst_shard is None or dst_shard == src_shard:
                # Unknown destinations stay local and are dropped at
                # delivery, matching SimTransport.
                self.local_sends += 1
                sim.schedule(delay, self._deliver, env)
            else:
                self.cross_shard_sends += 1
                heapq.heappush(
                    self._mailbox,
                    (sim.now + delay, src_shard, next(self._seq),
                     env))

    def _pending_time(self) -> Optional[int]:
        return self._mailbox[0][0] if self._mailbox else None

    def _drain(self) -> int:
        if not self._mailbox:
            return 0
        moved = 0
        batch = sorted(self._mailbox)
        self._mailbox.clear()
        for arrival, _src_shard, _seq, env in batch:
            dst_shard = self._owner.get(env.dst, CONTROLLER_SHARD)
            self.sims[dst_shard].at(arrival, self._deliver, env)
            moved += 1
        return moved

    # -- running -----------------------------------------------------------

    @property
    def now(self) -> int:
        return self._loop.now

    @property
    def windows(self) -> int:
        return self._loop.windows

    @property
    def handoffs(self) -> int:
        return self._loop.handoffs

    @property
    def events_processed(self) -> int:
        return sum(s.events_processed for s in self.sims)

    def run(self, until_ns: Optional[int] = None) -> int:
        return self._loop.run(until_ns=until_ns)


class ShardedFleet:
    """A controller plus ``n_hosts`` enclave agents on a fabric.

    Hosts are named ``h0001..hNNNN`` and round-robined over the agent
    shards.  ``make_enclave(host)`` supplies the data plane — a real
    :class:`~repro.core.enclave.Enclave` for scenario fidelity, or
    :class:`~repro.fleet.bench.LiteEnclave` for benchmark scale.
    """

    def __init__(self, n_hosts: int, n_shards: int, make_enclave,
                 seed: int = 1, loss: float = 0.0,
                 dup_prob: float = 0.0, extra_delay_ns: int = 0,
                 delay_ns: int = 50_000, jitter_ns: int = 0,
                 report_interval_ns: int = 20 * MS,
                 channel_config: Optional[ChannelConfig] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        if n_hosts < 1:
            raise FabricError("need at least one host")
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        self.faults = FaultInjector(
            rng=random.Random(seed * 1_000_003 + 17),
            drop_prob=loss, dup_prob=dup_prob,
            extra_delay_ns=extra_delay_ns)
        self.fabric = ShardedControlFabric(
            n_shards, seed=seed, delay_ns=delay_ns,
            jitter_ns=jitter_ns, faults=self.faults)
        controller_sim = self.fabric.sims[CONTROLLER_SHARD]
        self.plane = ControlPlane(
            self.fabric, scheduler=controller_sim,
            rng=controller_sim.rng, config=channel_config,
            telemetry=telemetry)
        self.hosts: List[str] = []
        self.agents: Dict[str, EnclaveAgent] = {}
        self.enclaves: Dict[str, object] = {}
        width = max(4, len(str(n_hosts)))
        for i in range(n_hosts):
            host = f"h{i + 1:0{width}d}"
            shard = 1 + i % n_shards
            addr = agent_address(host)
            self.fabric.place(addr, shard)
            shard_sim = self.fabric.sims[shard]
            enclave = make_enclave(host)
            agent = EnclaveAgent(
                host, enclave, self.fabric, scheduler=shard_sim,
                rng=shard_sim.rng, config=channel_config)
            self.hosts.append(host)
            self.agents[host] = agent
            self.enclaves[host] = enclave
            self.plane.attach(host)
            if report_interval_ns > 0:
                agent.start_reporting(report_interval_ns)

    @property
    def controller_sim(self) -> ShardSim:
        return self.fabric.sims[CONTROLLER_SHARD]

    def run(self, until_ns: Optional[int] = None) -> int:
        return self.fabric.run(until_ns=until_ns)
